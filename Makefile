# Sorrento reproduction — developer entry points.
#
#   make check      build (release) + full test suite + clippy with -D warnings
#                   + rustdoc with -D warnings (public-API docs are load-bearing)
#   make test       test suite only
#   make check-net  real-process runtime: frame-codec property tests +
#                   loopback TCP cluster drill (sockets, daemons, sorrentoctl)
#   make bench      regenerate every figure/table into results/
#   make bench-smoke  quick data-path bench run; fails if the committed
#                   results/BENCH_net.json is malformed or if the pooled
#                   encode path allocates more than BENCH_ALLOC_BOUND
#                   per frame at steady state
#   make storm-smoke  C10K drill at CI scale: 256 concurrent raw-socket
#                   sessions against one daemon through the event loop —
#                   asserts zero hangs and zero dropped ops, and
#                   schema-checks the committed results/BENCH_net.json
#   make chaos-smoke  the chaos game-day drill: a real loopback cluster
#                   under deterministic fault injection, with a provider
#                   crash + restart, run for three fixed seeds
#   make obs-smoke  the observability drill: boot a loopback cluster,
#                   scrape every node's versioned stats snapshot, kill a
#                   provider, and schema-check the flight dump and
#                   metrics.jsonl it leaves behind, plus the span-trace
#                   merge tests
#   make ec-smoke   the erasure-coding drill: seeded-simulator EC tests
#                   (roundtrip, rewrite, degraded read, shard repair),
#                   then a loopback EC(4,2) cluster that loses two shard
#                   holders mid-run — degraded reads must reconstruct and
#                   the repair scan must restore the shard count on disk
#   make ns-smoke   the metadata-plane drill: schema-check the committed
#                   results/BENCH_ns.json (4-shard speedup >= 2.5x and a
#                   3-interval failover sweep), run the sharded-namespace
#                   simulator tests, boot a 2-shard loopback cluster with
#                   hot standbys, kill a shard primary, and assert the
#                   standby takes over and serves correct reads
#   make membership-smoke  the gossip-membership drill: schema-check the
#                   committed results/BENCH_membership.json (detection
#                   latency under 10% loss, zero false evictions, plus
#                   the ring/rendezvous/asura placement ablation), run
#                   the SWIM simulator suite (false-positive-freedom,
#                   refutation, 500-provider detection bound, gossip
#                   convergence), then a live loopback suspect/confirm
#                   drill with a kill -9'd provider
#   make docs       rustdoc for the whole workspace (warnings are errors)

CARGO ?= cargo

# Steady-state heap allocations per encoded frame on the bulk path: one
# (the Arc that shares the pooled buffer across peer queues).
BENCH_ALLOC_BOUND ?= 1.0

.PHONY: check build test clippy check-net bench bench-smoke storm-smoke chaos-smoke obs-smoke ec-smoke ns-smoke membership-smoke docs

check: build test clippy docs

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy -- -D warnings

check-net:
	$(CARGO) test -p sorrento-net
	$(CARGO) test -p sorrento-tests --test frame_codec
	$(CARGO) test -p sorrento-tests --test loopback_cluster

chaos-smoke:
	$(CARGO) test -p sorrento-tests --test chaos_recovery -- --nocapture

obs-smoke:
	$(CARGO) test -p sorrento-tests --test obs_smoke -- --nocapture
	$(CARGO) test -p sorrento-tests --test observability -- --nocapture

ec-smoke:
	$(CARGO) test -p sorrento-tests --test ec_mode -- --nocapture

ns-smoke:
	$(CARGO) run --release -p sorrento-net --bin bench-ns -- \
	  --validate results/BENCH_ns.json
	$(CARGO) test -p sorrento-tests --test ns_shard -- --nocapture
	$(CARGO) test -p sorrento-tests --test ns_failover -- --nocapture
	$(CARGO) run --release -p sorrento-net --bin bench-ns -- \
	  --smoke --out target/BENCH_ns.smoke.json

membership-smoke:
	$(CARGO) run --release -p sorrento-net --bin bench-membership -- \
	  --validate results/BENCH_membership.json
	$(CARGO) test -p sorrento-tests --test membership -- --nocapture
	$(CARGO) test -p sorrento-tests --test membership_live -- --nocapture
	$(CARGO) run --release -p sorrento-net --bin bench-membership -- \
	  --smoke --out target/BENCH_membership.smoke.json

bench:
	for f in fig09_small_file_latency fig10_small_file_throughput \
	         fig11_large_file_bandwidth fig12_trace_replay \
	         fig13_failure_recovery fig14_crawler_placement \
	         fig15_locality_migration ablations; do \
	  $(CARGO) run --release -p sorrento-bench --bin $$f | tee results/$$f.txt; \
	done

bench-smoke:
	$(CARGO) run --release -p sorrento-net --bin bench-net -- \
	  --validate results/BENCH_net.json --check-allocs $(BENCH_ALLOC_BOUND)
	$(CARGO) run --release -p sorrento-net --bin bench-ns -- \
	  --validate results/BENCH_ns.json
	$(CARGO) run --release -p sorrento-net --bin bench-net -- \
	  --smoke --out target/BENCH_net.smoke.json --check-allocs $(BENCH_ALLOC_BOUND)

# Scaled-down C10K storm: the run itself asserts zero hung sessions and
# zero dropped ops (the binary exits non-zero otherwise), and the
# committed results file is schema-checked first. Storm-scale runs on a
# real box may need `ulimit -n` raised; see RUNBOOK.md.
storm-smoke:
	$(CARGO) run --release -p sorrento-net --bin bench-net -- \
	  --validate results/BENCH_net.json
	$(CARGO) run --release -p sorrento-net --bin bench-net -- \
	  --smoke --storm 256 --out target/BENCH_net.storm.json
	$(CARGO) test -p sorrento-tests --test thread_census

docs:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps
