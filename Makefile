# Sorrento reproduction — developer entry points.
#
#   make check      build (release) + full test suite + clippy with -D warnings
#   make test       test suite only
#   make check-net  real-process runtime: frame-codec property tests +
#                   loopback TCP cluster drill (sockets, daemons, sorrentoctl)
#   make bench      regenerate every figure/table into results/
#   make docs       rustdoc for the whole workspace

CARGO ?= cargo

.PHONY: check build test clippy check-net bench docs

check: build test clippy

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy -- -D warnings

check-net:
	$(CARGO) test -p sorrento-net
	$(CARGO) test -p sorrento-tests --test frame_codec
	$(CARGO) test -p sorrento-tests --test loopback_cluster

bench:
	for f in fig09_small_file_latency fig10_small_file_throughput \
	         fig11_large_file_bandwidth fig12_trace_replay \
	         fig13_failure_recovery fig14_crawler_placement \
	         fig15_locality_migration ablations; do \
	  $(CARGO) run --release -p sorrento-bench --bin $$f | tee results/$$f.txt; \
	done

docs:
	$(CARGO) doc --no-deps
