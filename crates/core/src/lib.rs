#![warn(missing_docs)]

//! # sorrento — a self-organizing storage cluster
//!
//! A from-scratch Rust reproduction of **Sorrento** (Tang, Gulbeden,
//! Zhou, Chu, Yang — *A Self-Organizing Storage Cluster for Parallel
//! Data-Intensive Applications*, SC 2004): a cluster storage system that
//! virtualizes commodity nodes' disks into expandable volumes and manages
//! itself — placement, replication, failure recovery, and migration all
//! happen without operator involvement.
//!
//! The crate implements every component of the paper's Figure 2:
//!
//! * [`membership`] — soft-state live-provider set from multicast
//!   heartbeats carrying load and free-space information (§3.3), with
//!   [`swim`] as the opt-in gossip failure detector that replaces the
//!   multicast at 1000+-provider scale (ROADMAP item 4);
//! * [`ring`] + [`location`] — consistent-hashing home hosts and
//!   soft-state location tables with age-based garbage purging (§3.4);
//!   [`locator`] makes the home-host scheme pluggable (ring /
//!   rendezvous / ASURA-style slot walk);
//! * [`layout`] — Linear / Striped / Hybrid file organization with the
//!   paper's exponential segment sizing and small-file attachment (§3.2);
//! * [`store`] — the per-provider segment store: immutable committed
//!   versions, copy-on-write shadow copies, expiration, consolidation
//!   (§3.5);
//! * [`placement`] — the `f_l^α · f_s^(1−α)` weighted-random placement
//!   shared by creation, replication and migration (§3.7);
//! * [`namespace`] — the per-volume namespace server over a WAL-backed
//!   database ([`sorrento_kvdb`]) (§3.1);
//! * [`provider`] — the storage provider daemon: location management,
//!   lazy replica propagation, degree repair, load-aware and
//!   locality-driven migration (§3.4–3.7);
//! * [`client`] — the client stub: pathname ops, version-based commits
//!   with 2PC, the backup multicast lookup, timeouts and failover (§2.3,
//!   §3.5);
//! * [`api`] — the §2.3 handle-based library interface ([`api::FsScript`])
//!   compiled onto the client stub;
//! * [`cluster`] — a builder wiring a whole volume (providers +
//!   namespace + clients) onto the deterministic simulator substrate
//!   [`sorrento_sim`].
//!
//! ## Quick start
//!
//! ```
//! use sorrento::cluster::{ClusterBuilder, ScriptedWorkload};
//! use sorrento::client::ClientOp;
//! use sorrento_sim::Dur;
//!
//! let mut cluster = ClusterBuilder::new()
//!     .providers(4)
//!     .replication(2)
//!     .seed(7)
//!     .build();
//! let client = cluster.add_client(ScriptedWorkload::new(vec![
//!     ClientOp::Mkdir { path: "/data".into() },
//!     ClientOp::Create { path: "/data/hello".into() },
//!     ClientOp::write_bytes(0, b"hello sorrento".to_vec()),
//!     ClientOp::Close,
//!     ClientOp::Open { path: "/data/hello".into(), write: false },
//!     ClientOp::Read { offset: 0, len: 14 },
//!     ClientOp::Close,
//! ]));
//! cluster.run_for(Dur::secs(120));
//! let stats = cluster.client_stats(client).unwrap();
//! assert_eq!(stats.failed_ops, 0);
//! assert_eq!(stats.last_read.as_deref(), Some(&b"hello sorrento"[..]));
//! ```

pub mod api;
pub mod client;
pub mod codec;
pub mod cluster;
pub mod costs;
pub mod dedup;
pub mod layout;
pub mod location;
pub mod locator;
pub mod membership;
pub mod namespace;
pub mod nsmap;
pub mod placement;
pub mod proto;
pub mod provider;
pub mod ring;
pub mod store;
pub mod swim;
pub mod transport;
pub mod types;

pub use proto::dbg_kind as proto_dbg_kind;
pub use transport::Transport;
pub use types::{Error, FileId, FileOptions, Organization, PlacementPolicy, Result, SegId, Version};
