//! The soft-state location table (§3.4.1) kept by every provider in its
//! role as *home host*: SegID → the owners storing the segment and the
//! version each one holds.
//!
//! Entries are refreshed by the four event types of §3.4.1 (periodic
//! content refresh, node join, node departure, segment create/delete) and
//! garbage entries — left behind when a newly joined provider takes over
//! as home — are purged by age, since valid entries keep being refreshed
//! while garbage never is.

use std::collections::BTreeMap;

use sorrento_sim::{Dur, NodeId, SimTime};

use crate::types::{SegId, Version};

/// What the home host tracks per owner of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnerInfo {
    /// Latest version this owner reported holding.
    pub version: Version,
    /// When this owner last refreshed.
    pub refreshed: SimTime,
}

/// One location-table entry.
#[derive(Debug, Clone, Default)]
pub struct LocEntry {
    /// Owners and the versions they hold.
    pub owners: BTreeMap<NodeId, OwnerInfo>,
    /// Desired replication degree, as reported by owners.
    pub replication: u32,
    /// Stored size in bytes (largest reported; transfer budgeting).
    pub bytes: u64,
}

impl LocEntry {
    /// Highest version any owner holds.
    pub fn latest_version(&self) -> Option<Version> {
        self.owners.values().map(|o| o.version).max()
    }

    /// Owners holding the latest version.
    pub fn up_to_date_owners(&self) -> Vec<NodeId> {
        let Some(latest) = self.latest_version() else {
            return Vec::new();
        };
        self.owners
            .iter()
            .filter(|(_, o)| o.version == latest)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Owners holding an older version than the latest.
    pub fn stale_owners(&self) -> Vec<NodeId> {
        let Some(latest) = self.latest_version() else {
            return Vec::new();
        };
        self.owners
            .iter()
            .filter(|(_, o)| o.version < latest)
            .map(|(&id, _)| id)
            .collect()
    }
}

/// The location table of one provider (in its home-host role).
/// Ordered so iteration (repair scans, refresh batches) is deterministic.
#[derive(Debug, Default)]
pub struct LocationTable {
    entries: BTreeMap<SegId, LocEntry>,
}

impl LocationTable {
    /// Empty table.
    pub fn new() -> LocationTable {
        LocationTable::default()
    }

    /// Record that `owner` holds `seg` at `version` (segment-creation
    /// fast path and refresh path). Updates the entry's refresh time.
    pub fn upsert(
        &mut self,
        seg: SegId,
        owner: NodeId,
        version: Version,
        replication: u32,
        bytes: u64,
        now: SimTime,
    ) -> &LocEntry {
        let entry = self.entries.entry(seg).or_default();
        entry.replication = entry.replication.max(replication);
        entry.bytes = entry.bytes.max(bytes);
        entry.owners.insert(
            owner,
            OwnerInfo {
                version,
                refreshed: now,
            },
        );
        entry
    }

    /// Remove one owner of a segment (deletion fast path). Drops the
    /// entry when the last owner disappears. Returns whether the entry is
    /// now gone.
    pub fn remove_owner(&mut self, seg: SegId, owner: NodeId) -> bool {
        if let Some(entry) = self.entries.get_mut(&seg) {
            entry.owners.remove(&owner);
            if entry.owners.is_empty() {
                self.entries.remove(&seg);
                return true;
            }
            return false;
        }
        true
    }

    /// Node-departure event: remove `provider` from every entry, and
    /// report the segments it owned (the home host will want to check
    /// their replication degree).
    pub fn remove_provider(&mut self, provider: NodeId) -> Vec<SegId> {
        let mut affected = Vec::new();
        self.entries.retain(|&seg, entry| {
            if entry.owners.remove(&provider).is_some() {
                affected.push(seg);
            }
            !entry.owners.is_empty()
        });
        affected.sort();
        affected
    }

    /// Purge entries not refreshed within `max_age` ("garbage entries
    /// will never be refreshed, the latter can be identified based on
    /// their ages and eventually be purged"). Returns how many entries
    /// were dropped.
    pub fn purge_stale(&mut self, now: SimTime, max_age: Dur) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, entry| {
            entry
                .owners
                .values()
                .any(|o| now.since(o.refreshed) <= max_age)
        });
        before - self.entries.len()
    }

    /// Look up a segment's owners.
    pub fn lookup(&self, seg: SegId) -> Option<&LocEntry> {
        self.entries.get(&seg)
    }

    /// Number of tracked segments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate all entries (for repair scans).
    pub fn iter(&self) -> impl Iterator<Item = (SegId, &LocEntry)> {
        self.entries.iter().map(|(&s, e)| (s, e))
    }

    /// Drop everything (soft state lost on crash/restart).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Dur::secs(s)
    }
    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }
    fn seg(n: u64) -> SegId {
        SegId::derive(0, n, 0)
    }

    #[test]
    fn upsert_and_lookup() {
        let mut lt = LocationTable::new();
        lt.upsert(seg(1), node(1), Version(1), 2, 100, t(0));
        lt.upsert(seg(1), node(2), Version(1), 2, 100, t(0));
        let e = lt.lookup(seg(1)).unwrap();
        assert_eq!(e.owners.len(), 2);
        assert_eq!(e.replication, 2);
        assert_eq!(e.latest_version(), Some(Version(1)));
        assert_eq!(e.stale_owners(), Vec::<NodeId>::new());
    }

    #[test]
    fn version_discrepancy_detection() {
        let mut lt = LocationTable::new();
        lt.upsert(seg(1), node(1), Version(2), 2, 100, t(1));
        lt.upsert(seg(1), node(2), Version(1), 2, 100, t(1));
        let e = lt.lookup(seg(1)).unwrap();
        assert_eq!(e.latest_version(), Some(Version(2)));
        assert_eq!(e.up_to_date_owners(), vec![node(1)]);
        assert_eq!(e.stale_owners(), vec![node(2)]);
    }

    #[test]
    fn remove_owner_drops_empty_entries() {
        let mut lt = LocationTable::new();
        lt.upsert(seg(1), node(1), Version(1), 1, 100, t(0));
        lt.upsert(seg(1), node(2), Version(1), 1, 100, t(0));
        assert!(!lt.remove_owner(seg(1), node(1)));
        assert!(lt.remove_owner(seg(1), node(2)));
        assert!(lt.lookup(seg(1)).is_none());
        // Removing from a missing entry reports gone.
        assert!(lt.remove_owner(seg(9), node(1)));
    }

    #[test]
    fn remove_provider_reports_affected_segments() {
        let mut lt = LocationTable::new();
        lt.upsert(seg(1), node(1), Version(1), 2, 100, t(0));
        lt.upsert(seg(1), node(2), Version(1), 2, 100, t(0));
        lt.upsert(seg(2), node(1), Version(1), 2, 100, t(0));
        lt.upsert(seg(3), node(3), Version(1), 2, 100, t(0));
        let affected = lt.remove_provider(node(1));
        assert_eq!(affected, vec![seg(1), seg(2)]);
        assert!(lt.lookup(seg(2)).is_none()); // sole owner removed
        assert!(lt.lookup(seg(1)).is_some());
        assert_eq!(lt.len(), 2);
    }

    #[test]
    fn purge_drops_only_unrefreshed() {
        let mut lt = LocationTable::new();
        lt.upsert(seg(1), node(1), Version(1), 1, 100, t(0));
        lt.upsert(seg(2), node(2), Version(1), 1, 100, t(100));
        let dropped = lt.purge_stale(t(200), Dur::secs(150));
        assert_eq!(dropped, 1);
        assert!(lt.lookup(seg(1)).is_none());
        assert!(lt.lookup(seg(2)).is_some());
    }

    #[test]
    fn refresh_keeps_entries_alive() {
        let mut lt = LocationTable::new();
        lt.upsert(seg(1), node(1), Version(1), 1, 100, t(0));
        lt.upsert(seg(1), node(1), Version(1), 1, 100, t(100));
        assert_eq!(lt.purge_stale(t(150), Dur::secs(60)), 0);
    }

    #[test]
    fn clear_wipes_soft_state() {
        let mut lt = LocationTable::new();
        lt.upsert(seg(1), node(1), Version(1), 1, 100, t(0));
        lt.clear();
        assert!(lt.is_empty());
    }
}
