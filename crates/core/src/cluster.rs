//! Cluster assembly: wires a Sorrento volume — storage providers, a
//! namespace server, and client processes — onto the deterministic
//! simulator, mirroring the paper's `Sorrento-(n, r)` deployments.

use sorrento_sim::{Dur, Metrics, NodeConfig, NodeId, SimTime, Simulation};

use crate::client::{ClientOp, ClientStats, OpResult, SorrentoClient, Workload};
use crate::costs::CostModel;
use crate::locator::LocationScheme;
use crate::namespace::NamespaceServer;
use crate::nsmap::NsShardMap;
use crate::proto::Msg;
use crate::provider::StorageProvider;
use crate::swim::MembershipMode;

/// Builder for a Sorrento deployment.
pub struct ClusterBuilder {
    providers: usize,
    replication: u32,
    seed: u64,
    costs: CostModel,
    node_config: NodeConfig,
    capacity: u64,
    keep_versions: usize,
    warmup: Dur,
    racks: Option<usize>,
    ns_shards: u32,
    ns_standby: bool,
    ns_checkpoint_every: Option<u64>,
    membership: MembershipMode,
    location: LocationScheme,
    loss: Option<(u32, u64)>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            providers: 8,
            replication: 1,
            seed: 1,
            costs: CostModel::default(),
            node_config: NodeConfig::default(),
            capacity: 72 * 1_000_000_000,
            keep_versions: 2,
            warmup: Dur::secs(5),
            racks: None,
            ns_shards: 1,
            ns_standby: false,
            ns_checkpoint_every: None,
            membership: MembershipMode::Heartbeat,
            location: LocationScheme::Ring,
            loss: None,
        }
    }
}

impl ClusterBuilder {
    /// Start from defaults: `Sorrento-(8, 1)` on Fast Ethernet.
    pub fn new() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Number of storage providers (the `n` of `Sorrento-(n, r)`).
    pub fn providers(mut self, n: usize) -> Self {
        self.providers = n;
        self
    }

    /// Default replication degree (the `r` of `Sorrento-(n, r)`). Applied
    /// by [`Cluster::add_client`] to files created with default options.
    pub fn replication(mut self, r: u32) -> Self {
        self.replication = r.max(1);
        self
    }

    /// RNG seed: every run with the same seed is identical.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Per-provider disk capacity in bytes.
    pub fn capacity(mut self, bytes: u64) -> Self {
        self.capacity = bytes;
        self
    }

    /// Committed versions retained per segment.
    pub fn keep_versions(mut self, k: usize) -> Self {
        self.keep_versions = k;
        self
    }

    /// Hardware description for all nodes.
    pub fn node_config(mut self, cfg: NodeConfig) -> Self {
        self.node_config = cfg;
        self
    }

    /// Virtual time to run before clients may start (heartbeat discovery).
    pub fn warmup(mut self, d: Dur) -> Self {
        self.warmup = d;
        self
    }

    /// Spread providers round-robin over `n` racks; replica repair then
    /// prefers sites on racks without a copy. Default: every provider is
    /// its own rack (degenerates to distinct-provider spreading).
    pub fn racks(mut self, n: usize) -> Self {
        self.racks = Some(n.max(1));
        self
    }

    /// Shard the namespace over `n` primaries (default 1: the classic
    /// single-server metadata plane, byte-identical to older builds).
    pub fn ns_shards(mut self, n: u32) -> Self {
        self.ns_shards = n.max(1);
        self
    }

    /// Deploy a WAL-shipped hot standby behind every namespace shard.
    pub fn ns_standby(mut self, yes: bool) -> Self {
        self.ns_standby = yes;
        self
    }

    /// Checkpoint the namespace kvdb every `n` applied batches (bounds
    /// the WAL tail a standby must replay at failover).
    pub fn ns_checkpoint_every(mut self, n: u64) -> Self {
        self.ns_checkpoint_every = Some(n);
        self
    }

    /// Membership mechanism: multicast heartbeats (default) or SWIM
    /// gossip. Gossip deployments seed every provider and client with
    /// the full provider list.
    pub fn membership(mut self, mode: MembershipMode) -> Self {
        self.membership = mode;
        self
    }

    /// SegID → home-host scheme (default: the paper's hash ring).
    pub fn location(mut self, scheme: LocationScheme) -> Self {
        self.location = scheme;
        self
    }

    /// Drop `permille`/1000 of wire messages at random (seeded
    /// independently of the protocol RNGs). Default: lossless.
    pub fn loss(mut self, permille: u32, seed: u64) -> Self {
        self.loss = Some((permille, seed));
        self
    }

    /// Build the cluster and run the warmup period.
    pub fn build(self) -> Cluster {
        let mut sim = Simulation::new(self.seed);
        if let Some((permille, seed)) = self.loss {
            sim.set_loss(permille, seed);
        }
        let ns_cfg = self.node_config; // namespace gets its own machine
        let nshards = self.ns_shards.max(1);
        let sharded = nshards > 1 || self.ns_standby;
        let (ns, ns_nodes, ns_standbys, ns_map) = if !sharded {
            let ns = sim.add_node(NamespaceServer::new(self.costs), ns_cfg);
            (ns, vec![ns], Vec::new(), None)
        } else {
            // Each shard primary (and standby) gets its own machine, in a
            // range that cannot collide with provider machines.
            let mut primaries = Vec::with_capacity(nshards as usize);
            for k in 0..nshards {
                let cfg = ns_cfg.on_machine(2_000_000 + k);
                primaries.push(
                    sim.add_node(NamespaceServer::new_sharded(self.costs, k, nshards), cfg),
                );
            }
            let mut standbys = Vec::new();
            if self.ns_standby {
                for k in 0..nshards {
                    let cfg = ns_cfg.on_machine(3_000_000 + k);
                    standbys.push(
                        sim.add_node(NamespaceServer::new_standby(self.costs, k, nshards), cfg),
                    );
                }
            }
            let mut map = NsShardMap::new(primaries.clone());
            for (k, &s) in standbys.iter().enumerate() {
                map.set_standby(k, s);
            }
            for (k, &p) in primaries.iter().enumerate() {
                let srv = sim.node_mut::<NamespaceServer>(p).expect("ns shard");
                srv.set_shard_map(map.clone());
                if let Some(&s) = standbys.get(k) {
                    srv.set_standby(s);
                }
                if let Some(n) = self.ns_checkpoint_every {
                    srv.set_checkpoint_every_batches(Some(n));
                }
            }
            for &s in &standbys {
                let srv = sim.node_mut::<NamespaceServer>(s).expect("ns standby");
                srv.set_shard_map(map.clone());
                if let Some(n) = self.ns_checkpoint_every {
                    srv.set_checkpoint_every_batches(Some(n));
                }
            }
            (primaries[0], primaries, standbys, Some(map))
        };
        let mut providers = Vec::with_capacity(self.providers);
        for i in 0..self.providers {
            let cfg = self.node_config.with_capacity(self.capacity).on_machine(i as u32);
            let rack = match self.racks {
                Some(n) => (i % n) as u32,
                None => i as u32, // one rack per provider
            };
            providers.push(sim.add_node(
                StorageProvider::new(self.costs, self.keep_versions)
                    .with_rack(rack)
                    .with_location(self.location),
                cfg,
            ));
        }
        if self.membership == MembershipMode::Swim {
            // Every provider bootstraps from the full provider list; the
            // start events queued above have not run yet, so this lands
            // before any handle_start.
            for &p in &providers {
                let prov = sim.node_mut::<StorageProvider>(p).expect("provider");
                prov.set_membership(MembershipMode::Swim, providers.clone());
            }
        }
        let mut cluster = Cluster {
            sim,
            ns,
            ns_nodes,
            ns_standbys,
            ns_map,
            providers,
            clients: Vec::new(),
            costs: self.costs,
            replication: self.replication,
            node_config: self.node_config,
            membership: self.membership,
            location: self.location,
        };
        cluster.run_for(self.warmup);
        cluster
    }
}

/// A running Sorrento deployment.
pub struct Cluster {
    /// The underlying simulation (exposed for advanced harness control).
    pub sim: Simulation<Msg>,
    ns: NodeId,
    ns_nodes: Vec<NodeId>,
    ns_standbys: Vec<NodeId>,
    ns_map: Option<NsShardMap>,
    providers: Vec<NodeId>,
    clients: Vec<NodeId>,
    costs: CostModel,
    replication: u32,
    node_config: NodeConfig,
    membership: MembershipMode,
    location: LocationScheme,
}

impl Cluster {
    /// The namespace server's node id (shard 0's primary when sharded).
    pub fn namespace(&self) -> NodeId {
        self.ns
    }

    /// Every namespace shard primary, in shard order.
    pub fn ns_shard_nodes(&self) -> &[NodeId] {
        &self.ns_nodes
    }

    /// Every namespace hot standby, in shard order (empty unless the
    /// cluster was built with [`ClusterBuilder::ns_standby`]).
    pub fn ns_standby_nodes(&self) -> &[NodeId] {
        &self.ns_standbys
    }

    /// The namespace shard map installed at build time, if sharded.
    pub fn ns_shard_map(&self) -> Option<&NsShardMap> {
        self.ns_map.as_ref()
    }

    /// The storage providers' node ids.
    pub fn providers(&self) -> &[NodeId] {
        &self.providers
    }

    /// The client node ids added so far.
    pub fn clients(&self) -> &[NodeId] {
        &self.clients
    }

    /// The default replication degree configured at build time.
    pub fn default_replication(&self) -> u32 {
        self.replication
    }

    /// The cluster's cost model.
    pub fn costs(&self) -> CostModel {
        self.costs
    }

    /// Add a client on its own machine.
    pub fn add_client<W: Workload>(&mut self, workload: W) -> NodeId {
        let cfg = self.node_config;
        self.add_client_with(workload, cfg)
    }

    /// Add a client co-located with provider `i` (same machine: loopback
    /// traffic, as in the paper's PSM deployment).
    pub fn add_client_on_provider<W: Workload>(&mut self, workload: W, i: usize) -> NodeId {
        let cfg = self.node_config.on_machine(i as u32);
        self.add_client_with(workload, cfg)
    }

    fn add_client_with<W: Workload>(&mut self, workload: W, cfg: NodeConfig) -> NodeId {
        let mut client = SorrentoClient::new(self.ns, self.costs, Box::new(workload));
        client.default_options.replication = self.replication;
        self.configure_client(&mut client);
        let id = self.sim.add_node(client, cfg);
        self.clients.push(id);
        id
    }

    /// Apply the cluster-wide routing knobs (shard map, membership
    /// mechanism, location scheme) to a client before it starts.
    fn configure_client(&self, client: &mut SorrentoClient) {
        if let Some(map) = &self.ns_map {
            client.set_ns_shards(map.clone());
        }
        if self.membership == MembershipMode::Swim {
            client.set_membership(MembershipMode::Swim, self.providers.clone());
        }
        client.set_location(self.location);
    }

    /// Add a client co-located with provider `i`, with explicit default
    /// file options.
    pub fn add_client_on_provider_with_options<W: Workload>(
        &mut self,
        workload: W,
        i: usize,
        options: crate::types::FileOptions,
    ) -> NodeId {
        let cfg = self.node_config.on_machine(i as u32);
        let mut client = SorrentoClient::new(self.ns, self.costs, Box::new(workload));
        client.default_options = options;
        self.configure_client(&mut client);
        let id = self.sim.add_node(client, cfg);
        self.clients.push(id);
        id
    }

    /// Add a client with explicit default file options.
    pub fn add_client_with_options<W: Workload>(
        &mut self,
        workload: W,
        options: crate::types::FileOptions,
    ) -> NodeId {
        let cfg = self.node_config;
        let mut client = SorrentoClient::new(self.ns, self.costs, Box::new(workload));
        client.default_options = options;
        self.configure_client(&mut client);
        let id = self.sim.add_node(client, cfg);
        self.clients.push(id);
        id
    }

    /// Add a storage provider that comes online at virtual time `at`
    /// (incremental expansion, §2.2).
    pub fn add_provider_at(&mut self, at: SimTime, capacity: u64) -> NodeId {
        let machine = 1000 + self.providers.len() as u32;
        let cfg = self.node_config.with_capacity(capacity).on_machine(machine);
        let mut prov = StorageProvider::new(self.costs, 2).with_location(self.location);
        if self.membership == MembershipMode::Swim {
            // The newcomer bootstraps from the existing providers; they
            // learn about it from its own probes' piggybacked self-update.
            prov = prov.with_membership(MembershipMode::Swim, self.providers.iter().copied());
        }
        let id = self.sim.add_node_offline(prov, cfg);
        self.sim.start_at(at, id);
        self.providers.push(id);
        id
    }

    /// Crash a provider at virtual time `at` (its disk contents survive a
    /// later [`Cluster::restart_provider_at`]).
    pub fn crash_provider_at(&mut self, at: SimTime, id: NodeId) {
        self.sim.crash_at(at, id);
    }

    /// Restart a crashed provider at virtual time `at`.
    pub fn restart_provider_at(&mut self, at: SimTime, id: NodeId) {
        self.sim.restart_at(at, id);
    }

    /// Run for `d` of virtual time.
    pub fn run_for(&mut self, d: Dur) {
        self.sim.run_for(d);
    }

    /// Run until virtual time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Statistics of a client added earlier.
    pub fn client_stats(&self, id: NodeId) -> Option<&ClientStats> {
        self.sim
            .node_ref::<SorrentoClient>(id)
            .map(|c| &c.stats)
    }

    /// Inspect a provider's state.
    pub fn provider_ref(&self, id: NodeId) -> Option<&StorageProvider> {
        self.sim.node_ref::<StorageProvider>(id)
    }

    /// Inspect the namespace server.
    pub fn namespace_ref(&self) -> Option<&NamespaceServer> {
        self.sim.node_ref::<NamespaceServer>(self.ns)
    }

    /// Inspect shard `k`'s primary namespace server.
    pub fn namespace_ref_of(&self, k: usize) -> Option<&NamespaceServer> {
        self.sim.node_ref::<NamespaceServer>(*self.ns_nodes.get(k)?)
    }

    /// Inspect shard `k`'s hot standby.
    pub fn ns_standby_ref_of(&self, k: usize) -> Option<&NamespaceServer> {
        self.sim.node_ref::<NamespaceServer>(*self.ns_standbys.get(k)?)
    }

    /// Bytes stored on each provider's disk (storage-balance reporting,
    /// Figure 14).
    pub fn provider_disk_usage(&self) -> Vec<(NodeId, u64, u64)> {
        self.providers
            .iter()
            .map(|&p| (p, self.sim.disk_used(p), self.sim.disk_capacity(p)))
            .collect()
    }

    /// Run-wide metrics.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Human-readable role of a node in this cluster (`ns`, `provider#i`,
    /// `client#i`), for trace rendering.
    pub fn role_of(&self, id: NodeId) -> String {
        if self.ns_nodes.len() > 1 || !self.ns_standbys.is_empty() {
            if let Some(k) = self.ns_nodes.iter().position(|&n| n == id) {
                return format!("ns#{k}");
            }
            if let Some(k) = self.ns_standbys.iter().position(|&n| n == id) {
                return format!("ns#{k}-sb");
            }
        }
        if id == self.ns {
            return "ns".to_string();
        }
        if let Some(i) = self.providers.iter().position(|&p| p == id) {
            return format!("provider#{i}");
        }
        if let Some(i) = self.clients.iter().position(|&c| c == id) {
            return format!("client#{i}");
        }
        format!("{id}")
    }

    /// Render the causal chain of one operation: every telemetry event
    /// carrying `span`, across all nodes, in virtual-time order. This is
    /// the primary debugging tool for a failed op — feed it the span from
    /// [`ClientStats::failed_spans`] (or `last_span`) and read the chain
    /// from client request through namespace version check to per-owner
    /// 2PC prepare/commit.
    pub fn trace_op(&self, span: sorrento_sim::SpanId) -> String {
        let chain = self.sim.events_for_span(span);
        if chain.is_empty() {
            return format!("span {span:#x}: no recorded events\n");
        }
        let mut out = String::new();
        out.push_str(&format!("=== trace for span {span:#x} ===\n"));
        for (node, rec) in chain {
            out.push_str(&format!(
                "{:>12} ns  {:<11} {}\n",
                rec.at.nanos(),
                self.role_of(node),
                rec.ev
            ));
        }
        out
    }

    /// Ground-truth segment ownership across live providers: segment →
    /// `(provider, latest version)` list. Harness/test observability; the
    /// protocol itself only ever uses the soft-state location tables.
    pub fn segment_ownership(
        &self,
    ) -> std::collections::HashMap<crate::types::SegId, Vec<(NodeId, crate::types::Version)>> {
        let mut map: std::collections::HashMap<_, Vec<(NodeId, crate::types::Version)>> =
            std::collections::HashMap::new();
        for &p in &self.providers {
            if !self.sim.is_alive(p) {
                continue;
            }
            if let Some(prov) = self.sim.node_ref::<StorageProvider>(p) {
                for (seg, version) in prov.store.list_segments() {
                    map.entry(seg).or_default().push((p, version));
                }
            }
        }
        map
    }
}

/// A workload that replays a fixed list of operations, then stops.
pub struct ScriptedWorkload {
    ops: std::vec::IntoIter<ClientOp>,
    /// Stop on the first failed op when set (default: keep going).
    pub stop_on_error: bool,
    failed: bool,
}

impl ScriptedWorkload {
    /// Run these ops in order.
    pub fn new(ops: Vec<ClientOp>) -> ScriptedWorkload {
        ScriptedWorkload {
            ops: ops.into_iter(),
            stop_on_error: false,
            failed: false,
        }
    }
}

impl Workload for ScriptedWorkload {
    fn next_op(&mut self, _now: SimTime, _rng: &mut rand::rngs::SmallRng) -> Option<ClientOp> {
        if self.failed && self.stop_on_error {
            return None;
        }
        self.ops.next()
    }

    fn on_result(&mut self, _op: &ClientOp, result: &OpResult, _now: SimTime) {
        if !result.is_ok() {
            self.failed = true;
        }
    }
}

/// A workload built from a closure (ad-hoc dynamic workloads).
pub struct FnWorkload<F>(pub F);

impl<F> Workload for FnWorkload<F>
where
    F: FnMut(SimTime, &mut rand::rngs::SmallRng) -> Option<ClientOp> + 'static,
{
    fn next_op(&mut self, now: SimTime, rng: &mut rand::rngs::SmallRng) -> Option<ClientOp> {
        (self.0)(now, rng)
    }
}
