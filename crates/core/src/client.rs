//! The Sorrento client stub (§2.3, §3.5, Figure 6/7): executes file
//! operations against the cluster — pathname resolution through the
//! namespace server, index-segment reads through home hosts (with
//! redirect), parallel data-segment I/O, shadow-copy writes, two-phase
//! commit, eager or lazy replica propagation, and failover through
//! timeouts and the multicast backup query.
//!
//! A client node is driven by a [`Workload`]: whenever the previous
//! operation completes, the workload supplies the next [`ClientOp`] and
//! observes its [`OpResult`].

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::Rng;
use sorrento_sim::{Ctx, Dur, Node, NodeId, SimTime, SpanId, TelemetryEvent};

use crate::transport::Transport;

use crate::costs::CostModel;
use crate::layout::{Extent, IndexSegment, WritePlan};
use crate::membership::MembershipView;
use crate::placement::{candidates_from_view, select_provider};
use crate::proto::{decode_index, encode_index, FileEntry, Msg, ReadReply, ReqId, Tick};
use crate::locator::{LocationScheme, Locator};
use crate::swim::{MembershipMode, SwimState};
use crate::store::{SegMeta, ShadowId, WritePayload};
use crate::types::{Error, FileId, FileOptions, PlacementPolicy, SegId, Version};

/// Maximum whole-op retries after timeouts/failovers before the op fails.
const MAX_ATTEMPTS: u32 = 5;
/// Maximum commit retries for [`ClientOp::AtomicAppend`].
const MAX_APPEND_RETRIES: u32 = 16;
/// `Pending::ShadowWrite::extent` sentinel for a parity-shard write in
/// the commit flow (`usize::MAX` already marks the index write).
const PARITY_EXTENT: usize = usize::MAX - 1;

/// One file operation issued by a workload.
#[derive(Debug, Clone)]
pub enum ClientOp {
    /// Create a directory.
    Mkdir {
        /// Absolute pathname of the new directory.
        path: String,
    },
    /// Rename a file (directories are refused by the server). Routed to
    /// the source's namespace shard; a cross-shard destination is moved
    /// with a two-shard handshake on the server side.
    Rename {
        /// Absolute source pathname.
        src: String,
        /// Absolute destination pathname.
        dst: String,
    },
    /// Create a file with default options and open it for writing.
    Create {
        /// Absolute pathname of the new file.
        path: String,
    },
    /// Create a file with explicit options and open it for writing.
    CreateWith {
        /// Absolute pathname of the new file.
        path: String,
        /// Per-file tunables (replication, organization, placement, ...).
        options: FileOptions,
    },
    /// Open an existing file.
    Open {
        /// Absolute pathname.
        path: String,
        /// Open writable (enables Write/Append/commit).
        write: bool,
    },
    /// Read from the open file.
    Read {
        /// Byte offset within the file.
        offset: u64,
        /// Byte count (clamped to file size).
        len: u64,
    },
    /// Write to the open file.
    Write {
        /// Byte offset within the file.
        offset: u64,
        /// The bytes (real or modeled).
        payload: WritePayload,
    },
    /// Append to the open file.
    Append {
        /// The bytes (real or modeled).
        payload: WritePayload,
    },
    /// Atomic append (§3.5 Figure 4): append + commit, retrying the whole
    /// cycle on version conflicts.
    AtomicAppend {
        /// The record to append (real or modeled).
        payload: WritePayload,
    },
    /// Commit pending changes and keep the file open.
    Sync,
    /// Commit pending changes (if any) and close the file.
    Close,
    /// Remove a file, eagerly deleting all segment replicas.
    Unlink {
        /// Absolute pathname.
        path: String,
    },
    /// Look up a path.
    Stat {
        /// Absolute pathname.
        path: String,
    },
    /// List a directory.
    List {
        /// Absolute pathname of the directory.
        path: String,
    },
    /// Idle for a duration (think time / emulated external latency).
    Think {
        /// How long to stay idle.
        dur: Dur,
    },
}

impl ClientOp {
    /// Write real bytes at an offset.
    pub fn write_bytes(offset: u64, data: impl Into<bytes::Bytes>) -> ClientOp {
        ClientOp::Write {
            offset,
            payload: WritePayload::Real(data.into()),
        }
    }

    /// Write a modeled (synthetic) length at an offset.
    pub fn write_synth(offset: u64, len: u64) -> ClientOp {
        ClientOp::Write {
            offset,
            payload: WritePayload::Synthetic { len },
        }
    }

    /// Append a modeled (synthetic) length.
    pub fn append_synth(len: u64) -> ClientOp {
        ClientOp::Append {
            payload: WritePayload::Synthetic { len },
        }
    }

    /// Short name for stats.
    pub fn kind(&self) -> &'static str {
        match self {
            ClientOp::Mkdir { .. } => "mkdir",
            ClientOp::Rename { .. } => "rename",
            ClientOp::Create { .. } | ClientOp::CreateWith { .. } => "create",
            ClientOp::Open { .. } => "open",
            ClientOp::Read { .. } => "read",
            ClientOp::Write { .. } => "write",
            ClientOp::Append { .. } => "append",
            ClientOp::AtomicAppend { .. } => "atomic_append",
            ClientOp::Sync => "sync",
            ClientOp::Close => "close",
            ClientOp::Unlink { .. } => "unlink",
            ClientOp::Stat { .. } => "stat",
            ClientOp::List { .. } => "list",
            ClientOp::Think { .. } => "think",
        }
    }
}

/// Outcome of one completed operation.
#[derive(Debug, Clone)]
pub struct OpResult {
    /// `None` on success, the error otherwise.
    pub error: Option<Error>,
    /// Bytes read or written.
    pub bytes: u64,
    /// Wall-clock (virtual) latency of the op.
    pub latency: Dur,
    /// Read data, when the file carries real bytes. A cheap [`bytes::Bytes`]
    /// view — cloning the result does not copy the payload.
    pub data: Option<bytes::Bytes>,
    /// The op's trace span (0 = none): the key for `trace <span>` /
    /// `Cluster::trace_op` lookups across node event logs.
    pub span: SpanId,
}

impl OpResult {
    /// Whether the op succeeded.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Supplies a client with operations and observes their results.
pub trait Workload: std::any::Any {
    /// The next operation, or `None` when the workload is exhausted.
    fn next_op(&mut self, now: SimTime, rng: &mut rand::rngs::SmallRng) -> Option<ClientOp>;
    /// Observe a completed operation.
    fn on_result(&mut self, op: &ClientOp, result: &OpResult, now: SimTime) {
        let _ = (op, result, now);
    }
}

impl Workload for Box<dyn Workload> {
    fn next_op(&mut self, now: SimTime, rng: &mut rand::rngs::SmallRng) -> Option<ClientOp> {
        (**self).next_op(now, rng)
    }
    fn on_result(&mut self, op: &ClientOp, result: &OpResult, now: SimTime) {
        (**self).on_result(op, result, now)
    }
}

/// Aggregate statistics maintained by every client.
#[derive(Debug, Default, Clone)]
pub struct ClientStats {
    /// Successfully completed operations (excluding `Think`).
    pub completed_ops: u64,
    /// Failed operations.
    pub failed_ops: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Data returned by the most recent successful read (real mode).
    pub last_read: Option<bytes::Bytes>,
    /// Most recent error.
    pub last_error: Option<Error>,
    /// `(op kind, latency)` log of completed ops.
    pub latencies: Vec<(&'static str, Dur)>,
    /// When the first operation was issued (excludes provider-discovery
    /// wait before heartbeats arrive).
    pub started_at: Option<SimTime>,
    /// When the workload ran out of operations.
    pub finished_at: Option<SimTime>,
    /// Version conflicts observed (atomic-append retries etc.).
    pub conflicts: u64,
    /// `(span, op kind)` of every failed operation, for causal-chain
    /// reconstruction via `Cluster::trace_op`.
    pub failed_spans: Vec<(SpanId, &'static str)>,
    /// Span of the most recently started operation.
    pub last_span: SpanId,
}

/// A shadow created during the current write session.
#[derive(Debug, Clone, Copy)]
struct ShadowRef {
    provider: NodeId,
    shadow: ShadowId,
    target: Version,
}

/// Client-side state of the open file.
#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    entry: FileEntry,
    index: IndexSegment,
    writable: bool,
    dirty: bool,
    /// Known owners per data segment (from redirects and LocQuery).
    owners: HashMap<SegId, Vec<(NodeId, Version)>>,
    /// Shadows opened this session, by segment.
    shadows: HashMap<SegId, ShadowRef>,
    /// Provider serving the index segment (owner we read it from or
    /// placed it on).
    index_owner: Option<NodeId>,
    /// Target file version of the in-progress commit (chosen once per
    /// attempt, entropy-disambiguated).
    commit_target: Option<Version>,
    /// Inline content for attached real files.
    attached_buf: Vec<u8>,
    /// Whether file payloads are synthetic.
    synthetic: bool,
    /// Whole-file contents accumulated across this session's real
    /// writes of an erasure-coded file: commit encodes parity from it.
    /// EC files follow a whole-file-write discipline — regions not
    /// written this session are treated as zeros (see DESIGN.md).
    ec_buf: Vec<u8>,
    /// Parity shard bytes computed by the in-progress commit, in
    /// `index.parity` order (empty for synthetic payloads).
    parity_bufs: Vec<bytes::Bytes>,
}

/// What an in-flight request is for.
#[derive(Debug, Clone)]
enum Pending {
    Ns,
    IndexRead { owner_known: bool },
    LocQuery { seg: SegId },
    DataRead { extent: usize },
    ShadowCreate { seg: SegId, provider: NodeId, target: Version },
    ShadowWrite { extent: usize },
    DirectWrite,
    Prepare,
    Commit2,
    CommitBegin,
    CommitEnd,
    Backup { seg: SegId },
    Delete,
    EagerSync,
    /// Degraded EC read: locating shard `shard` (data-then-parity index).
    EcLoc { shard: usize },
    /// Degraded EC read: fetching shard `shard` in full.
    EcShard { shard: usize },
}

/// Per-shard state of an in-flight degraded erasure-coded read
/// (data shards first, then parity, matching codec order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardState {
    /// Locate/fetch still in flight.
    Pending,
    /// Full shard bytes in hand.
    Fetched,
    /// No live owner: must be reconstructed (data shards only).
    Lost,
    /// Unavailable parity shard (nothing to reconstruct into the read).
    Failed,
}

/// An in-flight degraded read: the client is fetching whole shards of
/// an erasure-coded file to reconstruct extents whose data shards have
/// no live owner (§3.4.2 failover, EC variant). Lives beside the
/// regular `Phase::Reading` state — healthy extents keep streaming
/// while the reconstruction gathers its k survivors.
#[derive(Debug)]
struct EcRead {
    /// Per-shard progress, `k` data shards then `m` parity shards.
    states: Vec<ShardState>,
    /// Fetched shard bytes (pre-padding), same order as `states`.
    bufs: Vec<Option<Vec<u8>>>,
    /// Shards fetched so far; `k` of them complete the reconstruction.
    fetched: usize,
}

/// Current stage of the active operation.
#[derive(Debug)]
enum Phase {
    /// Waiting on a single namespace RPC (mkdir/stat/list/create/lookup).
    NsSimple,
    /// Open flow: read the index segment (possibly via redirect/backup).
    OpenIndex,
    /// Read flow: resolving owners then fetching extents.
    Reading {
        extents: Vec<Extent>,
        /// Buffer for real data (request-relative).
        buf: Option<Vec<u8>>,
        /// Zero-copy completion: when one reply covers the whole request,
        /// its payload is handed through without an assembly copy.
        direct: Option<bytes::Bytes>,
        req_offset: u64,
        /// Extents whose owner is still being resolved (indices).
        unresolved: Vec<usize>,
        /// Outstanding data fetches.
        outstanding: usize,
        bytes: u64,
    },
    /// Write flow: ensure shadows exist, then issue the writes.
    Writing {
        extents: Vec<Extent>,
        /// Extent indices still needing owner resolution or shadows.
        todo: Vec<usize>,
        outstanding: usize,
        detach_bytes: u64,
        write_offset: u64,
        write_len: u64,
        /// Per-extent progress of pipelined chunked shadow writes
        /// (only populated when [`SorrentoClient::write_chunk`] is set).
        chunked: HashMap<usize, ChunkWrite>,
    },
    /// Commit flow.
    Committing(CommitStage),
    /// Unlink flow.
    Unlinking {
        entry: Option<FileEntry>,
        index: Option<IndexSegment>,
        /// Segments whose owners still need resolving.
        to_locate: Vec<SegId>,
        /// (seg, owner) pairs to delete.
        deletes: Vec<(SegId, NodeId)>,
        outstanding: usize,
    },
    /// Think timer running.
    Thinking,
}

/// Progress of one extent's pipelined chunked shadow write: the full
/// extent payload (a shared view, so chunk slices are O(1)) and the
/// offset of the first byte not yet sent. In-flight chunks are counted
/// by `Phase::Writing::outstanding` like any other shadow write.
#[derive(Debug)]
struct ChunkWrite {
    data: bytes::Bytes,
    next: u64,
}

/// Sub-stages of the commit flow (Figure 6 steps 6–12).
#[derive(Debug)]
enum CommitStage {
    /// Erasure-coded files only: encoding and shipping the m parity
    /// shards (shadow create + full-content write each) before the
    /// index shadow. Counts parity shards not yet written.
    Parity { outstanding: usize },
    /// Creating the shadow of the index segment (step 6).
    IndexShadow,
    /// Writing the new index contents into its shadow.
    IndexWrite,
    /// Namespace approval (step 7).
    Begin,
    /// 2PC prepare (step 8).
    Prepare { outstanding: usize, failed: bool },
    /// 2PC commit (step 8).
    Commit { outstanding: usize },
    /// Namespace completion (step 9).
    End,
    /// Eager propagation: waiting for replica syncs (§3.6 synchronous
    /// commitment).
    Eager { outstanding: usize },
}

/// The client node.
pub struct SorrentoClient {
    costs: CostModel,
    ns: NodeId,
    /// Options applied to files created with [`ClientOp::Create`].
    pub default_options: FileOptions,
    workload: Box<dyn Workload>,
    /// Aggregate statistics.
    pub stats: ClientStats,
    view: MembershipView,
    ring: Locator,
    file: Option<OpenFile>,
    op: Option<(ClientOp, SimTime, Phase, u32 /* attempts */)>,
    pending: HashMap<ReqId, (NodeId, Pending)>,
    /// Backup-query responders for the request id that triggered it.
    backup_hits: HashMap<ReqId, Vec<(NodeId, Version)>>,
    next_req: ReqId,
    seg_counter: u64,
    my_machine: u32,
    /// Remaining atomic-append retries for the current op.
    append_retries: u32,
    /// Pending append payload being retried.
    append_payload: Option<WritePayload>,
    /// Total bytes the current op moves (scatter-wide timeout budget:
    /// one piece of a large scatter legitimately queues behind the rest
    /// of the op's own traffic).
    scatter_bytes: u64,
    /// Trace span of the op in flight (0 between ops). Retries of the
    /// same op keep its span, so a causal chain shows every attempt.
    cur_span: SpanId,
    /// Per-client span sequence (combined with the node id for
    /// cluster-wide uniqueness).
    span_seq: u64,
    /// When set, real shadow-write payloads larger than this are split
    /// into chunks of this size and pipelined to the segment owner
    /// instead of travelling as one frame per extent. `None` (the
    /// default) keeps the one-message-per-extent behavior — seeded
    /// simulation runs stay byte-for-byte deterministic.
    pub write_chunk: Option<u64>,
    /// Bounded window of in-flight chunks per extent when `write_chunk`
    /// is set (clamped to at least 1). The window keeps the owner's
    /// pipe full without unbounded buffering on either side.
    pub write_window: usize,
    /// Extra same-request resends per RPC before the timeout path
    /// suspects the target. Resends reuse the original request id, so
    /// receivers that already executed the request replay their cached
    /// reply instead of executing twice, and each resend backs off
    /// exponentially with jitter from the seeded RNG. `0` (the default)
    /// keeps the classic one-shot-then-timeout behavior — seeded
    /// simulation runs never enable this.
    pub rpc_resends: u32,
    /// Whole-operation deadline. An op still unfinished when it fires
    /// completes with [`Error::DeadlineExceeded`] instead of retrying
    /// further. `None` (the default) means no deadline; the simulator
    /// never sets one.
    pub op_deadline: Option<Dur>,
    /// Retained request copies for same-id resends (`rpc_resends > 0`
    /// only): req → (message, resends left, current backoff). Clones
    /// are cheap — bulk payloads are shared `Bytes`.
    resends: HashMap<ReqId, (Msg, u32, Dur)>,
    /// Monotonic op generation; tags `Tick::OpDeadline` so a stale
    /// deadline timer from a finished op cannot kill its successor.
    op_gen: u64,
    /// In-flight degraded read of an erasure-coded file, if any.
    ec_read: Option<EcRead>,
    /// Namespace shard routing table. Empty (the default) means the
    /// classic single-server deployment: every namespace RPC goes to
    /// `ns`. When populated, requests route by the partition function in
    /// [`crate::nsmap`] and the table is refreshed periodically like the
    /// location tables.
    ns_shards: crate::nsmap::NsShardMap,
    /// Per-shard sticky failover flags: after an RPC to a shard's
    /// primary times out, route that shard's traffic to its standby
    /// (and back again on a standby timeout).
    ns_use_standby: Vec<bool>,
    /// How this client learns provider liveness: heartbeat multicast
    /// (default) or digest pulls from SWIM gossipers.
    membership_mode: MembershipMode,
    /// Providers to pull membership digests from in SWIM mode
    /// (round-robin via `members_peer`).
    swim_seeds: Vec<NodeId>,
    members_peer: usize,
    members_req: ReqId,
    /// Which SegID → home-host scheme the locator uses.
    location: LocationScheme,
}

impl SorrentoClient {
    /// A client of the volume whose namespace server is `ns`.
    pub fn new(ns: NodeId, costs: CostModel, workload: Box<dyn Workload>) -> SorrentoClient {
        SorrentoClient {
            costs,
            ns,
            default_options: FileOptions::default(),
            workload,
            stats: ClientStats::default(),
            view: MembershipView::new(),
            ring: Locator::default(),
            file: None,
            op: None,
            pending: HashMap::new(),
            backup_hits: HashMap::new(),
            next_req: 1,
            seg_counter: 0,
            my_machine: 0,
            append_retries: 0,
            append_payload: None,
            scatter_bytes: 0,
            cur_span: 0,
            span_seq: 0,
            write_chunk: None,
            write_window: 4,
            rpc_resends: 0,
            op_deadline: None,
            resends: HashMap::new(),
            op_gen: 0,
            ec_read: None,
            ns_shards: crate::nsmap::NsShardMap::default(),
            ns_use_standby: Vec::new(),
            membership_mode: MembershipMode::Heartbeat,
            swim_seeds: Vec::new(),
            members_peer: 0,
            members_req: 0,
            location: LocationScheme::Ring,
        }
    }

    /// Choose the membership mechanism before the client starts. In
    /// [`MembershipMode::Swim`] the client hears no heartbeat multicast;
    /// it learns liveness by pulling membership digests from `seeds`
    /// (the configured providers) in round-robin.
    pub fn set_membership(&mut self, mode: MembershipMode, seeds: Vec<NodeId>) {
        self.membership_mode = mode;
        self.swim_seeds = seeds;
    }

    /// Choose the SegID → home-host scheme before the client starts.
    pub fn set_location(&mut self, scheme: LocationScheme) {
        self.location = scheme;
    }

    fn rebuild_ring(&mut self) {
        self.ring = Locator::build(self.location, self.view.live());
    }

    /// Install the namespace shard routing table (and reset the sticky
    /// failover flags). An empty map restores classic single-server
    /// routing to the bootstrap `ns` node.
    pub fn set_ns_shards(&mut self, map: crate::nsmap::NsShardMap) {
        self.ns_use_standby = vec![false; map.len()];
        self.ns_shards = map;
    }

    /// The namespace server currently serving shard `k` (primary, or the
    /// standby after a sticky failover flip).
    fn ns_route(&self, k: usize) -> NodeId {
        let Some(row) = self.ns_shards.get(k) else {
            return self.ns;
        };
        if self.ns_use_standby.get(k).copied().unwrap_or(false) {
            row.standby.unwrap_or(row.primary)
        } else {
            row.primary
        }
    }

    /// The namespace server owning `path`'s entry.
    fn ns_for(&self, path: &str) -> NodeId {
        if self.ns_shards.is_empty() {
            return self.ns;
        }
        self.ns_route(self.ns_shards.shard_for(path) as usize)
    }

    /// The namespace server holding directory `path`'s children (where
    /// `ls` must go).
    fn ns_for_dir(&self, path: &str) -> NodeId {
        if self.ns_shards.is_empty() {
            return self.ns;
        }
        let n = self.ns_shards.len() as u32;
        self.ns_route(crate::nsmap::shard_of_dir(path, n) as usize)
    }

    /// Whether `id` is a namespace server (the bootstrap node or any
    /// shard primary/standby). Namespace nodes are never evicted from
    /// the provider membership view on timeouts.
    fn is_ns_node(&self, id: NodeId) -> bool {
        id == self.ns || self.ns_shards.contains(id)
    }

    /// A namespace RPC to `target` timed out: flip the owning shard's
    /// sticky standby flag so the retry routes to the other server.
    fn flip_ns_route(&mut self, target: NodeId) {
        for (k, row) in self.ns_shards.iter() {
            let k = k as usize;
            let using_standby = self.ns_use_standby.get(k).copied().unwrap_or(false);
            let current = if using_standby {
                row.standby.unwrap_or(row.primary)
            } else {
                row.primary
            };
            if current == target {
                if let Some(f) = self.ns_use_standby.get_mut(k) {
                    *f = !using_standby && row.standby.is_some();
                }
            }
        }
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    /// Start request ids at `base` (if larger than the current counter).
    ///
    /// Servers deduplicate replayed mutations by `(client id, request
    /// id)`, so two client sessions sharing one node id — e.g.
    /// sequential `sorrentoctl` runs, which all join as the configured
    /// `ctl_id` — must not reuse each other's request ids, or a new
    /// request could be answered from a previous session's reply cache.
    /// Real-runtime drivers seed this with a session-unique value;
    /// simulated clients each have their own node id and keep the
    /// default.
    pub fn req_base(&mut self, base: ReqId) {
        self.next_req = self.next_req.max(base);
    }

    /// Offset this client's trace-span sequence so spans stay unique
    /// across control sessions sharing one `ctl_id`. Spans are
    /// `(node+1) << 32 | seq`: sessions all starting `seq` at 0 would
    /// reuse each other's span ids, and `sorrentoctl trace` would merge
    /// two unrelated ops into one chain. Only the low 32 bits of `base`
    /// are used (the high half is the node tag). Simulated clients keep
    /// the default of 0 — their node ids already disambiguate.
    pub fn span_base(&mut self, base: u64) {
        self.span_seq = self.span_seq.max(base & 0xFFFF_FFFF);
    }

    /// Inspect the concrete workload driving this client (post-run
    /// analysis: e.g. reading a [`Workload`] implementation's recorded
    /// series). Only works when the workload was passed unboxed.
    pub fn workload_ref<W: Workload>(&self) -> Option<&W> {
        let w: &dyn Workload = &*self.workload;
        (w as &dyn std::any::Any).downcast_ref::<W>()
    }

    fn fresh_seg(&mut self, ctx: &mut impl Transport) -> SegId {
        self.seg_counter += 1;
        SegId::derive(ctx.id().index() as u32, self.seg_counter, ctx.rng().gen())
    }

    /// Issue an RPC with a timeout guard.
    fn rpc(&mut self, ctx: &mut impl Transport, to: NodeId, msg: Msg, pending: Pending) -> ReqId {
        let req = match &msg {
            Msg::NsLookup { req, .. }
            | Msg::NsCreate { req, .. }
            | Msg::NsMkdir { req, .. }
            | Msg::NsRename { req, .. }
            | Msg::NsRemove { req, .. }
            | Msg::NsList { req, .. }
            | Msg::NsCommitBegin { req, .. }
            | Msg::NsCommitEnd { req, .. }
            | Msg::LocQuery { req, .. }
            | Msg::ReadSeg { req, .. }
            | Msg::CreateShadow { req, .. }
            | Msg::WriteShadow { req, .. }
            | Msg::ReadShadow { req, .. }
            | Msg::Prepare { req, .. }
            | Msg::Commit { req, .. }
            | Msg::DirectWrite { req, .. }
            | Msg::DeleteSeg { req, .. }
            | Msg::SyncRequest { req, .. } => *req,
            _ => unreachable!("rpc() called with a non-request message"),
        };
        // Bulk transfers need proportionally longer timeouts: a 4 MB
        // write behind a dozen queued peers is not a failure. Budget a
        // conservative 1 MB/s floor for the expected transfer volume.
        let transfer = match &msg {
            Msg::WriteShadow { payload, .. } => payload.len().max(self.scatter_bytes),
            Msg::DirectWrite { payload, .. } => payload.len().max(self.scatter_bytes),
            Msg::ReadSeg { len, .. } | Msg::ReadShadow { len, .. } => {
                (*len).min(512 << 20).max(self.scatter_bytes)
            }
            _ => 0,
        };
        let timeout = self.costs.rpc_timeout + Dur::for_bytes(transfer, 1.5e6);
        self.pending.insert(req, (to, pending));
        if self.rpc_resends > 0 {
            // Resilient mode: keep a copy of the request and replace the
            // one-shot timeout with a resend schedule. Only after the
            // resend budget is spent does the timeout path run.
            self.resends.insert(req, (msg.clone(), self.rpc_resends, timeout));
            ctx.send(to, msg);
            ctx.set_timer(timeout, Msg::Tick(Tick::RpcResend(req)));
        } else {
            ctx.send(to, msg);
            ctx.set_timer(timeout, Msg::Tick(Tick::RpcTimeout(req)));
        }
        req
    }

    /// A resend backoff fired: if the request is still unanswered,
    /// re-issue the *same* message (same request id — receivers
    /// deduplicate replays) to the same target, or hand over to the
    /// timeout path once the resend budget is spent.
    fn on_resend(&mut self, ctx: &mut impl Transport, req: ReqId) {
        let Some((target, _)) = self.pending.get(&req) else {
            self.resends.remove(&req); // reply arrived first
            return;
        };
        let target = *target;
        let state = match self.resends.get_mut(&req) {
            Some(s) if s.1 > 0 => s,
            _ => {
                self.resends.remove(&req);
                self.on_timeout(ctx, req);
                return;
            }
        };
        state.1 -= 1;
        let msg = state.0.clone();
        // Exponential backoff: doubling spreads replays out, and jitter
        // from the seeded RNG decorrelates clients hammering the same
        // recovering node.
        let doubled = state.2.as_nanos().saturating_mul(2);
        state.2 = Dur::nanos(doubled);
        let jitter = ctx.rng().gen_range(0..doubled / 4 + 1);
        ctx.metrics().count("client.rpc_resends", 1);
        ctx.record(TelemetryEvent::RpcResend {
            span: crate::proto::span_of(&msg),
            kind: crate::proto::dbg_kind(&msg),
        });
        ctx.send(target, msg);
        ctx.set_timer(Dur::nanos(doubled + jitter), Msg::Tick(Tick::RpcResend(req)));
    }

    /// Pick an owner for a segment: co-located first, then random
    /// up-to-date owner.
    fn choose_owner(
        &self,
        owners: &[(NodeId, Version)],
        min_version: Option<Version>,
        rng: &mut rand::rngs::SmallRng,
    ) -> Option<NodeId> {
        // Never pick an owner the membership view considers dead.
        let live: Vec<(NodeId, Version)> = owners
            .iter()
            .filter(|(id, _)| self.view.is_live(*id))
            .copied()
            .collect();
        let owners: &[(NodeId, Version)] = &live;
        let best: Vec<NodeId> = owners
            .iter()
            .filter(|(_, v)| min_version.is_none_or(|m| *v >= m))
            .map(|(id, _)| *id)
            .collect();
        let pool = if best.is_empty() {
            // Fall back to any owner (it may have caught up since).
            owners.iter().map(|(id, _)| *id).collect()
        } else {
            best
        };
        if pool.is_empty() {
            return None;
        }
        for &id in &pool {
            if self
                .view
                .info(id)
                .is_some_and(|i| i.heartbeat.machine == self.my_machine)
            {
                return Some(id);
            }
        }
        pool.choose(rng).copied()
    }

    /// Pick a provider for a brand-new segment via the placement
    /// algorithm (§3.7.1), with the home-host boost for small segments.
    /// `exclude` bars providers that already hold a shard of the same
    /// code group (EC placement needs k+m distinct failure domains).
    fn place_segment(
        &mut self,
        ctx: &mut impl Transport,
        seg: SegId,
        size_hint: u64,
        alpha: f64,
        policy: PlacementPolicy,
        exclude: &[NodeId],
    ) -> Option<NodeId> {
        let cands = candidates_from_view(&self.view);
        let home = if self.costs.home_boost {
            self.ring.home(seg)
        } else {
            None
        };
        select_provider(&cands, size_hint, alpha, policy, exclude, home, ctx.rng())
    }

    fn seg_meta(&self, opts: &FileOptions, synthetic: bool) -> SegMeta {
        let mut m = SegMeta::from_options(opts, synthetic);
        // Erasure-coded data shards are not replicated: the code *is*
        // the redundancy (`replication` governs the index segment only).
        if opts.ec.is_some() {
            m.replication = 1;
        }
        m
    }

    /// Providers already holding (or assigned, or being asked for) any
    /// *other* shard of the open erasure-coded file. Placement excludes
    /// them so the k+m shards land on distinct providers — a single
    /// crash must cost at most one shard of each code group. Empty for
    /// non-EC files: their placement is unconstrained.
    fn ec_sibling_providers(&self, seg: SegId) -> Vec<NodeId> {
        let Some(f) = &self.file else {
            return Vec::new();
        };
        if f.entry.options.ec.is_none() {
            return Vec::new();
        }
        let index_seg = f.entry.file.index_segment();
        let mut out: Vec<NodeId> = Vec::new();
        for (&s, sref) in &f.shadows {
            if s != seg && s != index_seg && !out.contains(&sref.provider) {
                out.push(sref.provider);
            }
        }
        for (&s, owners) in &f.owners {
            if s == seg || s == index_seg {
                continue;
            }
            for (id, _) in owners {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
        }
        // Placements still in flight: their shadows aren't recorded yet.
        for (_, p) in self.pending.values() {
            if let Pending::ShadowCreate { seg: s, provider, .. } = p {
                if *s != seg && *s != index_seg && !out.contains(provider) {
                    out.push(*provider);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Operation lifecycle
    // ------------------------------------------------------------------

    /// Providers currently in the membership view. The real-process
    /// runtime uses this to gate workload start on peer discovery (the
    /// simulator instead runs a warmup period).
    pub fn known_providers(&self) -> usize {
        self.view.len()
    }

    fn pull_next_op(&mut self, ctx: &mut impl Transport) {
        if self.op.is_some() {
            return;
        }
        // Without a provider view we cannot place or locate anything;
        // wait for heartbeats.
        if self.view.is_empty() {
            ctx.set_timer(self.costs.heartbeat_interval, Msg::Tick(Tick::NextOp));
            return;
        }
        let Some(op) = self.workload.next_op(ctx.now(), ctx.rng()) else {
            if self.stats.finished_at.is_none() {
                self.stats.finished_at = Some(ctx.now());
            }
            return;
        };
        self.start_op(ctx, op);
    }

    fn start_op(&mut self, ctx: &mut impl Transport, op: ClientOp) {
        let now = ctx.now();
        if self.stats.started_at.is_none() {
            self.stats.started_at = Some(now);
        }
        self.append_retries = MAX_APPEND_RETRIES;
        self.op_gen += 1;
        if let Some(deadline) = self.op_deadline {
            ctx.set_timer(deadline, Msg::Tick(Tick::OpDeadline(self.op_gen)));
        }
        self.span_seq += 1;
        self.cur_span = ((ctx.id().index() as u64 + 1) << 32) | self.span_seq;
        self.stats.last_span = self.cur_span;
        ctx.record(TelemetryEvent::OpStart {
            span: self.cur_span,
            kind: op.kind(),
        });
        match &op {
            ClientOp::Think { dur } => {
                let dur = *dur;
                self.op = Some((op, now, Phase::Thinking, 0));
                ctx.set_timer(dur, Msg::Tick(Tick::NextOp));
            }
            _ => {
                self.op = Some((op, now, Phase::NsSimple, 0));
                self.dispatch_stage(ctx);
            }
        }
    }

    /// (Re-)issue the first request of the current op's current stage.
    fn dispatch_stage(&mut self, ctx: &mut impl Transport) {
        let Some((op, _, _, _)) = &self.op else {
            return;
        };
        let op = op.clone();
        match op {
            ClientOp::Mkdir { path } => {
                let req = self.fresh_req();
                let to = self.ns_for(&path);
                self.rpc(ctx, to, Msg::NsMkdir { req, path }, Pending::Ns);
            }
            ClientOp::Rename { src, dst } => {
                let req = self.fresh_req();
                let to = self.ns_for(&src);
                self.rpc(ctx, to, Msg::NsRename { req, src, dst }, Pending::Ns);
            }
            ClientOp::Stat { path } => {
                let req = self.fresh_req();
                let to = self.ns_for(&path);
                self.rpc(ctx, to, Msg::NsLookup { req, path }, Pending::Ns);
            }
            ClientOp::List { path } => {
                let req = self.fresh_req();
                // `ls` goes to the shard holding the directory's
                // children, not the one holding the directory's entry.
                let to = self.ns_for_dir(&path);
                self.rpc(ctx, to, Msg::NsList { req, path }, Pending::Ns);
            }
            ClientOp::Create { path } => {
                let options = self.default_options;
                self.start_create(ctx, path, options);
            }
            ClientOp::CreateWith { path, options } => {
                self.start_create(ctx, path, options);
            }
            ClientOp::Open { path, .. } => {
                let req = self.fresh_req();
                let to = self.ns_for(&path);
                self.rpc(ctx, to, Msg::NsLookup { req, path }, Pending::Ns);
            }
            ClientOp::Read { offset, len } => self.start_read(ctx, offset, len),
            ClientOp::Write { offset, payload } => self.start_write(ctx, offset, payload),
            ClientOp::Append { payload } => {
                let offset = self.file.as_ref().map(|f| f.index.size).unwrap_or(0);
                self.start_write(ctx, offset, payload);
            }
            ClientOp::AtomicAppend { payload } => {
                self.append_payload = Some(payload.clone());
                let offset = self.file.as_ref().map(|f| f.index.size).unwrap_or(0);
                self.start_write(ctx, offset, payload);
            }
            ClientOp::Sync | ClientOp::Close => self.start_commit(ctx),
            ClientOp::Unlink { path } => {
                if let Some((_, _, phase, _)) = &mut self.op {
                    *phase = Phase::Unlinking {
                        entry: None,
                        index: None,
                        to_locate: Vec::new(),
                        deletes: Vec::new(),
                        outstanding: 0,
                    };
                }
                let req = self.fresh_req();
                let to = self.ns_for(&path);
                self.rpc(ctx, to, Msg::NsRemove { req, path }, Pending::Ns);
            }
            ClientOp::Think { .. } => {}
        }
    }

    fn start_create(&mut self, ctx: &mut impl Transport, path: String, options: FileOptions) {
        let file: FileId = self.fresh_seg(ctx).into();
        let req = self.fresh_req();
        let to = self.ns_for(&path);
        self.rpc(
            ctx,
            to,
            Msg::NsCreate {
                req,
                path,
                file,
                options,
            },
            Pending::Ns,
        );
    }

    fn complete_op(&mut self, ctx: &mut impl Transport, error: Option<Error>, bytes: u64, data: Option<bytes::Bytes>) {
        let Some((op, started, _, _)) = self.op.take() else {
            return;
        };
        // Drop any stray pending requests of this op (late replies are
        // ignored by the pending-map lookup).
        self.pending.clear();
        self.resends.clear();
        self.ec_read = None;
        self.scatter_bytes = 0;
        let latency = ctx.now().since(started);
        let span = self.cur_span;
        self.cur_span = 0;
        ctx.record(TelemetryEvent::OpEnd {
            span,
            kind: op.kind(),
            ok: error.is_none(),
        });
        if !matches!(op, ClientOp::Think { .. }) {
            ctx.metrics()
                .observe(&format!("op.{}.latency_ns", op.kind()), latency.as_nanos());
        }
        let result = OpResult {
            error: error.clone(),
            bytes,
            latency,
            data: data.clone(),
            span,
        };
        match &error {
            None => {
                self.stats.completed_ops += 1;
                self.stats.latencies.push((op.kind(), latency));
                match op {
                    ClientOp::Read { .. } => {
                        self.stats.bytes_read += bytes;
                        if data.is_some() {
                            self.stats.last_read = data;
                        }
                    }
                    ClientOp::Write { .. }
                    | ClientOp::Append { .. }
                    | ClientOp::AtomicAppend { .. } => {
                        self.stats.bytes_written += bytes;
                    }
                    _ => {}
                }
                ctx.metrics().count("client.ops_ok", 1);
            }
            Some(e) => {
                self.stats.failed_ops += 1;
                self.stats.failed_spans.push((span, op.kind()));
                self.stats.last_error = Some(e.clone());
                if *e == Error::VersionConflict {
                    self.stats.conflicts += 1;
                }
                ctx.metrics().count("client.ops_failed", 1);
            }
        }
        self.workload.on_result(&op, &result, ctx.now());
        // Defer the next op through a timer rather than recursing: ops
        // that complete without any RPC (attached reads, local closes)
        // would otherwise build unbounded native stack, and the hop also
        // models the client stub's per-op CPU.
        ctx.set_timer(self.costs.client_op_cpu, Msg::Tick(Tick::NextOp));
    }

    /// A stage hit a timeout or hard failure: retry the whole op stage or
    /// give up.
    fn retry_or_fail(&mut self, ctx: &mut impl Transport, error: Error) {
        let Some((_, _, _, attempts)) = &mut self.op else {
            return;
        };
        *attempts += 1;
        if *attempts >= MAX_ATTEMPTS {
            self.complete_op(ctx, Some(error), 0, None);
            return;
        }
        self.pending.clear();
        self.resends.clear();
        self.ec_read = None;
        // Restart the op from its first stage with current knowledge.
        if let Some((_, _, phase, _)) = &mut self.op {
            *phase = Phase::NsSimple;
        }
        self.dispatch_stage(ctx);
    }

    // ------------------------------------------------------------------
    // Open flow
    // ------------------------------------------------------------------

    fn on_entry_resolved(&mut self, ctx: &mut impl Transport, entry: FileEntry) {
        let Some((op, _, phase, _)) = &mut self.op else {
            return;
        };
        let (writable, is_create) = match op {
            ClientOp::Create { .. } | ClientOp::CreateWith { .. } => (true, true),
            ClientOp::Open { write, .. } => (*write, false),
            _ => (false, false),
        };
        let path = match op {
            ClientOp::Create { path }
            | ClientOp::CreateWith { path, .. }
            | ClientOp::Open { path, .. } => path.clone(),
            _ => String::new(),
        };
        if is_create || entry.version == Version::INITIAL {
            // Nothing committed yet: fresh index, no segment reads. A
            // freshly created file is born dirty so that close commits
            // its (possibly empty) index segment — creation is not
            // durable in the data plane until that first commit.
            self.file = Some(OpenFile {
                path,
                index: IndexSegment::new(entry.file, entry.options),
                entry,
                writable,
                dirty: is_create,
                owners: HashMap::new(),
                shadows: HashMap::new(),
                index_owner: None,
                commit_target: None,
                attached_buf: Vec::new(),
                synthetic: false,
                ec_buf: Vec::new(),
                parity_bufs: Vec::new(),
            });
            self.complete_op(ctx, None, 0, None);
            return;
        }
        // Read the index segment via its home host (Figure 7 step 2).
        *phase = Phase::OpenIndex;
        self.file = Some(OpenFile {
            path,
            index: IndexSegment::new(entry.file, entry.options),
            entry: entry.clone(),
            writable,
            dirty: false,
            owners: HashMap::new(),
            shadows: HashMap::new(),
            index_owner: None,
            commit_target: None,
            attached_buf: Vec::new(),
            synthetic: false,
            ec_buf: Vec::new(),
            parity_bufs: Vec::new(),
        });
        self.read_index_segment(ctx, entry.file.index_segment(), entry.version);
    }

    fn read_index_segment(&mut self, ctx: &mut impl Transport, seg: SegId, version: Version) {
        let Some(home) = self.ring.home(seg) else {
            self.retry_or_fail(ctx, Error::Timeout);
            return;
        };
        let req = self.fresh_req();
        self.rpc(
            ctx,
            home,
            Msg::ReadSeg {
                req,
                seg,
                offset: 0,
                len: u64::MAX,
                min_version: Some(version),
                allow_redirect: true,
            },
            Pending::IndexRead { owner_known: false },
        );
    }

    fn on_index_read(&mut self, ctx: &mut impl Transport, from: NodeId, reply: ReadReply, owner_known: bool) {
        match reply {
            ReadReply::Data { data, .. } => {
                let Some(bytes) = data else {
                    if std::env::var("SORRENTO_CLIENT_TRACE").is_ok() {
                        eprintln!("TRACE {:?} t={:?} index read: no data", ctx.id(), ctx.now());
                    }
                    self.retry_or_fail(ctx, Error::NoSuchSegment);
                    return;
                };
                let ix = match decode_index(&bytes) {
                    Ok(ix) => ix,
                    Err(e) => {
                        ctx.metrics().count_labeled("index_decode_error", e.label(), 1);
                        if std::env::var("SORRENTO_CLIENT_TRACE").is_ok() {
                            eprintln!("TRACE {:?} t={:?} index decode failed ({} bytes): {e}", ctx.id(), ctx.now(), bytes.len());
                        }
                        self.retry_or_fail(ctx, Error::NoSuchSegment);
                        return;
                    }
                };
                if let Some(f) = &mut self.file {
                    f.attached_buf = ix.attached.clone().unwrap_or_default();
                    f.synthetic = ix.is_attached && ix.attached.is_none() && ix.size > 0;
                    f.index = ix;
                    f.index_owner = Some(from);
                }
                self.complete_op(ctx, None, 0, None);
            }
            ReadReply::Redirect(owners) => {
                let seg = self
                    .file
                    .as_ref()
                    .map(|f| f.entry.file.index_segment())
                    .expect("open flow has a file");
                let version = self.file.as_ref().map(|f| f.entry.version);
                let Some(owner) = self.choose_owner(&owners, version, ctx.rng())
                else {
                    self.retry_or_fail(ctx, Error::NoSuchSegment);
                    return;
                };
                let req = self.fresh_req();
                self.rpc(
                    ctx,
                    owner,
                    Msg::ReadSeg {
                        req,
                        seg,
                        offset: 0,
                        len: u64::MAX,
                        min_version: version,
                        allow_redirect: false,
                    },
                    Pending::IndexRead { owner_known: true },
                );
            }
            ReadReply::Err(ref e) if !owner_known => {
                if std::env::var("SORRENTO_CLIENT_TRACE").is_ok() {
                    eprintln!("TRACE {:?} t={:?} index read err from home: {e:?}", ctx.id(), ctx.now());
                }
                // Base scheme failed: fall back to the multicast backup
                // query (§3.4.2).
                let seg = self
                    .file
                    .as_ref()
                    .map(|f| f.entry.file.index_segment())
                    .expect("open flow has a file");
                self.start_backup_query(ctx, seg);
            }
            ReadReply::Err(e) => {
                if std::env::var("SORRENTO_CLIENT_TRACE").is_ok() {
                    eprintln!("TRACE {:?} t={:?} index read err from owner: {e:?}", ctx.id(), ctx.now());
                }
                self.retry_or_fail(ctx, e);
            }
        }
    }

    fn start_backup_query(&mut self, ctx: &mut impl Transport, seg: SegId) {
        let req = self.fresh_req();
        self.pending.insert(req, (ctx.id(), Pending::Backup { seg }));
        self.backup_hits.insert(req, Vec::new());
        ctx.record(TelemetryEvent::BackupQuery {
            span: self.cur_span,
            seg: seg.0,
        });
        ctx.multicast(Msg::BackupQuery { req, seg });
        ctx.set_timer(
            self.costs.backup_query_wait,
            Msg::Tick(Tick::BackupDeadline(req)),
        );
        ctx.metrics().count("client.backup_queries", 1);
    }

    fn on_backup_deadline(&mut self, ctx: &mut impl Transport, req: ReqId) {
        let Some((_, Pending::Backup { seg })) = self.pending.remove(&req) else {
            return;
        };
        let hits = self.backup_hits.remove(&req).unwrap_or_default();
        if hits.is_empty() {
            if std::env::var("SORRENTO_CLIENT_TRACE").is_ok() {
                eprintln!(
                    "TRACE {:?} t={:?} backup query for {seg:?} found no owners",
                    ctx.id(),
                    ctx.now()
                );
            }
            // The segment is genuinely gone cluster-wide. For a read of
            // an erasure-coded file this is not fatal: fall into the
            // degraded path and reconstruct from k surviving shards.
            if self.try_ec_degraded(ctx, seg) {
                return;
            }
            self.retry_or_fail(ctx, Error::NoSuchSegment);
            return;
        }
        // Record owners and resume whatever stage needed them.
        if let Some(f) = &mut self.file {
            f.owners.insert(seg, hits.clone());
        }
        match self.op.as_ref().map(|(_, _, p, _)| p) {
            Some(Phase::OpenIndex) => {
                let version = self.file.as_ref().map(|f| f.entry.version);
                let owner = self
                    .choose_owner(&hits, version, ctx.rng())
                    .expect("hits nonempty");
                let req2 = self.fresh_req();
                self.rpc(
                    ctx,
                    owner,
                    Msg::ReadSeg {
                        req: req2,
                        seg,
                        offset: 0,
                        len: u64::MAX,
                        min_version: version,
                        allow_redirect: false,
                    },
                    Pending::IndexRead { owner_known: true },
                );
            }
            Some(Phase::Reading { .. }) => self.continue_read(ctx),
            Some(Phase::Writing { .. }) => {
                let direct = self
                    .file
                    .as_ref()
                    .map(|f| f.entry.options.versioning_off)
                    .unwrap_or(false);
                if direct {
                    self.continue_direct_write(ctx);
                } else {
                    self.continue_write(ctx);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Read flow
    // ------------------------------------------------------------------

    fn start_read(&mut self, ctx: &mut impl Transport, offset: u64, len: u64) {
        self.scatter_bytes = len.min(512 << 20);
        let Some(f) = &self.file else {
            self.complete_op(ctx, Some(Error::NotFound), 0, None);
            return;
        };
        // Attached small files were fetched with the index at open time.
        if f.index.is_attached {
            if std::env::var("SORRENTO_CLIENT_TRACE").is_ok() {
                eprintln!(
                    "ATRACE {:?} t={:?} attached read path={} size={} buf={} synth={} ver={:?}",
                    ctx.id(),
                    ctx.now(),
                    f.path,
                    f.index.size,
                    f.attached_buf.len(),
                    f.synthetic,
                    f.entry.version
                );
            }
            let end = (offset + len).min(f.index.size);
            let covered = end.saturating_sub(offset);
            let data = if f.synthetic {
                None
            } else {
                let s = offset.min(f.attached_buf.len() as u64) as usize;
                let e = end.min(f.attached_buf.len() as u64) as usize;
                let mut out = vec![0u8; covered as usize];
                out[..e - s].copy_from_slice(&f.attached_buf[s..e]);
                Some(out.into())
            };
            self.complete_op(ctx, None, covered, data);
            return;
        }
        let extents = f.index.locate(offset, len);
        if extents.is_empty() {
            self.complete_op(ctx, None, 0, Some(bytes::Bytes::new()));
            return;
        }
        let covered: u64 = extents.iter().map(|e| e.len).sum();
        let real = !f.synthetic;
        if let Some((_, _, phase, _)) = &mut self.op {
            *phase = Phase::Reading {
                unresolved: (0..extents.len()).collect(),
                extents,
                buf: real.then(|| vec![0u8; covered as usize]),
                direct: None,
                req_offset: offset,
                outstanding: 0,
                bytes: 0,
            };
        }
        self.continue_read(ctx);
    }

    /// Drive the read: resolve owners for unresolved extents, issue data
    /// fetches for resolved ones.
    fn continue_read(&mut self, ctx: &mut impl Transport) {
        let (extents, unresolved_now) = match &mut self.op {
            Some((_, _, Phase::Reading { extents, unresolved, .. }, _)) => {
                (extents.clone(), std::mem::take(unresolved))
            }
            _ => return,
        };
        let mut still_unresolved = Vec::new();
        let mut to_fetch: Vec<usize> = Vec::new();
        let mut to_query: Vec<SegId> = Vec::new();
        {
            let f = self.file.as_ref().expect("read has open file");
            for &i in &unresolved_now {
                if f.owners.contains_key(&extents[i].seg) {
                    to_fetch.push(i);
                } else {
                    still_unresolved.push(i);
                    if !to_query.contains(&extents[i].seg) {
                        to_query.push(extents[i].seg);
                    }
                }
            }
        }
        if let Some((_, _, Phase::Reading { unresolved, .. }, _)) = &mut self.op {
            *unresolved = still_unresolved;
        }
        // Owner-known extents: fetch in parallel.
        for i in to_fetch {
            self.issue_extent_read(ctx, i);
        }
        // Unknown segments: one LocQuery per segment to its home host,
        // skipping segments with a query already in flight.
        let inflight: Vec<SegId> = self
            .pending
            .values()
            .filter_map(|(_, p)| match p {
                Pending::LocQuery { seg } => Some(*seg),
                _ => None,
            })
            .collect();
        for seg in to_query {
            if inflight.contains(&seg) {
                continue;
            }
            let Some(home) = self.ring.home(seg) else {
                continue;
            };
            let req = self.fresh_req();
            self.rpc(ctx, home, Msg::LocQuery { req, seg }, Pending::LocQuery { seg });
        }
        self.maybe_finish_read(ctx);
    }

    fn issue_extent_read(&mut self, ctx: &mut impl Transport, i: usize) {
        let (seg, seg_offset, len, version) = {
            let Some((_, _, Phase::Reading { extents, .. }, _)) = &self.op else {
                return;
            };
            let e = &extents[i];
            (e.seg, e.seg_offset, e.len, e.version)
        };
        let owners = self
            .file
            .as_ref()
            .and_then(|f| f.owners.get(&seg).cloned())
            .unwrap_or_default();
        let choice = self.choose_owner(&owners, Some(version), ctx.rng());
        let Some(owner) = choice else {
            // Every cached owner is gone: the extent goes back to the
            // unresolved set (losing it here would let the read
            // "complete" with an unfilled buffer) and a backup query
            // refreshes the owner list.
            if let Some(f) = &mut self.file {
                f.owners.remove(&seg);
            }
            if let Some((_, _, Phase::Reading { unresolved, .. }, _)) = &mut self.op {
                if !unresolved.contains(&i) {
                    unresolved.push(i);
                }
            }
            self.start_backup_query(ctx, seg);
            return;
        };
        let req = self.fresh_req();
        if std::env::var("SORRENTO_CLIENT_TRACE").is_ok() {
            eprintln!(
                "DTRACE {:?} t={:?} issue extent {i} to {owner:?} len={len}",
                ctx.id(),
                ctx.now()
            );
        }
        self.rpc(
            ctx,
            owner,
            Msg::ReadSeg {
                req,
                seg,
                offset: seg_offset,
                len,
                min_version: Some(version),
                allow_redirect: false,
            },
            Pending::DataRead { extent: i },
        );
        if let Some((_, _, Phase::Reading { outstanding, .. }, _)) = &mut self.op {
            *outstanding += 1;
        }
    }

    fn on_data_read(&mut self, ctx: &mut impl Transport, i: usize, from: NodeId, reply: ReadReply) {
        match reply {
            ReadReply::Data { len, data, version } => {
                if std::env::var("SORRENTO_CLIENT_TRACE").is_ok() {
                    eprintln!(
                        "DTRACE {:?} t={:?} extent {i} from {from:?} ver={version:?} len={len} some={} b0={:?}",
                        ctx.id(),
                        ctx.now(),
                        data.is_some(),
                        data.as_ref().and_then(|d| d.first().copied())
                    );
                }
                let Some((_, _, Phase::Reading { extents, buf, direct, req_offset, outstanding, bytes, .. }, _)) =
                    &mut self.op
                else {
                    return;
                };
                *outstanding -= 1;
                *bytes += len;
                if let (Some(buf), Some(d)) = (buf.as_mut(), data) {
                    let e = &extents[i];
                    let start = (e.file_offset - *req_offset) as usize;
                    if extents.len() == 1 && start == 0 && d.len() == buf.len() {
                        // Whole request answered by one reply: hand the
                        // wire payload through without copying.
                        *direct = Some(d);
                    } else {
                        let n = d.len().min(buf.len() - start);
                        buf[start..start + n].copy_from_slice(&d[..n]);
                    }
                }
                self.maybe_finish_read(ctx);
            }
            ReadReply::Redirect(owners) => {
                // Shouldn't happen with allow_redirect=false, but handle:
                // cache and retry.
                let seg = {
                    let Some((_, _, Phase::Reading { extents, .. }, _)) = &self.op else {
                        return;
                    };
                    extents[i].seg
                };
                if let Some(f) = &mut self.file {
                    f.owners.insert(seg, owners);
                }
                if let Some((_, _, Phase::Reading { outstanding, .. }, _)) = &mut self.op {
                    *outstanding -= 1;
                }
                self.issue_extent_read(ctx, i);
            }
            ReadReply::Err(_) => {
                // Owner lost the segment (or is stale): drop it from the
                // cache and re-resolve this extent.
                let seg = {
                    let Some((_, _, Phase::Reading { extents, .. }, _)) = &self.op else {
                        return;
                    };
                    extents[i].seg
                };
                if let Some(f) = &mut self.file {
                    if let Some(list) = f.owners.get_mut(&seg) {
                        list.retain(|(id, _)| *id != from);
                        if list.is_empty() {
                            f.owners.remove(&seg);
                        }
                    }
                }
                if let Some((_, _, Phase::Reading { outstanding, unresolved, .. }, _)) = &mut self.op {
                    *outstanding -= 1;
                    unresolved.push(i);
                }
                self.continue_read(ctx);
            }
        }
    }

    fn maybe_finish_read(&mut self, ctx: &mut impl Transport) {
        let Some((_, _, Phase::Reading { unresolved, outstanding, bytes, buf, direct, .. }, _)) =
            &self.op
        else {
            return;
        };
        if *outstanding == 0 && unresolved.is_empty() && self.pending.is_empty() {
            let bytes = *bytes;
            let data = direct.clone().or_else(|| buf.clone().map(bytes::Bytes::from));
            self.complete_op(ctx, None, bytes, data);
        }
    }

    // ------------------------------------------------------------------
    // Degraded erasure-coded reads
    // ------------------------------------------------------------------

    /// A segment of the current read has no live owner cluster-wide. If
    /// the open file is erasure-coded and `seg` is one of its shards,
    /// switch that shard to the degraded path: fetch any k shards of
    /// the code group in full and reconstruct the lost ones inline.
    /// Returns whether the degraded path took over.
    fn try_ec_degraded(&mut self, ctx: &mut impl Transport, seg: SegId) -> bool {
        if !matches!(
            self.op.as_ref().map(|(_, _, p, _)| p),
            Some(Phase::Reading { .. })
        ) {
            return false;
        }
        let (shard, total) = {
            let Some(f) = &self.file else {
                return false;
            };
            let Some(p) = f.entry.options.ec else {
                return false;
            };
            // Without a full shard set committed there is no code group
            // to decode (e.g. the file never reached its first commit).
            if f.index.segments.len() != p.k as usize
                || f.index.parity.len() != p.m as usize
            {
                return false;
            }
            let Some(shard) = f
                .index
                .segments
                .iter()
                .chain(f.index.parity.iter())
                .position(|e| e.seg == seg)
            else {
                return false;
            };
            (shard, p.shards())
        };
        if self.ec_read.is_none() {
            self.ec_read = Some(EcRead {
                states: vec![ShardState::Pending; total],
                bufs: (0..total).map(|_| None).collect(),
                fetched: 0,
            });
            ctx.metrics().count("client.ec_degraded_reads", 1);
            // Every other shard joins the gather; the triggering one is
            // marked lost below.
            for i in 0..total {
                if i != shard {
                    self.issue_ec_shard(ctx, i);
                }
            }
        }
        self.ec_shard_failed(ctx, shard);
        true
    }

    /// The index entry backing shard `i` (data-then-parity order).
    fn ec_entry(f: &OpenFile, shard: usize) -> crate::layout::SegEntry {
        let k = f.index.segments.len();
        if shard < k {
            f.index.segments[shard]
        } else {
            f.index.parity[shard - k]
        }
    }

    /// Fetch shard `shard` in full: straight from a cached owner, or
    /// resolve one through the shard's home host first.
    fn issue_ec_shard(&mut self, ctx: &mut impl Transport, shard: usize) {
        let (seg, version, owners) = {
            let Some(f) = &self.file else {
                return;
            };
            let e = Self::ec_entry(f, shard);
            (e.seg, e.version, f.owners.get(&e.seg).cloned())
        };
        if let Some(owners) = owners {
            if let Some(owner) = self.choose_owner(&owners, Some(version), ctx.rng()) {
                let req = self.fresh_req();
                self.rpc(
                    ctx,
                    owner,
                    Msg::ReadSeg {
                        req,
                        seg,
                        offset: 0,
                        len: u64::MAX,
                        min_version: Some(version),
                        allow_redirect: false,
                    },
                    Pending::EcShard { shard },
                );
                return;
            }
            // Cached owners are all dead; re-resolve below.
            if let Some(f) = &mut self.file {
                f.owners.remove(&seg);
            }
        }
        let Some(home) = self.ring.home(seg) else {
            self.ec_shard_failed(ctx, shard);
            return;
        };
        let req = self.fresh_req();
        self.rpc(ctx, home, Msg::LocQuery { req, seg }, Pending::EcLoc { shard });
    }

    /// One shard of the degraded read arrived in full.
    fn on_ec_shard_read(&mut self, ctx: &mut impl Transport, shard: usize, reply: ReadReply) {
        match reply {
            ReadReply::Data { data, .. } => {
                let Some(er) = &mut self.ec_read else {
                    return;
                };
                if er.states[shard] != ShardState::Pending {
                    return;
                }
                er.states[shard] = ShardState::Fetched;
                er.bufs[shard] = data.map(|d| d.to_vec());
                er.fetched += 1;
                self.maybe_finish_ec_read(ctx);
            }
            // allow_redirect is false, so a redirect means the owner
            // table moved under us; treat like any other shard failure —
            // the code tolerates it.
            ReadReply::Redirect(_) | ReadReply::Err(_) => {
                self.ec_shard_failed(ctx, shard);
            }
        }
    }

    /// A shard of the degraded read cannot be fetched. Data shards
    /// become reconstruction targets; parity shards are simply dropped
    /// from the gather. More than m total losses sinks the read.
    fn ec_shard_failed(&mut self, ctx: &mut impl Transport, shard: usize) {
        let (k, m) = match self.file.as_ref().and_then(|f| f.entry.options.ec) {
            Some(p) => (p.k as usize, p.m as usize),
            None => return,
        };
        {
            let Some(er) = &mut self.ec_read else {
                return;
            };
            if er.states[shard] != ShardState::Pending {
                return;
            }
            er.states[shard] = if shard < k {
                ShardState::Lost
            } else {
                ShardState::Failed
            };
            let down = er
                .states
                .iter()
                .filter(|s| matches!(s, ShardState::Lost | ShardState::Failed))
                .count();
            if down > m {
                // More losses than parity: the code cannot recover.
                self.clear_ec_pending();
                self.ec_read = None;
                self.retry_or_fail(ctx, Error::NoSuchSegment);
                return;
            }
        }
        self.maybe_finish_ec_read(ctx);
    }

    fn maybe_finish_ec_read(&mut self, ctx: &mut impl Transport) {
        let (fetched, k) = match (&self.ec_read, self.file.as_ref().and_then(|f| f.entry.options.ec)) {
            (Some(er), Some(p)) => (er.fetched, p.k as usize),
            _ => return,
        };
        if fetched >= k {
            self.finish_ec_read(ctx);
        }
    }

    /// k shards are in hand: reconstruct the rest, fill every extent
    /// the regular read path could not resolve, and resume the read.
    fn finish_ec_read(&mut self, ctx: &mut impl Transport) {
        // Outstanding shard requests beyond the k survivors are moot.
        self.clear_ec_pending();
        let Some(er) = self.ec_read.take() else {
            return;
        };
        let (k, m, shard_len, synthetic, data_segs, file_bits) = {
            let f = self.file.as_ref().expect("read has open file");
            let p = f.entry.options.ec.expect("degraded read has params");
            (
                p.k as usize,
                p.m as usize,
                f.index.ec_shard_len() as usize,
                f.synthetic,
                f.index.segments.iter().map(|e| e.seg).collect::<Vec<SegId>>(),
                f.entry.file.index_segment().0,
            )
        };
        let lost = (er.states.len() - er.fetched) as u8;
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; k + m];
        if !synthetic {
            for (i, b) in er.bufs.into_iter().enumerate() {
                // Shards travel at their stored length; the code works
                // on the padded width.
                shards[i] = b.map(|mut v| {
                    v.resize(shard_len, 0);
                    v
                });
            }
            let decoded = sorrento_ec::ReedSolomon::new(k, m)
                .and_then(|rs| rs.reconstruct(&mut shards));
            if decoded.is_err() {
                self.retry_or_fail(ctx, Error::NoSuchSegment);
                return;
            }
        }
        ctx.record(TelemetryEvent::EcReconstruct {
            span: self.cur_span,
            file: file_bits,
            lost,
        });
        let Some((_, _, Phase::Reading { extents, buf, req_offset, unresolved, bytes, .. }, _)) =
            &mut self.op
        else {
            return;
        };
        let req_off = *req_offset;
        for i in unresolved.drain(..) {
            let e = &extents[i];
            *bytes += e.len;
            if let Some(buf) = buf.as_mut() {
                let Some(sidx) = data_segs.iter().position(|&s| s == e.seg) else {
                    continue;
                };
                if let Some(Some(shard)) = shards.get(sidx) {
                    let start = (e.file_offset - req_off) as usize;
                    let s = e.seg_offset as usize;
                    let n = e.len as usize;
                    buf[start..start + n].copy_from_slice(&shard[s..s + n]);
                }
            }
        }
        self.maybe_finish_read(ctx);
    }

    /// Drop every in-flight degraded-read request (their late replies
    /// and timers become stale no-ops).
    fn clear_ec_pending(&mut self) {
        let stale: Vec<ReqId> = self
            .pending
            .iter()
            .filter(|(_, (_, p))| matches!(p, Pending::EcLoc { .. } | Pending::EcShard { .. }))
            .map(|(r, _)| *r)
            .collect();
        for r in stale {
            self.pending.remove(&r);
            self.resends.remove(&r);
        }
    }

    // ------------------------------------------------------------------
    // Write flow
    // ------------------------------------------------------------------

    fn start_write(&mut self, ctx: &mut impl Transport, offset: u64, payload: WritePayload) {
        self.scatter_bytes = payload.len();
        let Some(f) = &mut self.file else {
            self.complete_op(ctx, Some(Error::NotFound), 0, None);
            return;
        };
        if !f.writable {
            self.complete_op(ctx, Some(Error::InvalidMode), 0, None);
            return;
        }
        let len = payload.len();
        if matches!(payload, WritePayload::Synthetic { .. }) {
            f.synthetic = true;
        }
        // Erasure-coded files: mirror real payloads into the session's
        // whole-file buffer so commit can encode parity without reading
        // the shards back (whole-file-write discipline; see DESIGN.md).
        if f.entry.options.ec.is_some() {
            if let WritePayload::Real(data) = &payload {
                let end = offset as usize + data.len();
                if f.ec_buf.len() < end {
                    f.ec_buf.resize(end, 0);
                }
                f.ec_buf[offset as usize..end].copy_from_slice(data);
            }
        }
        // Plan against the layout.
        let mut counter_seed = (self.seg_counter, ctx.id().index() as u32);
        let mut entropy: u64 = ctx.rng().gen();
        let plan = f.index.plan_write(offset, len, || {
            counter_seed.0 += 1;
            entropy = entropy.wrapping_mul(6364136223846793005).wrapping_add(1);
            SegId::derive(counter_seed.1, counter_seed.0, entropy)
        });
        self.seg_counter = counter_seed.0;
        match plan {
            WritePlan::Attached => {
                // Inline write: lands with the index commit.
                if let WritePayload::Real(data) = &payload {
                    let end = offset as usize + data.len();
                    if f.attached_buf.len() < end {
                        f.attached_buf.resize(end, 0);
                    }
                    f.attached_buf[offset as usize..end].copy_from_slice(data);
                    f.index.attached = Some(f.attached_buf.clone());
                }
                f.index.apply_write(offset, len);
                f.dirty = true;
                if matches!(
                    self.op.as_ref().map(|(o, ..)| o),
                    Some(ClientOp::AtomicAppend { .. })
                ) {
                    // Atomic append commits immediately, even inline.
                    self.start_commit(ctx);
                } else {
                    self.complete_op(ctx, None, len, None);
                }
            }
            WritePlan::Extents {
                detach_bytes,
                extents,
            } => {
                f.index.attached = None;
                let direct = f.entry.options.versioning_off;
                if let Some((_, _, phase, _)) = &mut self.op {
                    *phase = Phase::Writing {
                        todo: (0..extents.len()).collect(),
                        extents,
                        outstanding: 0,
                        detach_bytes,
                        write_offset: offset,
                        write_len: len,
                        chunked: HashMap::new(),
                    };
                }
                if direct {
                    self.continue_direct_write(ctx);
                } else {
                    self.continue_write(ctx);
                }
            }
        }
    }

    /// Drive the write: for each extent ensure we have a shadow on some
    /// owner, then issue the shadow writes in parallel.
    fn continue_write(&mut self, ctx: &mut impl Transport) {
        let Some((_, _, Phase::Writing { extents, todo, .. }, _)) = &self.op else {
            return;
        };
        let extents = extents.clone();
        let todo = todo.clone();
        // Requests already in flight must not be re-issued: a duplicate
        // CreateShadow would replace a shadow that has already absorbed
        // writes with a fresh empty one.
        let mut inflight_shadow: Vec<SegId> = Vec::new();
        let mut inflight_query: Vec<SegId> = Vec::new();
        for (_, p) in self.pending.values() {
            match p {
                Pending::ShadowCreate { seg, .. } => inflight_shadow.push(*seg),
                Pending::LocQuery { seg } => inflight_query.push(*seg),
                _ => {}
            }
        }
        let mut ready: Vec<usize> = Vec::new();
        let mut need_shadow: Vec<usize> = Vec::new();
        let mut need_owner: Vec<usize> = Vec::new();
        {
            let f = self.file.as_ref().expect("write has open file");
            for &i in &todo {
                let e = &extents[i];
                if f.shadows.contains_key(&e.seg) {
                    ready.push(i);
                } else if inflight_shadow.contains(&e.seg) {
                    // wait for the in-flight CreateShadow
                } else if e.new_segment || f.owners.contains_key(&e.seg) {
                    need_shadow.push(i);
                } else if !inflight_query.contains(&e.seg) {
                    need_owner.push(i);
                }
            }
        }
        // Create missing shadows (one request per distinct segment).
        let mut issued_segs: Vec<SegId> = Vec::new();
        for i in need_shadow {
            let e = extents[i];
            if issued_segs.contains(&e.seg) {
                continue;
            }
            issued_segs.push(e.seg);
            self.issue_shadow_create(ctx, e);
        }
        // Resolve owners for existing segments we don't know yet.
        let mut queried: Vec<SegId> = Vec::new();
        for i in need_owner {
            let seg = extents[i].seg;
            if queried.contains(&seg) {
                continue;
            }
            queried.push(seg);
            let Some(home) = self.ring.home(seg) else {
                continue;
            };
            let req = self.fresh_req();
            self.rpc(ctx, home, Msg::LocQuery { req, seg }, Pending::LocQuery { seg });
        }
        // Extents whose shadows exist: write now.
        for i in ready {
            self.issue_shadow_write(ctx, i);
        }
        self.maybe_finish_write(ctx);
    }

    /// Versioning-off path (§3.5): writes go straight to the segments,
    /// no shadows, no 2PC. New segments are placed like any other; their
    /// index entries jump to version 1 immediately.
    fn continue_direct_write(&mut self, ctx: &mut impl Transport) {
        let (extents, todo) = match &self.op {
            Some((_, _, Phase::Writing { extents, todo, .. }, _)) => {
                (extents.clone(), todo.clone())
            }
            _ => return,
        };
        let mut inflight_query: Vec<SegId> = Vec::new();
        for (_, p) in self.pending.values() {
            if let Pending::LocQuery { seg } = p {
                inflight_query.push(*seg);
            }
        }
        let mut ready: Vec<usize> = Vec::new();
        let mut need_owner: Vec<SegId> = Vec::new();
        {
            let f = self.file.as_ref().expect("write has open file");
            for &i in &todo {
                let e = &extents[i];
                if e.new_segment || f.owners.contains_key(&e.seg) {
                    ready.push(i);
                } else if !inflight_query.contains(&e.seg) && !need_owner.contains(&e.seg) {
                    need_owner.push(e.seg);
                }
            }
        }
        for seg in need_owner {
            let Some(home) = self.ring.home(seg) else {
                continue;
            };
            let req = self.fresh_req();
            self.rpc(ctx, home, Msg::LocQuery { req, seg }, Pending::LocQuery { seg });
        }
        for i in ready {
            self.issue_direct_write(ctx, i);
        }
        self.maybe_finish_write(ctx);
    }

    fn issue_direct_write(&mut self, ctx: &mut impl Transport, i: usize) {
        let Some((_, _, Phase::Writing { extents, todo, outstanding, .. }, _)) = &mut self.op
        else {
            return;
        };
        let e = extents[i];
        todo.retain(|&x| x != i);
        *outstanding += 1;
        let (opts, synthetic, owners) = {
            let f = self.file.as_ref().expect("write has open file");
            (
                f.entry.options,
                f.synthetic,
                f.owners.get(&e.seg).cloned().unwrap_or_default(),
            )
        };
        // Versioning-off disables replication (§3.5), so exactly one
        // owner exists per segment.
        let meta = {
            let mut m = SegMeta::from_options(&opts, synthetic);
            m.replication = 1;
            m
        };
        let provider = if e.new_segment && owners.is_empty() {
            let size_hint = crate::layout::linear_segment_size(e.seg_index as u64).min(64 << 20);
            match self.place_segment(ctx, e.seg, size_hint, opts.alpha, opts.placement, &[]) {
                Some(p) => p,
                None => {
                    self.retry_or_fail(ctx, Error::OutOfSpace);
                    return;
                }
            }
        } else {
            match self.choose_owner(&owners, None, ctx.rng()) {
                Some(p) => p,
                None => {
                    // Put the extent back (it was popped from `todo`
                    // above); the backup query will repopulate owners.
                    if let Some(f) = &mut self.file {
                        f.owners.remove(&e.seg);
                    }
                    if let Some((_, _, Phase::Writing { todo, outstanding, .. }, _)) =
                        &mut self.op
                    {
                        if !todo.contains(&i) {
                            todo.push(i);
                        }
                        *outstanding -= 1;
                    }
                    self.start_backup_query(ctx, e.seg);
                    return;
                }
            }
        };
        // Remember the placement so later extents reuse the same owner.
        if let Some(f) = &mut self.file {
            f.owners
                .entry(e.seg)
                .or_insert_with(|| vec![(provider, Version(1))]);
            if e.version == Version::INITIAL {
                // The index changed (a segment came into existence):
                // close must commit the new index. Writes into existing
                // segments leave the index untouched, so concurrent
                // byte-range writers (BTIO's pattern) never conflict.
                f.index.set_segment_version(e.seg, Version(1));
                f.dirty = true;
            }
        }
        let payload = self.extent_payload(&e);
        let req = self.fresh_req();
        self.rpc(
            ctx,
            provider,
            Msg::DirectWrite {
                req,
                seg: e.seg,
                offset: e.seg_offset,
                payload,
                meta,
            },
            Pending::DirectWrite,
        );
    }

    /// The bytes an extent of the current write op carries (shared by the
    /// shadow and direct paths).
    fn extent_payload(&self, e: &Extent) -> WritePayload {
        let Some((_, _, Phase::Writing { detach_bytes, write_offset, .. }, _)) = &self.op else {
            return WritePayload::Synthetic { len: e.len };
        };
        let detach = *detach_bytes;
        let woff = *write_offset;
        let f = self.file.as_ref().expect("write has open file");
        if f.synthetic {
            return WritePayload::Synthetic { len: e.len };
        }
        let ext_start = e.file_offset;
        let ext_end = e.file_offset + e.len;
        // Zero-copy fast path: the extent lies entirely inside the op's
        // payload, so a sub-view of the caller's buffer is the payload —
        // no per-extent allocation, no copy.
        if let Some((
            ClientOp::Write { payload: WritePayload::Real(data), .. }
            | ClientOp::Append { payload: WritePayload::Real(data) }
            | ClientOp::AtomicAppend { payload: WritePayload::Real(data) },
            ..,
        )) = &self.op
        {
            let wend = woff + data.len() as u64;
            if ext_start >= woff && ext_end <= wend {
                let s = (ext_start - woff) as usize;
                return WritePayload::Real(data.slice(s..s + e.len as usize));
            }
        }
        let mut out = vec![0u8; e.len as usize];
        if ext_start < detach {
            let s = ext_start as usize;
            let eidx = ext_end.min(detach) as usize;
            let avail = f.attached_buf.len().min(eidx);
            if s < avail {
                out[..avail - s].copy_from_slice(&f.attached_buf[s..avail]);
            }
        }
        if let Some((
            ClientOp::Write { payload: WritePayload::Real(data), .. }
            | ClientOp::Append { payload: WritePayload::Real(data) }
            | ClientOp::AtomicAppend { payload: WritePayload::Real(data) },
            ..,
        )) = &self.op
        {
            let wend = woff + data.len() as u64;
            let s = ext_start.max(woff);
            let en = ext_end.min(wend);
            if s < en {
                let dst = (s - ext_start) as usize;
                let src = (s - woff) as usize;
                let n = (en - s) as usize;
                out[dst..dst + n].copy_from_slice(&data[src..src + n]);
            }
        }
        WritePayload::Real(out.into())
    }

    fn issue_shadow_create(&mut self, ctx: &mut impl Transport, e: Extent) {
        let f = self.file.as_ref().expect("write has open file");
        let opts = f.entry.options;
        let synthetic = f.synthetic;
        let meta = self.seg_meta(&opts, synthetic);
        let (provider, base, target) = if e.new_segment {
            let size_hint = crate::layout::linear_segment_size(e.seg_index as u64).min(64 << 20);
            let exclude = self.ec_sibling_providers(e.seg);
            let Some(p) =
                self.place_segment(ctx, e.seg, size_hint, opts.alpha, opts.placement, &exclude)
            else {
                self.retry_or_fail(ctx, Error::OutOfSpace);
                return;
            };
            let entropy: u16 = ctx.rng().gen();
            (p, None, Version::INITIAL.next_entropic(entropy))
        } else {
            let owners = f.owners.get(&e.seg).cloned().unwrap_or_default();
            let entropy: u16 = ctx.rng().gen();
            let Some(p) = self.choose_owner(&owners, Some(e.version), ctx.rng())
            else {
                self.start_backup_query(ctx, e.seg);
                return;
            };
            (p, Some(e.version), e.version.next_entropic(entropy))
        };
        let req = self.fresh_req();
        self.rpc(
            ctx,
            provider,
            Msg::CreateShadow {
                req,
                span: self.cur_span,
                seg: e.seg,
                base,
                meta,
            },
            Pending::ShadowCreate {
                seg: e.seg,
                provider,
                target,
            },
        );
    }

    fn issue_shadow_write(&mut self, ctx: &mut impl Transport, i: usize) {
        let Some((_, _, Phase::Writing { extents, todo, .. }, _)) = &mut self.op else {
            return;
        };
        let e = extents[i];
        todo.retain(|&x| x != i);
        let sref = {
            let f = self.file.as_ref().expect("write has open file");
            f.shadows[&e.seg]
        };
        let payload = self.extent_payload(&e);
        // Pipelined path: a large real payload is split into chunks and
        // a bounded window of them kept in flight to the owner, so the
        // segment transfer overlaps instead of a single huge frame (or,
        // historically, one-at-a-time round trips).
        if let (Some(chunk), WritePayload::Real(data)) = (self.write_chunk, &payload) {
            if chunk > 0 && data.len() as u64 > chunk {
                let data = data.clone();
                if let Some((_, _, Phase::Writing { chunked, .. }, _)) = &mut self.op {
                    chunked.insert(i, ChunkWrite { data, next: 0 });
                }
                for _ in 0..self.write_window.max(1) {
                    if !self.issue_next_chunk(ctx, i) {
                        break;
                    }
                }
                return;
            }
        }
        if let Some((_, _, Phase::Writing { outstanding, .. }, _)) = &mut self.op {
            *outstanding += 1;
        }
        let req = self.fresh_req();
        self.rpc(
            ctx,
            sref.provider,
            Msg::WriteShadow {
                req,
                shadow: sref.shadow,
                offset: e.seg_offset,
                payload,
                truncate: false,
            },
            Pending::ShadowWrite { extent: i },
        );
    }

    /// Put the next chunk of extent `i`'s pipelined shadow write on the
    /// wire, if any bytes remain unsent. Returns whether a chunk was
    /// issued. Called `write_window` times up front and then once per
    /// completed chunk, which holds the in-flight count at the window.
    fn issue_next_chunk(&mut self, ctx: &mut impl Transport, i: usize) -> bool {
        let Some(chunk_size) = self.write_chunk.filter(|&c| c > 0) else {
            return false;
        };
        let (e, slice, offset) = {
            let Some((_, _, Phase::Writing { extents, chunked, outstanding, .. }, _)) =
                &mut self.op
            else {
                return false;
            };
            let Some(st) = chunked.get_mut(&i) else {
                return false;
            };
            if st.next >= st.data.len() as u64 {
                return false;
            }
            let start = st.next;
            let end = (start + chunk_size).min(st.data.len() as u64);
            st.next = end;
            *outstanding += 1;
            (extents[i], st.data.slice(start as usize..end as usize), start)
        };
        let sref = {
            let f = self.file.as_ref().expect("write has open file");
            f.shadows[&e.seg]
        };
        let req = self.fresh_req();
        self.rpc(
            ctx,
            sref.provider,
            Msg::WriteShadow {
                req,
                shadow: sref.shadow,
                offset: e.seg_offset + offset,
                payload: WritePayload::Real(slice),
                truncate: false,
            },
            Pending::ShadowWrite { extent: i },
        );
        true
    }

    fn maybe_finish_write(&mut self, ctx: &mut impl Transport) {
        let Some((_, _, Phase::Writing { todo, outstanding, write_offset, write_len, .. }, _)) =
            &self.op
        else {
            return;
        };
        if !todo.is_empty() || *outstanding > 0 || !self.pending.is_empty() {
            return;
        }
        let (off, len) = (*write_offset, *write_len);
        if let Some(f) = &mut self.file {
            let grew = off + len > f.index.size;
            f.index.apply_write(off, len);
            // Byte-range (versioning-off) writes land in place: only a
            // structural index change — new segments (flagged in
            // issue_direct_write) or size growth — needs a commit.
            if !f.entry.options.versioning_off || grew {
                f.dirty = true;
            }
        }
        // Atomic append proceeds straight into commit.
        if matches!(self.op.as_ref().map(|(o, ..)| o), Some(ClientOp::AtomicAppend { .. })) {
            self.start_commit(ctx);
        } else {
            self.complete_op(ctx, None, len, None);
        }
    }

    // ------------------------------------------------------------------
    // Commit flow (Figure 6 steps 6–12)
    // ------------------------------------------------------------------

    fn start_commit(&mut self, ctx: &mut impl Transport) {
        let Some(f) = &self.file else {
            self.complete_op(ctx, Some(Error::NotFound), 0, None);
            return;
        };
        if !f.dirty || !f.writable {
            // Close without changes: purely local.
            if matches!(self.op.as_ref().map(|(o, ..)| o), Some(ClientOp::Close)) {
                self.file = None;
            }
            self.complete_op(ctx, None, 0, None);
            return;
        }
        if let Some((_, _, phase, _)) = &mut self.op {
            *phase = Phase::Committing(CommitStage::IndexShadow);
        }
        // One target per commit attempt: retries after partial 2PC
        // failures pick a fresh entropy, so an orphaned partial commit
        // can never collide with (and diverge from) a later successful
        // one at the same version number.
        let entropy: u16 = ctx.rng().gen();
        if let Some(f) = &mut self.file {
            f.commit_target = Some(f.entry.version.next_entropic(entropy));
        }
        // Erasure-coded files with detached data first encode and ship
        // the m parity shards; attached (inline) EC files need none —
        // the replicated index carries the bytes.
        let needs_parity = self
            .file
            .as_ref()
            .map(|f| f.entry.options.ec.is_some() && !f.index.segments.is_empty())
            .unwrap_or(false);
        if needs_parity {
            self.start_parity(ctx);
        } else {
            self.issue_index_shadow(ctx);
        }
    }

    /// Begin the parity leg of an erasure-coded commit: materialize the
    /// m parity entries in the index, encode their contents from the
    /// session's whole-file buffer, and open one shadow per parity
    /// shard on a provider holding no other shard of this file. The
    /// shadows then ride the same 2PC as the data shards.
    fn start_parity(&mut self, ctx: &mut impl Transport) {
        let (k, m) = {
            let f = self.file.as_ref().expect("commit has open file");
            let p = f.entry.options.ec.expect("EC commit has params");
            (p.k as usize, p.m as usize)
        };
        // Pre-generate the fresh segment ids ensure_parity may need
        // (fresh_seg borrows self, the index borrows the file).
        let missing = {
            let f = self.file.as_ref().expect("commit has open file");
            m.saturating_sub(f.index.parity.len())
        };
        let ids: Vec<SegId> = (0..missing).map(|_| self.fresh_seg(ctx)).collect();
        let mut ids = ids.into_iter();
        let (parity_entries, shard_len, synthetic, opts) = {
            let f = self.file.as_mut().expect("commit has open file");
            f.index.ensure_parity(|| ids.next().expect("pre-generated id"));
            let shard_len = f.index.ec_shard_len();
            for e in &mut f.index.parity {
                e.len = shard_len;
            }
            (
                f.index.parity.clone(),
                shard_len,
                f.synthetic,
                f.entry.options,
            )
        };
        if !synthetic {
            let (shards, file_bits) = {
                let f = self.file.as_ref().expect("commit has open file");
                (
                    f.index.ec_data_shards(&f.ec_buf),
                    f.entry.file.index_segment().0,
                )
            };
            let rs = match sorrento_ec::ReedSolomon::new(k, m) {
                Ok(rs) => rs,
                Err(_) => {
                    self.abort_commit(ctx, Error::InvalidMode);
                    return;
                }
            };
            let parity = match rs.encode(&shards) {
                Ok(p) => p,
                Err(_) => {
                    self.abort_commit(ctx, Error::InvalidMode);
                    return;
                }
            };
            ctx.record(TelemetryEvent::EcEncode {
                span: self.cur_span,
                file: file_bits,
                k: k as u8,
                m: m as u8,
                parity_bytes: parity.iter().map(|p| p.len() as u64).sum(),
            });
            if let Some(f) = &mut self.file {
                f.parity_bufs = parity.into_iter().map(bytes::Bytes::from).collect();
            }
        } else if let Some(f) = &mut self.file {
            f.parity_bufs.clear();
        }
        if let Some((_, _, Phase::Committing(stage), _)) = &mut self.op {
            *stage = CommitStage::Parity { outstanding: m };
        }
        // Parity shadows are always full-content rewrites (base: None):
        // every commit re-derives all parity bytes, so there is nothing
        // to copy forward, and no owner resolution is needed. A
        // re-commit may therefore leave the previous parity replica
        // behind on its old provider; the repair scan's uniqueness gate
        // ignores stale versions.
        for entry in parity_entries {
            let exclude = self.ec_sibling_providers(entry.seg);
            let Some(provider) = self.place_segment(
                ctx,
                entry.seg,
                shard_len.max(1),
                opts.alpha,
                opts.placement,
                &exclude,
            ) else {
                self.abort_commit(ctx, Error::OutOfSpace);
                return;
            };
            let entropy: u16 = ctx.rng().gen();
            let target = entry.version.next_entropic(entropy);
            let meta = self.seg_meta(&opts, synthetic);
            let req = self.fresh_req();
            self.rpc(
                ctx,
                provider,
                Msg::CreateShadow {
                    req,
                    span: self.cur_span,
                    seg: entry.seg,
                    base: None,
                    meta,
                },
                Pending::ShadowCreate {
                    seg: entry.seg,
                    provider,
                    target,
                },
            );
        }
    }

    /// A parity shadow exists: ship its full contents (offset 0,
    /// truncating), tagged with the parity sentinel so completion is
    /// routed back into the Parity stage.
    fn issue_parity_write(&mut self, ctx: &mut impl Transport, seg: SegId) {
        let (sref, payload) = {
            let f = self.file.as_ref().expect("commit has open file");
            let sref = f.shadows[&seg];
            let len = f.index.ec_shard_len();
            let payload = if f.synthetic {
                WritePayload::Synthetic { len }
            } else {
                let idx = f
                    .index
                    .parity
                    .iter()
                    .position(|e| e.seg == seg)
                    .expect("parity entry exists");
                WritePayload::Real(f.parity_bufs[idx].clone())
            };
            (sref, payload)
        };
        let req = self.fresh_req();
        self.rpc(
            ctx,
            sref.provider,
            Msg::WriteShadow {
                req,
                shadow: sref.shadow,
                offset: 0,
                payload,
                truncate: true,
            },
            Pending::ShadowWrite {
                extent: PARITY_EXTENT,
            },
        );
    }

    fn issue_index_shadow(&mut self, ctx: &mut impl Transport) {
        let f = self.file.as_ref().expect("commit has open file");
        let seg = f.entry.file.index_segment();
        let opts = f.entry.options;
        let target = f.commit_target.expect("commit target chosen");
        let (provider, base) = if f.entry.version == Version::INITIAL {
            // First commit: place the index segment (small → home boost).
            let Some(p) = self.place_segment(ctx, seg, 4096, opts.alpha, opts.placement, &[])
            else {
                self.retry_or_fail(ctx, Error::OutOfSpace);
                return;
            };
            (p, None)
        } else {
            let p = f
                .index_owner
                .filter(|&p| self.view.is_live(p))
                .unwrap_or_else(|| self.ring.home(seg).expect("providers exist"));
            (p, Some(f.entry.version))
        };
        // The index segment of an erasure-coded file carries the (k, m)
        // marker: providers holding it drive EC shard repair from the
        // shard list it contains. It keeps the file's replication — the
        // code protects the shards, replication protects the index.
        let meta = {
            let mut m = SegMeta::from_options(&opts, false);
            m.ec = opts.ec.map(|p| (p.k, p.m));
            m
        };
        let req = self.fresh_req();
        self.rpc(
            ctx,
            provider,
            Msg::CreateShadow {
                req,
                span: self.cur_span,
                seg,
                base,
                meta,
            },
            Pending::ShadowCreate {
                seg,
                provider,
                target,
            },
        );
    }

    fn issue_index_write(&mut self, ctx: &mut impl Transport) {
        // Advance data-segment versions in the index, then ship it.
        let new_file_version;
        let bytes;
        let sref;
        {
            let f = self.file.as_mut().expect("commit has open file");
            new_file_version = f.entry.version.next();
            let shadows: Vec<(SegId, Version)> = f
                .shadows
                .iter()
                .filter(|(&seg, _)| seg != f.entry.file.index_segment())
                .map(|(&seg, s)| (seg, s.target))
                .collect();
            for (seg, v) in shadows {
                f.index.set_segment_version(seg, v);
            }
            if f.index.is_attached && !f.synthetic {
                f.index.attached = Some(f.attached_buf.clone());
            }
            bytes = encode_index(&f.index);
            sref = f.shadows[&f.entry.file.index_segment()];
        }
        let _ = new_file_version;
        let req = self.fresh_req();
        if let Some((_, _, Phase::Committing(stage), _)) = &mut self.op {
            *stage = CommitStage::IndexWrite;
        }
        self.rpc(
            ctx,
            sref.provider,
            Msg::WriteShadow {
                req,
                shadow: sref.shadow,
                offset: 0,
                payload: WritePayload::Real(bytes.into()),
                truncate: true,
            },
            Pending::ShadowWrite { extent: usize::MAX },
        );
    }

    fn issue_commit_begin(&mut self, ctx: &mut impl Transport) {
        let f = self.file.as_ref().expect("commit has open file");
        let (path, base) = (f.path.clone(), f.entry.version);
        if let Some((_, _, Phase::Committing(stage), _)) = &mut self.op {
            *stage = CommitStage::Begin;
        }
        let req = self.fresh_req();
        let to = self.ns_for(&path);
        self.rpc(
            ctx,
            to,
            Msg::NsCommitBegin { req, span: self.cur_span, path, base },
            Pending::CommitBegin,
        );
    }

    fn participants(&self) -> Vec<(NodeId, Vec<(ShadowId, Version)>)> {
        let f = self.file.as_ref().expect("commit has open file");
        let mut map: HashMap<NodeId, Vec<(ShadowId, Version)>> = HashMap::new();
        for sref in f.shadows.values() {
            map.entry(sref.provider)
                .or_default()
                .push((sref.shadow, sref.target));
        }
        let mut v: Vec<(NodeId, Vec<(ShadowId, Version)>)> = map.into_iter().collect();
        v.sort_by_key(|(n, _)| *n);
        for (_, items) in &mut v {
            items.sort(); // deterministic order within each participant
        }
        v
    }

    fn issue_prepare(&mut self, ctx: &mut impl Transport) {
        let parts = self.participants();
        if let Some((_, _, Phase::Committing(stage), _)) = &mut self.op {
            *stage = CommitStage::Prepare {
                outstanding: parts.len(),
                failed: false,
            };
        }
        for (provider, items) in parts {
            let req = self.fresh_req();
            self.rpc(
                ctx,
                provider,
                Msg::Prepare { req, span: self.cur_span, items },
                Pending::Prepare,
            );
        }
    }

    fn issue_commit_phase(&mut self, ctx: &mut impl Transport) {
        let parts = self.participants();
        if let Some((_, _, Phase::Committing(stage), _)) = &mut self.op {
            *stage = CommitStage::Commit {
                outstanding: parts.len(),
            };
        }
        for (provider, items) in parts {
            let req = self.fresh_req();
            self.rpc(
                ctx,
                provider,
                Msg::Commit { req, span: self.cur_span, items },
                Pending::Commit2,
            );
        }
    }

    fn abort_commit(&mut self, ctx: &mut impl Transport, error: Error) {
        // Tell every participant to drop its shadows, release the lease if
        // held, and fail (or retry, for atomic append).
        let parts = self.participants();
        for (provider, items) in parts {
            let shadows: Vec<ShadowId> = items.into_iter().map(|(s, _)| s).collect();
            ctx.send(provider, Msg::Abort { span: self.cur_span, items: shadows });
        }
        let path_base = self
            .file
            .as_ref()
            .map(|f| (f.path.clone(), f.entry.version));
        if let Some((path, base)) = path_base {
            let req = self.fresh_req();
            let to = self.ns_for(&path);
            // Fire-and-forget release (commit=false); no pending entry so
            // the reply is ignored.
            ctx.send(
                to,
                Msg::NsCommitEnd {
                    req,
                    span: self.cur_span,
                    path,
                    commit: false,
                    new_version: base,
                    new_size: 0,
                },
            );
        }
        if let Some(f) = &mut self.file {
            f.shadows.clear();
            f.commit_target = None;
            f.parity_bufs.clear();
        }
        // Atomic append: refresh and retry the whole cycle.
        let is_append = matches!(
            self.op.as_ref().map(|(o, ..)| o),
            Some(ClientOp::AtomicAppend { .. })
        );
        let retryable = matches!(error, Error::VersionConflict | Error::LeaseHeld);
        if is_append && self.append_retries > 0 && retryable {
            self.append_retries -= 1;
            self.stats.conflicts += 1;
            self.pending.clear();
            // Randomized backoff so contending appenders don't spin their
            // whole retry budget inside one competitor's commit window.
            let max = self.costs.rpc_timeout.as_nanos().max(2) / 2;
            let backoff = Dur::nanos(ctx.rng().gen_range(1..max));
            ctx.set_timer(backoff, Msg::Tick(Tick::AppendRetry));
            return;
        }
        self.complete_op(ctx, Some(error), 0, None);
    }

    /// Atomic-append retry: re-lookup the entry and re-read the index,
    /// then re-run the append write + commit.
    fn refresh_for_append(&mut self, ctx: &mut impl Transport) {
        let Some(f) = &self.file else {
            self.complete_op(ctx, Some(Error::NotFound), 0, None);
            return;
        };
        let path = f.path.clone();
        if let Some((_, _, phase, _)) = &mut self.op {
            *phase = Phase::NsSimple;
        }
        let req = self.fresh_req();
        let to = self.ns_for(&path);
        self.rpc(ctx, to, Msg::NsLookup { req, path }, Pending::Ns);
    }

    fn issue_commit_end(&mut self, ctx: &mut impl Transport) {
        let f = self.file.as_ref().expect("commit has open file");
        let path = f.path.clone();
        let new_version = f.commit_target.expect("commit target chosen");
        let new_size = f.index.size;
        if let Some((_, _, Phase::Committing(stage), _)) = &mut self.op {
            *stage = CommitStage::End;
        }
        let req = self.fresh_req();
        let to = self.ns_for(&path);
        self.rpc(
            ctx,
            to,
            Msg::NsCommitEnd {
                req,
                span: self.cur_span,
                path,
                commit: true,
                new_version,
                new_size,
            },
            Pending::CommitEnd,
        );
    }

    fn finish_commit(&mut self, ctx: &mut impl Transport) {
        // Eager propagation if requested, else done.
        let eager = self
            .file
            .as_ref()
            .map(|f| f.entry.options.eager_commit && f.entry.options.replication > 1)
            .unwrap_or(false);
        if eager {
            let mut outstanding = 0;
            let targets: Vec<(SegId, NodeId, u32)> = {
                let f = self.file.as_ref().expect("commit has open file");
                let mut t: Vec<(SegId, NodeId, u32)> = f
                    .shadows
                    .iter()
                    .map(|(&seg, sref)| (seg, sref.provider, f.entry.options.replication))
                    .collect();
                t.sort(); // deterministic eager-sync issue order
                t
            };
            for (seg, source, replication) in targets {
                // Choose (r-1) extra sites and push synchronously.
                let mut exclude = vec![source];
                for _ in 1..replication {
                    let cands = candidates_from_view(&self.view);
                    let Some(site) = select_provider(
                        &cands,
                        1,
                        0.5,
                        PlacementPolicy::LoadAware,
                        &exclude,
                        None,
                        ctx.rng(),
                    ) else {
                        break;
                    };
                    exclude.push(site);
                    let req = self.fresh_req();
                    self.rpc(
                        ctx,
                        site,
                        Msg::SyncRequest { req, seg, source, bytes_hint: 64 << 20 },
                        Pending::EagerSync,
                    );
                    outstanding += 1;
                }
            }
            if outstanding > 0 {
                if let Some((_, _, Phase::Committing(stage), _)) = &mut self.op {
                    *stage = CommitStage::Eager { outstanding };
                }
                return;
            }
        }
        self.conclude_commit(ctx);
    }

    fn conclude_commit(&mut self, ctx: &mut impl Transport) {
        let is_close = matches!(
            self.op.as_ref().map(|(o, ..)| o),
            Some(ClientOp::Close)
        );
        let is_append = matches!(
            self.op.as_ref().map(|(o, ..)| o),
            Some(ClientOp::AtomicAppend { .. })
        );
        let mut bytes = 0;
        if let Some(f) = &mut self.file {
            f.entry.version = f.commit_target.take().expect("commit target chosen");
            f.entry.size = f.index.size;
            // Keep the committed index's segment versions as the new base.
            f.shadows.clear();
            f.parity_bufs.clear();
            f.dirty = false;
            if is_append {
                bytes = self
                    .append_payload
                    .as_ref()
                    .map(|p| p.len())
                    .unwrap_or(0);
            }
        }
        if is_close {
            self.file = None;
        }
        self.complete_op(ctx, None, bytes, None);
    }

    // ------------------------------------------------------------------
    // Unlink flow
    // ------------------------------------------------------------------

    fn continue_unlink(&mut self, ctx: &mut impl Transport) {
        let Some((_, _, Phase::Unlinking { to_locate, deletes, outstanding, .. }, _)) = &mut self.op
        else {
            return;
        };
        if let Some(seg) = to_locate.pop() {
            let Some(home) = self.ring.home(seg) else {
                self.continue_unlink(ctx);
                return;
            };
            let req = self.fresh_req();
            self.rpc(ctx, home, Msg::LocQuery { req, seg }, Pending::LocQuery { seg });
            return;
        }
        if let Some((seg, owner)) = deletes.pop() {
            // Replica removal is eager and serialized, which is why the
            // paper's unlink time grows with the replication degree
            // (Figure 9: 32.4 ms at r=1 vs 44.3 ms at r=2).
            *outstanding = 1;
            let req = self.fresh_req();
            self.rpc(ctx, owner, Msg::DeleteSeg { req, seg }, Pending::Delete);
            return;
        }
        if *outstanding == 0 {
            self.complete_op(ctx, None, 0, None);
        }
    }

    // ------------------------------------------------------------------
    // Reply dispatch
    // ------------------------------------------------------------------

    fn on_reply(&mut self, ctx: &mut impl Transport, from: NodeId, req: ReqId, msg: Msg) {
        self.resends.remove(&req);
        let Some((_, pending)) = self.pending.remove(&req) else {
            let kind = crate::proto_dbg_kind(&msg);
            ctx.metrics().count("client.stale_replies", 1);
            ctx.metrics().count_labeled("client.stale", kind, 1);
            ctx.record(TelemetryEvent::StaleLocation {
                span: self.cur_span,
                kind,
            });
            return; // stale reply after timeout/retry
        };
        match (pending, msg) {
            // ---- namespace replies ----
            (Pending::Ns, Msg::NsMkdirR { result, .. })
            | (Pending::Ns, Msg::NsRenameR { result, .. }) => {
                self.complete_op(ctx, result.err(), 0, None);
            }
            (Pending::Ns, Msg::NsListR { result, .. }) => match result {
                Ok(names) => {
                    let blob = names.join("\n").into_bytes();
                    let n = names.len() as u64;
                    self.complete_op(ctx, None, n, Some(blob.into()));
                }
                Err(e) => self.complete_op(ctx, Some(e), 0, None),
            },
            (Pending::Ns, Msg::NsLookupR { result, .. }) => {
                let is_stat = matches!(
                    self.op.as_ref().map(|(o, ..)| o),
                    Some(ClientOp::Stat { .. })
                );
                match result {
                    Ok(entry) => {
                        if is_stat {
                            let size = entry.size;
                            self.complete_op(ctx, None, size, None);
                        } else if matches!(
                            self.op.as_ref().map(|(o, ..)| o),
                            Some(ClientOp::AtomicAppend { .. })
                        ) {
                            // Append retry path: refresh entry, re-read
                            // index, then redo the write.
                            if let Some(f) = &mut self.file {
                                f.entry = entry.clone();
                                f.owners.clear();
                                f.shadows.clear();
                            }
                            if entry.version == Version::INITIAL {
                                self.redo_append_write(ctx);
                            } else {
                                if let Some((_, _, phase, _)) = &mut self.op {
                                    *phase = Phase::OpenIndex;
                                }
                                self.read_index_segment(
                                    ctx,
                                    entry.file.index_segment(),
                                    entry.version,
                                );
                            }
                        } else {
                            self.on_entry_resolved(ctx, entry);
                        }
                    }
                    Err(e) => self.complete_op(ctx, Some(e), 0, None),
                }
            }
            (Pending::Ns, Msg::NsCreateR { result, .. }) => match result {
                Ok(entry) => self.on_entry_resolved(ctx, entry),
                Err(e) => self.complete_op(ctx, Some(e), 0, None),
            },
            (Pending::Ns, Msg::NsRemoveR { result, .. }) => match result {
                Ok(entry) => {
                    if entry.version == Version::INITIAL {
                        // Never committed: no segments to clean up.
                        self.complete_op(ctx, None, 0, None);
                        return;
                    }
                    // Read the index to learn the data segments, then
                    // delete everything eagerly.
                    let seg = entry.file.index_segment();
                    if let Some((_, _, Phase::Unlinking { entry: e, to_locate, .. }, _)) =
                        &mut self.op
                    {
                        *e = Some(entry.clone());
                        to_locate.push(seg);
                    }
                    let Some(home) = self.ring.home(seg) else {
                        self.complete_op(ctx, None, 0, None);
                        return;
                    };
                    let req2 = self.fresh_req();
                    self.rpc(
                        ctx,
                        home,
                        Msg::ReadSeg {
                            req: req2,
                            seg,
                            offset: 0,
                            len: u64::MAX,
                            min_version: None,
                            allow_redirect: true,
                        },
                        Pending::IndexRead { owner_known: false },
                    );
                }
                Err(e) => self.complete_op(ctx, Some(e), 0, None),
            },

            // ---- index reads ----
            (Pending::IndexRead { owner_known }, Msg::ReadSegR { reply, .. }) => {
                if matches!(self.op.as_ref().map(|(_, _, p, _)| p), Some(Phase::Unlinking { .. })) {
                    self.on_unlink_index(ctx, reply, owner_known);
                } else if matches!(
                    self.op.as_ref().map(|(o, ..)| o),
                    Some(ClientOp::AtomicAppend { .. })
                ) {
                    // Append retry: index refreshed, redo the write.
                    let decoded = match &reply {
                        ReadReply::Data { data: Some(bytes), .. } => decode_index(bytes).ok(),
                        _ => None,
                    };
                    if let Some(ix) = decoded {
                        if let Some(f) = &mut self.file {
                            f.attached_buf = ix.attached.clone().unwrap_or_default();
                            f.index = ix;
                            f.index_owner = Some(from);
                        }
                        self.redo_append_write(ctx);
                        return;
                    }
                    self.on_index_read(ctx, from, reply, owner_known);
                } else {
                    self.on_index_read(ctx, from, reply, owner_known);
                }
            }

            // ---- owner resolution ----
            (Pending::LocQuery { seg }, Msg::LocQueryR { owners, .. }) => {
                match self.op.as_ref().map(|(_, _, p, _)| p) {
                    Some(Phase::Unlinking { .. }) => {
                        if let Some((_, _, Phase::Unlinking { deletes, .. }, _)) = &mut self.op {
                            for (owner, _) in &owners {
                                deletes.push((seg, *owner));
                            }
                        }
                        self.continue_unlink(ctx);
                    }
                    _ => {
                        if owners.is_empty() {
                            self.start_backup_query(ctx, seg);
                            return;
                        }
                        if let Some(f) = &mut self.file {
                            f.owners.insert(seg, owners);
                        }
                        let direct = self
                            .file
                            .as_ref()
                            .map(|f| f.entry.options.versioning_off)
                            .unwrap_or(false);
                        match self.op.as_ref().map(|(_, _, p, _)| p) {
                            Some(Phase::Reading { .. }) => self.continue_read(ctx),
                            Some(Phase::Writing { .. }) if direct => {
                                self.continue_direct_write(ctx)
                            }
                            Some(Phase::Writing { .. }) => self.continue_write(ctx),
                            _ => {}
                        }
                    }
                }
            }

            // ---- data reads ----
            (Pending::DataRead { extent }, Msg::ReadSegR { reply, .. }) => {
                self.on_data_read(ctx, extent, from, reply);
            }

            // ---- degraded erasure-coded reads ----
            (Pending::EcLoc { shard }, Msg::LocQueryR { owners, .. }) => {
                if owners.is_empty() {
                    self.ec_shard_failed(ctx, shard);
                } else {
                    let seg = self
                        .file
                        .as_ref()
                        .map(|f| Self::ec_entry(f, shard).seg);
                    if let (Some(f), Some(seg)) = (&mut self.file, seg) {
                        f.owners.insert(seg, owners);
                    }
                    self.issue_ec_shard(ctx, shard);
                }
            }
            (Pending::EcShard { shard }, Msg::ReadSegR { reply, .. }) => {
                self.on_ec_shard_read(ctx, shard, reply);
            }

            // ---- shadows ----
            (
                Pending::ShadowCreate {
                    seg,
                    provider,
                    target,
                },
                Msg::CreateShadowR { result, .. },
            ) => match result {
                Ok(shadow) => {
                    if let Some(f) = &mut self.file {
                        f.shadows.insert(
                            seg,
                            ShadowRef {
                                provider,
                                shadow,
                                target,
                            },
                        );
                        if seg == f.entry.file.index_segment() {
                            f.index_owner = Some(provider);
                        }
                    }
                    match self.op.as_ref().map(|(_, _, p, _)| p) {
                        Some(Phase::Writing { .. }) => self.continue_write(ctx),
                        Some(Phase::Committing(CommitStage::Parity { .. })) => {
                            self.issue_parity_write(ctx, seg)
                        }
                        Some(Phase::Committing(CommitStage::IndexShadow)) => {
                            self.issue_index_write(ctx)
                        }
                        _ => {}
                    }
                }
                Err(e) => {
                    // Owner may have lost the base version (stale cache):
                    // clear and retry.
                    if let Some(f) = &mut self.file {
                        f.owners.remove(&seg);
                    }
                    if matches!(
                        self.op.as_ref().map(|(_, _, p, _)| p),
                        Some(Phase::Committing(_))
                    ) {
                        self.abort_commit(ctx, e);
                    } else {
                        self.retry_or_fail(ctx, e);
                    }
                }
            },
            (Pending::ShadowWrite { extent }, Msg::WriteShadowR { result, .. }) => {
                match result {
                    Ok(()) => {
                        if extent == usize::MAX {
                            // Index write inside the commit flow.
                            self.issue_commit_begin(ctx);
                        } else if extent == PARITY_EXTENT {
                            // One parity shard is fully staged; the last
                            // one advances the commit to the index leg.
                            let done = if let Some((
                                _,
                                _,
                                Phase::Committing(CommitStage::Parity { outstanding }),
                                _,
                            )) = &mut self.op
                            {
                                *outstanding -= 1;
                                *outstanding == 0
                            } else {
                                false
                            };
                            if done {
                                if let Some((_, _, Phase::Committing(stage), _)) = &mut self.op
                                {
                                    *stage = CommitStage::IndexShadow;
                                }
                                self.issue_index_shadow(ctx);
                            }
                        } else {
                            if let Some((_, _, Phase::Writing { outstanding, .. }, _)) =
                                &mut self.op
                            {
                                *outstanding -= 1;
                            }
                            // A finished chunk frees a slot in the
                            // extent's pipeline window; refill it.
                            self.issue_next_chunk(ctx, extent);
                            self.maybe_finish_write(ctx);
                        }
                    }
                    Err(e) => {
                        if matches!(
                            self.op.as_ref().map(|(_, _, p, _)| p),
                            Some(Phase::Committing(_))
                        ) {
                            self.abort_commit(ctx, e);
                        } else {
                            self.retry_or_fail(ctx, e);
                        }
                    }
                }
            }

            // ---- 2PC ----
            (Pending::CommitBegin, Msg::NsCommitBeginR { result, .. }) => match result {
                Ok(()) => self.issue_prepare(ctx),
                Err(Error::LeaseHeld) => {
                    // Another client is mid-commit: our shadows are still
                    // valid, so just retry approval after a backoff.
                    let budget = if let Some((_, _, _, attempts)) = &mut self.op {
                        *attempts += 1;
                        *attempts < 3 * MAX_ATTEMPTS
                    } else {
                        false
                    };
                    if budget {
                        let max = self.costs.rpc_timeout.as_nanos().max(2) / 4;
                        let backoff = Dur::nanos(ctx.rng().gen_range(1..max));
                        ctx.set_timer(backoff, Msg::Tick(Tick::CommitBeginRetry));
                    } else {
                        self.abort_commit(ctx, Error::LeaseHeld);
                    }
                }
                Err(e) => self.abort_commit(ctx, e),
            },
            (Pending::Prepare, Msg::PrepareR { result, .. }) => {
                let Some((_, _, Phase::Committing(CommitStage::Prepare { outstanding, failed }), _)) =
                    &mut self.op
                else {
                    return;
                };
                *outstanding -= 1;
                if result.is_err() {
                    *failed = true;
                }
                if *outstanding == 0 {
                    let failed = *failed;
                    if failed {
                        self.abort_commit(ctx, result.err().unwrap_or(Error::VersionConflict));
                    } else {
                        self.issue_commit_phase(ctx);
                    }
                }
            }
            (Pending::Commit2, Msg::CommitR { .. }) => {
                let Some((_, _, Phase::Committing(CommitStage::Commit { outstanding }), _)) =
                    &mut self.op
                else {
                    return;
                };
                *outstanding -= 1;
                if *outstanding == 0 {
                    self.issue_commit_end(ctx);
                }
            }
            (Pending::CommitEnd, Msg::NsCommitEndR { result, .. }) => match result {
                Ok(()) => self.finish_commit(ctx),
                Err(e) => self.complete_op(ctx, Some(e), 0, None),
            },
            (Pending::EagerSync, Msg::SyncDone { .. }) => {
                let Some((_, _, Phase::Committing(CommitStage::Eager { outstanding }), _)) =
                    &mut self.op
                else {
                    return;
                };
                *outstanding -= 1;
                if *outstanding == 0 {
                    self.conclude_commit(ctx);
                }
            }

            // ---- versioning-off writes ----
            (Pending::DirectWrite, Msg::DirectWriteR { result, .. }) => match result {
                Ok(()) => {
                    if let Some((_, _, Phase::Writing { outstanding, .. }, _)) = &mut self.op {
                        *outstanding -= 1;
                    }
                    self.maybe_finish_write(ctx);
                }
                Err(e) => self.retry_or_fail(ctx, e),
            },

            // ---- deletes ----
            (Pending::Delete, Msg::DeleteSegR { .. }) => {
                if let Some((_, _, Phase::Unlinking { outstanding, .. }, _)) = &mut self.op {
                    *outstanding = 0;
                }
                self.continue_unlink(ctx);
            }

            // Type mismatch (shouldn't happen): drop.
            _ => {}
        }
    }

    /// Append retry: after refreshing entry + index, redo the write.
    fn redo_append_write(&mut self, ctx: &mut impl Transport) {
        let payload = self
            .append_payload
            .clone()
            .expect("append retry has payload");
        let offset = self.file.as_ref().map(|f| f.index.size).unwrap_or(0);
        self.start_write(ctx, offset, payload);
    }

    /// Unlink: index segment read resolved.
    fn on_unlink_index(&mut self, ctx: &mut impl Transport, reply: ReadReply, owner_known: bool) {
        match reply {
            ReadReply::Data { data, .. } => {
                let segs: Vec<SegId> = data
                    .as_deref()
                    .and_then(|b| decode_index(b).ok())
                    .map(|ix| {
                        ix.segments
                            .iter()
                            .chain(ix.parity.iter()) // EC parity shards too
                            .map(|e| e.seg)
                            .collect()
                    })
                    .unwrap_or_default();
                if let Some((_, _, Phase::Unlinking { index, to_locate, .. }, _)) = &mut self.op {
                    *index = None;
                    to_locate.extend(segs);
                }
                self.continue_unlink(ctx);
            }
            ReadReply::Redirect(owners) => {
                let seg = {
                    let Some((_, _, Phase::Unlinking { entry, .. }, _)) = &self.op else {
                        return;
                    };
                    entry
                        .as_ref()
                        .map(|e| e.file.index_segment())
                        .expect("unlink entry known")
                };
                let Some(owner) = self.choose_owner(&owners, None, ctx.rng()) else {
                    self.continue_unlink(ctx);
                    return;
                };
                let req = self.fresh_req();
                self.rpc(
                    ctx,
                    owner,
                    Msg::ReadSeg {
                        req,
                        seg,
                        offset: 0,
                        len: u64::MAX,
                        min_version: None,
                        allow_redirect: false,
                    },
                    Pending::IndexRead { owner_known: true },
                );
            }
            ReadReply::Err(_) => {
                let _ = owner_known;
                // Cannot read the index: delete what we can (the index
                // segment's own owners will age out of location tables).
                self.continue_unlink(ctx);
            }
        }
    }

    fn on_timeout(&mut self, ctx: &mut impl Transport, req: ReqId) {
        self.resends.remove(&req);
        let Some((target, pending)) = self.pending.remove(&req) else {
            return; // reply arrived first
        };
        // In resilient mode (same-request resends enabled) the request
        // was already replayed with backoff; the target is now presumed
        // down, which the typed error states. The classic path keeps
        // `Timeout` so seeded simulation output is unchanged.
        let timeout_err =
            if self.rpc_resends > 0 { Error::Unavailable } else { Error::Timeout };
        // Suspect the unresponsive node: drop it from the local view (it
        // will be re-admitted by its next heartbeat if it is actually
        // alive) and from cached owner lists, so retries pick another
        // replica instead of hammering a dead provider. Namespace nodes
        // are not providers — instead of view eviction, a timed-out
        // shard server flips that shard's sticky standby flag so the
        // retry reaches the survivor.
        if self.is_ns_node(target) {
            self.flip_ns_route(target);
        } else if self.view.remove(target) {
            self.rebuild_ring();
        }
        if let Some(f) = &mut self.file {
            for owners in f.owners.values_mut() {
                owners.retain(|(id, _)| *id != target);
            }
            f.owners.retain(|_, v| !v.is_empty());
        }
        ctx.metrics().count("client.rpc_timeouts", 1);
        let kind = match &pending {
            Pending::Ns => "ns",
            Pending::IndexRead { .. } => "index_read",
            Pending::LocQuery { .. } => "loc_query",
            Pending::DataRead { .. } => "data_read",
            Pending::ShadowCreate { .. } => "shadow_create",
            Pending::ShadowWrite { .. } => "shadow_write",
            Pending::DirectWrite => "direct_write",
            Pending::Prepare => "prepare",
            Pending::Commit2 => "commit",
            Pending::CommitBegin => "commit_begin",
            Pending::CommitEnd => "commit_end",
            Pending::Backup { .. } => "backup",
            Pending::Delete => "delete",
            Pending::EagerSync => "eager_sync",
            Pending::EcLoc { .. } => "ec_loc",
            Pending::EcShard { .. } => "ec_shard",
        };
        ctx.metrics().count_labeled("client.timeout", kind, 1);
        ctx.record(TelemetryEvent::Timeout {
            span: self.cur_span,
            kind,
        });
        match pending {
            Pending::Backup { .. } => {
                // BackupDeadline handles completion; nothing to do.
            }
            Pending::EcLoc { shard } | Pending::EcShard { shard } => {
                // One shard of a degraded read went dark — the code
                // tolerates up to m of these before the read fails.
                self.ec_shard_failed(ctx, shard);
            }
            Pending::Prepare | Pending::Commit2 | Pending::CommitBegin
            | Pending::CommitEnd => {
                self.abort_commit(ctx, timeout_err);
            }
            Pending::EagerSync => {
                if let Some((_, _, Phase::Committing(CommitStage::Eager { outstanding }), _)) =
                    &mut self.op
                {
                    *outstanding -= 1;
                    if *outstanding == 0 {
                        self.conclude_commit(ctx);
                    }
                }
            }
            Pending::Delete => {
                if let Some((_, _, Phase::Unlinking { outstanding, .. }, _)) = &mut self.op {
                    *outstanding = 0;
                }
                self.continue_unlink(ctx);
            }
            _ => {
                self.retry_or_fail(ctx, timeout_err);
            }
        }
    }
}

/// Runtime entry points: shared by the simulator (via the thin [`Node`]
/// impl below) and the real-process runtime (`sorrentoctl` drives the
/// same machine over TCP).
impl SorrentoClient {
    /// Bring the client online and issue the workload's first op.
    pub fn handle_start(&mut self, ctx: &mut impl Transport) {
        self.my_machine = ctx.machine_of(ctx.id());
        ctx.set_timer(self.costs.heartbeat_interval, Msg::Tick(Tick::Membership));
        if !self.ns_shards.is_empty() {
            // Sharded deployments only: unsharded seeded runs must stay
            // byte-identical, so the refresh timer never exists there.
            ctx.set_timer(self.costs.heartbeat_interval, Msg::Tick(Tick::ShardMapRefresh));
        }
        if self.membership_mode == MembershipMode::Swim {
            // Gossip deployments only (same byte-identical rule): no
            // heartbeats will arrive, so pull digests instead.
            ctx.set_timer(self.costs.heartbeat_interval, Msg::Tick(Tick::MembersRefresh));
        }
        self.pull_next_op(ctx);
    }

    /// Process one delivered message or fired timer.
    pub fn handle_message(&mut self, from: NodeId, msg: Msg, ctx: &mut impl Transport) {
        match msg {
            Msg::Heartbeat(hb) => {
                self.view.observe(from, hb, ctx.now());
                self.rebuild_ring();
            }
            Msg::Tick(Tick::Membership) => {
                let departed = self.view.expire(ctx.now(), self.costs.heartbeat_interval);
                if !departed.is_empty() {
                    self.rebuild_ring();
                }
                ctx.set_timer(self.costs.heartbeat_interval, Msg::Tick(Tick::Membership));
            }
            Msg::Tick(Tick::MembersRefresh) => {
                // SWIM mode: pull a membership digest from the next
                // configured provider (skipping none — dead ones simply
                // don't answer and the next round moves on).
                if !self.swim_seeds.is_empty() {
                    let peer = self.swim_seeds[self.members_peer % self.swim_seeds.len()];
                    self.members_peer += 1;
                    self.members_req += 1;
                    ctx.send(peer, Msg::MembersPull { req: self.members_req });
                }
                ctx.set_timer(self.costs.heartbeat_interval, Msg::Tick(Tick::MembersRefresh));
            }
            Msg::MembersDigest { req: _, updates } => {
                // Fold the gossiper's table into the local view: alive
                // members with payloads refresh the view, dead ones are
                // evicted. Suspects stay (they may yet refute).
                let now = ctx.now();
                for u in &updates {
                    match u.state {
                        SwimState::Alive | SwimState::Suspect => {
                            if let Some(hb) = u.payload {
                                self.view.observe(u.node, hb, now);
                            }
                        }
                        SwimState::Dead => {
                            self.view.remove(u.node);
                        }
                    }
                }
                self.rebuild_ring();
            }
            Msg::Tick(Tick::NextOp) => {
                // Think finished, or we were waiting for providers.
                if matches!(
                    self.op.as_ref().map(|(_, _, p, _)| p),
                    Some(Phase::Thinking)
                ) {
                    self.complete_op(ctx, None, 0, None);
                } else {
                    self.pull_next_op(ctx);
                }
            }
            Msg::Tick(Tick::AppendRetry) => {
                if self.op.is_some() {
                    self.refresh_for_append(ctx);
                }
            }
            Msg::Tick(Tick::CommitBeginRetry) => {
                if matches!(
                    self.op.as_ref().map(|(_, _, p, _)| p),
                    Some(Phase::Committing(_))
                ) {
                    self.issue_commit_begin(ctx);
                }
            }
            Msg::Tick(Tick::RpcTimeout(req)) => self.on_timeout(ctx, req),
            Msg::Tick(Tick::RpcResend(req)) => self.on_resend(ctx, req),
            Msg::Tick(Tick::OpDeadline(gen)) => {
                // Only the op that armed this deadline may be killed by
                // it; a successor op bumps `op_gen`.
                if self.op.is_some() && gen == self.op_gen {
                    ctx.metrics().count("client.deadline_exceeded", 1);
                    self.complete_op(ctx, Some(Error::DeadlineExceeded), 0, None);
                }
            }
            Msg::Tick(Tick::BackupDeadline(req)) => self.on_backup_deadline(ctx, req),
            Msg::Tick(Tick::ShardMapRefresh) => {
                if !self.ns_shards.is_empty() {
                    // Fire-and-forget: no pending entry, the periodic
                    // timer is its own retry.
                    let req = self.fresh_req();
                    let to = self.ns_route(0);
                    ctx.send(to, Msg::ShardMapQuery { req });
                    ctx.set_timer(
                        self.costs.heartbeat_interval,
                        Msg::Tick(Tick::ShardMapRefresh),
                    );
                }
            }
            Msg::Tick(_) => {}
            Msg::ShardMapR { rows, .. } => {
                if !rows.is_empty() && !self.ns_shards.is_empty() {
                    let rows = rows
                        .into_iter()
                        .map(|(_, primary, standby)| crate::nsmap::ShardInfo { primary, standby })
                        .collect();
                    // A promoted standby now appears as its shard's
                    // primary, so the sticky flips reset.
                    self.set_ns_shards(crate::nsmap::NsShardMap::from_rows(rows));
                }
            }
            Msg::BackupQueryR { req, version, .. } => {
                if let Some(hits) = self.backup_hits.get_mut(&req) {
                    hits.push((from, version));
                }
            }
            other => {
                if let Some(req) = reply_req(&other) {
                    self.on_reply(ctx, from, req, other);
                }
            }
        }
    }
}

impl Node<Msg> for SorrentoClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.handle_start(ctx)
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        self.handle_message(from, msg, ctx)
    }
}

/// The correlation id of a reply message, if it is one.
fn reply_req(msg: &Msg) -> Option<ReqId> {
    match msg {
        Msg::NsLookupR { req, .. }
        | Msg::NsCreateR { req, .. }
        | Msg::NsMkdirR { req, .. }
        | Msg::NsRenameR { req, .. }
        | Msg::NsRemoveR { req, .. }
        | Msg::NsListR { req, .. }
        | Msg::NsCommitBeginR { req, .. }
        | Msg::NsCommitEndR { req, .. }
        | Msg::LocQueryR { req, .. }
        | Msg::ReadSegR { req, .. }
        | Msg::CreateShadowR { req, .. }
        | Msg::WriteShadowR { req, .. }
        | Msg::ReadShadowR { req, .. }
        | Msg::PrepareR { req, .. }
        | Msg::CommitR { req, .. }
        | Msg::DirectWriteR { req, .. }
        | Msg::DeleteSegR { req, .. }
        | Msg::SyncDone { req, .. } => Some(*req),
        _ => None,
    }
}
