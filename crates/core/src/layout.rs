//! File data organization (§3.2, Figure 3): a logical file is a linear
//! byte array assembled from variable-length data segments according to
//! an *index segment*, in one of three modes — Linear, Striped, Hybrid.
//!
//! Segment sizing follows the paper exactly: the i-th Linear segment is
//! `min{512, 8^⌊i/8⌋}` MB; in Hybrid mode the segments of the i-th group
//! (of `j` stripes) are `min{512, 8^⌊i·j/8⌋}` MB. Small files up to
//! [`ATTACH_MAX`] bytes are *attached* inside the index segment so one
//! transfer serves both metadata and data.

use crate::types::{EcParams, FileId, FileOptions, Organization, SegId, Version};

/// Maximum attachable file size: "Currently, the maximum attachable file
/// size is set to 60KB to fit in a UDP packet." (§3.2)
pub const ATTACH_MAX: u64 = 60 * 1024;

/// Default stripe unit ("fixed block" cell size in Figure 3).
pub const STRIPE_UNIT: u64 = 64 * 1024;

const MB: u64 = 1024 * 1024;
/// Cap on any single segment's size (512 MB).
pub const MAX_SEGMENT: u64 = 512 * MB;

/// Size of the `i`-th segment in Linear mode: `min{512, 8^⌊i/8⌋}` MB.
pub fn linear_segment_size(i: u64) -> u64 {
    let exp = i / 8;
    if exp >= 3 {
        return MAX_SEGMENT;
    }
    (8u64.pow(exp as u32) * MB).min(MAX_SEGMENT)
}

/// Size of each segment in the `i`-th Hybrid group of `j` stripes:
/// `min{512, 8^⌊i·j/8⌋}` MB.
pub fn hybrid_segment_size(group: u64, group_stripes: u64) -> u64 {
    let exp = group * group_stripes / 8;
    if exp >= 3 {
        return MAX_SEGMENT;
    }
    (8u64.pow(exp as u32) * MB).min(MAX_SEGMENT)
}

/// One data segment as recorded in an index segment: identity, the
/// version belonging to the current file version (§3.5), and current
/// length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegEntry {
    /// Location-independent segment id.
    pub seg: SegId,
    /// This file version's version of the segment.
    pub version: Version,
    /// Bytes currently stored in the segment.
    pub len: u64,
}

/// A contiguous piece of a file request mapped onto one data segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Target data segment.
    pub seg: SegId,
    /// Segment's version for reads ([`Version::INITIAL`] for segments
    /// that do not exist yet).
    pub version: Version,
    /// Index of the segment in the flat segment list.
    pub seg_index: usize,
    /// Offset within the data segment.
    pub seg_offset: u64,
    /// Length of this piece.
    pub len: u64,
    /// Offset within the logical file.
    pub file_offset: u64,
    /// Whether the segment must be created as part of this write.
    pub new_segment: bool,
}

/// How a write lands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WritePlan {
    /// The file stays attached: write inline into the index segment.
    Attached,
    /// The write maps onto data segments; if `detach_bytes > 0`, the
    /// previously attached bytes `[0, detach_bytes)` must first be
    /// rewritten at file offset 0 through the same planning call.
    Extents {
        /// Previously attached bytes to spill into data segments.
        detach_bytes: u64,
        /// The extents covering (detached bytes ∪ requested write).
        extents: Vec<Extent>,
    },
}

/// The index segment: everything needed to assemble the byte array
/// (§3.2), plus the file's management options, and inline data for small
/// files.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSegment {
    /// Owning file (the index segment's own SegId).
    pub file: FileId,
    /// File options fixed at creation.
    pub options: FileOptions,
    /// Logical file size in bytes.
    pub size: u64,
    /// Flat list of data segments (grouping is implied by the mode).
    pub segments: Vec<SegEntry>,
    /// Parity segments for erasure-coded files (`options.ec`): `m`
    /// entries, each holding the Reed-Solomon parity of the `k` data
    /// segments (which double as the code's data shards — the striped
    /// round-robin mapping makes segment `i` exactly shard `i`). Empty
    /// for replicated files.
    pub parity: Vec<SegEntry>,
    /// Inline contents for attached small files (`None` once detached or
    /// when synthetic).
    pub attached: Option<Vec<u8>>,
    /// Whether the file is attached (size tracked even when synthetic).
    pub is_attached: bool,
}

impl IndexSegment {
    /// A fresh, empty file.
    pub fn new(file: FileId, options: FileOptions) -> IndexSegment {
        IndexSegment {
            file,
            options,
            size: 0,
            segments: Vec::new(),
            parity: Vec::new(),
            attached: None,
            is_attached: true,
        }
    }

    /// Map a read onto the data segments (attached files return no
    /// extents; callers read inline data instead). Clamped to file size.
    pub fn locate(&self, offset: u64, len: u64) -> Vec<Extent> {
        let end = (offset + len).min(self.size);
        if self.is_attached || offset >= end {
            return Vec::new();
        }
        self.map_range(offset, end, false)
    }

    /// Whether a read of `[offset, offset+len)` is served inline.
    pub fn read_is_inline(&self, offset: u64, len: u64) -> bool {
        let _ = (offset, len);
        self.is_attached
    }

    /// Plan a write of `[offset, offset+len)`. May switch the file from
    /// attached to segmented; in that case the plan also covers spilling
    /// the previously attached bytes.
    pub fn plan_write(
        &mut self,
        offset: u64,
        len: u64,
        mut fresh_seg: impl FnMut() -> SegId,
    ) -> WritePlan {
        let end = offset + len;
        if self.is_attached && end <= ATTACH_MAX && !matches!(
            self.options.organization,
            Organization::Striped { .. }
        ) {
            // Stays inline. (Striped files are never attached: their
            // creation declares parallel-I/O intent.)
            return WritePlan::Attached;
        }
        let detach_bytes = if self.is_attached { self.size } else { 0 };
        self.is_attached = false;
        let plan_start = if detach_bytes > 0 { 0 } else { offset };
        let plan_end = end.max(detach_bytes);
        // Grow the segment list to cover plan_end.
        self.ensure_segments(plan_end, &mut fresh_seg);
        let extents = self.map_range(plan_start, plan_end, true);
        WritePlan::Extents {
            detach_bytes,
            extents,
        }
    }

    /// Record a write's effect on file size and segment lengths (called
    /// after the write is planned/executed).
    pub fn apply_write(&mut self, offset: u64, len: u64) {
        let end = offset + len;
        self.size = self.size.max(end);
        if self.is_attached {
            return;
        }
        for e in self.map_range(offset, end, false) {
            let entry = &mut self.segments[e.seg_index];
            entry.len = entry.len.max(e.seg_offset + e.len);
        }
    }

    /// Update a data segment's version after commit (§3.5: "If part of a
    /// file is changed, only the modified segments and the index segment
    /// will have their version numbers advanced").
    pub fn set_segment_version(&mut self, seg: SegId, version: Version) {
        for entry in self.segments.iter_mut().chain(self.parity.iter_mut()) {
            if entry.seg == seg {
                entry.version = version;
            }
        }
    }

    /// Number of data segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Estimated wire size of this index segment (for NIC charging).
    pub fn wire_size(&self) -> u64 {
        96 + 40 * (self.segments.len() + self.parity.len()) as u64
            + self.attached.as_ref().map(|d| d.len() as u64).unwrap_or(0)
            + if self.is_attached && self.attached.is_none() {
                self.size // synthetic attached payload still travels
            } else {
                0
            }
    }

    // ------------------------------------------------------------------
    // Erasure coding (EC files are Striped with k stripes; segment i IS
    // data shard i of the systematic code, so healthy reads never touch
    // the codec).
    // ------------------------------------------------------------------

    /// The file's EC parameters, if it is erasure-coded.
    pub fn ec_params(&self) -> Option<EcParams> {
        self.options.ec
    }

    /// Padded shard length for the code: every shard (data and parity)
    /// is treated as this many bytes, zero-padding data shards whose
    /// stored length is shorter. Shard 0 always holds the most stripe
    /// units under round-robin, so its span is the pad width.
    pub fn ec_shard_len(&self) -> u64 {
        let Some(p) = self.options.ec else { return 0 };
        ec_padded_shard_len(self.size, p.k as u64)
    }

    /// Make sure the `m` parity entries exist (first EC commit creates
    /// them with the same fresh-SegId discipline as data segments).
    pub fn ensure_parity(&mut self, mut fresh_seg: impl FnMut() -> SegId) {
        let Some(p) = self.options.ec else { return };
        while self.parity.len() < p.m as usize {
            self.parity.push(SegEntry {
                seg: fresh_seg(),
                version: Version::INITIAL,
                len: 0,
            });
        }
    }

    /// Split whole-file contents into the k data shards, each padded
    /// with zeros to [`IndexSegment::ec_shard_len`]. `data` shorter than
    /// the file size is implicitly zero-extended (fresh regions of a
    /// sparse write are zeros on the providers too).
    pub fn ec_data_shards(&self, data: &[u8]) -> Vec<Vec<u8>> {
        let Some(p) = self.options.ec else {
            return Vec::new();
        };
        let k = p.k as u64;
        let pad = self.ec_shard_len() as usize;
        let mut shards = vec![vec![0u8; pad]; p.k as usize];
        let mut block = 0u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let take = (STRIPE_UNIT as usize).min(data.len() - pos);
            let shard = (block % k) as usize;
            let off = (block / k * STRIPE_UNIT) as usize;
            shards[shard][off..off + take].copy_from_slice(&data[pos..pos + take]);
            pos += take;
            block += 1;
        }
        shards
    }

    fn ensure_segments(&mut self, end: u64, fresh_seg: &mut impl FnMut() -> SegId) {
        match self.options.organization {
            Organization::Striped { stripes, .. } => {
                while self.segments.len() < stripes as usize {
                    self.segments.push(SegEntry {
                        seg: fresh_seg(),
                        version: Version::INITIAL,
                        len: 0,
                    });
                }
            }
            Organization::Linear => {
                while self.linear_capacity() < end {
                    let i = self.segments.len() as u64;
                    let _cap = linear_segment_size(i);
                    self.segments.push(SegEntry {
                        seg: fresh_seg(),
                        version: Version::INITIAL,
                        len: 0,
                    });
                }
            }
            Organization::Hybrid { group_stripes } => {
                while self.hybrid_capacity(group_stripes) < end {
                    // Add one full group at a time.
                    for _ in 0..group_stripes {
                        self.segments.push(SegEntry {
                            seg: fresh_seg(),
                            version: Version::INITIAL,
                            len: 0,
                        });
                    }
                }
            }
        }
    }

    fn linear_capacity(&self) -> u64 {
        (0..self.segments.len() as u64).map(linear_segment_size).sum()
    }

    fn hybrid_capacity(&self, group_stripes: u32) -> u64 {
        let groups = self.segments.len() as u64 / group_stripes as u64;
        (0..groups)
            .map(|g| hybrid_segment_size(g, group_stripes as u64) * group_stripes as u64)
            .sum()
    }

    /// Map `[start, end)` of the file onto segment extents. When
    /// `for_write` is set, segments beyond their current length are fair
    /// game (marked `new_segment` when len == 0 and version INITIAL).
    fn map_range(&self, start: u64, end: u64, for_write: bool) -> Vec<Extent> {
        let mut out = Vec::new();
        match self.options.organization {
            Organization::Linear => {
                let mut seg_base = 0u64;
                for (i, entry) in self.segments.iter().enumerate() {
                    let cap = linear_segment_size(i as u64);
                    let seg_end = seg_base + cap;
                    let s = start.max(seg_base);
                    let e = end.min(seg_end);
                    if s < e {
                        out.push(Extent {
                            seg: entry.seg,
                            version: entry.version,
                            seg_index: i,
                            seg_offset: s - seg_base,
                            len: e - s,
                            file_offset: s,
                            new_segment: for_write && entry.version == Version::INITIAL,
                        });
                    }
                    seg_base = seg_end;
                    if seg_base >= end {
                        break;
                    }
                }
            }
            Organization::Striped { stripes, .. } => {
                self.map_striped(&mut out, start, end, 0, stripes as u64, 0, for_write);
            }
            Organization::Hybrid { group_stripes } => {
                let j = group_stripes as u64;
                let mut group_base = 0u64;
                let groups = self.segments.len() as u64 / j;
                for g in 0..groups {
                    let per_seg = hybrid_segment_size(g, j);
                    let group_cap = per_seg * j;
                    let group_end = group_base + group_cap;
                    let s = start.max(group_base);
                    let e = end.min(group_end);
                    if s < e {
                        self.map_striped(
                            &mut out,
                            s - group_base,
                            e - group_base,
                            (g * j) as usize,
                            j,
                            group_base,
                            for_write,
                        );
                    }
                    group_base = group_end;
                    if group_base >= end {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Round-robin block mapping over `nstripes` segments starting at
    /// flat index `first`, for group-relative range `[start, end)` whose
    /// file-absolute base is `file_base`.
    #[allow(clippy::too_many_arguments)]
    fn map_striped(
        &self,
        out: &mut Vec<Extent>,
        start: u64,
        end: u64,
        first: usize,
        nstripes: u64,
        file_base: u64,
        for_write: bool,
    ) {
        let mut pos = start;
        while pos < end {
            let block = pos / STRIPE_UNIT;
            let within = pos % STRIPE_UNIT;
            let stripe = (block % nstripes) as usize;
            let stripe_block = block / nstripes;
            let take = (STRIPE_UNIT - within).min(end - pos);
            let entry = &self.segments[first + stripe];
            out.push(Extent {
                seg: entry.seg,
                version: entry.version,
                seg_index: first + stripe,
                seg_offset: stripe_block * STRIPE_UNIT + within,
                len: take,
                file_offset: file_base + pos,
                new_segment: for_write && entry.version == Version::INITIAL,
            });
            pos += take;
        }
    }
}

/// Padded per-shard length for a `size`-byte file striped over `k`
/// shards in [`STRIPE_UNIT`] blocks: the span of shard 0 (which always
/// holds the most blocks under round-robin), rounded up to whole
/// blocks. All shards of the code are padded to this width.
pub fn ec_padded_shard_len(size: u64, k: u64) -> u64 {
    if size == 0 || k == 0 {
        return 0;
    }
    let total_blocks = size.div_ceil(STRIPE_UNIT);
    total_blocks.div_ceil(k) * STRIPE_UNIT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Error;

    fn fresh_gen() -> impl FnMut() -> SegId {
        let mut n = 0u64;
        move || {
            n += 1;
            SegId::derive(9, n, 0)
        }
    }

    fn opts(org: Organization) -> FileOptions {
        FileOptions {
            organization: org,
            ..FileOptions::default()
        }
    }

    #[test]
    fn linear_sizing_formula_matches_paper() {
        // min{512, 8^⌊i/8⌋} MB
        assert_eq!(linear_segment_size(0), MB);
        assert_eq!(linear_segment_size(7), MB);
        assert_eq!(linear_segment_size(8), 8 * MB);
        assert_eq!(linear_segment_size(15), 8 * MB);
        assert_eq!(linear_segment_size(16), 64 * MB);
        assert_eq!(linear_segment_size(24), 512 * MB);
        assert_eq!(linear_segment_size(100), 512 * MB);
    }

    #[test]
    fn hybrid_sizing_formula_matches_paper() {
        // min{512, 8^⌊i·j/8⌋} MB with j = 4
        assert_eq!(hybrid_segment_size(0, 4), MB);
        assert_eq!(hybrid_segment_size(1, 4), MB);
        assert_eq!(hybrid_segment_size(2, 4), 8 * MB);
        assert_eq!(hybrid_segment_size(4, 4), 64 * MB);
        assert_eq!(hybrid_segment_size(6, 4), 512 * MB);
        assert_eq!(hybrid_segment_size(99, 4), 512 * MB);
    }

    #[test]
    fn small_files_stay_attached() {
        let mut ix = IndexSegment::new(FileId(1), opts(Organization::Linear));
        let plan = ix.plan_write(0, ATTACH_MAX, fresh_gen());
        assert_eq!(plan, WritePlan::Attached);
        ix.apply_write(0, ATTACH_MAX);
        assert_eq!(ix.size, ATTACH_MAX);
        assert!(ix.is_attached);
        assert_eq!(ix.segment_count(), 0);
        assert!(ix.locate(0, 100).is_empty());
    }

    #[test]
    fn growth_past_attach_max_detaches() {
        let mut ix = IndexSegment::new(FileId(1), opts(Organization::Linear));
        assert_eq!(ix.plan_write(0, 1000, fresh_gen()), WritePlan::Attached);
        ix.apply_write(0, 1000);
        let plan = ix.plan_write(1000, ATTACH_MAX, fresh_gen());
        match plan {
            WritePlan::Extents {
                detach_bytes,
                extents,
            } => {
                assert_eq!(detach_bytes, 1000);
                // One extent covering [0, 1000+ATTACH_MAX) in segment 0.
                assert_eq!(extents.len(), 1);
                assert_eq!(extents[0].file_offset, 0);
                assert_eq!(extents[0].len, 1000 + ATTACH_MAX);
                assert!(extents[0].new_segment);
            }
            _ => panic!("expected detach"),
        }
        ix.apply_write(1000, ATTACH_MAX);
        assert!(!ix.is_attached);
        assert_eq!(ix.segment_count(), 1);
    }

    #[test]
    fn linear_write_spans_segment_boundary() {
        let mut ix = IndexSegment::new(FileId(1), opts(Organization::Linear));
        // Write 1.5 MB at offset 0.75 MB: [768K, 2304K) spans the three
        // 1 MB segments 0, 1 and 2.
        let plan = ix.plan_write(768 * 1024, 1536 * 1024, fresh_gen());
        let WritePlan::Extents { extents, .. } = plan else {
            panic!("expected extents");
        };
        assert_eq!(extents.len(), 3);
        assert_eq!(extents[0].seg_index, 0);
        assert_eq!(extents[0].seg_offset, 768 * 1024);
        assert_eq!(extents[0].len, 256 * 1024);
        assert_eq!(extents[1].seg_index, 1);
        assert_eq!(extents[1].seg_offset, 0);
        assert_eq!(extents[1].len, MB);
        assert_eq!(extents[2].seg_index, 2);
        assert_eq!(extents[2].len, 256 * 1024);
        ix.apply_write(768 * 1024, 1536 * 1024);
        assert_eq!(ix.size, 2304 * 1024);
        assert_eq!(ix.segments[0].len, MB);
        assert_eq!(ix.segments[1].len, MB);
        assert_eq!(ix.segments[2].len, 256 * 1024);
    }

    #[test]
    fn striped_round_robin_mapping() {
        let mut ix = IndexSegment::new(
            FileId(1),
            opts(Organization::Striped {
                stripes: 4,
                max_size: 16 * MB,
            }),
        );
        let plan = ix.plan_write(0, 4 * STRIPE_UNIT + 100, fresh_gen());
        let WritePlan::Extents { extents, .. } = plan else {
            panic!("expected extents");
        };
        // Stripes are created eagerly: all 4 segments exist.
        assert_eq!(ix.segment_count(), 4);
        // Blocks 0..4 round-robin, then 100 bytes into block 4 (stripe 0).
        assert_eq!(extents.len(), 5);
        assert_eq!(extents[0].seg_index, 0);
        assert_eq!(extents[1].seg_index, 1);
        assert_eq!(extents[2].seg_index, 2);
        assert_eq!(extents[3].seg_index, 3);
        assert_eq!(extents[4].seg_index, 0);
        assert_eq!(extents[4].seg_offset, STRIPE_UNIT);
        assert_eq!(extents[4].len, 100);
    }

    #[test]
    fn striped_mid_block_read() {
        let mut ix = IndexSegment::new(
            FileId(1),
            opts(Organization::Striped {
                stripes: 2,
                max_size: 4 * MB,
            }),
        );
        ix.plan_write(0, 4 * STRIPE_UNIT, fresh_gen());
        ix.apply_write(0, 4 * STRIPE_UNIT);
        for e in &mut ix.segments {
            e.version = Version(1);
        }
        // Read 10 bytes straddling the end of block 1 (stripe 1).
        let ext = ix.locate(2 * STRIPE_UNIT - 5, 10);
        assert_eq!(ext.len(), 2);
        assert_eq!(ext[0].seg_index, 1);
        assert_eq!(ext[0].seg_offset, STRIPE_UNIT - 5);
        assert_eq!(ext[0].len, 5);
        assert_eq!(ext[1].seg_index, 0);
        assert_eq!(ext[1].seg_offset, STRIPE_UNIT);
        assert_eq!(ext[1].len, 5);
    }

    #[test]
    fn hybrid_groups_concatenate() {
        let j = 2u32;
        let mut ix = IndexSegment::new(FileId(1), opts(Organization::Hybrid { group_stripes: j }));
        // Group 0: 2 segments × 1 MB = 2 MB. Write 3 MB: needs group 1.
        let plan = ix.plan_write(0, 3 * MB, fresh_gen());
        let WritePlan::Extents { extents, .. } = plan else {
            panic!("expected extents");
        };
        assert_eq!(ix.segment_count(), 4);
        // Group 1 segments are also 1 MB (8^⌊1·2/8⌋ = 8^0).
        let in_group1: u64 = extents
            .iter()
            .filter(|e| e.seg_index >= 2)
            .map(|e| e.len)
            .sum();
        assert_eq!(in_group1, MB);
        let total: u64 = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, 3 * MB);
        // Every extent's file_offset is consistent and within bounds.
        for e in &extents {
            assert!(e.file_offset + e.len <= 3 * MB);
        }
    }

    #[test]
    fn locate_clamps_to_file_size() {
        let mut ix = IndexSegment::new(FileId(1), opts(Organization::Linear));
        ix.plan_write(0, 100 * 1024, fresh_gen());
        ix.apply_write(0, 100 * 1024);
        let ext = ix.locate(90 * 1024, 100 * 1024);
        let total: u64 = ext.iter().map(|e| e.len).sum();
        assert_eq!(total, 10 * 1024);
        assert!(ix.locate(200 * 1024, 10).is_empty());
    }

    #[test]
    fn set_segment_version_updates_entries() {
        let mut ix = IndexSegment::new(FileId(1), opts(Organization::Linear));
        let plan = ix.plan_write(0, 2 * MB, fresh_gen());
        let WritePlan::Extents { extents, .. } = plan else {
            panic!()
        };
        let target = extents[0].seg;
        ix.set_segment_version(target, Version(5));
        assert_eq!(ix.segments[0].version, Version(5));
        assert_eq!(ix.segments[1].version, Version::INITIAL);
    }

    #[test]
    fn offsets_partition_exactly() {
        // Property-style: any write plan's extents tile the request
        // exactly, with no overlap, across all three modes.
        let orgs = [
            Organization::Linear,
            Organization::Striped {
                stripes: 3,
                max_size: 64 * MB,
            },
            Organization::Hybrid { group_stripes: 3 },
        ];
        for org in orgs {
            let mut ix = IndexSegment::new(FileId(1), opts(org));
            let (off, len) = (123_456u64, 9 * MB + 777);
            let plan = ix.plan_write(off, len, fresh_gen());
            let WritePlan::Extents { extents, .. } = plan else {
                panic!()
            };
            let mut cursor = off;
            for e in &extents {
                assert_eq!(e.file_offset, cursor, "{org:?}");
                cursor += e.len;
            }
            assert_eq!(cursor, off + len, "{org:?}");
        }
        let _ = Error::NotFound; // silence unused import in cfg(test)
    }

    #[test]
    fn ec_shard_split_matches_striped_mapping() {
        let opts = FileOptions::erasure_coded(3, 2, 64 * MB);
        let mut ix = IndexSegment::new(FileId(1), opts);
        // 5 blocks + 100 bytes → blocks 0..6 round-robin over 3 shards.
        let size = 5 * STRIPE_UNIT + 100;
        ix.plan_write(0, size, fresh_gen());
        ix.apply_write(0, size);
        ix.ensure_parity(fresh_gen());
        assert_eq!(ix.parity.len(), 2);
        assert_eq!(ix.ec_shard_len(), 2 * STRIPE_UNIT);
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let shards = ix.ec_data_shards(&data);
        assert_eq!(shards.len(), 3);
        for s in &shards {
            assert_eq!(s.len() as u64, 2 * STRIPE_UNIT);
        }
        // Cross-check against the striped extent mapping: every byte of
        // the file appears in its shard at the extent's seg_offset.
        for e in ix.locate(0, size) {
            let shard = &shards[e.seg_index];
            let want = &data[e.file_offset as usize..(e.file_offset + e.len) as usize];
            let got = &shard[e.seg_offset as usize..(e.seg_offset + e.len) as usize];
            assert_eq!(got, want, "extent {e:?}");
        }
        // Pad region of the last shard is zeros.
        assert!(shards[2][(STRIPE_UNIT + 100) as usize..].iter().all(|&b| b == 0));
    }

    #[test]
    fn ec_padded_shard_len_formula() {
        assert_eq!(ec_padded_shard_len(0, 4), 0);
        assert_eq!(ec_padded_shard_len(1, 4), STRIPE_UNIT);
        assert_eq!(ec_padded_shard_len(4 * STRIPE_UNIT, 4), STRIPE_UNIT);
        assert_eq!(ec_padded_shard_len(4 * STRIPE_UNIT + 1, 4), 2 * STRIPE_UNIT);
        assert_eq!(ec_padded_shard_len(9 * STRIPE_UNIT, 4), 3 * STRIPE_UNIT);
    }

    #[test]
    fn wire_size_tracks_contents() {
        let mut ix = IndexSegment::new(FileId(1), opts(Organization::Linear));
        let empty = ix.wire_size();
        ix.plan_write(0, 10 * MB, fresh_gen());
        assert!(ix.wire_size() > empty);
    }
}
