//! The wire protocol: every message exchanged between Sorrento clients,
//! storage providers, and namespace servers, plus the local timer kinds.
//!
//! Wire sizes are modeled per variant so the simulated NICs charge
//! realistic byte counts: bulk payloads dominate data-path messages,
//! small RPCs cost roughly a header.

use sorrento_sim::{NodeId, Payload, SpanId};

use crate::layout::IndexSegment;
use crate::membership::Heartbeat;
use crate::store::{ReplicaImage, SegMeta, ShadowId, WritePayload};
use crate::types::{Error, FileId, FileOptions, SegId, Version};

/// Request correlation id (unique per issuing node).
pub type ReqId = u64;

/// Fixed modeled overhead of any RPC (headers, framing).
pub const RPC_HEADER: u64 = 120;

/// A namespace entry as returned to clients ("the inode equivalent in
/// Sorrento", §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct FileEntry {
    /// Persistent location-independent file id.
    pub file: FileId,
    /// Latest committed version.
    pub version: Version,
    /// Logical size at that version.
    pub size: u64,
    /// Whether this entry is a directory.
    pub is_dir: bool,
    /// Creation timestamp (ns of virtual time).
    pub created_ns: u64,
    /// Last-commit timestamp (ns of virtual time).
    pub modified_ns: u64,
    /// The file's creation-time options.
    pub options: FileOptions,
}

/// Reply to a read against a provider.
#[derive(Debug, Clone)]
pub enum ReadReply {
    /// The provider owns the segment and served the bytes.
    Data {
        /// Bytes covered (clamped to segment length).
        len: u64,
        /// The bytes when the segment carries real data.
        data: Option<bytes::Bytes>,
        /// Version served.
        version: Version,
    },
    /// The provider is the segment's home host but not an owner: go ask
    /// one of these owners (§3.4, Figure 7 step 3).
    Redirect(Vec<(NodeId, Version)>),
    /// Neither owner nor informed home host.
    Err(Error),
}

/// Local timer kinds (delivered to self; never on the wire).
#[derive(Debug, Clone, PartialEq)]
pub enum Tick {
    /// Provider: announce heartbeat + expire membership.
    Heartbeat,
    /// Provider: periodic location-table content refresh (§3.4.1 ev. 1).
    LocationRefresh,
    /// Provider: delayed refresh toward one newly joined provider
    /// (§3.4.1 event 2).
    JoinRefresh(NodeId),
    /// Provider: purge aged location-table garbage + expired shadows.
    Gc,
    /// Provider: home-host repair scan (discrepancy sync + degree
    /// repair).
    RepairScan,
    /// Provider: migration decision point (once per minute, §3.7.1).
    Migration,
    /// Provider: continue the active migration process with its next
    /// segment (paced).
    MigrationContinue,
    /// Client: RPC timeout for the given request.
    RpcTimeout(ReqId),
    /// Client: stop waiting for backup-query replies.
    BackupDeadline(ReqId),
    /// Client: membership bookkeeping (view expiry).
    Membership,
    /// Client: think-time elapsed; issue the next workload op.
    NextOp,
    /// Client: backoff elapsed; retry an atomic append.
    AppendRetry,
    /// Client: backoff elapsed; retry commit approval (lease contention).
    CommitBeginRetry,
    /// Namespace: lease expiry sweep.
    LeaseSweep,
    /// Client: per-operation deadline elapsed (`op_deadline` set; real
    /// runtime only). Carries the op generation it was armed for, so a
    /// deadline outliving its op cannot fail a later one.
    OpDeadline(u64),
    /// Client: resend backoff elapsed; re-issue the pending request with
    /// this id to the same target (real runtime, `rpc_resends` > 0).
    RpcResend(ReqId),
    /// Namespace primary: drain the WAL-shipping outbox to the hot
    /// standby (an empty ship doubles as a liveness beacon).
    NsShip,
    /// Namespace standby: check whether the primary's ships stopped
    /// arriving; promote when the grace window has elapsed.
    StandbyCheck,
    /// Client: periodic shard-map refresh (armed only when a shard
    /// routing table is installed, so unsharded runs stay untouched).
    ShardMapRefresh,
    /// Namespace shard: a cross-shard handshake request timed out;
    /// fail the held-up client op with `Unavailable`.
    XShardTimeout(ReqId),
    /// Provider (SWIM mode): start the next probe round.
    SwimProbe,
    /// Provider (SWIM mode): the direct-ack window for probe `seq`
    /// elapsed; fall back to indirect probes via k peers.
    SwimAckTimeout(u64),
    /// Provider (SWIM mode): the whole probe window for `seq` elapsed
    /// with no ack (direct or forwarded); suspect the target.
    SwimProbeTimeout(u64),
    /// Provider (SWIM mode): the suspicion window for `(node,
    /// incarnation)` elapsed unrefuted; confirm the node dead.
    SwimSuspectTimeout(NodeId, u64),
    /// Provider (SWIM mode): periodic anti-entropy — pull a full
    /// membership digest from one random peer.
    SwimSync,
    /// Provider (SWIM mode): export the periodic gauges that the
    /// heartbeat tick used to carry (`nN.segments`, `nN.stored_bytes`,
    /// ...). Armed only when gossip replaces the heartbeat tick, so
    /// heartbeat-mode event streams are untouched.
    GaugeExport,
    /// Client (SWIM mode): refresh the provider view by pulling a
    /// membership digest (providers no longer multicast heartbeats).
    MembersRefresh,
}

/// Every Sorrento message.
// Variant fields are self-describing wire-protocol parameters
// (req/path/offset/len/...); each variant itself is documented.
#[allow(missing_docs)]
#[derive(Debug, Clone)]
pub enum Msg {
    /// Local timer.
    Tick(Tick),

    // ---- membership (§3.3) ----
    /// Multicast provider announcement.
    Heartbeat(Heartbeat),

    // ---- namespace RPCs (§3.1) ----
    /// Resolve a path to its entry.
    NsLookup { req: ReqId, path: String },
    /// Lookup reply.
    NsLookupR { req: ReqId, result: Result<FileEntry, Error> },
    /// Create a file entry (the client supplies the FileId it generated).
    NsCreate { req: ReqId, path: String, file: FileId, options: FileOptions },
    /// Create reply.
    NsCreateR { req: ReqId, result: Result<FileEntry, Error> },
    /// Create a directory.
    NsMkdir { req: ReqId, path: String },
    /// Mkdir reply.
    NsMkdirR { req: ReqId, result: Result<(), Error> },
    /// Remove a file entry (or empty directory); returns the removed
    /// entry so the client can garbage-collect segments.
    NsRemove { req: ReqId, path: String },
    /// Remove reply.
    NsRemoveR { req: ReqId, result: Result<FileEntry, Error> },
    /// List the names under a directory.
    NsList { req: ReqId, path: String },
    /// List reply.
    NsListR { req: ReqId, result: Result<Vec<String>, Error> },
    /// Commit approval (Figure 6 step 7): verify `base` is still the
    /// latest version and take the commit lock. `span` is the issuing
    /// client op's trace span (0 = none); spans ride in the modeled RPC
    /// header, so they do not change wire sizes.
    NsCommitBegin { req: ReqId, span: SpanId, path: String, base: Version },
    /// Commit-begin reply.
    NsCommitBeginR { req: ReqId, result: Result<(), Error> },
    /// Commit completion (Figure 6 step 9) or release-on-abort.
    NsCommitEnd {
        req: ReqId,
        span: SpanId,
        path: String,
        commit: bool,
        new_version: Version,
        new_size: u64,
    },
    /// Commit-end reply.
    NsCommitEndR { req: ReqId, result: Result<(), Error> },

    // ---- location (§3.4) ----
    /// Ask a home host for a segment's owners.
    LocQuery { req: ReqId, seg: SegId },
    /// Owners (empty when the home host has no entry).
    LocQueryR { req: ReqId, seg: SegId, owners: Vec<(NodeId, Version)> },
    /// Owner → home fast-path update (§3.4.1 event 4). `bytes` is the
    /// segment's stored size (sizes inform repair-transfer budgeting and
    /// placement).
    LocUpsert {
        seg: SegId,
        owner: NodeId,
        version: Version,
        replication: u32,
        bytes: u64,
        deleted: bool,
    },
    /// Owner → home batched refresh (§3.4.1 events 1–3); entries are
    /// `(segment, version, replication, stored bytes)`.
    LocRefresh {
        owner: NodeId,
        entries: Vec<(SegId, Version, u32, u64)>,
    },
    /// Multicast fallback when the base scheme misses (§3.4.2).
    BackupQuery { req: ReqId, seg: SegId },
    /// Reply from each owner that actually stores the segment.
    BackupQueryR { req: ReqId, seg: SegId, version: Version },

    // ---- data path (client ↔ provider) ----
    /// Read from a segment. Sent first to the home host, which serves
    /// the data if it is also an owner, or redirects.
    ReadSeg {
        req: ReqId,
        seg: SegId,
        offset: u64,
        len: u64,
        /// Require at least this version (reject stale replicas).
        min_version: Option<Version>,
        /// If false, the provider must not redirect (the client already
        /// holds the owner list).
        allow_redirect: bool,
    },
    /// Read reply.
    ReadSegR { req: ReqId, reply: ReadReply },
    /// Open a shadow copy on an owner (base = None creates a fresh
    /// segment on this provider).
    CreateShadow {
        req: ReqId,
        span: SpanId,
        seg: SegId,
        base: Option<Version>,
        meta: SegMeta,
    },
    /// Create-shadow reply.
    CreateShadowR { req: ReqId, result: Result<ShadowId, Error> },
    /// Write into a shadow. With `truncate`, the shadow is cut to end
    /// exactly at `offset + payload.len()` (whole-content replacement,
    /// used for index segments).
    WriteShadow {
        req: ReqId,
        shadow: ShadowId,
        offset: u64,
        payload: WritePayload,
        truncate: bool,
    },
    /// Write reply.
    WriteShadowR { req: ReqId, result: Result<(), Error> },
    /// Read through a shadow (read-your-writes).
    ReadShadow { req: ReqId, shadow: ShadowId, offset: u64, len: u64 },
    /// Shadow-read reply.
    ReadShadowR { req: ReqId, reply: ReadReply },
    /// Reset a shadow's expiration timer.
    RenewShadow { shadow: ShadowId },

    // ---- two-phase commit (§3.5) ----
    /// Phase 1: pin shadows to their target versions.
    Prepare { req: ReqId, span: SpanId, items: Vec<(ShadowId, Version)> },
    /// Prepare vote.
    PrepareR { req: ReqId, result: Result<(), Error> },
    /// Phase 2: commit prepared shadows.
    Commit { req: ReqId, span: SpanId, items: Vec<(ShadowId, Version)> },
    /// Commit ack.
    CommitR { req: ReqId, result: Result<(), Error> },
    /// Abort shadows (no reply needed).
    Abort { span: SpanId, items: Vec<ShadowId> },

    // ---- versioning-off byte-range mode (§3.5) ----
    /// Direct in-place write.
    DirectWrite {
        req: ReqId,
        seg: SegId,
        offset: u64,
        payload: WritePayload,
        meta: SegMeta,
    },
    /// Direct-write ack.
    DirectWriteR { req: ReqId, result: Result<(), Error> },

    // ---- segment lifecycle ----
    /// Remove all local versions of a segment (eager replica removal on
    /// unlink, §4.1.1).
    DeleteSeg { req: ReqId, seg: SegId },
    /// Delete ack.
    DeleteSegR { req: ReqId, existed: bool },

    // ---- replication & migration (provider ↔ provider) ----
    /// Fetch a materialized replica of a segment's latest version.
    FetchSeg { req: ReqId, seg: SegId },
    /// Replica image (bulk transfer).
    FetchSegR { req: ReqId, result: Result<ReplicaImageBox, Error> },
    /// Instruct `to` to synchronize/acquire `seg` from `source`
    /// (home-host-driven lazy propagation and degree repair, §3.6; also
    /// the client's eager-commit push). `bytes_hint` sizes the fetch
    /// timeout. Replied with `SyncDone` when `req != 0`.
    SyncRequest { req: ReqId, seg: SegId, source: NodeId, bytes_hint: u64 },
    /// Ack that the target now holds `seg` at `version`.
    SyncDone { req: ReqId, seg: SegId, version: Version, result: Result<(), Error> },
    /// Source-driven migration: ask `dest` to pull the segment; source
    /// erases its copy on `MigrateDone` (§3.7.1: migration = new replica
    /// + erase local copy).
    MigrateTo { seg: SegId, source: NodeId, bytes_hint: u64 },
    /// Migration pull finished (or failed).
    MigrateDone { seg: SegId, ok: bool },

    // ---- erasure-coded repair (provider ↔ provider) ----
    /// Install a reconstructed erasure-coded shard onto a fresh
    /// provider. Sent by the index segment's home host after it decodes
    /// a lost shard from `k` survivors; unlike [`Msg::SyncRequest`]
    /// there is no live source holding the bytes, so the image travels
    /// in the message itself (bulk transfer, like [`Msg::FetchSegR`]).
    EcInstall { req: ReqId, image: ReplicaImageBox },
    /// Install ack; carries the shard id so the repairer can update its
    /// location table without correlating through request state.
    EcInstallR { req: ReqId, seg: SegId, result: Result<(), Error> },

    // ---- runtime introspection ----
    /// Ask a live daemon for its telemetry/metrics registry as JSON
    /// (`sorrentoctl stats`). Answered by the real-process runtime
    /// itself rather than the state machine; never sent inside the
    /// simulator, so adding it cannot perturb seeded event streams.
    StatsQuery { req: ReqId },
    /// The daemon's metrics registry, JSON-encoded.
    StatsR { req: ReqId, json: String },
    /// Install (or clear, with all-zero rates) the mesh's deterministic
    /// fault-injection rules on a live daemon. Like [`Msg::StatsQuery`],
    /// this is answered by the real-process runtime loop itself — the
    /// state machines never see it and the simulator never sends it, so
    /// adding it cannot perturb seeded event streams.
    ChaosCtl {
        req: ReqId,
        /// Base seed for the per-link fault streams; the same seed
        /// reproduces the same drop/delay/duplicate pattern.
        seed: u64,
        /// Per-frame drop probability, in permille (0–1000).
        drop_permille: u32,
        /// Per-frame duplicate probability, in permille.
        dup_permille: u32,
        /// Per-frame delay probability, in permille.
        delay_permille: u32,
        /// Extra latency added to a delayed frame, in microseconds.
        delay_us: u64,
        /// Peers this node must not exchange frames with (partition
        /// set); empty means no partition.
        partition: Vec<NodeId>,
    },
    /// Chaos-control acknowledgement.
    ChaosCtlR { req: ReqId },
    /// Ask a live daemon for its flight-recorder events belonging to
    /// `span` (`sorrentoctl trace`); `span == 0` requests the entire
    /// retained ring (an on-demand flight dump). Answered by the
    /// real-process runtime loop itself — the state machines never see
    /// it and the simulator never sends it.
    TraceQuery { req: ReqId, span: SpanId },
    /// The matching events, JSON-encoded (`{"v":1,"node":..,"role":..,
    /// "epoch_unix_ns":..,"events":[..]}`); event timestamps are
    /// monotonic ns since process start, so `epoch_unix_ns + at_ns`
    /// places them on the shared wall clock.
    TraceR { req: ReqId, json: String },

    // ---- namespace sharding & hot standby ----
    /// Rename a file entry. Routed to the source's shard; same-shard
    /// renames are local, cross-shard ones ride a
    /// [`Msg::NsShardInstall`] handshake to the destination's shard.
    /// Directories are refused (their children live on another shard).
    NsRename { req: ReqId, src: String, dst: String },
    /// Rename reply.
    NsRenameR { req: ReqId, result: Result<(), Error> },
    /// Shard → shard: install an entry on the receiving shard. With
    /// `xfer` false this installs a directory *stub* (mkdir publishing
    /// the new directory onto the shard that owns its children); with
    /// `xfer` true it is a rename transfer (the destination must be
    /// free and its parent present).
    NsShardInstall { req: ReqId, path: String, entry: FileEntry, xfer: bool },
    /// Install ack.
    NsShardInstallR { req: ReqId, result: Result<(), Error> },
    /// Shard → shard: drop `path`'s directory stub. With `check_empty`
    /// the receiver first verifies no children exist locally (the
    /// remove-directory handshake).
    NsShardDrop { req: ReqId, path: String, check_empty: bool },
    /// Drop ack.
    NsShardDropR { req: ReqId, result: Result<(), Error> },
    /// Ask a namespace server (or standby) for the shard rows it knows.
    /// Clients refresh their routing table with this, like the §3.4
    /// location tables.
    ShardMapQuery { req: ReqId },
    /// The responder's shard rows: `(shard, primary, standby)`.
    ShardMapR { req: ReqId, rows: Vec<(u32, NodeId, Option<NodeId>)> },
    /// Primary → standby WAL shipping: every record the primary's
    /// database appended since the last ship, in order. `seq` numbers
    /// ships so the standby detects gaps; `ckpt` (when present)
    /// replaces the standby's base image and resets its tail. An empty
    /// ship is a liveness beacon.
    NsWalShip {
        shard: u32,
        seq: u64,
        ckpt: Option<bytes::Bytes>,
        recs: Vec<bytes::Bytes>,
    },
    /// Standby → primary: a ship-sequence gap was detected (or the
    /// standby booted mid-stream); the primary answers with a full
    /// checkpoint image in its next ship.
    NsCatchup { shard: u32, have_seq: u64 },

    // ---- SWIM gossip membership ----
    /// Direct or indirect probe. `origin` is the node whose probe round
    /// this is (equal to the sender for direct probes; the requester
    /// for probes relayed through a [`Msg::SwimPingReq`] intermediary).
    /// `updates` piggybacks pending membership rumors.
    SwimPing { seq: u64, origin: NodeId, updates: Vec<crate::swim::SwimUpdate> },
    /// Probe acknowledgement, sent to the pinging node. An intermediary
    /// receiving an ack whose `origin` is not itself forwards it to
    /// `origin`, completing the indirect path.
    SwimAck { seq: u64, origin: NodeId, updates: Vec<crate::swim::SwimUpdate> },
    /// Ask the receiver to probe `target` on `origin`'s behalf (the
    /// indirect-probe leg that routes around a failed direct path).
    SwimPingReq {
        seq: u64,
        target: NodeId,
        origin: NodeId,
        updates: Vec<crate::swim::SwimUpdate>,
    },
    /// Pull the responder's full membership table (anti-entropy sync
    /// between providers; the client's provider-discovery path when
    /// gossip replaces multicast heartbeats).
    MembersPull { req: ReqId },
    /// Full-table reply to [`Msg::MembersPull`]: one update per known
    /// member, payloads included where known.
    MembersDigest { req: ReqId, updates: Vec<crate::swim::SwimUpdate> },
    /// Ask a node for its membership table as JSON
    /// (`sorrentoctl members`). Answered by the state machine from its
    /// live view; never sent inside default-mode sims.
    MembersQuery { req: ReqId },
    /// The membership table, JSON-encoded (`{"v":1,"mode":..,
    /// "members":[..]}`).
    MembersR { req: ReqId, json: String },
}

/// Boxed replica image (large variant kept off the enum's inline size).
pub type ReplicaImageBox = Box<ReplicaImage>;

/// Short label of a message variant (diagnostics and static metric
/// labels: every variant maps to a fixed `&'static str`, so counters
/// keyed by message kind never allocate).
pub fn dbg_kind(msg: &Msg) -> &'static str {
    match msg {
        Msg::Tick(_) => "tick",
        Msg::Heartbeat(_) => "heartbeat",
        Msg::NsLookup { .. } => "ns_lookup",
        Msg::NsLookupR { .. } => "ns_lookup_r",
        Msg::NsCreate { .. } => "ns_create",
        Msg::NsCreateR { .. } => "ns_create_r",
        Msg::NsMkdir { .. } => "ns_mkdir",
        Msg::NsMkdirR { .. } => "ns_mkdir_r",
        Msg::NsRemove { .. } => "ns_remove",
        Msg::NsRemoveR { .. } => "ns_remove_r",
        Msg::NsList { .. } => "ns_list",
        Msg::NsListR { .. } => "ns_list_r",
        Msg::NsCommitBegin { .. } => "commit_begin",
        Msg::NsCommitBeginR { .. } => "commit_begin_r",
        Msg::NsCommitEnd { .. } => "commit_end",
        Msg::NsCommitEndR { .. } => "commit_end_r",
        Msg::LocQuery { .. } => "loc_query",
        Msg::LocQueryR { .. } => "loc_query_r",
        Msg::LocUpsert { .. } => "loc_upsert",
        Msg::LocRefresh { .. } => "loc_refresh",
        Msg::BackupQuery { .. } => "backup_query",
        Msg::BackupQueryR { .. } => "backup_query_r",
        Msg::ReadSeg { .. } => "read_seg",
        Msg::ReadSegR { .. } => "read_seg_r",
        Msg::CreateShadow { .. } => "create_shadow",
        Msg::CreateShadowR { .. } => "create_shadow_r",
        Msg::WriteShadow { .. } => "write_shadow",
        Msg::WriteShadowR { .. } => "write_shadow_r",
        Msg::ReadShadow { .. } => "read_shadow",
        Msg::ReadShadowR { .. } => "read_shadow_r",
        Msg::RenewShadow { .. } => "renew_shadow",
        Msg::Prepare { .. } => "prepare",
        Msg::PrepareR { .. } => "prepare_r",
        Msg::Commit { .. } => "commit",
        Msg::CommitR { .. } => "commit_r",
        Msg::Abort { .. } => "abort",
        Msg::DirectWrite { .. } => "direct_write",
        Msg::DirectWriteR { .. } => "direct_write_r",
        Msg::DeleteSeg { .. } => "delete_seg",
        Msg::DeleteSegR { .. } => "delete_seg_r",
        Msg::FetchSeg { .. } => "fetch_seg",
        Msg::FetchSegR { .. } => "fetch_seg_r",
        Msg::SyncRequest { .. } => "sync_request",
        Msg::SyncDone { .. } => "sync_done",
        Msg::MigrateTo { .. } => "migrate_to",
        Msg::MigrateDone { .. } => "migrate_done",
        Msg::EcInstall { .. } => "ec_install",
        Msg::EcInstallR { .. } => "ec_install_r",
        Msg::StatsQuery { .. } => "stats_query",
        Msg::StatsR { .. } => "stats_r",
        Msg::ChaosCtl { .. } => "chaos_ctl",
        Msg::ChaosCtlR { .. } => "chaos_ctl_r",
        Msg::TraceQuery { .. } => "trace_query",
        Msg::TraceR { .. } => "trace_r",
        Msg::NsRename { .. } => "ns_rename",
        Msg::NsRenameR { .. } => "ns_rename_r",
        Msg::NsShardInstall { .. } => "ns_shard_install",
        Msg::NsShardInstallR { .. } => "ns_shard_install_r",
        Msg::NsShardDrop { .. } => "ns_shard_drop",
        Msg::NsShardDropR { .. } => "ns_shard_drop_r",
        Msg::ShardMapQuery { .. } => "shard_map_query",
        Msg::ShardMapR { .. } => "shard_map_r",
        Msg::NsWalShip { .. } => "ns_wal_ship",
        Msg::NsCatchup { .. } => "ns_catchup",
        Msg::SwimPing { .. } => "swim_ping",
        Msg::SwimAck { .. } => "swim_ack",
        Msg::SwimPingReq { .. } => "swim_ping_req",
        Msg::MembersPull { .. } => "members_pull",
        Msg::MembersDigest { .. } => "members_digest",
        Msg::MembersQuery { .. } => "members_query",
        Msg::MembersR { .. } => "members_r",
    }
}

/// The trace span a message carries, `0` when the variant has none.
/// Used by the real runtime to tag mesh send/receive telemetry with the
/// owning client operation.
pub fn span_of(msg: &Msg) -> SpanId {
    match msg {
        Msg::NsCommitBegin { span, .. }
        | Msg::NsCommitEnd { span, .. }
        | Msg::CreateShadow { span, .. }
        | Msg::Prepare { span, .. }
        | Msg::Commit { span, .. }
        | Msg::Abort { span, .. } => *span,
        _ => 0,
    }
}

/// Serialize an [`IndexSegment`] into segment bytes.
pub fn encode_index(ix: &IndexSegment) -> Vec<u8> {
    crate::codec::index_to_json(ix).encode().into_bytes()
}

/// Parse segment bytes back into an [`IndexSegment`]. The error names
/// what was wrong with the bytes (non-UTF-8, bad JSON, or the exact
/// missing/invalid field).
pub fn decode_index(bytes: &[u8]) -> Result<IndexSegment, crate::codec::CodecError> {
    let text = std::str::from_utf8(bytes).map_err(|_| crate::codec::CodecError::NotUtf8)?;
    let j = sorrento_json::Json::parse(text).map_err(|_| crate::codec::CodecError::BadJson)?;
    crate::codec::index_from_json(&j)
}

fn payload_size(p: &WritePayload) -> u64 {
    p.len()
}

impl Payload for Msg {
    fn wire_size(&self) -> u64 {
        let body = match self {
            Msg::Tick(_) => 0,
            Msg::Heartbeat(_) => 64,
            Msg::NsLookup { path, .. }
            | Msg::NsMkdir { path, .. }
            | Msg::NsRemove { path, .. }
            | Msg::NsList { path, .. } => path.len() as u64,
            Msg::NsCreate { path, .. } => path.len() as u64 + 64,
            Msg::NsLookupR { .. } | Msg::NsCreateR { .. } | Msg::NsRemoveR { .. } => 128,
            Msg::NsMkdirR { .. } => 16,
            Msg::NsListR { result, .. } => result
                .as_ref()
                .map(|names| names.iter().map(|n| n.len() as u64 + 8).sum())
                .unwrap_or(16),
            Msg::NsCommitBegin { path, .. } | Msg::NsCommitEnd { path, .. } => {
                path.len() as u64 + 24
            }
            Msg::NsCommitBeginR { .. } | Msg::NsCommitEndR { .. } => 16,
            Msg::LocQuery { .. } => 24,
            Msg::LocQueryR { owners, .. } => 24 + owners.len() as u64 * 16,
            Msg::LocUpsert { .. } => 56,
            Msg::LocRefresh { entries, .. } => 16 + entries.len() as u64 * 36,
            Msg::BackupQuery { .. } => 24,
            Msg::BackupQueryR { .. } => 32,
            Msg::ReadSeg { .. } => 48,
            Msg::ReadSegR { reply, .. } | Msg::ReadShadowR { reply, .. } => match reply {
                ReadReply::Data { len, .. } => 32 + len,
                ReadReply::Redirect(owners) => 16 + owners.len() as u64 * 16,
                ReadReply::Err(_) => 16,
            },
            Msg::CreateShadow { .. } => 72,
            Msg::CreateShadowR { .. } => 24,
            Msg::WriteShadow { payload, .. } => 32 + payload_size(payload),
            Msg::WriteShadowR { .. } => 16,
            Msg::ReadShadow { .. } => 40,
            Msg::RenewShadow { .. } => 16,
            Msg::Prepare { items, .. } | Msg::Commit { items, .. } => {
                16 + items.len() as u64 * 24
            }
            Msg::PrepareR { .. } | Msg::CommitR { .. } => 16,
            Msg::Abort { items, .. } => 16 + items.len() as u64 * 8,
            Msg::DirectWrite { payload, .. } => 72 + payload_size(payload),
            Msg::DirectWriteR { .. } => 16,
            Msg::DeleteSeg { .. } => 24,
            Msg::DeleteSegR { .. } => 16,
            Msg::FetchSeg { .. } => 24,
            Msg::FetchSegR { result, .. } => match result {
                Ok(img) => 64 + img.len,
                Err(_) => 16,
            },
            Msg::SyncRequest { .. } => 40,
            Msg::SyncDone { .. } => 32,
            Msg::MigrateTo { .. } => 24,
            Msg::MigrateDone { .. } => 24,
            Msg::EcInstall { image, .. } => 64 + image.len,
            Msg::EcInstallR { .. } => 32,
            Msg::StatsQuery { .. } => 8,
            Msg::StatsR { json, .. } => 8 + json.len() as u64,
            Msg::ChaosCtl { partition, .. } => 40 + partition.len() as u64 * 4,
            Msg::ChaosCtlR { .. } => 8,
            Msg::TraceQuery { .. } => 16,
            Msg::TraceR { json, .. } => 8 + json.len() as u64,
            Msg::NsRename { src, dst, .. } => src.len() as u64 + dst.len() as u64 + 8,
            Msg::NsRenameR { .. } => 16,
            Msg::NsShardInstall { path, .. } => path.len() as u64 + 128,
            Msg::NsShardInstallR { .. } => 16,
            Msg::NsShardDrop { path, .. } => path.len() as u64 + 8,
            Msg::NsShardDropR { .. } => 16,
            Msg::ShardMapQuery { .. } => 8,
            Msg::ShardMapR { rows, .. } => 8 + rows.len() as u64 * 16,
            Msg::NsWalShip { ckpt, recs, .. } => {
                24 + ckpt.as_ref().map_or(0, |c| c.len() as u64)
                    + recs.iter().map(|r| r.len() as u64 + 4).sum::<u64>()
            }
            Msg::NsCatchup { .. } => 16,
            // One SwimUpdate ≈ node + state + incarnation + beat +
            // optional heartbeat payload.
            Msg::SwimPing { updates, .. } | Msg::SwimAck { updates, .. } => {
                24 + updates.len() as u64 * 56
            }
            Msg::SwimPingReq { updates, .. } => 32 + updates.len() as u64 * 56,
            Msg::MembersPull { .. } => 8,
            Msg::MembersDigest { updates, .. } => 8 + updates.len() as u64 * 56,
            Msg::MembersQuery { .. } => 8,
            Msg::MembersR { json, .. } => 8 + json.len() as u64,
        };
        RPC_HEADER + body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Organization;

    #[test]
    fn bulk_messages_charge_payload_bytes() {
        let small = Msg::ReadSeg {
            req: 1,
            seg: SegId(1),
            offset: 0,
            len: 4_000_000,
            min_version: None,
            allow_redirect: true,
        };
        assert!(small.wire_size() < 512);
        let reply = Msg::ReadSegR {
            req: 1,
            reply: ReadReply::Data {
                len: 4_000_000,
                data: None,
                version: Version(1),
            },
        };
        assert!(reply.wire_size() > 4_000_000);
        let w = Msg::WriteShadow {
            req: 2,
            shadow: 1,
            offset: 0,
            payload: WritePayload::Synthetic { len: 1_000_000 },
            truncate: false,
        };
        assert!(w.wire_size() > 1_000_000);
    }

    #[test]
    fn ticks_are_free() {
        assert_eq!(Msg::Tick(Tick::Heartbeat).wire_size(), RPC_HEADER);
    }

    #[test]
    fn index_segment_round_trips_through_bytes() {
        let mut ix = IndexSegment::new(
            FileId(42),
            FileOptions {
                organization: Organization::Hybrid { group_stripes: 2 },
                replication: 3,
                ..FileOptions::default()
            },
        );
        let mut n = 0u64;
        ix.plan_write(0, 5 << 20, || {
            n += 1;
            SegId::derive(1, n, 7)
        });
        ix.apply_write(0, 5 << 20);
        let bytes = encode_index(&ix);
        let back = decode_index(&bytes).unwrap();
        assert_eq!(back, ix);
        assert!(decode_index(b"garbage").is_err());
    }
}
