//! Pluggable SegID → home-host location schemes (ROADMAP item 4).
//!
//! The paper fixes location on a consistent-hash ring (§3.4.1,
//! [`crate::ring`]). At four-digit provider counts the scheme choice
//! starts to matter — placement uniformity decides capacity headroom,
//! lookup cost sits on every data-path op, and data movement on
//! membership change decides how much repair traffic a join or a death
//! triggers. ASURA (PAPERS.md) names those three as *the* deciding
//! metrics, so this module makes the scheme a knob and `bench-membership`
//! measures all three at 100/500/1000 providers:
//!
//! * [`LocationScheme::Ring`] — the existing [`HashRing`], unchanged
//!   and still the default (seeded sims stay byte-identical).
//! * [`LocationScheme::Rendezvous`] — highest-random-weight hashing,
//!   the same family already sharding the namespace
//!   ([`crate::nsmap::shard_of_dir`]): perfectly minimal movement, O(n)
//!   lookup.
//! * [`LocationScheme::Asura`] — an ASURA-style seeded random walk over
//!   a slot table: every provider claims the same number of slots
//!   (near-perfect uniformity), a lookup draws table indices from a
//!   per-key RNG until it lands on a claimed slot (O(1) expected), and
//!   membership changes move only the keys whose walk crossed the
//!   affected slots.
//!
//! All three are deterministic functions of the live set, so every node
//! with the same membership view computes the same homes — the property
//! the backup multicast query (§3.4.2) papers over during transient
//! disagreement.

use sorrento_sim::NodeId;

use crate::ring::{hash_segid, mix, HashRing};
use crate::types::SegId;

/// Slots claimed by each provider in the ASURA table (uniformity is
/// exact per slot, so a handful per node suffices).
const ASURA_SLOTS_PER_NODE: usize = 8;
/// Bounded walk length before falling back to a linear scan; at ≤ 50%
/// table density the expected walk is ~2 draws, so 128 makes the
/// fallback astronomically rare.
const ASURA_MAX_DRAWS: u32 = 128;

/// Which location scheme maps SegIDs to home hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocationScheme {
    /// Consistent-hash ring with virtual nodes (the paper's design and
    /// the default).
    #[default]
    Ring,
    /// Rendezvous (highest-random-weight) hashing.
    Rendezvous,
    /// ASURA-style random-walk over an evenly claimed slot table.
    Asura,
}

impl LocationScheme {
    /// Parse a config-file value (`"ring" | "rendezvous" | "asura"`).
    pub fn parse(s: &str) -> Option<LocationScheme> {
        match s {
            "ring" => Some(LocationScheme::Ring),
            "rendezvous" => Some(LocationScheme::Rendezvous),
            "asura" => Some(LocationScheme::Asura),
            _ => None,
        }
    }

    /// The config-file spelling of this scheme.
    pub fn name(self) -> &'static str {
        match self {
            LocationScheme::Ring => "ring",
            LocationScheme::Rendezvous => "rendezvous",
            LocationScheme::Asura => "asura",
        }
    }
}

/// ASURA-style slot table: every provider claims
/// `ASURA_SLOTS_PER_NODE` slots in a power-of-two table kept at most
/// half full; a lookup walks per-key seeded random draws until it hits
/// a claimed slot. Claims are placed by linear probing from a
/// node-derived hash, so the table is a pure function of the live set
/// (every node computes the same one) and a membership change disturbs
/// only the departed/arrived node's own slots plus the rare probe
/// chains that crossed them.
#[derive(Debug, Clone, Default)]
pub struct AsuraTable {
    slots: Vec<Option<NodeId>>,
    nodes: usize,
}

impl AsuraTable {
    fn build(mut providers: Vec<NodeId>) -> AsuraTable {
        providers.sort_unstable();
        providers.dedup();
        if providers.is_empty() {
            return AsuraTable::default();
        }
        let cap = (providers.len() * ASURA_SLOTS_PER_NODE * 2).next_power_of_two();
        let mut slots = vec![None; cap];
        for &p in &providers {
            for j in 0..ASURA_SLOTS_PER_NODE {
                let start = mix((p.index() as u64) << 8 | j as u64) as usize & (cap - 1);
                let mut i = start;
                while slots[i].is_some() {
                    i = (i + 1) & (cap - 1);
                }
                slots[i] = Some(p);
            }
        }
        AsuraTable { slots, nodes: providers.len() }
    }

    /// The walk: draw slot indices from a SegID-seeded sequence until
    /// one is claimed. Returns the home and the number of draws spent
    /// (the scheme's lookup cost, measured by `bench-membership`).
    fn home_cost(&self, seg: SegId) -> (Option<NodeId>, u32) {
        if self.slots.is_empty() {
            return (None, 0);
        }
        let mask = self.slots.len() as u64 - 1;
        let mut x = hash_segid(seg);
        for draw in 1..=ASURA_MAX_DRAWS {
            let i = (x & mask) as usize;
            if let Some(p) = self.slots[i] {
                return (Some(p), draw);
            }
            x = mix(x);
        }
        // Unclaimed-walk fallback: scan forward from the last draw.
        let mut i = (x & mask) as usize;
        loop {
            if let Some(p) = self.slots[i] {
                return (Some(p), ASURA_MAX_DRAWS);
            }
            i = (i + 1) & mask as usize;
        }
    }
}

/// A home-host locator under one of the [`LocationScheme`]s, presenting
/// the same `home`/`provider_count` surface the raw [`HashRing`] did.
#[derive(Debug, Clone)]
pub struct Locator {
    scheme: LocationScheme,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Ring(HashRing),
    Rendezvous(Vec<NodeId>),
    Asura(AsuraTable),
}

impl Default for Locator {
    fn default() -> Locator {
        Locator { scheme: LocationScheme::Ring, inner: Inner::Ring(HashRing::default()) }
    }
}

fn hash_rendezvous(seg_hash: u64, node: NodeId) -> u64 {
    mix(seg_hash ^ mix(!(node.index() as u64)))
}

impl Locator {
    /// Build a locator over the live providers.
    pub fn build(
        scheme: LocationScheme,
        providers: impl IntoIterator<Item = NodeId>,
    ) -> Locator {
        let inner = match scheme {
            LocationScheme::Ring => Inner::Ring(HashRing::build(providers)),
            LocationScheme::Rendezvous => {
                let mut nodes: Vec<NodeId> = providers.into_iter().collect();
                nodes.sort_unstable();
                nodes.dedup();
                Inner::Rendezvous(nodes)
            }
            LocationScheme::Asura => {
                Inner::Asura(AsuraTable::build(providers.into_iter().collect()))
            }
        };
        Locator { scheme, inner }
    }

    /// The scheme this locator was built under.
    pub fn scheme(&self) -> LocationScheme {
        self.scheme
    }

    /// The home host for a SegID; `None` when no providers are known.
    pub fn home(&self, seg: SegId) -> Option<NodeId> {
        self.home_cost(seg).0
    }

    /// The home host plus the scheme's abstract lookup cost: hash-point
    /// comparisons (ring), candidate hashes (rendezvous), or walk draws
    /// (ASURA).
    pub fn home_cost(&self, seg: SegId) -> (Option<NodeId>, u32) {
        match &self.inner {
            Inner::Ring(ring) => {
                // A sorted-array ring lookup is one binary search.
                let cost = usize::BITS - ring.point_count().leading_zeros();
                (ring.home(seg), cost)
            }
            Inner::Rendezvous(nodes) => {
                let h = hash_segid(seg);
                let best = nodes
                    .iter()
                    .max_by_key(|&&n| (hash_rendezvous(h, n), n))
                    .copied();
                (best, nodes.len() as u32)
            }
            Inner::Asura(table) => table.home_cost(seg),
        }
    }

    /// Number of distinct providers the locator maps onto.
    pub fn provider_count(&self) -> usize {
        match &self.inner {
            Inner::Ring(ring) => ring.provider_count(),
            Inner::Rendezvous(nodes) => nodes.len(),
            Inner::Asura(table) => table.nodes,
        }
    }

    /// Whether no providers are known.
    pub fn is_empty(&self) -> bool {
        self.provider_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn segs(n: u64) -> Vec<SegId> {
        (0..n).map(|i| SegId::derive(7, i, i ^ 0x5EED)).collect()
    }

    #[test]
    fn ring_locator_matches_raw_ring() {
        let raw = HashRing::build((0..8).map(node));
        let loc = Locator::build(LocationScheme::Ring, (0..8).map(node));
        for s in segs(500) {
            assert_eq!(loc.home(s), raw.home(s));
        }
        assert_eq!(loc.provider_count(), 8);
    }

    #[test]
    fn every_scheme_is_deterministic_and_order_independent() {
        for scheme in [LocationScheme::Ring, LocationScheme::Rendezvous, LocationScheme::Asura] {
            let a = Locator::build(scheme, (0..10).map(node));
            let b = Locator::build(scheme, (0..10).rev().map(node));
            for s in segs(300) {
                assert_eq!(a.home(s), b.home(s), "{scheme:?} disagrees across orders");
            }
        }
    }

    #[test]
    fn empty_locators_have_no_home() {
        for scheme in [LocationScheme::Ring, LocationScheme::Rendezvous, LocationScheme::Asura] {
            let loc = Locator::build(scheme, []);
            assert!(loc.is_empty());
            assert_eq!(loc.home(SegId(1)), None);
        }
    }

    #[test]
    fn rendezvous_removal_moves_only_departed_keys() {
        let full = Locator::build(LocationScheme::Rendezvous, (0..10).map(node));
        let less = Locator::build(LocationScheme::Rendezvous, (0..9).map(node));
        for s in segs(3_000) {
            let before = full.home(s).unwrap();
            let after = less.home(s).unwrap();
            if before != after {
                assert_eq!(before, node(9), "a surviving provider's key moved");
            }
        }
    }

    #[test]
    fn asura_balances_and_moves_little_on_leave() {
        let n = 10usize;
        let full = Locator::build(LocationScheme::Asura, (0..n).map(node));
        let less = Locator::build(LocationScheme::Asura, (0..n - 1).map(node));
        let total = 10_000u64;
        let mut counts = vec![0usize; n];
        let mut moved = 0u64;
        for s in segs(total) {
            let before = full.home(s).unwrap();
            counts[before.index()] += 1;
            if less.home(s).unwrap() != before {
                moved += 1;
            }
        }
        let expect = total as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expect * 0.6 && (c as f64) < expect * 1.5,
                "provider {i} got {c} of {total}"
            );
        }
        // ~1/10 of keys should belong to the removed node; claims are
        // probe-chain stable so little else moves.
        assert!(
            moved < total / 5,
            "leave moved {moved} of {total} keys"
        );
    }

    #[test]
    fn asura_lookup_cost_is_constant_expected() {
        let loc = Locator::build(LocationScheme::Asura, (0..100).map(node));
        let mut draws = 0u64;
        let total = 5_000u64;
        for s in segs(total) {
            draws += u64::from(loc.home_cost(s).1);
        }
        // Table density is 50%, so the expected walk is 2 draws.
        assert!(draws < total * 4, "mean draws {}", draws as f64 / total as f64);
    }

    #[test]
    fn scheme_names_round_trip() {
        for scheme in [LocationScheme::Ring, LocationScheme::Rendezvous, LocationScheme::Asura] {
            assert_eq!(LocationScheme::parse(scheme.name()), Some(scheme));
        }
        assert_eq!(LocationScheme::parse("chord"), None);
    }
}
