//! Namespace sharding: the deterministic path → shard partition
//! function and the shard map that names each shard's servers.
//!
//! The partition key is the **parent directory** of a path, so every
//! entry of one directory — and therefore `ls`, create-in-dir, and the
//! §3.5 optimistic commit check — lands on a single shard. Cross-shard
//! work only arises for the *directory entries themselves*: the entry
//! for directory `p` lives with its siblings on `shard_of_dir(parent(p))`,
//! while `p`'s children live on `shard_of_dir(p)`; a small two-shard
//! handshake (see `namespace.rs`) keeps a directory *stub* on the
//! children's shard so parent-existence checks stay local.
//!
//! The hash is **rendezvous (highest-random-weight)**: every directory
//! scores each shard index and routes to the argmax. Growing the shard
//! count from `n` to `n+1` therefore only moves the directories whose
//! new shard wins the score — an expected `1/(n+1)` of the keyspace —
//! instead of the `n/(n+1)` a modulo partition would reshuffle. The
//! property test below measures the movement ratio and pins it.
//!
//! Everything here is pure arithmetic on the path string: clients,
//! namespace servers and the control plane all compute identical
//! routes with no coordination, exactly like the consistent-hashing
//! home-host ring of §3.4.

use sorrento_sim::NodeId;

/// The directory whose shard owns `path`'s namespace entry: the parent
/// directory, or `"/"` for the root itself (the root entry is
/// pre-created on every shard, so its nominal owner never matters).
pub fn owner_dir(path: &str) -> &str {
    if path == "/" {
        return "/";
    }
    match path.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

/// FNV-1a over the directory string — a stable, platform-independent
/// base hash for the rendezvous scores.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the per-shard scores so the
/// argmax is uniform over shards.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Rendezvous-hash a directory onto one of `nshards` shards.
pub fn shard_of_dir(dir: &str, nshards: u32) -> u32 {
    if nshards <= 1 {
        return 0;
    }
    let base = fnv1a(dir);
    let mut best = 0u32;
    let mut best_score = 0u64;
    for k in 0..nshards {
        let score = mix(base ^ mix(u64::from(k)));
        if k == 0 || score > best_score {
            best = k;
            best_score = score;
        }
    }
    best
}

/// The shard owning `path`'s namespace entry: the shard of its parent
/// directory.
pub fn shard_of_path(path: &str, nshards: u32) -> u32 {
    shard_of_dir(owner_dir(path), nshards)
}

/// One shard's servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// The shard's primary namespace server.
    pub primary: NodeId,
    /// Its hot standby, if one is deployed.
    pub standby: Option<NodeId>,
}

/// The volume's namespace shard map: shard index → servers. Shard
/// count 1 with no standby is the unsharded classic deployment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NsShardMap {
    shards: Vec<ShardInfo>,
}

impl NsShardMap {
    /// A map with the given primaries and no standbys.
    pub fn new(primaries: Vec<NodeId>) -> NsShardMap {
        NsShardMap {
            shards: primaries.into_iter().map(|p| ShardInfo { primary: p, standby: None }).collect(),
        }
    }

    /// A map built from explicit per-shard rows.
    pub fn from_rows(rows: Vec<ShardInfo>) -> NsShardMap {
        NsShardMap { shards: rows }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shards are configured.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Attach a standby to shard `k`.
    pub fn set_standby(&mut self, k: usize, standby: NodeId) {
        self.shards[k].standby = Some(standby);
    }

    /// Replace shard `k`'s primary (a promoted standby installs itself).
    pub fn set_primary(&mut self, k: usize, primary: NodeId) {
        self.shards[k].primary = primary;
        if self.shards[k].standby == Some(primary) {
            self.shards[k].standby = None;
        }
    }

    /// The row for shard `k`.
    pub fn get(&self, k: usize) -> Option<&ShardInfo> {
        self.shards.get(k)
    }

    /// Iterate over `(shard index, row)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &ShardInfo)> {
        self.shards.iter().enumerate().map(|(i, s)| (i as u32, s))
    }

    /// The shard index owning `path`'s entry.
    pub fn shard_for(&self, path: &str) -> u32 {
        shard_of_path(path, self.shards.len() as u32)
    }

    /// The primary serving `path`.
    pub fn primary_for(&self, path: &str) -> Option<NodeId> {
        self.shards.get(self.shard_for(path) as usize).map(|s| s.primary)
    }

    /// All primaries, in shard order.
    pub fn primaries(&self) -> Vec<NodeId> {
        self.shards.iter().map(|s| s.primary).collect()
    }

    /// True when `id` serves any shard (primary or standby).
    pub fn contains(&self, id: NodeId) -> bool {
        self.shards.iter().any(|s| s.primary == id || s.standby == Some(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn owner_dir_is_the_parent() {
        assert_eq!(owner_dir("/"), "/");
        assert_eq!(owner_dir("/a"), "/");
        assert_eq!(owner_dir("/a/b"), "/a");
        assert_eq!(owner_dir("/a/b/c.dat"), "/a/b");
    }

    #[test]
    fn one_shard_routes_everything_to_zero() {
        for p in ["/", "/a", "/deep/ly/nested/file"] {
            assert_eq!(shard_of_path(p, 1), 0);
            assert_eq!(shard_of_path(p, 0), 0);
        }
    }

    #[test]
    fn spread_is_roughly_uniform() {
        // 4 shards over 4096 directories: no shard may be starved or
        // hoard the keyspace (loose 2x bounds around the mean).
        let mut counts = [0u32; 4];
        for i in 0..4096 {
            counts[shard_of_dir(&format!("/dir{i}"), 4) as usize] += 1;
        }
        for &c in &counts {
            assert!((512..=2048).contains(&c), "skewed spread: {counts:?}");
        }
    }

    #[test]
    fn map_routes_to_rows() {
        let mut map = NsShardMap::new(vec![NodeId::from_index(0), NodeId::from_index(1)]);
        map.set_standby(0, NodeId::from_index(9));
        assert_eq!(map.len(), 2);
        let k = map.shard_for("/a/b") as usize;
        assert_eq!(map.primary_for("/a/b"), Some(map.get(k).unwrap().primary));
        assert!(map.contains(NodeId::from_index(9)));
        assert!(!map.contains(NodeId::from_index(7)));
    }

    fn arb_path() -> impl Strategy<Value = String> {
        // 1–4 components drawn from a small alphabet: exercises
        // root-level entries, nesting, and sibling collisions.
        prop::collection::vec(0u32..32, 1usize..=4).prop_map(|cs| {
            let parts: Vec<String> = cs.iter().map(|c| format!("c{c}")).collect();
            format!("/{}", parts.join("/"))
        })
    }

    proptest! {
        /// Satellite: every path routes to exactly one in-range shard,
        /// deterministically.
        #[test]
        fn routes_to_exactly_one_shard(path in arb_path(), n in 1u32..=16) {
            let s = shard_of_path(&path, n);
            prop_assert!(s < n);
            prop_assert_eq!(s, shard_of_path(&path, n));
        }

        /// Satellite: all entries of one directory colocate — a file's
        /// shard equals its sibling's and equals the shard that holds
        /// the directory's child-set.
        #[test]
        fn parent_directory_colocation(path in arb_path(), n in 1u32..=16) {
            let dir = owner_dir(&path).to_string();
            let sibling = format!("{}/sibling", if dir == "/" { "" } else { dir.as_str() });
            prop_assert_eq!(shard_of_path(&path, n), shard_of_path(&sibling, n));
            prop_assert_eq!(shard_of_path(&path, n), shard_of_dir(&dir, n));
        }

        /// Satellite: the map is stable under shard-count growth.
        /// Rendezvous hashing moves an expected 1/(n+1) of directories
        /// when a shard is added; assert the measured movement ratio
        /// stays under 2/(n+1) — far below the (n)/(n+1) a modulo
        /// partition would reshuffle.
        #[test]
        fn growth_moves_a_bounded_fraction(seed in any::<u64>(), n in 1u32..=8) {
            let dirs: Vec<String> = (0..2048).map(|i| format!("/d{}", i ^ seed)).collect();
            let moved = dirs
                .iter()
                .filter(|d| shard_of_dir(d, n) != shard_of_dir(d, n + 1))
                .count();
            let ratio = moved as f64 / dirs.len() as f64;
            prop_assert!(
                ratio <= 2.0 / f64::from(n + 1),
                "movement ratio {ratio:.3} exceeds 2/(n+1) at n={n}"
            );
            // Every key that moved, moved onto the new shard: growth
            // never shuffles keys between the old shards.
            for d in &dirs {
                let (old, new) = (shard_of_dir(d, n), shard_of_dir(d, n + 1));
                prop_assert!(old == new || new == n);
            }
        }
    }
}
