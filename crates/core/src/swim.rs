//! SWIM-style gossip failure detection (ROADMAP item 4).
//!
//! The paper's multicast heartbeats cost every provider O(n) receives
//! per interval and melt at four-digit provider counts. This module
//! replaces them (behind [`MembershipMode::Swim`]) with the SWIM
//! protocol: each round a node probes *one* random peer; an unanswered
//! probe falls back to indirect probes relayed through `k` other peers;
//! only when every path stays silent is the target *suspected*, and
//! only when the suspicion survives a refutation window unchallenged is
//! it *confirmed* dead. Membership rumors ride piggybacked on the probe
//! traffic itself, so per-node network load is O(1) per interval
//! regardless of cluster size.
//!
//! Incarnation numbers make suspicion refutable: a node that hears
//! itself suspected at incarnation `i` re-announces itself alive at
//! `i + 1`, which supersedes the rumor everywhere it spreads. A
//! restarted node that finds a `dead` tombstone about itself refutes it
//! the same way, so rejoin needs no out-of-band reset.
//!
//! The detector is a sans-IO state machine in the same discipline as
//! [`crate::provider`]: every entry point takes the [`Transport`]
//! context, so identical code runs under the deterministic simulator
//! and the real TCP runtime. Timers arrive back as
//! [`Tick::SwimProbe`]-family messages; the owning provider routes them
//! here and folds the returned [`SwimEvent`]s into its
//! [`crate::membership::MembershipView`], which keeps every downstream
//! consumer (placement, migration, repair) unchanged.

use std::collections::BTreeMap;

use rand::Rng;
use sorrento_sim::{Dur, NodeId};

use crate::membership::Heartbeat;
use crate::proto::Msg;
use crate::proto::Tick;
use crate::transport::Transport;

/// How a node's live-provider set is maintained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MembershipMode {
    /// The paper's §3.3 design: multicast heartbeats, five missed
    /// intervals ⇒ dead. The default; seeded sims stay byte-identical.
    #[default]
    Heartbeat,
    /// SWIM gossip: probe → indirect probe → suspect → confirm, rumors
    /// piggybacked on probe traffic.
    Swim,
}

/// A member's lifecycle state as gossiped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwimState {
    /// Responding to probes (or vouched for by a fresher incarnation).
    Alive,
    /// Unreachable on every probed path; awaiting refutation.
    Suspect,
    /// Suspicion expired unrefuted; treated as departed.
    Dead,
}

/// One membership rumor, as piggybacked on probe traffic and shipped in
/// anti-entropy digests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwimUpdate {
    /// The member the rumor is about.
    pub node: NodeId,
    /// Its gossiped state.
    pub state: SwimState,
    /// The incarnation the rumor names. Only `node` itself ever bumps
    /// its incarnation (to refute suspicion); rumors about a higher
    /// incarnation supersede rumors about a lower one.
    pub incarnation: u64,
    /// Monotonic freshness counter for `payload` within one
    /// incarnation (the heartbeat-sequence equivalent).
    pub beat: u64,
    /// The member's last known load/capacity announcement; `None` until
    /// one has been gossiped this far.
    pub payload: Option<Heartbeat>,
}

/// Protocol timing/fan-out knobs, sliced out of
/// [`crate::costs::CostModel`] by [`crate::costs::CostModel::swim`].
#[derive(Debug, Clone, Copy)]
pub struct SwimConfig {
    /// One probe round per this interval.
    pub probe_interval: Dur,
    /// How long a direct probe may go unacked before the indirect
    /// fallback fires (the whole round is allowed 3× this: direct
    /// window + two legs of relay).
    pub ack_timeout: Dur,
    /// How long a suspicion may stand unrefuted before confirmation.
    pub suspect_timeout: Dur,
    /// Number of peers asked to probe indirectly.
    pub indirect_k: usize,
    /// Anti-entropy cadence: pull one random peer's full table.
    pub sync_interval: Dur,
    /// Max rumors piggybacked per message (the sender's own alive
    /// announcement rides for free on top).
    pub max_piggyback: usize,
}

/// What the detector learned; folded into the provider's
/// [`crate::membership::MembershipView`] by the caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwimEvent {
    /// `node` is alive and announced this payload (observe it).
    Alive {
        /// The live member.
        node: NodeId,
        /// Its load/capacity announcement.
        payload: Heartbeat,
    },
    /// `node` came under suspicion at `incarnation`.
    Suspect {
        /// The suspected member.
        node: NodeId,
        /// The suspected incarnation.
        incarnation: u64,
    },
    /// This node heard itself suspected and bumped its incarnation.
    Refuted {
        /// The new incarnation now gossiped as alive.
        incarnation: u64,
    },
    /// `node`'s suspicion expired unrefuted: remove it from the view.
    Dead {
        /// The confirmed-dead member.
        node: NodeId,
    },
}

#[derive(Debug, Clone, Copy)]
struct Member {
    state: SwimState,
    incarnation: u64,
    beat: u64,
    payload: Option<Heartbeat>,
}

/// The per-node SWIM failure detector.
#[derive(Debug)]
pub struct SwimDetector {
    me: NodeId,
    cfg: SwimConfig,
    members: BTreeMap<NodeId, Member>,
    /// Shuffled probe order; rebuilt (and reshuffled) when exhausted.
    order: Vec<NodeId>,
    pos: usize,
    /// Probe awaiting an ack: `(seq, target)`.
    inflight: Option<(u64, NodeId)>,
    seq: u64,
    sync_req: u64,
    incarnation: u64,
    beat: u64,
    payload: Option<Heartbeat>,
    /// Pending rumors with their remaining retransmit budget.
    gossip: Vec<(SwimUpdate, u32)>,
    /// Suspicions whose timer already fired once and got a last-chance
    /// direct verify; a second expiry at the same incarnation confirms.
    graced: std::collections::BTreeSet<(NodeId, u64)>,
}

impl SwimDetector {
    /// A detector for `me` that bootstraps from `seeds` (peers assumed
    /// alive at incarnation 0 until gossip says otherwise).
    pub fn new(me: NodeId, seeds: impl IntoIterator<Item = NodeId>, cfg: SwimConfig) -> Self {
        let members = seeds
            .into_iter()
            .filter(|&s| s != me)
            .map(|s| {
                (s, Member { state: SwimState::Alive, incarnation: 0, beat: 0, payload: None })
            })
            .collect();
        SwimDetector {
            me,
            cfg,
            members,
            order: Vec::new(),
            pos: 0,
            inflight: None,
            seq: 0,
            sync_req: 0,
            incarnation: 0,
            beat: 0,
            payload: None,
            gossip: Vec::new(),
            graced: std::collections::BTreeSet::new(),
        }
    }

    /// Arm the periodic probe and anti-entropy timers, staggered so a
    /// simultaneously booted cluster does not probe in lockstep.
    pub fn start(&mut self, ctx: &mut impl Transport) {
        let probe_ns = self.cfg.probe_interval.as_nanos().max(1);
        let stagger = Dur::nanos(ctx.rng().gen_range(0..probe_ns));
        ctx.set_timer(stagger, Msg::Tick(Tick::SwimProbe));
        let sync_ns = self.cfg.sync_interval.as_nanos().max(1);
        let stagger = Dur::nanos(ctx.rng().gen_range(0..sync_ns));
        ctx.set_timer(stagger, Msg::Tick(Tick::SwimSync));
    }

    /// Refresh this node's own announcement (attached to every outgoing
    /// message); call once per probe round with current load/capacity.
    pub fn set_self_payload(&mut self, hb: Heartbeat) {
        self.payload = Some(hb);
    }

    /// This node's current incarnation.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The full member table (self first) as gossipable updates — the
    /// anti-entropy digest body, also the `sorrentoctl members` source.
    pub fn snapshot(&self) -> Vec<SwimUpdate> {
        let mut out = Vec::with_capacity(self.members.len() + 1);
        out.push(self.self_update());
        out.extend(self.members.iter().map(|(&node, m)| SwimUpdate {
            node,
            state: m.state,
            incarnation: m.incarnation,
            beat: m.beat,
            payload: m.payload,
        }));
        out
    }

    fn self_update(&self) -> SwimUpdate {
        SwimUpdate {
            node: self.me,
            state: SwimState::Alive,
            incarnation: self.incarnation,
            beat: self.beat,
            payload: self.payload,
        }
    }

    /// Retransmit budget for a fresh rumor: ~3·log₂(n), the classic
    /// SWIM dissemination bound.
    fn budget(&self) -> u32 {
        let n = self.members.len() as u32 + 2;
        3 * (32 - n.leading_zeros())
    }

    fn enqueue(&mut self, u: SwimUpdate) {
        let budget = self.budget();
        // Newest rumor about a node replaces any older queued one.
        if let Some(slot) = self.gossip.iter_mut().find(|(q, _)| q.node == u.node) {
            *slot = (u, budget);
        } else {
            self.gossip.push((u, budget));
        }
    }

    /// Self announcement plus up to `max_piggyback` queued rumors,
    /// rotated so every rumor gets wire time.
    fn piggyback(&mut self) -> Vec<SwimUpdate> {
        let mut out = vec![self.self_update()];
        let take = self.cfg.max_piggyback.min(self.gossip.len());
        for _ in 0..take {
            let (u, left) = self.gossip.remove(0);
            out.push(u);
            if left > 1 {
                self.gossip.push((u, left - 1));
            }
        }
        out
    }

    fn alive_members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members
            .iter()
            .filter(|(_, m)| m.state != SwimState::Dead)
            .map(|(&id, _)| id)
    }

    /// Pick `k` distinct random non-dead members, excluding `not`.
    fn random_members(
        &self,
        k: usize,
        not: NodeId,
        ctx: &mut impl Transport,
    ) -> Vec<NodeId> {
        let mut pool: Vec<NodeId> = self.alive_members().filter(|&id| id != not).collect();
        let mut out = Vec::with_capacity(k.min(pool.len()));
        while out.len() < k && !pool.is_empty() {
            let i = ctx.rng().gen_range(0..pool.len());
            out.push(pool.swap_remove(i));
        }
        out
    }

    /// One probe round: pick the next target in shuffled round-robin
    /// order, ping it, open the ack window, re-arm the round timer.
    pub fn on_probe_tick(&mut self, ctx: &mut impl Transport) {
        ctx.set_timer(self.cfg.probe_interval, Msg::Tick(Tick::SwimProbe));
        self.beat += 1;
        if self.pos >= self.order.len() {
            self.order = self.alive_members().collect();
            self.pos = 0;
            // Fisher–Yates off the deterministic RNG.
            for i in (1..self.order.len()).rev() {
                let j = ctx.rng().gen_range(0..=i);
                self.order.swap(i, j);
            }
        }
        let Some(&target) = self.order.get(self.pos) else { return };
        self.pos += 1;
        // Skip members that died since the order was shuffled.
        if self.members.get(&target).is_none_or(|m| m.state == SwimState::Dead) {
            return;
        }
        self.seq += 1;
        let seq = self.seq;
        self.inflight = Some((seq, target));
        let updates = self.piggyback();
        ctx.send(target, Msg::SwimPing { seq, origin: self.me, updates });
        ctx.set_timer(self.cfg.ack_timeout, Msg::Tick(Tick::SwimAckTimeout(seq)));
    }

    /// Direct-ack window elapsed: fan out indirect probes via `k` peers
    /// and open the round's final window.
    pub fn on_ack_timeout(&mut self, seq: u64, ctx: &mut impl Transport) {
        let Some((inflight, target)) = self.inflight else { return };
        if inflight != seq {
            return;
        }
        for peer in self.random_members(self.cfg.indirect_k, target, ctx) {
            let updates = self.piggyback();
            ctx.send(peer, Msg::SwimPingReq { seq, target, origin: self.me, updates });
        }
        // Two relay legs plus the ack hop: allow twice the direct window.
        ctx.set_timer(self.cfg.ack_timeout * 2, Msg::Tick(Tick::SwimProbeTimeout(seq)));
    }

    /// Whole probe window elapsed silent: suspect the target.
    pub fn on_probe_timeout(&mut self, seq: u64, ctx: &mut impl Transport) -> Vec<SwimEvent> {
        let Some((inflight, target)) = self.inflight else { return Vec::new() };
        if inflight != seq {
            return Vec::new();
        }
        self.inflight = None;
        let Some(m) = self.members.get(&target) else { return Vec::new() };
        if m.state != SwimState::Alive {
            return Vec::new();
        }
        let incarnation = m.incarnation;
        let suspicion = SwimUpdate {
            node: target,
            state: SwimState::Suspect,
            incarnation,
            beat: 0,
            payload: None,
        };
        let mut events = Vec::new();
        self.apply_update(suspicion, ctx, &mut events);
        events
    }

    /// Suspicion window elapsed unrefuted. The first expiry sends one
    /// last-chance direct verify (a ping carrying the suspicion, so a
    /// live accused refutes in its ack) and holds the verdict for one
    /// relay window; a second expiry at the same incarnation confirms
    /// dead.
    pub fn on_suspect_timeout(
        &mut self,
        node: NodeId,
        incarnation: u64,
        ctx: &mut impl Transport,
    ) -> Vec<SwimEvent> {
        let still = self
            .members
            .get(&node)
            .is_some_and(|m| m.state == SwimState::Suspect && m.incarnation == incarnation);
        if !still {
            self.graced.remove(&(node, incarnation));
            return Vec::new();
        }
        if self.graced.insert((node, incarnation)) {
            self.seq += 1;
            let seq = self.seq;
            let mut updates = self.piggyback();
            if !updates.iter().any(|p| p.node == node) {
                updates.push(SwimUpdate {
                    node,
                    state: SwimState::Suspect,
                    incarnation,
                    beat: 0,
                    payload: None,
                });
            }
            ctx.send(node, Msg::SwimPing { seq, origin: self.me, updates });
            ctx.set_timer(
                self.cfg.ack_timeout * 3,
                Msg::Tick(Tick::SwimSuspectTimeout(node, incarnation)),
            );
            return Vec::new();
        }
        self.graced.remove(&(node, incarnation));
        let mut events = Vec::new();
        self.apply_update(
            SwimUpdate { node, state: SwimState::Dead, incarnation, beat: 0, payload: None },
            ctx,
            &mut events,
        );
        events
    }

    /// Anti-entropy round: pull a full digest from one random peer.
    pub fn on_sync_tick(&mut self, ctx: &mut impl Transport) {
        ctx.set_timer(self.cfg.sync_interval, Msg::Tick(Tick::SwimSync));
        let peers = self.random_members(1, self.me, ctx);
        let Some(&peer) = peers.first() else { return };
        self.sync_req += 1;
        ctx.send(peer, Msg::MembersPull { req: self.sync_req });
    }

    /// Incoming probe: absorb rumors, ack back to the *sender* (the
    /// relay on the indirect path), echoing the probe's origin.
    pub fn on_ping(
        &mut self,
        from: NodeId,
        seq: u64,
        origin: NodeId,
        updates: &[SwimUpdate],
        ctx: &mut impl Transport,
    ) -> Vec<SwimEvent> {
        let events = self.apply_updates(updates, ctx);
        let reply = self.piggyback();
        ctx.send(from, Msg::SwimAck { seq, origin, updates: reply });
        events
    }

    /// Relay leg: probe `target` on `origin`'s behalf.
    pub fn on_ping_req(
        &mut self,
        seq: u64,
        target: NodeId,
        origin: NodeId,
        updates: &[SwimUpdate],
        ctx: &mut impl Transport,
    ) -> Vec<SwimEvent> {
        let events = self.apply_updates(updates, ctx);
        let relay = self.piggyback();
        ctx.send(target, Msg::SwimPing { seq, origin, updates: relay });
        events
    }

    /// An ack arrived: close the probe if it is ours, forward it toward
    /// its origin if we were the relay.
    pub fn on_ack(
        &mut self,
        seq: u64,
        origin: NodeId,
        updates: &[SwimUpdate],
        ctx: &mut impl Transport,
    ) -> Vec<SwimEvent> {
        let events = self.apply_updates(updates, ctx);
        if origin == self.me {
            if self.inflight.is_some_and(|(s, _)| s == seq) {
                self.inflight = None;
            }
        } else {
            let fwd = self.piggyback();
            ctx.send(origin, Msg::SwimAck { seq, origin, updates: fwd });
        }
        events
    }

    /// Answer an anti-entropy pull with the full table.
    pub fn on_members_pull(&mut self, from: NodeId, req: u64, ctx: &mut impl Transport) {
        let updates = self.snapshot();
        ctx.send(from, Msg::MembersDigest { req, updates });
    }

    /// Absorb a digest (the pull reply).
    pub fn on_digest(
        &mut self,
        updates: &[SwimUpdate],
        ctx: &mut impl Transport,
    ) -> Vec<SwimEvent> {
        self.apply_updates(updates, ctx)
    }

    fn apply_updates(
        &mut self,
        updates: &[SwimUpdate],
        ctx: &mut impl Transport,
    ) -> Vec<SwimEvent> {
        let mut events = Vec::new();
        for &u in updates {
            self.apply_update(u, ctx, &mut events);
        }
        events
    }

    /// The SWIM merge rule. Accepted rumors are re-gossiped; rumors
    /// about this node's own demise are refuted by incarnation bump.
    fn apply_update(
        &mut self,
        u: SwimUpdate,
        ctx: &mut impl Transport,
        events: &mut Vec<SwimEvent>,
    ) {
        if u.node == self.me {
            if u.state != SwimState::Alive && u.incarnation >= self.incarnation {
                self.incarnation = u.incarnation + 1;
                let refute = self.self_update();
                self.enqueue(refute);
                events.push(SwimEvent::Refuted { incarnation: self.incarnation });
            }
            return;
        }
        let entry = self.members.entry(u.node).or_insert(Member {
            state: SwimState::Dead, // placeholder; any first rumor supersedes
            incarnation: 0,
            beat: 0,
            payload: None,
        });
        let known = entry.incarnation;
        let accepted = match (u.state, entry.state) {
            // A beat-only refresh keeps load info flowing without
            // re-gossip; state/incarnation changes spread as rumors.
            (SwimState::Alive, SwimState::Alive) => {
                if u.incarnation > known || (u.incarnation == known && u.beat > entry.beat) {
                    entry.incarnation = u.incarnation;
                    entry.beat = u.beat;
                    if u.payload.is_some() {
                        entry.payload = u.payload;
                    }
                    if let Some(hb) = entry.payload {
                        events.push(SwimEvent::Alive { node: u.node, payload: hb });
                    }
                    u.incarnation > known
                } else {
                    false
                }
            }
            (SwimState::Alive, SwimState::Suspect | SwimState::Dead) => {
                if u.incarnation > known {
                    entry.state = SwimState::Alive;
                    entry.incarnation = u.incarnation;
                    entry.beat = u.beat;
                    if u.payload.is_some() {
                        entry.payload = u.payload;
                    }
                    if let Some(hb) = entry.payload {
                        events.push(SwimEvent::Alive { node: u.node, payload: hb });
                    }
                    true
                } else {
                    false
                }
            }
            (SwimState::Suspect, SwimState::Alive) => {
                if u.incarnation >= known {
                    entry.state = SwimState::Suspect;
                    entry.incarnation = u.incarnation;
                    events.push(SwimEvent::Suspect { node: u.node, incarnation: u.incarnation });
                    ctx.set_timer(
                        self.cfg.suspect_timeout,
                        Msg::Tick(Tick::SwimSuspectTimeout(u.node, u.incarnation)),
                    );
                    true
                } else {
                    false
                }
            }
            (SwimState::Suspect, SwimState::Suspect) => {
                if u.incarnation > known {
                    entry.incarnation = u.incarnation;
                    events.push(SwimEvent::Suspect { node: u.node, incarnation: u.incarnation });
                    ctx.set_timer(
                        self.cfg.suspect_timeout,
                        Msg::Tick(Tick::SwimSuspectTimeout(u.node, u.incarnation)),
                    );
                    true
                } else {
                    false
                }
            }
            (SwimState::Suspect, SwimState::Dead) => false,
            (SwimState::Dead, SwimState::Dead) => false,
            // A verdict only lands at the incarnation it judged: a node
            // that refuted at i+1 must not be re-killed by a stale
            // Dead(i) still circulating.
            (SwimState::Dead, SwimState::Alive | SwimState::Suspect) => {
                if u.incarnation >= known {
                    entry.state = SwimState::Dead;
                    entry.incarnation = u.incarnation;
                    events.push(SwimEvent::Dead { node: u.node });
                    true
                } else {
                    false
                }
            }
        };
        if accepted {
            let m = self.members[&u.node];
            self.enqueue(SwimUpdate {
                node: u.node,
                state: m.state,
                incarnation: m.incarnation,
                beat: m.beat,
                payload: m.payload,
            });
            // Adopted a suspicion: verify with the accused directly
            // rather than waiting for the rumor to random-walk there.
            // Piggybacked gossip alone needs ~log₂(n) rounds to reach
            // the accused — often longer than the refutation window
            // under loss — and a live accused refutes in its ack, so
            // every suspecting node clears its suspicion independently
            // of the others.
            if u.state == SwimState::Suspect {
                self.seq += 1;
                let seq = self.seq;
                let mut updates = self.piggyback();
                if !updates.iter().any(|p| p.node == u.node) {
                    updates.push(SwimUpdate {
                        node: u.node,
                        state: SwimState::Suspect,
                        incarnation: u.incarnation,
                        beat: 0,
                        payload: None,
                    });
                }
                ctx.send(u.node, Msg::SwimPing { seq, origin: self.me, updates });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_copy_and_ordered_by_precedence_rules() {
        // `SwimUpdate` must stay `Copy`: updates are piggybacked into
        // many messages without allocation.
        fn assert_copy<T: Copy>() {}
        assert_copy::<SwimUpdate>();
        assert_copy::<SwimEvent>();
    }

    #[test]
    fn budget_grows_logarithmically() {
        let cfg = SwimConfig {
            probe_interval: Dur::secs(1),
            ack_timeout: Dur::millis(200),
            suspect_timeout: Dur::secs(3),
            indirect_k: 3,
            sync_interval: Dur::secs(10),
            max_piggyback: 8,
        };
        let few = SwimDetector::new(
            NodeId::from_index(0),
            (1..4).map(NodeId::from_index),
            cfg,
        );
        let many = SwimDetector::new(
            NodeId::from_index(0),
            (1..500).map(NodeId::from_index),
            cfg,
        );
        assert!(few.budget() < many.budget());
        assert!(many.budget() <= 3 * 9); // 3·⌈log₂(501)⌉
    }

    #[test]
    fn seeds_exclude_self_and_snapshot_leads_with_self() {
        let cfg = SwimConfig {
            probe_interval: Dur::secs(1),
            ack_timeout: Dur::millis(200),
            suspect_timeout: Dur::secs(3),
            indirect_k: 3,
            sync_interval: Dur::secs(10),
            max_piggyback: 8,
        };
        let me = NodeId::from_index(2);
        let d = SwimDetector::new(me, (0..4).map(NodeId::from_index), cfg);
        let snap = d.snapshot();
        assert_eq!(snap.len(), 4); // self + 3 seeds
        assert_eq!(snap[0].node, me);
        assert!(snap.iter().skip(1).all(|u| u.node != me));
    }
}
