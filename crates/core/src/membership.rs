//! Membership management and load monitoring (§3.3).
//!
//! Every node runs a membership manager that maintains the set of live
//! storage providers as *soft state*: providers announce themselves with
//! periodic heartbeats on a multicast channel, carrying their load and
//! storage availability; a provider missing [`HEARTBEAT_MISSES`]
//! consecutive announcement intervals is removed from the live set.

use std::collections::BTreeMap;

use sorrento_sim::{Dur, NodeId, SimTime};

/// "If a process fails to receive heartbeat packets from a provider for a
/// prolonged period (five times the heartbeat announcement interval), the
/// membership manager will remove that provider from its membership set."
pub const HEARTBEAT_MISSES: u32 = 5;

/// The payload of one heartbeat announcement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heartbeat {
    /// CPU + I/O-wait load `l ∈ [0, 1]` (EWMA-smoothed by the sender).
    pub load: f64,
    /// Bytes of storage still available.
    pub available: u64,
    /// Total storage capacity in bytes.
    pub capacity: u64,
    /// Physical machine hosting the provider (for locality placement).
    pub machine: u32,
    /// Rack the machine sits in (for failure-domain-aware replica
    /// placement, the paper's planned GoogleFS-style extension, §3.7.2).
    pub rack: u32,
}

/// What the membership manager knows about one live provider.
#[derive(Debug, Clone, Copy)]
pub struct ProviderInfo {
    /// Latest heartbeat payload.
    pub heartbeat: Heartbeat,
    /// When the latest heartbeat arrived.
    pub last_seen: SimTime,
}

/// Membership change reported by [`MembershipView::expire`] /
/// [`MembershipView::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// A provider not previously in the live set announced itself.
    Joined(NodeId),
    /// A provider stopped announcing and was dropped.
    Departed(NodeId),
}

/// The soft-state set of live providers, as seen from one node.
#[derive(Debug, Default)]
pub struct MembershipView {
    providers: BTreeMap<NodeId, ProviderInfo>,
}

impl MembershipView {
    /// Empty view.
    pub fn new() -> MembershipView {
        MembershipView::default()
    }

    /// Record a heartbeat; returns `Some(Joined)` if this provider was
    /// not previously live.
    pub fn observe(
        &mut self,
        from: NodeId,
        hb: Heartbeat,
        now: SimTime,
    ) -> Option<MembershipEvent> {
        let newly = !self.providers.contains_key(&from);
        self.providers.insert(
            from,
            ProviderInfo {
                heartbeat: hb,
                last_seen: now,
            },
        );
        newly.then_some(MembershipEvent::Joined(from))
    }

    /// Drop providers whose last heartbeat is older than
    /// `HEARTBEAT_MISSES × interval`; returns the departures.
    pub fn expire(&mut self, now: SimTime, interval: Dur) -> Vec<MembershipEvent> {
        let deadline = interval * HEARTBEAT_MISSES as u64;
        let dead: Vec<NodeId> = self
            .providers
            .iter()
            .filter(|(_, info)| now.since(info.last_seen) > deadline)
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            self.providers.remove(id);
        }
        dead.into_iter().map(MembershipEvent::Departed).collect()
    }

    /// Forcibly remove a provider (e.g. after a hard send failure).
    pub fn remove(&mut self, id: NodeId) -> bool {
        self.providers.remove(&id).is_some()
    }

    /// The live providers in id order.
    pub fn live(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.providers.keys().copied()
    }

    /// Live providers with their latest info.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, &ProviderInfo)> + '_ {
        self.providers.iter().map(|(&id, info)| (id, info))
    }

    /// Info for one provider.
    pub fn info(&self, id: NodeId) -> Option<&ProviderInfo> {
        self.providers.get(&id)
    }

    /// Whether the provider is currently considered live.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.providers.contains_key(&id)
    }

    /// Number of live providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// Whether no providers are known.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }

    /// The provider co-located with `machine`, if any.
    pub fn provider_on_machine(&self, machine: u32) -> Option<NodeId> {
        self.providers
            .iter()
            .find(|(_, info)| info.heartbeat.machine == machine)
            .map(|(&id, _)| id)
    }

    /// Cluster-wide load statistics `(mean, std_dev)` over live
    /// providers' reported loads — the inputs to the ±3σ migration
    /// trigger (§3.7.1).
    pub fn load_stats(&self) -> (f64, f64) {
        stats(self.providers.values().map(|p| p.heartbeat.load))
    }

    /// Cluster-wide storage-utilization statistics `(mean, std_dev)`.
    pub fn storage_stats(&self) -> (f64, f64) {
        stats(self.providers.values().map(|p| {
            let hb = p.heartbeat;
            if hb.capacity == 0 {
                0.0
            } else {
                1.0 - hb.available as f64 / hb.capacity as f64
            }
        }))
    }

    /// Rank of `value` among live providers under `key` (0 = highest).
    /// Used for the "among the highest 10%" migration condition.
    pub fn rank_descending(&self, value: f64, key: impl Fn(&Heartbeat) -> f64) -> usize {
        self.providers
            .values()
            .filter(|p| key(&p.heartbeat) > value)
            .count()
    }
}

fn stats(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return (0.0, 0.0);
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
    (mean, var.sqrt())
}

/// Exponentially weighted moving average, used to smooth a provider's
/// I/O-wait load (§3.7.1: "we measure a provider's I/O load using the
/// EWMA of the I/O wait percentage").
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Smoothing factor `alpha ∈ (0, 1]`: weight of each new sample.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ewma { alpha, value: None }
    }

    /// Fold in a sample and return the new average.
    pub fn update(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        };
        self.value = Some(next);
        next
    }

    /// Current average (0 before any sample).
    pub fn get(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(load: f64, available: u64) -> Heartbeat {
        Heartbeat {
            load,
            available,
            capacity: 100,
            machine: 0,
            rack: 0,
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Dur::secs(s)
    }

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn join_is_reported_once() {
        let mut view = MembershipView::new();
        assert_eq!(
            view.observe(node(1), hb(0.5, 50), t(0)),
            Some(MembershipEvent::Joined(node(1)))
        );
        assert_eq!(view.observe(node(1), hb(0.6, 40), t(1)), None);
        assert_eq!(view.len(), 1);
        assert!((view.info(node(1)).unwrap().heartbeat.load - 0.6).abs() < 1e-12);
    }

    #[test]
    fn expiry_after_five_missed_intervals() {
        let mut view = MembershipView::new();
        view.observe(node(1), hb(0.1, 50), t(0));
        view.observe(node(2), hb(0.2, 50), t(8));
        // Heartbeat interval 2 s → deadline 10 s.
        assert!(view.expire(t(10), Dur::secs(2)).is_empty());
        let gone = view.expire(t(11), Dur::secs(2));
        assert_eq!(gone, vec![MembershipEvent::Departed(node(1))]);
        assert!(!view.is_live(node(1)));
        assert!(view.is_live(node(2)));
    }

    #[test]
    fn fresh_heartbeat_resets_expiry() {
        let mut view = MembershipView::new();
        view.observe(node(1), hb(0.1, 50), t(0));
        view.observe(node(1), hb(0.1, 50), t(9));
        assert!(view.expire(t(12), Dur::secs(2)).is_empty());
    }

    #[test]
    fn stats_over_live_set() {
        let mut view = MembershipView::new();
        view.observe(node(1), hb(0.2, 80), t(0));
        view.observe(node(2), hb(0.4, 60), t(0));
        view.observe(node(3), hb(0.6, 40), t(0));
        let (mean, sd) = view.load_stats();
        assert!((mean - 0.4).abs() < 1e-12);
        assert!((sd - 0.1632993).abs() < 1e-6);
        let (smean, _) = view.storage_stats();
        assert!((smean - 0.4).abs() < 1e-12); // utilizations 0.2/0.4/0.6
    }

    #[test]
    fn rank_descending_counts_strictly_higher() {
        let mut view = MembershipView::new();
        view.observe(node(1), hb(0.2, 0), t(0));
        view.observe(node(2), hb(0.4, 0), t(0));
        view.observe(node(3), hb(0.9, 0), t(0));
        assert_eq!(view.rank_descending(0.9, |h| h.load), 0);
        assert_eq!(view.rank_descending(0.4, |h| h.load), 1);
        assert_eq!(view.rank_descending(0.1, |h| h.load), 3);
    }

    #[test]
    fn provider_on_machine_lookup() {
        let mut view = MembershipView::new();
        let mut h = hb(0.1, 10);
        h.machine = 7;
        view.observe(node(4), h, t(0));
        assert_eq!(view.provider_on_machine(7), Some(node(4)));
        assert_eq!(view.provider_on_machine(8), None);
    }

    #[test]
    fn ewma_smoothing() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), 0.0);
        assert_eq!(e.update(1.0), 1.0); // first sample adopted directly
        assert_eq!(e.update(0.0), 0.5);
        assert_eq!(e.update(0.0), 0.25);
    }

    #[test]
    fn empty_view_stats_are_zero() {
        let view = MembershipView::new();
        assert_eq!(view.load_stats(), (0.0, 0.0));
        assert!(view.is_empty());
    }
}
