//! Reply deduplication for at-least-once request delivery.
//!
//! The resilient client replays an unanswered request with the *same*
//! request id (see `SorrentoClient::rpc_resends`). For idempotent
//! requests (lookups, reads) a second execution is harmless, but a
//! replayed mutation — a create, a commit vote, a direct write — must
//! not run twice: the first execution may have succeeded with only the
//! reply lost, and re-executing would turn that success into a spurious
//! `AlreadyExists`/`VersionConflict`/double-append.
//!
//! [`ReplyCache`] is the receiver-side half of the contract: a bounded
//! FIFO of `(sender, request id) → reply`. A mutation's reply is
//! recorded after the first execution; a replay of the same key is
//! answered from the cache without touching state. The bound makes the
//! memory cost a constant — old entries are evicted in insertion order,
//! which is safe because the client abandons a request id forever once
//! the op that issued it completes.
//!
//! In seeded simulation runs the cache is populated but never hit
//! (request ids are never reused without resends, and the simulator
//! never enables resends), so it changes no simulated outcome.

use std::collections::{HashMap, VecDeque};

use crate::proto::{Msg, ReqId};
use sorrento_sim::NodeId;

/// Default number of replies a receiver retains.
pub const DEFAULT_REPLY_CACHE: usize = 256;

/// Bounded FIFO map of `(sender, request id) → cached reply`.
pub struct ReplyCache {
    cap: usize,
    map: HashMap<(NodeId, ReqId), Msg>,
    order: VecDeque<(NodeId, ReqId)>,
}

impl ReplyCache {
    /// A cache retaining at most `cap` replies (oldest evicted first).
    pub fn new(cap: usize) -> ReplyCache {
        ReplyCache { cap: cap.max(1), map: HashMap::new(), order: VecDeque::new() }
    }

    /// The cached reply for a replayed request, if any.
    pub fn get(&self, from: NodeId, req: ReqId) -> Option<&Msg> {
        self.map.get(&(from, req))
    }

    /// Record the reply to a just-executed mutation. Re-recording the
    /// same key overwrites (replays answered from the cache never call
    /// this).
    pub fn put(&mut self, from: NodeId, req: ReqId, reply: Msg) {
        let key = (from, req);
        if self.map.insert(key, reply).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    /// Forget everything (crash semantics: the cache is in-memory
    /// state, so a restarted node starts cold).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Number of retained replies.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn caches_and_replays_by_sender_and_req() {
        let mut c = ReplyCache::new(8);
        c.put(node(1), 7, Msg::NsMkdirR { req: 7, result: Ok(()) });
        assert!(matches!(c.get(node(1), 7), Some(Msg::NsMkdirR { req: 7, .. })));
        // Same req id from a different sender is a different key.
        assert!(c.get(node(2), 7).is_none());
        assert!(c.get(node(1), 8).is_none());
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut c = ReplyCache::new(2);
        for req in 0..3 {
            c.put(node(1), req, Msg::NsMkdirR { req, result: Ok(()) });
        }
        assert_eq!(c.len(), 2);
        assert!(c.get(node(1), 0).is_none(), "oldest entry should be evicted");
        assert!(c.get(node(1), 1).is_some());
        assert!(c.get(node(1), 2).is_some());
    }
}
