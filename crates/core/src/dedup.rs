//! Reply deduplication for at-least-once request delivery.
//!
//! The resilient client replays an unanswered request with the *same*
//! request id (see `SorrentoClient::rpc_resends`). For idempotent
//! requests (lookups, reads) a second execution is harmless, but a
//! replayed mutation — a create, a commit vote, a direct write — must
//! not run twice: the first execution may have succeeded with only the
//! reply lost, and re-executing would turn that success into a spurious
//! `AlreadyExists`/`VersionConflict`/double-append.
//!
//! [`ReplyCache`] is the receiver-side half of the contract: a bounded
//! LRU of `(sender, request id) → reply`. A mutation's reply is
//! recorded after the first execution; a replay of the same key is
//! answered from the cache without touching state, and the hit renews
//! the entry. The bound makes the memory cost a constant; recency-based
//! eviction means a reply still being actively replayed (a client stuck
//! behind a flaky link resending the same request) cannot be pushed out
//! by a flood of newer unrelated mutations, which insertion-order
//! eviction would allow.
//!
//! In seeded simulation runs the cache is populated but never hit
//! (request ids are never reused without resends, and the simulator
//! never enables resends), so it changes no simulated outcome.

use std::collections::{BTreeMap, HashMap};

use crate::proto::{Msg, ReqId};
use sorrento_sim::NodeId;

/// Default number of replies a receiver retains.
pub const DEFAULT_REPLY_CACHE: usize = 256;

/// Bounded LRU map of `(sender, request id) → cached reply`.
pub struct ReplyCache {
    cap: usize,
    /// Monotonic recency stamp; unique per touch, so it doubles as the
    /// recency-index key.
    tick: u64,
    map: HashMap<(NodeId, ReqId), (Msg, u64)>,
    /// Recency index: stamp → key, oldest first.
    lru: BTreeMap<u64, (NodeId, ReqId)>,
}

impl ReplyCache {
    /// A cache retaining at most `cap` replies (least recently used
    /// evicted first).
    pub fn new(cap: usize) -> ReplyCache {
        ReplyCache {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
        }
    }

    /// The cached reply for a replayed request, if any. A hit renews
    /// the entry's recency.
    pub fn get(&mut self, from: NodeId, req: ReqId) -> Option<&Msg> {
        let key = (from, req);
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(&key)?;
        self.lru.remove(&entry.1);
        entry.1 = tick;
        self.lru.insert(tick, key);
        Some(&entry.0)
    }

    /// Record the reply to a just-executed mutation. Re-recording the
    /// same key overwrites (replays answered from the cache never call
    /// this).
    pub fn put(&mut self, from: NodeId, req: ReqId, reply: Msg) {
        let key = (from, req);
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old)) = self.map.insert(key, (reply, tick)) {
            self.lru.remove(&old);
        }
        self.lru.insert(tick, key);
        while self.map.len() > self.cap {
            let Some((&oldest, _)) = self.lru.iter().next() else {
                break;
            };
            if let Some(victim) = self.lru.remove(&oldest) {
                self.map.remove(&victim);
            }
        }
    }

    /// Forget everything (crash semantics: the cache is in-memory
    /// state, so a restarted node starts cold).
    pub fn clear(&mut self) {
        self.map.clear();
        self.lru.clear();
    }

    /// Number of retained replies.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn reply(req: ReqId) -> Msg {
        Msg::NsMkdirR { req, result: Ok(()) }
    }

    #[test]
    fn caches_and_replays_by_sender_and_req() {
        let mut c = ReplyCache::new(8);
        c.put(node(1), 7, reply(7));
        assert!(matches!(c.get(node(1), 7), Some(Msg::NsMkdirR { req: 7, .. })));
        // Same req id from a different sender is a different key.
        assert!(c.get(node(2), 7).is_none());
        assert!(c.get(node(1), 8).is_none());
    }

    #[test]
    fn evicts_least_recent_beyond_capacity() {
        let mut c = ReplyCache::new(2);
        for req in 0..3 {
            c.put(node(1), req, reply(req));
        }
        assert_eq!(c.len(), 2);
        assert!(c.get(node(1), 0).is_none(), "oldest entry should be evicted");
        assert!(c.get(node(1), 1).is_some());
        assert!(c.get(node(1), 2).is_some());
    }

    #[test]
    fn hits_renew_recency() {
        let mut c = ReplyCache::new(2);
        c.put(node(1), 0, reply(0));
        c.put(node(1), 1, reply(1));
        // Touch 0 so 1 becomes the least recently used…
        assert!(c.get(node(1), 0).is_some());
        c.put(node(1), 2, reply(2));
        // …and is the one evicted.
        assert!(c.get(node(1), 0).is_some(), "recently hit entry must survive");
        assert!(c.get(node(1), 1).is_none(), "least recently used is evicted");
        assert!(c.get(node(1), 2).is_some());
    }

    #[test]
    fn sustained_retries_stay_cached_under_insert_pressure() {
        // A client stuck behind a flaky link keeps replaying one request
        // while hundreds of other mutations stream through the node. The
        // replayed entry must outlive cap-worth of unrelated inserts, and
        // the cache must stay exactly at its bound throughout.
        let cap = 16;
        let mut c = ReplyCache::new(cap);
        c.put(node(1), 1, reply(1));
        for batch in 0u64..50 {
            for i in 0..8 {
                c.put(node(2), 1000 + batch * 8 + i, reply(0));
                assert!(c.len() <= cap, "cache exceeded its bound");
            }
            // The retry arrives between batches and renews the entry.
            assert!(
                c.get(node(1), 1).is_some(),
                "sustained retry evicted at batch {batch}"
            );
        }
        assert_eq!(c.len(), cap);
        // Once the retries stop, insert pressure does evict it.
        for i in 0..cap as u64 {
            c.put(node(2), 9000 + i, reply(0));
        }
        assert!(c.get(node(1), 1).is_none());
        assert_eq!(c.len(), cap);
    }

    #[test]
    fn overwrite_does_not_grow_or_duplicate() {
        let mut c = ReplyCache::new(4);
        for _ in 0..10 {
            c.put(node(1), 7, reply(7));
        }
        assert_eq!(c.len(), 1);
        assert!(c.get(node(1), 7).is_some());
    }
}
