//! A sparse byte buffer: the physical storage behind a version's delta
//! when the segment carries real bytes. Holds only written extents, so a
//! 4 MB write at offset 400 MB costs 4 MB, not 404 MB.

use std::collections::BTreeMap;

/// Non-overlapping written extents, keyed by start offset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseBuffer {
    chunks: BTreeMap<u64, Vec<u8>>,
}

impl SparseBuffer {
    /// Empty buffer.
    pub fn new() -> SparseBuffer {
        SparseBuffer::default()
    }

    /// Write `data` at `offset`, overwriting any overlapped bytes.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let end = offset + data.len() as u64;
        // Trim a chunk that starts before `offset` and overlaps it.
        if let Some((&cs, _)) = self.chunks.range(..offset).next_back() {
            let clen = self.chunks[&cs].len() as u64;
            let ce = cs + clen;
            if ce > offset {
                let keep_front = (offset - cs) as usize;
                let tail: Vec<u8> = if ce > end {
                    self.chunks[&cs][(end - cs) as usize..].to_vec()
                } else {
                    Vec::new()
                };
                let chunk = self.chunks.get_mut(&cs).expect("chunk present");
                chunk.truncate(keep_front);
                if !tail.is_empty() {
                    self.chunks.insert(end, tail);
                }
            }
        }
        // Handle chunks starting within [offset, end).
        let inside: Vec<u64> = self.chunks.range(offset..end).map(|(&k, _)| k).collect();
        for cs in inside {
            let chunk = self.chunks.remove(&cs).expect("chunk present");
            let ce = cs + chunk.len() as u64;
            if ce > end {
                // Keep the tail beyond the new write.
                self.chunks
                    .insert(end, chunk[(end - cs) as usize..].to_vec());
            }
        }
        self.chunks.insert(offset, data.to_vec());
        self.coalesce_around(offset);
    }

    /// Read `[offset, offset+len)` into `out` (which must be `len` long,
    /// pre-filled with the caller's hole value, normally zero). Bytes not
    /// present in the buffer are left untouched.
    pub fn read_into(&self, offset: u64, out: &mut [u8]) {
        let len = out.len() as u64;
        if len == 0 {
            return;
        }
        let end = offset + len;
        // Possible partial overlap from a chunk starting before `offset`.
        let first = self
            .chunks
            .range(..offset)
            .next_back()
            .map(|(&k, _)| k)
            .into_iter()
            .chain(self.chunks.range(offset..end).map(|(&k, _)| k));
        for cs in first {
            let chunk = &self.chunks[&cs];
            let ce = cs + chunk.len() as u64;
            let s = cs.max(offset);
            let e = ce.min(end);
            if s < e {
                out[(s - offset) as usize..(e - offset) as usize]
                    .copy_from_slice(&chunk[(s - cs) as usize..(e - cs) as usize]);
            }
        }
    }

    /// Bytes physically stored.
    pub fn stored_bytes(&self) -> u64 {
        self.chunks.values().map(|c| c.len() as u64).sum()
    }

    /// Number of distinct extents (diagnostics).
    pub fn extent_count(&self) -> usize {
        self.chunks.len()
    }

    /// Drop bytes at or beyond `len` (truncate).
    pub fn truncate(&mut self, len: u64) {
        if let Some((&cs, _)) = self.chunks.range(..len).next_back() {
            let clen = self.chunks[&cs].len() as u64;
            if cs + clen > len {
                self.chunks
                    .get_mut(&cs)
                    .expect("chunk present")
                    .truncate((len - cs) as usize);
            }
        }
        let beyond: Vec<u64> = self.chunks.range(len..).map(|(&k, _)| k).collect();
        for k in beyond {
            self.chunks.remove(&k);
        }
        self.chunks.retain(|_, c| !c.is_empty());
    }

    /// Merge physically adjacent chunks touching the chunk at `at`,
    /// bounding fragmentation under append-heavy workloads.
    fn coalesce_around(&mut self, at: u64) {
        // Merge with predecessor if contiguous.
        let mut start = at;
        if let Some((&ps, _)) = self.chunks.range(..at).next_back() {
            if ps + self.chunks[&ps].len() as u64 == at {
                let cur = self.chunks.remove(&at).expect("chunk present");
                self.chunks
                    .get_mut(&ps)
                    .expect("chunk present")
                    .extend_from_slice(&cur);
                start = ps;
            }
        }
        // Merge with successor if contiguous.
        let end = start + self.chunks[&start].len() as u64;
        if let Some(next) = self.chunks.remove(&end) {
            self.chunks
                .get_mut(&start)
                .expect("chunk present")
                .extend_from_slice(&next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(buf: &SparseBuffer, offset: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0; len];
        buf.read_into(offset, &mut out);
        out
    }

    #[test]
    fn write_then_read_back() {
        let mut b = SparseBuffer::new();
        b.write(10, b"hello");
        assert_eq!(read(&b, 10, 5), b"hello");
        assert_eq!(read(&b, 8, 9), b"\0\0hello\0\0");
    }

    #[test]
    fn overwrite_middle() {
        let mut b = SparseBuffer::new();
        b.write(0, b"aaaaaaaaaa");
        b.write(3, b"BBB");
        assert_eq!(read(&b, 0, 10), b"aaaBBBaaaa");
    }

    #[test]
    fn overwrite_spanning_chunks() {
        let mut b = SparseBuffer::new();
        b.write(0, b"aaaa");
        b.write(8, b"cccc");
        b.write(2, b"BBBBBBBB");
        assert_eq!(read(&b, 0, 12), b"aaBBBBBBBBcc");
    }

    #[test]
    fn adjacent_appends_coalesce() {
        let mut b = SparseBuffer::new();
        b.write(0, b"aa");
        b.write(2, b"bb");
        b.write(4, b"cc");
        assert_eq!(b.extent_count(), 1);
        assert_eq!(read(&b, 0, 6), b"aabbcc");
    }

    #[test]
    fn stored_bytes_counts_physical() {
        let mut b = SparseBuffer::new();
        b.write(0, b"aaaa");
        b.write(100, b"bbbb");
        assert_eq!(b.stored_bytes(), 8);
        b.write(2, b"XXXX"); // overlaps 2 bytes, extends 2
        assert_eq!(b.stored_bytes(), 10);
    }

    #[test]
    fn truncate_trims_and_drops() {
        let mut b = SparseBuffer::new();
        b.write(0, b"aaaa");
        b.write(10, b"bbbb");
        b.truncate(12);
        assert_eq!(read(&b, 10, 4), b"bb\0\0");
        b.truncate(2);
        assert_eq!(b.stored_bytes(), 2);
        b.truncate(0);
        assert_eq!(b.stored_bytes(), 0);
    }

    #[test]
    fn empty_write_is_noop() {
        let mut b = SparseBuffer::new();
        b.write(5, b"");
        assert_eq!(b.stored_bytes(), 0);
    }

    /// Reference-model check against a flat Vec<u8>.
    #[test]
    fn matches_flat_model() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for _ in 0..30 {
            let mut b = SparseBuffer::new();
            let mut model = vec![0u8; 256];
            for _ in 0..60 {
                let off = rng.gen_range(0..200u64);
                let len = rng.gen_range(0..40usize);
                let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                b.write(off, &data);
                model[off as usize..off as usize + len].copy_from_slice(&data);
            }
            assert_eq!(read(&b, 0, 256), model);
        }
    }
}
