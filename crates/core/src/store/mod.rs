//! The local segment store run by every storage provider (§3.2, §3.5).
//!
//! Segments live "in their entirety on native file systems"; here the
//! native file system is modeled and the store keeps, per segment, a
//! chain of committed versions plus any open shadow copies:
//!
//! * **Committed versions** are immutable. Each holds the bytes written
//!   *at* that version (its delta) plus a [`RegionIndex`] telling which
//!   version physically holds every byte — the standard copy-on-write
//!   technique of §3.5.
//! * **Shadow copies** are created blank and "truncated to the same size
//!   as the base segment"; unmodified regions resolve into the base
//!   chain, modified regions into the shadow's own delta. Shadows carry
//!   an expiration time so crashed clients cannot leak them.
//! * **Version consolidation** keeps only the most recent
//!   [`LocalStore::keep_versions`] versions, materializing the oldest
//!   survivor so dropped ancestors are safe to free.
//!
//! Segment payloads are either real bytes (integration tests verify exact
//! round-trips) or synthetic lengths (multi-GB experiments without the
//! RAM); the choice is per segment via [`SegMeta::synthetic`].

mod region;
mod sparse;

pub use region::RegionIndex;
pub use sparse::SparseBuffer;

use std::collections::{BTreeMap, HashMap, VecDeque};

use bytes::Bytes;
use sorrento_sim::SimTime;

use crate::types::{Error, FileOptions, PlacementPolicy, Result, SegId, Version};

/// Identifier of an open shadow copy on one provider.
pub type ShadowId = u64;

/// Bytes handed to a write: real data or a modeled length.
#[derive(Debug, Clone)]
pub enum WritePayload {
    /// Actual bytes (stored and readable back). A [`Bytes`] view, so
    /// forwarding a payload between layers never copies it.
    Real(Bytes),
    /// Modeled bytes (only the length is tracked).
    Synthetic {
        /// Modeled write length.
        len: u64,
    },
}

impl WritePayload {
    /// Length of the write in bytes.
    pub fn len(&self) -> u64 {
        match self {
            WritePayload::Real(d) => d.len() as u64,
            WritePayload::Synthetic { len } => *len,
        }
    }

    /// Whether the write carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-segment management metadata, set at creation from [`FileOptions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegMeta {
    /// Desired replication degree.
    pub replication: u32,
    /// Placement favoritism α.
    pub alpha: f64,
    /// Placement policy governing this segment.
    pub policy: PlacementPolicy,
    /// Whether payloads are synthetic (lengths only).
    pub synthetic: bool,
    /// Set **only on the index segment** of an erasure-coded file:
    /// `(k, m)` of the file's Reed-Solomon code. Providers holding such
    /// a segment drive EC shard repair from it (the index lists every
    /// shard); data/parity shards themselves carry `None` so repair
    /// scans don't false-positive on them.
    pub ec: Option<(u8, u8)>,
}

impl SegMeta {
    /// Derive segment metadata from the owning file's options. The EC
    /// marker is *not* copied here — only index segments carry it, and
    /// the commit path sets it explicitly.
    pub fn from_options(opts: &FileOptions, synthetic: bool) -> SegMeta {
        SegMeta {
            replication: opts.replication,
            alpha: opts.alpha,
            policy: opts.placement,
            synthetic,
            ec: None,
        }
    }
}

impl Default for SegMeta {
    fn default() -> Self {
        SegMeta {
            replication: 1,
            alpha: 0.5,
            policy: PlacementPolicy::LoadAware,
            synthetic: false,
            ec: None,
        }
    }
}

/// Physical storage of one version's delta.
#[derive(Debug, Clone)]
enum Delta {
    Real(SparseBuffer),
    Synthetic { stored: u64 },
}

impl Delta {
    fn new(synthetic: bool) -> Delta {
        if synthetic {
            Delta::Synthetic { stored: 0 }
        } else {
            Delta::Real(SparseBuffer::new())
        }
    }

    fn stored_bytes(&self) -> u64 {
        match self {
            Delta::Real(b) => b.stored_bytes(),
            Delta::Synthetic { stored } => *stored,
        }
    }
}

/// Source marker inside a shadow's region index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShadowSrc {
    /// Bytes live in the committed chain at this version.
    Committed(Version),
    /// Bytes written into this shadow.
    Fresh,
}

/// One committed, immutable version of a segment.
#[derive(Debug, Clone)]
struct VersionData {
    len: u64,
    index: RegionIndex<Version>,
    delta: Delta,
    committed_at: SimTime,
}

/// Everything the provider stores for one segment.
#[derive(Debug)]
struct SegmentState {
    versions: BTreeMap<Version, VersionData>,
    /// Milestone versions that consolidation must never drop (§3.5's
    /// Elephant-style milestones, listed as planned work in the paper).
    pinned: Vec<Version>,
    meta: SegMeta,
    last_access: SimTime,
    /// Recent accesses as `(machine, bytes)`, newest at the back; bounded
    /// to [`ACCESS_HISTORY_CAP`] (§3.7.2: "the latest one thousand
    /// accesses").
    access_history: VecDeque<(u32, u64)>,
}

/// "We also limit the memory consumption by only keeping the latest one
/// thousand accesses for the most recently accessed one thousand
/// segments." (§3.7.2)
pub const ACCESS_HISTORY_CAP: usize = 1000;
/// Cap on how many segments keep an access history at once.
pub const TRACKED_SEGMENTS_CAP: usize = 1000;

/// An open shadow copy (pre-commit mutable view of a segment).
#[derive(Debug)]
struct Shadow {
    seg: SegId,
    base: Option<Version>,
    len: u64,
    index: RegionIndex<ShadowSrc>,
    delta: Delta,
    expires_at: SimTime,
    meta: SegMeta,
    /// Set by 2PC prepare: shadow may no longer expire and is pinned to
    /// this target version until commit or abort.
    prepared_as: Option<Version>,
}

/// Outcome of a read.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadOut {
    /// Bytes actually covered (clamped at segment length).
    pub len: u64,
    /// The bytes, when the segment stores real data.
    pub data: Option<Bytes>,
    /// Version served.
    pub version: Version,
}

/// A materialized replica image for transfer between providers.
#[derive(Debug, Clone)]
pub struct ReplicaImage {
    /// Segment identity.
    pub seg: SegId,
    /// Version captured.
    pub version: Version,
    /// Logical segment length.
    pub len: u64,
    /// Full contents when real; `None` when synthetic.
    pub data: Option<Bytes>,
    /// Management metadata.
    pub meta: SegMeta,
}

/// The per-provider segment store.
#[derive(Debug)]
pub struct LocalStore {
    segments: HashMap<SegId, SegmentState>,
    shadows: HashMap<ShadowId, Shadow>,
    next_shadow: ShadowId,
    /// Committed versions retained per segment ("one or a few latest
    /// stable versions", §3.5 — older ones double as backups).
    pub keep_versions: usize,
}

impl Default for LocalStore {
    fn default() -> Self {
        LocalStore::new(1)
    }
}

impl LocalStore {
    /// Create a store keeping `keep_versions` committed versions per
    /// segment (≥ 1).
    pub fn new(keep_versions: usize) -> LocalStore {
        LocalStore {
            segments: HashMap::new(),
            shadows: HashMap::new(),
            next_shadow: 1,
            keep_versions: keep_versions.max(1),
        }
    }

    // ------------------------------------------------------------------
    // Shadows
    // ------------------------------------------------------------------

    /// Open a shadow over `base` of an existing segment. Fails if the
    /// base version is not locally stored.
    pub fn open_shadow(
        &mut self,
        seg: SegId,
        base: Version,
        now: SimTime,
        ttl: sorrento_sim::Dur,
    ) -> Result<ShadowId> {
        let state = self.segments.get(&seg).ok_or(Error::NoSuchSegment)?;
        let vd = state.versions.get(&base).ok_or(Error::NoSuchSegment)?;
        let len = vd.len;
        let meta = state.meta;
        // "create a blank segment and truncate it to the same size as the
        // base segment": every byte initially resolves into the base.
        let index = RegionIndex::full(len, Some(ShadowSrc::Committed(base)));
        let id = self.alloc_shadow(Shadow {
            seg,
            base: Some(base),
            len,
            index,
            delta: Delta::new(meta.synthetic),
            expires_at: now + ttl,
            meta,
            prepared_as: None,
        });
        Ok(id)
    }

    /// Open a shadow for a brand-new segment (no committed base yet).
    pub fn open_fresh_shadow(
        &mut self,
        seg: SegId,
        meta: SegMeta,
        now: SimTime,
        ttl: sorrento_sim::Dur,
    ) -> ShadowId {
        self.alloc_shadow(Shadow {
            seg,
            base: None,
            len: 0,
            index: RegionIndex::full(0, None),
            delta: Delta::new(meta.synthetic),
            expires_at: now + ttl,
            meta,
            prepared_as: None,
        })
    }

    fn alloc_shadow(&mut self, shadow: Shadow) -> ShadowId {
        let id = self.next_shadow;
        self.next_shadow += 1;
        self.shadows.insert(id, shadow);
        id
    }

    /// Write into a shadow. Extends the shadow length on append.
    pub fn write_shadow(&mut self, id: ShadowId, offset: u64, payload: WritePayload) -> Result<()> {
        let sh = self.shadows.get_mut(&id).ok_or(Error::ShadowExpired)?;
        let len = payload.len();
        if len == 0 {
            return Ok(());
        }
        let end = offset + len;
        match (&mut sh.delta, payload) {
            (Delta::Real(buf), WritePayload::Real(data)) => buf.write(offset, &data),
            (Delta::Synthetic { stored }, _) => {
                // Account newly covered fresh bytes only.
                let already = sh
                    .index
                    .resolve(offset, end)
                    .iter()
                    .filter(|(_, s)| *s == Some(ShadowSrc::Fresh))
                    .map(|(r, _)| r.end - r.start)
                    .sum::<u64>();
                *stored += len - already;
            }
            (Delta::Real(buf), WritePayload::Synthetic { len }) => {
                // Tests may mix: fill with zeros of the modeled length.
                buf.write(offset, &vec![0u8; len as usize]);
            }
        }
        sh.index.overlay(offset, end, Some(ShadowSrc::Fresh));
        sh.len = sh.len.max(end);
        Ok(())
    }

    /// Truncate a shadow to `len`.
    pub fn truncate_shadow(&mut self, id: ShadowId, len: u64) -> Result<()> {
        let sh = self.shadows.get_mut(&id).ok_or(Error::ShadowExpired)?;
        sh.index.set_len(len);
        if let Delta::Real(buf) = &mut sh.delta {
            buf.truncate(len);
        }
        sh.len = len;
        Ok(())
    }

    /// Read through a shadow (read-your-writes before commit).
    pub fn read_shadow(&self, id: ShadowId, offset: u64, len: u64) -> Result<ReadOut> {
        let sh = self.shadows.get(&id).ok_or(Error::ShadowExpired)?;
        let end = (offset + len).min(sh.len);
        if offset >= end {
            return Ok(ReadOut {
                len: 0,
                data: (!sh.meta.synthetic).then(Bytes::new),
                version: sh.base.unwrap_or(Version::INITIAL),
            });
        }
        let covered = end - offset;
        if sh.meta.synthetic {
            return Ok(ReadOut {
                len: covered,
                data: None,
                version: sh.base.unwrap_or(Version::INITIAL),
            });
        }
        let mut out = vec![0u8; covered as usize];
        for (range, src) in sh.index.resolve(offset, end) {
            let dst = &mut out[(range.start - offset) as usize..(range.end - offset) as usize];
            match src {
                Some(ShadowSrc::Fresh) => {
                    if let Delta::Real(buf) = &sh.delta {
                        buf.read_into(range.start, dst);
                    }
                }
                Some(ShadowSrc::Committed(v)) => {
                    self.read_committed_into(sh.seg, v, range.start, dst)?;
                }
                None => {} // hole: zeros
            }
        }
        Ok(ReadOut {
            len: covered,
            data: Some(out.into()),
            version: sh.base.unwrap_or(Version::INITIAL),
        })
    }

    /// Renew a shadow's expiration (the client "must either commit a
    /// shadow segment before its expiration, or reset the expiration
    /// timer", §3.5).
    pub fn renew_shadow(&mut self, id: ShadowId, now: SimTime, ttl: sorrento_sim::Dur) -> Result<()> {
        let sh = self.shadows.get_mut(&id).ok_or(Error::ShadowExpired)?;
        sh.expires_at = now + ttl;
        Ok(())
    }

    /// 2PC prepare: pin the shadow to a target version; it can no longer
    /// expire. Fails if the target does not advance the latest committed
    /// version.
    pub fn prepare_shadow(&mut self, id: ShadowId, target: Version) -> Result<()> {
        // Validate against the committed chain before mutating.
        let (seg, base) = {
            let sh = self.shadows.get(&id).ok_or(Error::ShadowExpired)?;
            (sh.seg, sh.base)
        };
        if let Some(state) = self.segments.get(&seg) {
            if let Some((&latest, _)) = state.versions.iter().next_back() {
                if target <= latest {
                    return Err(Error::VersionConflict);
                }
                // A based shadow must stand on the latest committed
                // version (stale-base lost-update guard). A fresh shadow
                // carries the complete replacement content, so existing
                // history is simply superseded — EC parity rewrites rely
                // on this: parity is re-derived whole on every commit and
                // may land on the provider holding the previous version.
                if let Some(b) = base {
                    if b != latest {
                        return Err(Error::VersionConflict);
                    }
                }
            }
        }
        let sh = self.shadows.get_mut(&id).expect("checked above");
        sh.prepared_as = Some(target);
        Ok(())
    }

    /// 2PC commit (or direct single-segment commit): the shadow becomes
    /// committed version `target`.
    pub fn commit_shadow(&mut self, id: ShadowId, target: Version, now: SimTime) -> Result<()> {
        let sh = self.shadows.remove(&id).ok_or(Error::ShadowExpired)?;
        // Compose the committed index *transitively*: a shadow's
        // unmodified ranges point at its base version, but the base's
        // bytes may physically live in even older deltas — the committed
        // index must name the version whose delta actually holds each
        // byte, or deep version chains would read zeros.
        let index = match sh.base {
            Some(base) => {
                let mut ix = self
                    .segments
                    .get(&sh.seg)
                    .and_then(|st| st.versions.get(&base))
                    .map(|vd| vd.index.clone())
                    .unwrap_or_else(|| RegionIndex::full(0, None));
                ix.set_len(sh.len);
                for (range, src) in sh.index.resolve(0, sh.len) {
                    if src == Some(ShadowSrc::Fresh) {
                        ix.overlay(range.start, range.end, Some(target));
                    }
                }
                ix
            }
            None => sh.index.map_sources(|s| match s {
                ShadowSrc::Fresh => target,
                ShadowSrc::Committed(v) => v,
            }),
        };
        let vd = VersionData {
            len: sh.len,
            index,
            delta: sh.delta,
            committed_at: now,
        };
        let state = self
            .segments
            .entry(sh.seg)
            .or_insert_with(|| SegmentState {
                versions: BTreeMap::new(),
                pinned: Vec::new(),
                meta: sh.meta,
                last_access: now,
                access_history: VecDeque::new(),
            });
        state.versions.insert(target, vd);
        state.last_access = now;
        let seg = sh.seg;
        self.consolidate(seg);
        Ok(())
    }

    /// 2PC abort: drop the shadow.
    pub fn abort_shadow(&mut self, id: ShadowId) {
        self.shadows.remove(&id);
    }

    /// Drop expired, unprepared shadows; returns how many were reaped.
    pub fn expire_shadows(&mut self, now: SimTime) -> usize {
        let before = self.shadows.len();
        self.shadows
            .retain(|_, s| s.prepared_as.is_some() || s.expires_at >= now);
        before - self.shadows.len()
    }

    /// Drop every shadow (crash: in-memory shadow state dies with the
    /// daemon; committed segments survive on disk).
    pub fn expire_all_shadows(&mut self) {
        self.shadows.clear();
    }

    /// Which segment a shadow belongs to.
    pub fn shadow_segment(&self, id: ShadowId) -> Option<SegId> {
        self.shadows.get(&id).map(|s| s.seg)
    }

    /// Number of open shadows (diagnostics).
    pub fn open_shadow_count(&self) -> usize {
        self.shadows.len()
    }

    // ------------------------------------------------------------------
    // Committed reads & direct (versioning-off) writes
    // ------------------------------------------------------------------

    /// Read `len` bytes at `offset` from `version` (or the latest).
    pub fn read(
        &self,
        seg: SegId,
        version: Option<Version>,
        offset: u64,
        len: u64,
    ) -> Result<ReadOut> {
        let state = self.segments.get(&seg).ok_or(Error::NoSuchSegment)?;
        let (v, vd) = match version {
            Some(v) => (v, state.versions.get(&v).ok_or(Error::NoSuchSegment)?),
            None => {
                let (&v, vd) = state.versions.iter().next_back().ok_or(Error::NoSuchSegment)?;
                (v, vd)
            }
        };
        let end = (offset + len).min(vd.len);
        let covered = end.saturating_sub(offset);
        if state.meta.synthetic {
            return Ok(ReadOut {
                len: covered,
                data: None,
                version: v,
            });
        }
        let mut out = vec![0u8; covered as usize];
        if covered > 0 {
            self.read_version_into(state, vd, offset, &mut out)?;
        }
        Ok(ReadOut {
            len: covered,
            data: Some(out.into()),
            version: v,
        })
    }

    fn read_version_into(
        &self,
        state: &SegmentState,
        vd: &VersionData,
        offset: u64,
        out: &mut [u8],
    ) -> Result<()> {
        let end = offset + out.len() as u64;
        for (range, src) in vd.index.resolve(offset, end) {
            if let Some(src_v) = src {
                let holder = state.versions.get(&src_v).ok_or(Error::NoSuchSegment)?;
                if let Delta::Real(buf) = &holder.delta {
                    let dst =
                        &mut out[(range.start - offset) as usize..(range.end - offset) as usize];
                    buf.read_into(range.start, dst);
                }
            }
        }
        Ok(())
    }

    fn read_committed_into(
        &self,
        seg: SegId,
        version: Version,
        offset: u64,
        out: &mut [u8],
    ) -> Result<()> {
        let state = self.segments.get(&seg).ok_or(Error::NoSuchSegment)?;
        let vd = state.versions.get(&version).ok_or(Error::NoSuchSegment)?;
        self.read_version_into(state, vd, offset, out)
    }

    /// Versioning-off write path (§3.5): apply directly to the latest
    /// committed version in place. Creates version 1 on first write.
    pub fn direct_write(
        &mut self,
        seg: SegId,
        offset: u64,
        payload: WritePayload,
        meta: SegMeta,
        now: SimTime,
    ) -> Result<()> {
        let wlen = payload.len();
        let end = offset + wlen;
        let state = self.segments.entry(seg).or_insert_with(|| SegmentState {
            versions: BTreeMap::new(),
            pinned: Vec::new(),
            meta,
            last_access: now,
            access_history: VecDeque::new(),
        });
        if state.versions.is_empty() {
            state.versions.insert(
                Version(1),
                VersionData {
                    len: 0,
                    index: RegionIndex::full(0, None),
                    delta: Delta::new(meta.synthetic),
                    committed_at: now,
                },
            );
        }
        if wlen == 0 {
            return Ok(());
        }
        let (&v, vd) = state.versions.iter_mut().next_back().expect("non-empty");
        match (&mut vd.delta, payload) {
            (Delta::Real(buf), WritePayload::Real(data)) => buf.write(offset, &data),
            (Delta::Real(buf), WritePayload::Synthetic { len }) => {
                buf.write(offset, &vec![0u8; len as usize])
            }
            (Delta::Synthetic { stored }, _) => {
                let already = vd
                    .index
                    .resolve(offset, end)
                    .iter()
                    .filter(|(_, s)| s.is_some())
                    .map(|(r, _)| r.end - r.start)
                    .sum::<u64>();
                *stored += wlen - already;
            }
        }
        vd.index.overlay(offset, end, Some(v));
        vd.len = vd.len.max(end);
        state.last_access = now;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Replication / migration support
    // ------------------------------------------------------------------

    /// Materialize the given (or latest) version for transfer.
    pub fn export(&self, seg: SegId, version: Option<Version>) -> Result<ReplicaImage> {
        let state = self.segments.get(&seg).ok_or(Error::NoSuchSegment)?;
        let (v, vd) = match version {
            Some(v) => (v, state.versions.get(&v).ok_or(Error::NoSuchSegment)?),
            None => {
                let (&v, vd) = state.versions.iter().next_back().ok_or(Error::NoSuchSegment)?;
                (v, vd)
            }
        };
        let data = if state.meta.synthetic {
            None
        } else {
            let mut out = vec![0u8; vd.len as usize];
            self.read_version_into(state, vd, 0, &mut out)?;
            Some(out.into())
        };
        Ok(ReplicaImage {
            seg,
            version: v,
            len: vd.len,
            data,
            meta: state.meta,
        })
    }

    /// Install a replica fetched from another owner. Replaces any older
    /// local versions (they are now stale); ignored if a strictly newer
    /// version is already held.
    pub fn install_replica(&mut self, image: ReplicaImage, now: SimTime) -> Result<bool> {
        if let Some(state) = self.segments.get(&image.seg) {
            if let Some((&latest, _)) = state.versions.iter().next_back() {
                if latest >= image.version {
                    return Ok(false);
                }
            }
        }
        let delta = match (&image.data, image.meta.synthetic) {
            (Some(bytes), _) => {
                let mut buf = SparseBuffer::new();
                buf.write(0, bytes);
                Delta::Real(buf)
            }
            (None, _) => Delta::Synthetic { stored: image.len },
        };
        let vd = VersionData {
            len: image.len,
            index: RegionIndex::full(image.len, Some(image.version)),
            delta,
            committed_at: now,
        };
        let state = self
            .segments
            .entry(image.seg)
            .or_insert_with(|| SegmentState {
                versions: BTreeMap::new(),
                pinned: Vec::new(),
                meta: image.meta,
                last_access: now,
                access_history: VecDeque::new(),
            });
        // Older versions are stale relative to a synced replica — but
        // pinned milestones survive (they are self-contained).
        let pinned = state.pinned.clone();
        state.versions.retain(|v, _| pinned.contains(v));
        state.versions.insert(image.version, vd);
        Ok(true)
    }

    /// Remove a segment entirely; returns whether it existed.
    pub fn delete_segment(&mut self, seg: SegId) -> bool {
        self.segments.remove(&seg).is_some()
    }

    // ------------------------------------------------------------------
    // Introspection & temperature
    // ------------------------------------------------------------------

    /// Whether the exact committed version is held locally.
    pub fn has_version(&self, seg: SegId, version: Version) -> bool {
        self.segments
            .get(&seg)
            .is_some_and(|s| s.versions.contains_key(&version))
    }

    /// Latest committed version of a segment.
    pub fn latest(&self, seg: SegId) -> Option<Version> {
        self.segments
            .get(&seg)?
            .versions
            .keys()
            .next_back()
            .copied()
    }

    /// Whether the segment has any committed version.
    pub fn has_segment(&self, seg: SegId) -> bool {
        self.segments.contains_key(&seg)
    }

    /// Segment management metadata.
    pub fn meta(&self, seg: SegId) -> Option<SegMeta> {
        self.segments.get(&seg).map(|s| s.meta)
    }

    /// Logical length of a segment's latest version.
    pub fn seg_len(&self, seg: SegId) -> Option<u64> {
        let state = self.segments.get(&seg)?;
        state.versions.values().next_back().map(|v| v.len)
    }

    /// All locally stored segments with their latest versions.
    pub fn list_segments(&self) -> Vec<(SegId, Version)> {
        let mut v: Vec<(SegId, Version)> = self
            .segments
            .iter()
            .filter_map(|(&s, st)| st.versions.keys().next_back().map(|&ver| (s, ver)))
            .collect();
        v.sort();
        v
    }

    /// Physically stored bytes for one segment (all kept versions).
    pub fn stored_bytes(&self, seg: SegId) -> u64 {
        self.segments
            .get(&seg)
            .map(|s| s.versions.values().map(|v| v.delta.stored_bytes()).sum())
            .unwrap_or(0)
    }

    /// Physically stored bytes across all segments and shadows.
    pub fn total_stored_bytes(&self) -> u64 {
        let committed: u64 = self
            .segments
            .values()
            .flat_map(|s| s.versions.values())
            .map(|v| v.delta.stored_bytes())
            .sum();
        let shadows: u64 = self.shadows.values().map(|s| s.delta.stored_bytes()).sum();
        committed + shadows
    }

    /// Record an access for temperature (LAT) and locality tracking.
    pub fn touch(&mut self, seg: SegId, now: SimTime, machine: u32, bytes: u64) {
        if let Some(state) = self.segments.get_mut(&seg) {
            state.last_access = now;
            if matches!(state.meta.policy, PlacementPolicy::LocalityDriven { .. }) {
                state.access_history.push_back((machine, bytes));
                while state.access_history.len() > ACCESS_HISTORY_CAP {
                    state.access_history.pop_front();
                }
            }
        }
    }

    /// Last access time (the temperature measure of §3.7.1).
    pub fn last_access(&self, seg: SegId) -> Option<SimTime> {
        self.segments.get(&seg).map(|s| s.last_access)
    }

    /// Traffic share per machine over the recorded access history:
    /// `(machine, fraction_of_bytes)` sorted descending. Used by the
    /// locality-driven policy.
    pub fn traffic_shares(&self, seg: SegId) -> Vec<(u32, f64)> {
        let Some(state) = self.segments.get(&seg) else {
            return Vec::new();
        };
        let total: u64 = state.access_history.iter().map(|(_, b)| *b).sum();
        if total == 0 {
            return Vec::new();
        }
        let mut per: HashMap<u32, u64> = HashMap::new();
        for &(m, b) in &state.access_history {
            *per.entry(m).or_default() += b;
        }
        let mut out: Vec<(u32, f64)> = per
            .into_iter()
            .map(|(m, b)| (m, b as f64 / total as f64))
            .collect();
        // Deterministic order: fraction descending, machine id tiebreak.
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite fractions")
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Segments sorted by last-access time, oldest (coldest) first.
    pub fn segments_by_temperature(&self) -> Vec<(SegId, SimTime, u64)> {
        let mut v: Vec<(SegId, SimTime, u64)> = self
            .segments
            .iter()
            .map(|(&s, st)| {
                let bytes: u64 = st.versions.values().map(|v| v.delta.stored_bytes()).sum();
                (s, st.last_access, bytes)
            })
            .collect();
        v.sort_by_key(|&(s, t, _)| (t, s));
        v
    }

    // ------------------------------------------------------------------
    // Milestones & consolidation
    // ------------------------------------------------------------------

    /// Pin `version` as a milestone: consolidation will never drop it.
    /// The version is materialized (made self-contained) so dropping its
    /// ancestors later stays safe. Fails if the version is not held.
    pub fn pin_version(&mut self, seg: SegId, version: Version) -> Result<()> {
        let state = self.segments.get(&seg).ok_or(Error::NoSuchSegment)?;
        if !state.versions.contains_key(&version) {
            return Err(Error::NoSuchSegment);
        }
        if let Some(vd) = self.materialized_copy(seg, version)? {
            let state = self.segments.get_mut(&seg).expect("present");
            state.versions.insert(version, vd);
        }
        let state = self.segments.get_mut(&seg).expect("present");
        if !state.pinned.contains(&version) {
            state.pinned.push(version);
        }
        Ok(())
    }

    /// Release a milestone pin; the version becomes eligible for
    /// consolidation again. Returns whether it was pinned.
    pub fn unpin_version(&mut self, seg: SegId, version: Version) -> bool {
        match self.segments.get_mut(&seg) {
            Some(state) => {
                let had = state.pinned.contains(&version);
                state.pinned.retain(|&v| v != version);
                had
            }
            None => false,
        }
    }

    /// The pinned milestone versions of a segment.
    pub fn pinned_versions(&self, seg: SegId) -> Vec<Version> {
        self.segments
            .get(&seg)
            .map(|s| {
                let mut p = s.pinned.clone();
                p.sort();
                p
            })
            .unwrap_or_default()
    }

    /// A self-contained (single-delta, self-referential-index) copy of a
    /// version, or `None` when it already is self-contained.
    fn materialized_copy(&self, seg: SegId, version: Version) -> Result<Option<VersionData>> {
        let state = self.segments.get(&seg).ok_or(Error::NoSuchSegment)?;
        let vd = state.versions.get(&version).ok_or(Error::NoSuchSegment)?;
        let needs = vd.index.sources().iter().any(|&v| v != version);
        if !needs {
            return Ok(None);
        }
        let delta = if state.meta.synthetic {
            Delta::Synthetic { stored: vd.len }
        } else {
            let mut out = vec![0u8; vd.len as usize];
            self.read_version_into(state, vd, 0, &mut out)?;
            let mut buf = SparseBuffer::new();
            buf.write(0, &out);
            Delta::Real(buf)
        };
        Ok(Some(VersionData {
            len: vd.len,
            index: RegionIndex::full(vd.len, Some(version)),
            delta,
            committed_at: vd.committed_at,
        }))
    }

    /// Enforce the version retention policy for `seg`: keep the
    /// `keep_versions` most recent unpinned versions (plus all pinned
    /// milestones), materializing any survivor whose copy-on-write index
    /// still references a version about to be dropped.
    ///
    /// Materialization (rather than reference remapping) is required for
    /// correctness: with entropy-disambiguated versions, a survivor's
    /// dangling reference may name a *sibling* orphan rather than an
    /// ancestor, so no retained version can stand in for the dropped
    /// bytes — they must be copied out while the chain is still intact.
    fn consolidate(&mut self, seg: SegId) {
        let Some(state) = self.segments.get(&seg) else {
            return;
        };
        // Pinned milestones don't count against the retention budget.
        let unpinned = state
            .versions
            .keys()
            .filter(|v| !state.pinned.contains(v))
            .count();
        if unpinned <= self.keep_versions {
            return;
        }
        let keep_from = *state
            .versions
            .keys()
            .filter(|v| !state.pinned.contains(v))
            .rev()
            .nth(self.keep_versions - 1)
            .expect("unpinned > keep_versions >= 1");
        let retained: Vec<Version> = state
            .versions
            .keys()
            .filter(|&&v| v >= keep_from || state.pinned.contains(&v))
            .copied()
            .collect();
        // Materialize every survivor that references a doomed version,
        // while the full chain is still readable.
        let mut replacements: Vec<(Version, VersionData)> = Vec::new();
        for &v in &retained {
            let state = self.segments.get(&seg).expect("present");
            let vd = state.versions.get(&v).expect("present");
            let dangling = vd
                .index
                .sources()
                .iter()
                .any(|src| !retained.contains(src));
            if dangling {
                if let Ok(Some(copy)) = self.materialized_copy(seg, v) {
                    replacements.push((v, copy));
                }
            }
        }
        let state = self.segments.get_mut(&seg).expect("present");
        for (v, vd) in replacements {
            state.versions.insert(v, vd);
        }
        state.versions.retain(|v, _| retained.contains(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorrento_sim::Dur;

    const TTL: Dur = Dur::nanos(60_000_000_000);

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Dur::secs(s)
    }

    fn seg(n: u64) -> SegId {
        SegId::derive(1, n, 0)
    }

    fn real_meta() -> SegMeta {
        SegMeta::default()
    }

    fn commit_fresh(store: &mut LocalStore, s: SegId, data: &[u8]) -> Version {
        let sh = store.open_fresh_shadow(s, real_meta(), t(0), TTL);
        store
            .write_shadow(sh, 0, WritePayload::Real(data.to_vec().into()))
            .unwrap();
        store.commit_shadow(sh, Version(1), t(0)).unwrap();
        Version(1)
    }

    #[test]
    fn fresh_commit_and_read_back() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        commit_fresh(&mut st, s, b"hello world");
        let out = st.read(s, None, 0, 100).unwrap();
        assert_eq!(out.len, 11);
        assert_eq!(out.data.unwrap(), b"hello world");
        assert_eq!(out.version, Version(1));
        assert_eq!(st.seg_len(s), Some(11));
    }

    #[test]
    fn cow_shadow_reads_through_base() {
        let mut st = LocalStore::new(3);
        let s = seg(1);
        commit_fresh(&mut st, s, b"aaaaaaaaaa");
        let sh = st.open_shadow(s, Version(1), t(1), TTL).unwrap();
        st.write_shadow(sh, 3, WritePayload::Real(b"BBB".to_vec().into()))
            .unwrap();
        // Read-your-writes through the shadow.
        let pre = st.read_shadow(sh, 0, 10).unwrap();
        assert_eq!(pre.data.unwrap(), b"aaaBBBaaaa");
        // Base version unchanged.
        let base = st.read(s, Some(Version(1)), 0, 10).unwrap();
        assert_eq!(base.data.unwrap(), b"aaaaaaaaaa");
        // Commit: v2 visible, v1 still intact (keep_versions = 3).
        st.commit_shadow(sh, Version(2), t(2)).unwrap();
        let v2 = st.read(s, None, 0, 10).unwrap();
        assert_eq!(v2.version, Version(2));
        assert_eq!(v2.data.unwrap(), b"aaaBBBaaaa");
        let v1 = st.read(s, Some(Version(1)), 0, 10).unwrap();
        assert_eq!(v1.data.unwrap(), b"aaaaaaaaaa");
        // COW: v2's delta only stores the 3 modified bytes.
        assert_eq!(st.stored_bytes(s), 10 + 3);
    }

    #[test]
    fn shadow_append_extends_segment() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        commit_fresh(&mut st, s, b"base");
        let sh = st.open_shadow(s, Version(1), t(1), TTL).unwrap();
        st.write_shadow(sh, 4, WritePayload::Real(b"+more".to_vec().into()))
            .unwrap();
        st.commit_shadow(sh, Version(2), t(1)).unwrap();
        let out = st.read(s, None, 0, 100).unwrap();
        assert_eq!(out.data.unwrap(), b"base+more");
    }

    #[test]
    fn consolidation_materializes_oldest_survivor() {
        let mut st = LocalStore::new(1);
        let s = seg(1);
        commit_fresh(&mut st, s, b"0000000000");
        for (v, ch) in [(2u64, b'1'), (3, b'2')] {
            let sh = st.open_shadow(s, Version(v - 1), t(v), TTL).unwrap();
            st.write_shadow(sh, v, WritePayload::Real(vec![ch; 2].into()))
                .unwrap();
            st.commit_shadow(sh, Version(v), t(v)).unwrap();
        }
        // Only v3 survives, fully materialized and readable.
        assert_eq!(st.latest(s), Some(Version(3)));
        let out = st.read(s, Some(Version(1)), 0, 10);
        assert_eq!(out.unwrap_err(), Error::NoSuchSegment);
        let v3 = st.read(s, None, 0, 10).unwrap();
        assert_eq!(v3.data.unwrap(), b"0012200000");
    }

    #[test]
    fn prepare_detects_version_conflict() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        commit_fresh(&mut st, s, b"x");
        let sh1 = st.open_shadow(s, Version(1), t(1), TTL).unwrap();
        let sh2 = st.open_shadow(s, Version(1), t(1), TTL).unwrap();
        st.prepare_shadow(sh1, Version(2)).unwrap();
        st.commit_shadow(sh1, Version(2), t(2)).unwrap();
        // sh2's base (v1) is no longer the latest: conflict.
        assert_eq!(
            st.prepare_shadow(sh2, Version(2)).unwrap_err(),
            Error::VersionConflict
        );
    }

    #[test]
    fn expired_shadows_are_reaped_unless_prepared() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        commit_fresh(&mut st, s, b"x");
        let sh1 = st.open_shadow(s, Version(1), t(1), Dur::secs(5)).unwrap();
        let sh2 = st.open_shadow(s, Version(1), t(1), Dur::secs(5)).unwrap();
        st.prepare_shadow(sh2, Version(2)).unwrap();
        assert_eq!(st.expire_shadows(t(10)), 1);
        assert!(st.read_shadow(sh1, 0, 1).is_err());
        assert!(st.read_shadow(sh2, 0, 1).is_ok());
    }

    #[test]
    fn renew_extends_shadow_life() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        commit_fresh(&mut st, s, b"x");
        let sh = st.open_shadow(s, Version(1), t(1), Dur::secs(5)).unwrap();
        st.renew_shadow(sh, t(5), Dur::secs(10)).unwrap();
        assert_eq!(st.expire_shadows(t(10)), 0);
        assert_eq!(st.expire_shadows(t(20)), 1);
    }

    #[test]
    fn export_install_round_trip() {
        let mut st1 = LocalStore::new(2);
        let mut st2 = LocalStore::new(2);
        let s = seg(1);
        commit_fresh(&mut st1, s, b"replicate me");
        let img = st1.export(s, None).unwrap();
        assert!(st2.install_replica(img, t(3)).unwrap());
        let out = st2.read(s, None, 0, 100).unwrap();
        assert_eq!(out.data.unwrap(), b"replicate me");
        assert_eq!(out.version, Version(1));
    }

    #[test]
    fn install_ignores_stale_image() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        commit_fresh(&mut st, s, b"v1");
        let sh = st.open_shadow(s, Version(1), t(1), TTL).unwrap();
        st.write_shadow(sh, 0, WritePayload::Real(b"v2".to_vec().into()))
            .unwrap();
        st.commit_shadow(sh, Version(2), t(1)).unwrap();
        let stale = ReplicaImage {
            seg: s,
            version: Version(1),
            len: 2,
            data: Some(b"v1".to_vec().into()),
            meta: real_meta(),
        };
        assert!(!st.install_replica(stale, t(2)).unwrap());
        assert_eq!(st.latest(s), Some(Version(2)));
    }

    #[test]
    fn synthetic_segments_track_sizes_only() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        let meta = SegMeta {
            synthetic: true,
            ..SegMeta::default()
        };
        let sh = st.open_fresh_shadow(s, meta, t(0), TTL);
        st.write_shadow(sh, 0, WritePayload::Synthetic { len: 4_000_000 })
            .unwrap();
        // Overlapping rewrite must not double-count.
        st.write_shadow(sh, 1_000_000, WritePayload::Synthetic { len: 4_000_000 })
            .unwrap();
        st.commit_shadow(sh, Version(1), t(0)).unwrap();
        assert_eq!(st.seg_len(s), Some(5_000_000));
        assert_eq!(st.stored_bytes(s), 5_000_000);
        let out = st.read(s, None, 0, 1_000_000).unwrap();
        assert_eq!(out.len, 1_000_000);
        assert!(out.data.is_none());
    }

    #[test]
    fn direct_write_versioning_off() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        st.direct_write(s, 0, WritePayload::Real(b"abcdef".to_vec().into()), real_meta(), t(0))
            .unwrap();
        st.direct_write(s, 2, WritePayload::Real(b"XY".to_vec().into()), real_meta(), t(1))
            .unwrap();
        let out = st.read(s, None, 0, 10).unwrap();
        assert_eq!(out.data.unwrap(), b"abXYef");
        // Still version 1: no version advance on direct writes.
        assert_eq!(st.latest(s), Some(Version(1)));
    }

    #[test]
    fn temperature_and_locality_tracking() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        let meta = SegMeta {
            policy: PlacementPolicy::LocalityDriven { threshold: 0.6 },
            ..SegMeta::default()
        };
        let sh = st.open_fresh_shadow(s, meta, t(0), TTL);
        st.write_shadow(sh, 0, WritePayload::Real(b"x".to_vec().into()))
            .unwrap();
        st.commit_shadow(sh, Version(1), t(0)).unwrap();
        st.touch(s, t(5), 7, 100);
        st.touch(s, t(6), 7, 100);
        st.touch(s, t(7), 9, 50);
        assert_eq!(st.last_access(s), Some(t(7)));
        let shares = st.traffic_shares(s);
        assert_eq!(shares[0].0, 7);
        assert!((shares[0].1 - 0.8).abs() < 1e-9);
        let by_temp = st.segments_by_temperature();
        assert_eq!(by_temp[0].0, s);
    }

    #[test]
    fn access_history_is_bounded() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        let meta = SegMeta {
            policy: PlacementPolicy::LocalityDriven { threshold: 0.6 },
            ..SegMeta::default()
        };
        let sh = st.open_fresh_shadow(s, meta, t(0), TTL);
        st.write_shadow(sh, 0, WritePayload::Real(b"x".to_vec().into()))
            .unwrap();
        st.commit_shadow(sh, Version(1), t(0)).unwrap();
        for i in 0..(ACCESS_HISTORY_CAP as u64 + 500) {
            st.touch(s, t(0), (i % 3) as u32, 1);
        }
        let total: f64 = st.traffic_shares(s).iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let state = st.segments.get(&s).unwrap();
        assert_eq!(state.access_history.len(), ACCESS_HISTORY_CAP);
    }

    #[test]
    fn delete_segment_frees_state() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        commit_fresh(&mut st, s, b"x");
        assert!(st.delete_segment(s));
        assert!(!st.delete_segment(s));
        assert!(st.read(s, None, 0, 1).is_err());
        assert_eq!(st.total_stored_bytes(), 0);
    }

    #[test]
    fn pinned_milestone_survives_consolidation() {
        let mut st = LocalStore::new(1);
        let s = seg(1);
        commit_fresh(&mut st, s, b"milestone!");
        st.pin_version(s, Version(1)).unwrap();
        // Advance far past the retention budget.
        for v in 2..6u64 {
            let sh = st.open_shadow(s, Version(v - 1), t(v), TTL).unwrap();
            st.write_shadow(sh, 0, WritePayload::Real(vec![v as u8; 4].into()))
                .unwrap();
            st.commit_shadow(sh, Version(v), t(v)).unwrap();
        }
        // keep_versions = 1, yet the milestone remains readable.
        assert_eq!(st.pinned_versions(s), vec![Version(1)]);
        let old = st.read(s, Some(Version(1)), 0, 100).unwrap();
        assert_eq!(old.data.unwrap(), b"milestone!");
        // Intermediate (unpinned) versions were consolidated away.
        assert!(st.read(s, Some(Version(3)), 0, 1).is_err());
        // The latest version still reads correctly.
        let latest = st.read(s, None, 0, 100).unwrap();
        assert_eq!(&latest.data.unwrap()[..4], &[5, 5, 5, 5]);
    }

    #[test]
    fn unpinning_releases_the_milestone() {
        let mut st = LocalStore::new(1);
        let s = seg(1);
        commit_fresh(&mut st, s, b"v1");
        st.pin_version(s, Version(1)).unwrap();
        assert!(st.unpin_version(s, Version(1)));
        assert!(!st.unpin_version(s, Version(1)));
        for v in 2..4u64 {
            let sh = st.open_shadow(s, Version(v - 1), t(v), TTL).unwrap();
            st.write_shadow(sh, 0, WritePayload::Real(vec![v as u8; 2].into()))
                .unwrap();
            st.commit_shadow(sh, Version(v), t(v)).unwrap();
        }
        // No longer pinned: v1 was consolidated away.
        assert!(st.read(s, Some(Version(1)), 0, 1).is_err());
    }

    #[test]
    fn pin_unknown_version_fails() {
        let mut st = LocalStore::new(2);
        let s = seg(1);
        commit_fresh(&mut st, s, b"x");
        assert_eq!(
            st.pin_version(s, Version(9)).unwrap_err(),
            Error::NoSuchSegment
        );
        assert_eq!(
            st.pin_version(seg(5), Version(1)).unwrap_err(),
            Error::NoSuchSegment
        );
    }

    #[test]
    fn list_segments_reports_latest_versions() {
        let mut st = LocalStore::new(2);
        let (a, b) = (seg(1), seg(2));
        commit_fresh(&mut st, a, b"a");
        commit_fresh(&mut st, b, b"b");
        let sh = st.open_shadow(a, Version(1), t(1), TTL).unwrap();
        st.write_shadow(sh, 0, WritePayload::Real(b"A".to_vec().into()))
            .unwrap();
        st.commit_shadow(sh, Version(2), t(1)).unwrap();
        let mut listed = st.list_segments();
        listed.sort();
        assert_eq!(listed, vec![(a, Version(2)), (b, Version(1))]);
    }
}
