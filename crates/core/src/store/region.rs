//! Interval map used by the copy-on-write shadow machinery (§3.5).
//!
//! "We use an index structure to maintain the mapping from region ranges
//! to physical segments where the valid data for the shadow copy can be
//! located." — [`RegionIndex`] is that structure: it maps every byte of a
//! segment's address space to the *source* holding the byte (an earlier
//! committed version, the shadow itself, or a hole reading as zeros).

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::Range;

/// Maps `[0, len)` to `Option<S>` sources. `None` is a hole (zero-filled,
/// e.g. from truncating a blank shadow up to the base segment's size
/// before any write lands).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionIndex<S: Copy + Eq + Debug> {
    len: u64,
    /// start → (end, source); entries tile `[0, len)` exactly.
    map: BTreeMap<u64, (u64, Option<S>)>,
}

impl<S: Copy + Eq + Debug> RegionIndex<S> {
    /// A region index of `len` bytes, all mapped to `source`.
    pub fn full(len: u64, source: Option<S>) -> RegionIndex<S> {
        let mut map = BTreeMap::new();
        if len > 0 {
            map.insert(0, (len, source));
        }
        RegionIndex { len, map }
    }

    /// Current address-space length.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the address space is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point every byte of `[start, end)` at `source`, splitting whatever
    /// regions it overlaps. Extends the address space if `end > len`
    /// (appends): the gap `[len, start)`, if any, becomes a hole.
    pub fn overlay(&mut self, start: u64, end: u64, source: Option<S>) {
        if start >= end {
            return;
        }
        if end > self.len {
            let old = self.len;
            self.len = end;
            if start > old {
                self.map.insert(old, (start, None));
            }
        }
        // Split the region containing `start`.
        if let Some((&ks, &(ke, kv))) = self.map.range(..=start).next_back() {
            if ks < start && ke > start {
                self.map.insert(ks, (start, kv));
                self.map.insert(start, (ke, kv));
            }
        }
        // Split the region containing `end`.
        if let Some((&ks, &(ke, kv))) = self.map.range(..end).next_back() {
            if ks < end && ke > end {
                self.map.insert(ks, (end, kv));
                self.map.insert(end, (ke, kv));
            }
        }
        // Drop every region now fully inside [start, end) and insert.
        let covered: Vec<u64> = self.map.range(start..end).map(|(&k, _)| k).collect();
        for k in covered {
            self.map.remove(&k);
        }
        self.map.insert(start, (end, source));
    }

    /// The regions covering `[start, end)` (clamped to the address
    /// space), in offset order.
    pub fn resolve(&self, start: u64, end: u64) -> Vec<(Range<u64>, Option<S>)> {
        let end = end.min(self.len);
        if start >= end {
            return Vec::new();
        }
        let mut out = Vec::new();
        // Find the region containing `start` (there is always one, since
        // the map tiles [0, len) and start < len).
        let first = self
            .map
            .range(..=start)
            .next_back()
            .map(|(&k, _)| k)
            .expect("region index must tile its address space");
        for (&ks, &(ke, kv)) in self.map.range(first..end) {
            let s = ks.max(start);
            let e = ke.min(end);
            if s < e {
                out.push((s..e, kv));
            }
        }
        out
    }

    /// Shrink or grow the address space. Growth adds a hole; shrinkage
    /// trims or drops regions beyond the new length.
    pub fn set_len(&mut self, new_len: u64) {
        use std::cmp::Ordering::*;
        match new_len.cmp(&self.len) {
            Equal => {}
            Greater => {
                self.map.insert(self.len, (new_len, None));
                self.len = new_len;
            }
            Less => {
                // Trim the region containing new_len, drop later ones.
                if let Some((&ks, &(ke, kv))) = self.map.range(..=new_len).next_back() {
                    if ks < new_len && ke > new_len {
                        self.map.insert(ks, (new_len, kv));
                    }
                }
                let beyond: Vec<u64> =
                    self.map.range(new_len..).map(|(&k, _)| k).collect();
                for k in beyond {
                    self.map.remove(&k);
                }
                self.len = new_len;
            }
        }
    }

    /// Transform every source (e.g. turning shadow-self markers into the
    /// newly assigned committed version at commit time).
    pub fn map_sources<T: Copy + Eq + Debug>(&self, f: impl Fn(S) -> T) -> RegionIndex<T> {
        RegionIndex {
            len: self.len,
            map: self
                .map
                .iter()
                .map(|(&k, &(e, v))| (k, (e, v.map(&f))))
                .collect(),
        }
    }

    /// Total bytes whose source satisfies `pred`.
    pub fn bytes_matching(&self, pred: impl Fn(Option<S>) -> bool) -> u64 {
        self.map
            .iter()
            .filter(|(_, &(_, v))| pred(v))
            .map(|(&k, &(e, _))| e - k)
            .sum()
    }

    /// The distinct non-hole sources referenced anywhere in the index.
    pub fn sources(&self) -> Vec<S> {
        let mut out: Vec<S> = Vec::new();
        for &(_, v) in self.map.values() {
            if let Some(s) = v {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Number of distinct regions (diagnostics).
    pub fn region_count(&self) -> usize {
        self.map.len()
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        let mut expect = 0;
        for (&k, &(e, _)) in &self.map {
            assert_eq!(k, expect, "regions must tile without gaps");
            assert!(e > k, "regions must be non-empty");
            expect = e;
        }
        assert_eq!(expect, self.len, "regions must cover the full length");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Ix = RegionIndex<u32>;

    #[test]
    fn full_index_resolves_whole_range() {
        let ix = Ix::full(100, Some(1));
        assert_eq!(ix.resolve(0, 100), vec![(0..100, Some(1))]);
        assert_eq!(ix.resolve(10, 20), vec![(10..20, Some(1))]);
    }

    #[test]
    fn overlay_splits_middle() {
        let mut ix = Ix::full(100, Some(1));
        ix.overlay(30, 60, Some(2));
        ix.check_invariants();
        assert_eq!(
            ix.resolve(0, 100),
            vec![(0..30, Some(1)), (30..60, Some(2)), (60..100, Some(1))]
        );
    }

    #[test]
    fn overlay_at_edges() {
        let mut ix = Ix::full(100, Some(1));
        ix.overlay(0, 10, Some(2));
        ix.overlay(90, 100, Some(3));
        ix.check_invariants();
        assert_eq!(
            ix.resolve(0, 100),
            vec![(0..10, Some(2)), (10..90, Some(1)), (90..100, Some(3))]
        );
    }

    #[test]
    fn overlay_swallows_covered_regions() {
        let mut ix = Ix::full(100, Some(1));
        ix.overlay(10, 20, Some(2));
        ix.overlay(30, 40, Some(3));
        ix.overlay(5, 95, Some(4));
        ix.check_invariants();
        assert_eq!(
            ix.resolve(0, 100),
            vec![(0..5, Some(1)), (5..95, Some(4)), (95..100, Some(1))]
        );
    }

    #[test]
    fn overlay_extends_for_append() {
        let mut ix = Ix::full(10, Some(1));
        ix.overlay(10, 25, Some(2));
        ix.check_invariants();
        assert_eq!(ix.len(), 25);
        assert_eq!(
            ix.resolve(0, 25),
            vec![(0..10, Some(1)), (10..25, Some(2))]
        );
    }

    #[test]
    fn overlay_past_end_creates_hole_gap() {
        let mut ix = Ix::full(10, Some(1));
        ix.overlay(20, 30, Some(2));
        ix.check_invariants();
        assert_eq!(
            ix.resolve(0, 30),
            vec![(0..10, Some(1)), (10..20, None), (20..30, Some(2))]
        );
    }

    #[test]
    fn empty_overlay_is_noop() {
        let mut ix = Ix::full(10, Some(1));
        ix.overlay(5, 5, Some(2));
        ix.check_invariants();
        assert_eq!(ix.resolve(0, 10), vec![(0..10, Some(1))]);
    }

    #[test]
    fn resolve_clamps_to_length() {
        let ix = Ix::full(10, Some(1));
        assert_eq!(ix.resolve(5, 100), vec![(5..10, Some(1))]);
        assert!(ix.resolve(10, 20).is_empty());
        assert!(ix.resolve(50, 60).is_empty());
    }

    #[test]
    fn set_len_grow_and_shrink() {
        let mut ix = Ix::full(10, Some(1));
        ix.set_len(20);
        ix.check_invariants();
        assert_eq!(ix.resolve(0, 20), vec![(0..10, Some(1)), (10..20, None)]);
        ix.overlay(12, 18, Some(2));
        ix.set_len(15);
        ix.check_invariants();
        assert_eq!(
            ix.resolve(0, 15),
            vec![(0..10, Some(1)), (10..12, None), (12..15, Some(2))]
        );
        ix.set_len(0);
        ix.check_invariants();
        assert!(ix.is_empty());
    }

    #[test]
    fn map_sources_transforms() {
        let mut ix = Ix::full(10, Some(1));
        ix.overlay(3, 6, Some(2));
        let mapped = ix.map_sources(|v| v * 10);
        assert_eq!(
            mapped.resolve(0, 10),
            vec![(0..3, Some(10)), (3..6, Some(20)), (6..10, Some(10))]
        );
    }

    #[test]
    fn bytes_matching_and_sources() {
        let mut ix = Ix::full(100, Some(1));
        ix.overlay(20, 50, Some(2));
        assert_eq!(ix.bytes_matching(|v| v == Some(2)), 30);
        assert_eq!(ix.bytes_matching(|v| v == Some(1)), 70);
        let mut srcs = ix.sources();
        srcs.sort();
        assert_eq!(srcs, vec![1, 2]);
    }

    #[test]
    fn zero_length_index() {
        let ix = Ix::full(0, Some(1));
        assert!(ix.is_empty());
        assert!(ix.resolve(0, 10).is_empty());
    }

    /// Reference-model check: apply random overlays to both the index and
    /// a plain byte-per-slot array; resolve() must agree everywhere.
    #[test]
    fn matches_naive_model_on_random_ops() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let len = rng.gen_range(1u64..200);
            let mut ix = Ix::full(len, None);
            let mut model: Vec<Option<u32>> = vec![None; len as usize];
            for step in 0..40u32 {
                let a = rng.gen_range(0..=len);
                let b = rng.gen_range(0..=len);
                let (s, e) = (a.min(b), a.max(b));
                ix.overlay(s, e, Some(step));
                for slot in &mut model[s as usize..e as usize] {
                    *slot = Some(step);
                }
                ix.check_invariants();
            }
            for (range, src) in ix.resolve(0, len) {
                for off in range {
                    assert_eq!(model[off as usize], src, "mismatch at {off}");
                }
            }
        }
    }
}
