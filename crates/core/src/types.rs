//! Core identifiers and error types.

use std::fmt;

/// A 128-bit location-independent segment identifier (§3.2). In the real
/// system these combine a machine's MAC address, its high-resolution timer
/// and random seeds; here they combine the generating node, a per-node
/// counter, and run-RNG bits — the same collision-avoidance structure.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegId(pub u128);

impl SegId {
    /// Deterministically derive a SegId from its generation coordinates.
    pub fn derive(node: u32, counter: u64, entropy: u64) -> SegId {
        let hi = ((node as u128) << 96) | ((counter as u128) << 32);
        SegId(hi | (entropy as u128 & 0xFFFF_FFFF))
    }
}

impl fmt::Debug for SegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg:{:x}", self.0)
    }
}

/// A file's persistent, location-independent identity (§3.1). Equal to the
/// SegId of the file's index segment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u128);

impl FileId {
    /// The index segment that embodies this file.
    pub fn index_segment(self) -> SegId {
        SegId(self.0)
    }
}

impl From<SegId> for FileId {
    fn from(s: SegId) -> FileId {
        FileId(s.0)
    }
}

impl fmt::Debug for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file:{:x}", self.0)
    }
}

/// A monotonically increasing version of a file or segment (§3.5).
/// Committed versions are immutable; modifications advance the version.
///
/// Layout: the upper bits are the commit *sequence*; the low
/// [`Version::ENTROPY_BITS`] are a per-commit-attempt disambiguator.
/// Two commits racing over the same base (e.g. a retry after a 2PC that
/// partially committed before dying) produce versions with the same
/// sequence but different entropy, so replicas holding divergent content
/// remain distinguishable and the home host converges them onto the
/// ordering winner instead of silently treating them as identical.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// Low bits reserved for the commit-attempt disambiguator.
    pub const ENTROPY_BITS: u32 = 16;

    /// Version of a newly created, never-committed object.
    pub const INITIAL: Version = Version(0);

    /// The commit sequence number (entropy stripped).
    pub fn seq(self) -> u64 {
        self.0 >> Version::ENTROPY_BITS
    }

    /// The next version after this one (zero entropy; deterministic
    /// contexts and tests).
    pub fn next(self) -> Version {
        Version((self.seq() + 1) << Version::ENTROPY_BITS)
    }

    /// The next version with an explicit disambiguator (commit paths).
    pub fn next_entropic(self, entropy: u16) -> Version {
        Version(((self.seq() + 1) << Version::ENTROPY_BITS) | entropy as u64)
    }
}

impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 & ((1 << Version::ENTROPY_BITS) - 1) == 0 && self.seq() > 0 {
            write!(f, "v{}", self.seq())
        } else {
            write!(f, "v{}+{:x}", self.seq(), self.0 & ((1 << Version::ENTROPY_BITS) - 1))
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Errors surfaced through the client API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Pathname does not resolve.
    NotFound,
    /// Create on an existing path.
    AlreadyExists,
    /// Commit raced with another writer: the base version is stale (§3.5).
    VersionConflict,
    /// Request to a provider that does not hold the segment.
    NoSuchSegment,
    /// Operation timed out (node failure or partition).
    Timeout,
    /// All candidate providers rejected an allocation.
    OutOfSpace,
    /// Write-lock lease held by another client.
    LeaseHeld,
    /// Operation illegal in the file's current mode (e.g. byte-range
    /// writes on a versioned file).
    InvalidMode,
    /// Attempted operation on a directory / non-directory mismatch.
    NotADirectory,
    /// Directory not empty on remove.
    NotEmpty,
    /// Shadow copy expired before commit.
    ShadowExpired,
    /// The target could not be reached after the client exhausted its
    /// retry budget (real runtime with resilience enabled; the
    /// retriable sibling of [`Error::Timeout`]).
    Unavailable,
    /// The per-operation deadline elapsed before the operation could
    /// complete (real runtime, `op_deadline` set).
    DeadlineExceeded,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Error::NotFound => "not found",
            Error::AlreadyExists => "already exists",
            Error::VersionConflict => "version conflict",
            Error::NoSuchSegment => "no such segment",
            Error::Timeout => "timed out",
            Error::OutOfSpace => "out of space",
            Error::LeaseHeld => "write lease held",
            Error::InvalidMode => "invalid mode",
            Error::NotADirectory => "not a directory",
            Error::NotEmpty => "directory not empty",
            Error::ShadowExpired => "shadow copy expired",
            Error::Unavailable => "unavailable",
            Error::DeadlineExceeded => "deadline exceeded",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Per-file tunables chosen at creation time (§2.3, §3.6, §3.7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileOptions {
    /// Number of replicas to maintain for each segment.
    pub replication: u32,
    /// Placement favoritism α in `[0,1]`: weight = f_l^α · f_s^(1-α).
    /// Small α favours storage balance; large α favours load balance.
    pub alpha: f64,
    /// Data organization mode.
    pub organization: Organization,
    /// Placement policy for this file's segments.
    pub placement: PlacementPolicy,
    /// Disable version-based consistency: reads and writes apply directly
    /// to segments (used for byte-range sharing, §3.5). Disables
    /// replication too, since replica management depends on versioning.
    pub versioning_off: bool,
    /// Synchronous (eager) commitment (§3.6): `close` pushes changes to
    /// all replicas before returning instead of relying on the home
    /// host's lazy propagation.
    pub eager_commit: bool,
    /// Erasure-coded redundancy instead of replication for the file's
    /// data. `Some` forces [`Organization::Striped`] with `k` stripes
    /// (the data shards of the systematic code) and adds `m` parity
    /// shards maintained by the commit path; the index segment stays
    /// replicated (`replication` applies to it alone).
    pub ec: Option<EcParams>,
}

/// Reed-Solomon (k, m) parameters for erasure-coded files: `k` data
/// shards + `m` parity shards, any `k` of which recover the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcParams {
    /// Data shard count (≥ 1).
    pub k: u8,
    /// Parity shard count (≥ 1); tolerated simultaneous shard losses.
    pub m: u8,
}

impl EcParams {
    /// Total shard count `k + m`.
    pub fn shards(self) -> usize {
        self.k as usize + self.m as usize
    }

    /// Storage overhead factor `(k + m) / k`.
    pub fn overhead(self) -> f64 {
        self.shards() as f64 / self.k as f64
    }
}

impl FileOptions {
    /// Default options with Reed-Solomon (k, m) redundancy: striped
    /// organization over `k` data shards sized for `max_size` bytes.
    pub fn erasure_coded(k: u8, m: u8, max_size: u64) -> FileOptions {
        FileOptions {
            ec: Some(EcParams { k, m }),
            organization: Organization::Striped {
                stripes: k as u32,
                max_size,
            },
            ..FileOptions::default()
        }
    }
}

impl Default for FileOptions {
    fn default() -> Self {
        FileOptions {
            replication: 1,
            alpha: 0.5,
            organization: Organization::Linear,
            placement: PlacementPolicy::LoadAware,
            versioning_off: false,
            eager_commit: false,
            ec: None,
        }
    }
}

/// Data organization modes (§3.2, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    /// Byte array is a linear concatenation of variable-length segments.
    Linear,
    /// RAID-0-style striping over a fixed number of equal-size segments;
    /// the maximum file size must be declared at creation.
    Striped {
        /// Number of stripes (data segments).
        stripes: u32,
        /// Total maximum file size in bytes.
        max_size: u64,
    },
    /// Groups of striped segments concatenated linearly: striped-mode
    /// bandwidth without a declared file size.
    Hybrid {
        /// Stripes per segment group.
        group_stripes: u32,
    },
}

/// Segment placement policies (§3.7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementPolicy {
    /// Uniform random over live providers (the paper's `Sorrento-random`
    /// baseline in Figure 14).
    Random,
    /// Weighted random by `f_l^α · f_s^(1-α)` using real-time load and
    /// space information from heartbeats.
    LoadAware,
    /// Like `LoadAware`, and additionally migrate a segment to a remote
    /// provider once more than `threshold` of its recent traffic comes
    /// from that provider's machine. Must be > 0.5 to avoid instability.
    LocalityDriven {
        /// Fraction of recent traffic (in `(0.5, 1]`) that must come from
        /// one remote machine to trigger migration.
        threshold: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seg_ids_from_distinct_coordinates_differ() {
        let a = SegId::derive(1, 0, 99);
        let b = SegId::derive(1, 1, 99);
        let c = SegId::derive(2, 0, 99);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn file_id_is_its_index_segment() {
        let s = SegId::derive(3, 7, 42);
        let f: FileId = s.into();
        assert_eq!(f.index_segment(), s);
    }

    #[test]
    fn version_ordering() {
        let v = Version::INITIAL;
        assert!(v.next() > v);
        assert_eq!(v.next().seq(), 1);
        // Entropic siblings share a sequence but stay distinct + ordered.
        let a = v.next_entropic(3);
        let b = v.next_entropic(9);
        assert_eq!(a.seq(), b.seq());
        assert_ne!(a, b);
        assert!(b > a);
        // The chain keeps ascending regardless of entropy.
        assert!(a.next() > b);
        assert!(b.next_entropic(0) > a);
    }

    #[test]
    fn default_options_match_paper_defaults() {
        let o = FileOptions::default();
        assert_eq!(o.alpha, 0.5); // §3.7.1: "By default, we chose α = 0.5"
        assert!(!o.versioning_off);
    }

    #[test]
    fn errors_display() {
        assert_eq!(Error::VersionConflict.to_string(), "version conflict");
        assert_eq!(Error::Timeout.to_string(), "timed out");
    }
}
