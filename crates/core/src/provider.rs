//! The storage provider daemon (§2.2, §3.3–3.7): manages the node's
//! locally attached disk through the segment store, participates in the
//! soft-state location protocol as a *home host*, repairs replication
//! lazily, and runs the migration daemon.
//!
//! All behaviour is event-driven: heartbeats, the four location-table
//! update events, repair scans, and once-a-minute migration decisions are
//! all timers; everything else reacts to RPCs.

use std::collections::{BTreeMap, HashMap, VecDeque};

use rand::Rng;
use sorrento_sim::{Ctx, DiskAccess, Dur, Node, NodeId, SimTime, TelemetryEvent};

use crate::transport::Transport;

use crate::costs::CostModel;
use crate::dedup::{ReplyCache, DEFAULT_REPLY_CACHE};
use crate::layout::IndexSegment;
use crate::location::LocationTable;
use crate::locator::{LocationScheme, Locator};
use crate::membership::{Ewma, Heartbeat, MembershipEvent, MembershipView};
use crate::placement::{candidates_from_view, select_provider, Candidate};
use crate::proto::{decode_index, Msg, ReadReply, ReqId, Tick};
use crate::store::{LocalStore, ReplicaImage, SegMeta};
use crate::swim::{MembershipMode, SwimDetector, SwimEvent};
use crate::types::{Error, PlacementPolicy, SegId, Version};

/// Why a replica fetch was queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchReason {
    /// Home-host-driven sync/repair; ack `SyncDone` to `(node, req)` when
    /// req != 0.
    Sync,
    /// Migration pull; ack `MigrateDone` to the source.
    Migration,
}

#[derive(Debug, Clone, Copy)]
struct FetchJob {
    seg: SegId,
    source: NodeId,
    reason: FetchReason,
    reply_to: NodeId,
    reply_req: ReqId,
    /// Expected transfer size (sizes the fetch timeout; 512 MB segments
    /// take ~40 s on Fast Ethernet and must not be declared dead at 12 s).
    bytes_hint: u64,
}

/// One in-flight erasure-coded shard repair, driven by a provider that
/// holds the EC file's *index* segment (the index names every shard of
/// the code, so the index holder is the only node that can tell which
/// shards a dead provider took with it). Phases run strictly in order;
/// any surprise — a version skew, a read failure, the job deadline —
/// aborts the whole job, and the next repair scan retries from scratch.
struct EcRepairJob {
    /// The EC file's index segment (held locally).
    index_seg: SegId,
    /// Job deadline guard: `Tick::RpcTimeout(guard_req)` aborts the job
    /// so a lost reply can never wedge the (single) repair slot.
    guard_req: ReqId,
    phase: EcPhase,
}

enum EcPhase {
    /// Waiting for the index segment's owner list from its home host:
    /// only the lowest-id live owner drives the repair, so the index
    /// replica holders don't race each other into duplicate installs.
    Gate {
        req: ReqId,
        ix: Box<IndexSegment>,
    },
    /// Waiting for each shard's owner list from its home host (slots
    /// are data shards then parity shards, matching the code layout).
    Locate {
        ix: Box<IndexSegment>,
        /// Outstanding `(request, shard slot)` queries.
        pending: Vec<(ReqId, usize)>,
        /// Owner lists as they arrive, one per slot.
        owners: Vec<Option<Vec<NodeId>>>,
    },
    /// Waiting for `k` survivor shards' bytes.
    Fetch {
        ix: Box<IndexSegment>,
        /// Slots with no live owner (what we must rebuild).
        lost: Vec<usize>,
        /// Live owners per slot (the placement exclude set).
        owners: Vec<Vec<NodeId>>,
        /// Outstanding `(request, shard slot)` reads.
        pending: Vec<(ReqId, usize)>,
        /// Fetched shard bytes by slot (`k + m` entries).
        shards: Vec<Option<Vec<u8>>>,
        fetched: usize,
        /// Whether replies carried synthetic (length-only) payloads.
        /// Set by the first reply; a mismatch aborts.
        synthetic: Option<bool>,
    },
    /// Waiting for install acks from the fresh shard sites.
    Install { pending: Vec<ReqId> },
}

/// The storage provider node.
pub struct StorageProvider {
    costs: CostModel,
    /// The local segment store ("disk contents": survives crashes).
    pub store: LocalStore,
    // ---- soft state (dropped on crash) ----
    view: MembershipView,
    ring: Locator,
    /// The ring lags `view` after joins; rebuilt lazily at first use so
    /// a join storm (SWIM convergence at scale) costs one rebuild, not
    /// one per member.
    ring_dirty: bool,
    loc: LocationTable,
    /// How liveness is tracked: multicast heartbeats (default) or SWIM
    /// gossip. Fixed at construction; seeded sims stay byte-identical
    /// because no SWIM timer is armed in heartbeat mode.
    membership_mode: MembershipMode,
    /// The SWIM detector, present only in [`MembershipMode::Swim`] while
    /// the provider is up (rebuilt from `swim_seeds` on restart).
    swim: Option<SwimDetector>,
    /// Bootstrap peer set for the SWIM detector.
    swim_seeds: Vec<NodeId>,
    /// Which SegID → home-host scheme the locator uses.
    location: LocationScheme,
    load_ewma: Ewma,
    /// Replica fetches are serialized: at most one in flight, the rest
    /// queued (the paper's one-active-migration-per-node rule, applied to
    /// all background transfers so recovery traffic cannot swamp a node).
    fetch_queue: VecDeque<FetchJob>,
    fetch_inflight: Option<(ReqId, FetchJob)>,
    /// One outgoing migration at a time (§3.7.1).
    migration_inflight: Option<SegId>,
    /// Repair dedupe: (segment, target) → when last issued.
    repairs_issued: HashMap<(SegId, NodeId), SimTime>,
    /// Active erasure-coded repair (one at a time, like fetches).
    ec_repair: Option<EcRepairJob>,
    /// EC scan cooldown: index segments checked recently.
    ec_scan_done: HashMap<SegId, SimTime>,
    /// Join-refresh already scheduled for these providers.
    join_refresh_pending: Vec<NodeId>,
    next_req: ReqId,
    /// Disk bytes currently accounted to the simulator's disk model.
    disk_accounted: u64,
    my_machine: u32,
    /// Failure domain announced in heartbeats; repair prefers replica
    /// sites on racks that do not already hold a copy.
    pub rack: u32,
    // ---- observability ----
    /// Completed outbound migrations.
    pub migrations_done: u64,
    /// Replica installs performed (sync/repair/migration pulls).
    pub installs_done: u64,
    /// Reconstructed EC shards this node installed onto fresh sites
    /// (counted on the repairing index holder, at install ack).
    pub ec_repairs_done: u64,
    /// Monotonic heartbeat sequence (telemetry only).
    hb_seq: u64,
    /// Replies to recent non-idempotent requests (shadow creation, 2PC
    /// votes, direct writes), replayed verbatim when a resilient client
    /// re-sends a request whose reply was lost.
    replies: ReplyCache,
}

impl StorageProvider {
    /// A provider that keeps `keep_versions` committed versions per
    /// segment.
    pub fn new(costs: CostModel, keep_versions: usize) -> StorageProvider {
        StorageProvider {
            costs,
            store: LocalStore::new(keep_versions),
            view: MembershipView::new(),
            ring: Locator::default(),
            ring_dirty: false,
            loc: LocationTable::new(),
            membership_mode: MembershipMode::Heartbeat,
            swim: None,
            swim_seeds: Vec::new(),
            location: LocationScheme::Ring,
            load_ewma: Ewma::new(costs.load_ewma_alpha),
            fetch_queue: VecDeque::new(),
            fetch_inflight: None,
            migration_inflight: None,
            repairs_issued: HashMap::new(),
            ec_repair: None,
            ec_scan_done: HashMap::new(),
            join_refresh_pending: Vec::new(),
            next_req: 1,
            disk_accounted: 0,
            my_machine: 0,
            rack: 0,
            migrations_done: 0,
            installs_done: 0,
            ec_repairs_done: 0,
            hb_seq: 0,
            replies: ReplyCache::new(DEFAULT_REPLY_CACHE),
        }
    }

    /// Set the provider's rack (failure domain) before it starts.
    pub fn with_rack(mut self, rack: u32) -> StorageProvider {
        self.rack = rack;
        self
    }

    /// Choose the membership mechanism before the provider starts. In
    /// [`MembershipMode::Swim`], `seeds` are the peers assumed alive at
    /// boot (typically every configured provider).
    pub fn with_membership(
        mut self,
        mode: MembershipMode,
        seeds: impl IntoIterator<Item = NodeId>,
    ) -> StorageProvider {
        self.membership_mode = mode;
        self.swim_seeds = seeds.into_iter().collect();
        self
    }

    /// Choose the SegID → home-host scheme before the provider starts.
    pub fn with_location(mut self, scheme: LocationScheme) -> StorageProvider {
        self.location = scheme;
        self
    }

    /// Setter form of [`StorageProvider::with_membership`], for nodes
    /// already handed to the simulator but not yet started.
    pub fn set_membership(&mut self, mode: MembershipMode, seeds: Vec<NodeId>) {
        self.membership_mode = mode;
        self.swim_seeds = seeds;
    }

    /// Setter form of [`StorageProvider::with_location`].
    pub fn set_location(&mut self, scheme: LocationScheme) {
        self.location = scheme;
    }

    /// The SWIM detector's current incarnation (gossip mode only).
    pub fn swim_incarnation(&self) -> Option<u64> {
        self.swim.as_ref().map(|s| s.incarnation())
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    /// Current smoothed I/O-wait load.
    pub fn load(&self) -> f64 {
        self.load_ewma.get()
    }

    /// Location-table size (home-host role).
    pub fn location_entries(&self) -> usize {
        self.loc.len()
    }

    /// Live providers this node currently sees.
    pub fn live_view(&self) -> Vec<NodeId> {
        self.view.live().collect()
    }

    /// Reconcile the store's physical bytes with the simulated disk.
    fn sync_disk(&mut self, ctx: &mut impl Transport) {
        let target = self.store.total_stored_bytes();
        if target > self.disk_accounted {
            // Over-commit is clamped: the explicit space check in
            // write paths keeps us under capacity in normal operation.
            let _ = ctx.disk().alloc(target - self.disk_accounted);
        } else {
            ctx.disk().free(self.disk_accounted - target);
        }
        self.disk_accounted = target;
    }

    fn heartbeat_payload(&mut self, ctx: &mut impl Transport) -> Heartbeat {
        let now = ctx.now();
        let io_wait = ctx.disk().sample_io_wait(now);
        let load = self.load_ewma.update(io_wait);
        Heartbeat {
            load,
            available: ctx.disk().available(),
            capacity: ctx.disk().capacity(),
            machine: self.my_machine,
            rack: self.rack,
        }
    }

    fn rebuild_ring(&mut self) {
        self.ring = Locator::build(self.location, self.view.live());
        self.ring_dirty = false;
    }

    /// The placement ring, rebuilt first if membership changed since the
    /// last use.
    fn ring(&mut self) -> &Locator {
        if self.ring_dirty {
            self.rebuild_ring();
        }
        &self.ring
    }

    /// Send a location update for one of our segments to its home host
    /// (applying locally when we are the home).
    fn upsert_location(
        &mut self,
        ctx: &mut impl Transport,
        seg: SegId,
        version: Version,
        replication: u32,
        deleted: bool,
    ) {
        let me = ctx.id();
        let bytes = self.store.stored_bytes(seg);
        let Some(home) = self.ring().home(seg) else {
            return;
        };
        if home == me {
            if deleted {
                self.loc.remove_owner(seg, me);
            } else {
                self.loc.upsert(seg, me, version, replication, bytes, ctx.now());
                self.check_entry_repairs(ctx, seg);
            }
        } else {
            ctx.send(
                home,
                Msg::LocUpsert {
                    seg,
                    owner: me,
                    version,
                    replication,
                    bytes,
                    deleted,
                },
            );
        }
    }

    /// Batch-refresh our stored segments to their home hosts. When
    /// `only_home` is set, refresh just the segments homed there.
    fn refresh_locations(&mut self, ctx: &mut impl Transport, only_home: Option<NodeId>) {
        let me = ctx.id();
        // BTreeMap: refresh messages go out in deterministic home order.
        let mut per_home: BTreeMap<NodeId, Vec<(SegId, Version, u32, u64)>> = BTreeMap::new();
        for (seg, version) in self.store.list_segments() {
            let Some(home) = self.ring().home(seg) else {
                continue;
            };
            if let Some(h) = only_home {
                if home != h {
                    continue;
                }
            }
            let replication = self.store.meta(seg).map(|m| m.replication).unwrap_or(1);
            let bytes = self.store.stored_bytes(seg);
            per_home
                .entry(home)
                .or_default()
                .push((seg, version, replication, bytes));
        }
        for (home, entries) in per_home {
            if home == me {
                for (seg, version, replication, bytes) in entries {
                    self.loc.upsert(seg, me, version, replication, bytes, ctx.now());
                }
            } else {
                ctx.send(home, Msg::LocRefresh { owner: me, entries });
            }
        }
    }

    /// Home-host role: react to a change in one location entry — notify
    /// stale owners to sync and repair under-replication (§3.6).
    fn check_entry_repairs(&mut self, ctx: &mut impl Transport, seg: SegId) {
        let now = ctx.now();
        let cooldown = self.costs.repair_scan_interval * 6;
        let Some(entry) = self.loc.lookup(seg) else {
            return;
        };
        let Some(latest) = entry.latest_version() else {
            return;
        };
        let up_to_date = entry.up_to_date_owners();
        let bytes_hint = entry.bytes;
        let Some(&source) = up_to_date.first() else {
            return;
        };
        let stale = entry.stale_owners();
        let all_owners: Vec<NodeId> = entry.owners.keys().copied().collect();
        // Repairs already issued and still within the cooldown count as
        // pending owners: without this, two triggers arriving before the
        // first new replica registers would each pick a site and
        // over-replicate.
        let pending_new: Vec<NodeId> = self
            .repairs_issued
            .iter()
            .filter(|((s, t), &at)| {
                *s == seg && now.since(at) < cooldown && !all_owners.contains(t)
            })
            .map(|((_, t), _)| *t)
            .collect();
        // Stale owners are being synced (below), so they still count
        // toward the degree; only genuinely missing replicas get new
        // sites ("fewer replicas than the specified degree", §3.6).
        let missing = entry
            .replication
            .saturating_sub(entry.owners.len() as u32 + pending_new.len() as u32);
        // Version-discrepancy sync (lazy propagation tail).
        for target in stale {
            if !self.view.is_live(target) {
                continue;
            }
            let key = (seg, target);
            if self
                .repairs_issued
                .get(&key)
                .is_some_and(|&t| now.since(t) < cooldown)
            {
                continue;
            }
            self.repairs_issued.insert(key, now);
            ctx.record(TelemetryEvent::RepairStart { seg: seg.0, to: target });
            ctx.send(target, Msg::SyncRequest { req: 0, seg, source, bytes_hint });
        }
        // Replication-degree repair: choose fresh sites, excluding every
        // current owner (§3.7.2: replicas on distinct providers) and —
        // when other racks have room — every provider sharing a rack
        // with an existing replica (the paper's planned GoogleFS-style
        // rack spreading).
        let mut exclude = all_owners;
        exclude.extend(pending_new);
        for _ in 0..missing {
            let cands = candidates_from_view(&self.view);
            let owner_racks: Vec<u32> = exclude
                .iter()
                .filter_map(|o| self.view.info(*o).map(|i| i.heartbeat.rack))
                .collect();
            let mut rack_exclude = exclude.clone();
            for (id, info) in self.view.entries() {
                if owner_racks.contains(&info.heartbeat.rack) && !rack_exclude.contains(&id) {
                    rack_exclude.push(id);
                }
            }
            // Fall back to provider-level spreading when every rack is
            // already represented.
            let effective: &[NodeId] =
                if cands.iter().any(|c| !rack_exclude.contains(&c.id)) {
                    &rack_exclude
                } else {
                    &exclude
                };
            let size = 0; // unknown remotely; treat as small for fitting
            let pick = select_provider(
                &cands,
                size.max(1),
                0.5,
                PlacementPolicy::LoadAware,
                effective,
                None,
                ctx.rng(),
            );
            let Some(target) = pick else {
                break;
            };
            let key = (seg, target);
            if self
                .repairs_issued
                .get(&key)
                .is_some_and(|&t| now.since(t) < cooldown)
            {
                exclude.push(target);
                continue;
            }
            self.repairs_issued.insert(key, now);
            ctx.record(TelemetryEvent::RepairStart { seg: seg.0, to: target });
            ctx.send(target, Msg::SyncRequest { req: 0, seg, source, bytes_hint });
            exclude.push(target);
        }
        let _ = latest;
    }

    fn repair_scan(&mut self, ctx: &mut impl Transport) {
        let segs: Vec<SegId> = self.loc.iter().map(|(s, _)| s).collect();
        for seg in segs {
            self.check_entry_repairs(ctx, seg);
        }
        // Trim the dedupe map so it cannot grow without bound.
        let horizon = self.costs.repair_scan_interval * 12;
        let now = ctx.now();
        self.repairs_issued
            .retain(|_, &mut t| now.since(t) < horizon);
        self.ec_repair_scan(ctx);
    }

    // ---- erasure-coded shard repair ----
    //
    // Replication repair (above) cannot rebuild an EC shard: the shard
    // has replication 1, so when its only owner dies there is no source
    // to copy from. Instead, any provider holding the file's *index*
    // segment (marked with `SegMeta::ec`) periodically checks every
    // shard's liveness and, as the lowest-id live index holder, decodes
    // the lost shards from `k` survivors and installs them on fresh
    // providers.

    /// Start at most one EC repair job per scan. Touches neither the
    /// RNG nor the network unless an EC-marked index segment is stored
    /// locally, so seeded runs without EC files are unperturbed.
    fn ec_repair_scan(&mut self, ctx: &mut impl Transport) {
        if self.ec_repair.is_some() {
            return;
        }
        let now = ctx.now();
        let cooldown = self.costs.repair_scan_interval * 2;
        self.ec_scan_done.retain(|_, &mut t| now.since(t) < cooldown);
        let candidate = self
            .store
            .list_segments()
            .into_iter()
            .map(|(s, _)| s)
            .find(|&s| {
                !self.ec_scan_done.contains_key(&s)
                    && self.store.meta(s).is_some_and(|m| m.ec.is_some())
            });
        let Some(index_seg) = candidate else {
            return;
        };
        self.ec_scan_done.insert(index_seg, now);
        // Decode the locally held index: it names every shard.
        let ix = match self.store.read(index_seg, None, 0, u64::MAX) {
            Ok(out) => match out.data.as_deref().map(decode_index) {
                Some(Ok(ix)) => ix,
                _ => return,
            },
            Err(_) => return,
        };
        let Some(p) = ix.ec_params() else { return };
        // A file that never committed its full stripe set (or a stale
        // pre-EC index) cannot be repaired from this index version.
        if ix.segments.len() != p.k as usize || ix.parity.len() != p.m as usize {
            return;
        }
        let Some(home) = self.ring().home(index_seg) else {
            return;
        };
        let guard_req = self.fresh_req();
        // Deadline sized for the whole job: a couple of RPC rounds plus
        // moving up to k+m shard-widths of data.
        let stripe_bytes = ix.ec_shard_len() * (p.k as u64 + p.m as u64);
        let deadline = self.costs.rpc_timeout * 8 + Dur::for_bytes(stripe_bytes, 2.5e5);
        ctx.set_timer(deadline, Msg::Tick(Tick::RpcTimeout(guard_req)));
        let me = ctx.id();
        if home == me {
            // We are the index's home host: answer the gate locally.
            let owners: Vec<NodeId> = self
                .loc
                .lookup(index_seg)
                .map(|e| e.owners.keys().copied().collect())
                .unwrap_or_default();
            self.ec_repair = Some(EcRepairJob {
                index_seg,
                guard_req,
                phase: EcPhase::Gate { req: 0, ix: Box::new(ix) },
            });
            self.ec_gate_decide(ctx, owners);
        } else {
            let req = self.fresh_req();
            self.ec_repair = Some(EcRepairJob {
                index_seg,
                guard_req,
                phase: EcPhase::Gate { req, ix: Box::new(ix) },
            });
            ctx.send(home, Msg::LocQuery { req, seg: index_seg });
        }
    }

    /// Gate on the index segment's owner list: proceed only when no
    /// lower-id live owner exists (they would run the identical job).
    fn ec_gate_decide(&mut self, ctx: &mut impl Transport, owners: Vec<NodeId>) {
        let Some(job) = self.ec_repair.take() else {
            return;
        };
        let EcPhase::Gate { ix, .. } = job.phase else {
            self.ec_repair = Some(job);
            return;
        };
        let me = ctx.id();
        let low = owners
            .iter()
            .copied()
            .filter(|&id| self.view.is_live(id))
            .min();
        if low.is_some_and(|l| l < me) {
            return; // a lower-id index holder owns this repair
        }
        self.ec_start_locate(ctx, job.index_seg, job.guard_req, ix);
    }

    /// Ask every shard's home host who owns it (answering locally for
    /// shards homed here).
    fn ec_start_locate(
        &mut self,
        ctx: &mut impl Transport,
        index_seg: SegId,
        guard_req: ReqId,
        ix: Box<IndexSegment>,
    ) {
        let me = ctx.id();
        let slots: Vec<SegId> = ix
            .segments
            .iter()
            .chain(ix.parity.iter())
            .map(|e| e.seg)
            .collect();
        let mut pending: Vec<(ReqId, usize)> = Vec::new();
        let mut owners: Vec<Option<Vec<NodeId>>> = vec![None; slots.len()];
        for (slot, &seg) in slots.iter().enumerate() {
            let Some(home) = self.ring().home(seg) else {
                owners[slot] = Some(Vec::new());
                continue;
            };
            if home == me {
                owners[slot] = Some(
                    self.loc
                        .lookup(seg)
                        .map(|e| e.owners.keys().copied().collect())
                        .unwrap_or_default(),
                );
            } else {
                let req = self.fresh_req();
                pending.push((req, slot));
                ctx.send(home, Msg::LocQuery { req, seg });
            }
        }
        self.ec_repair = Some(EcRepairJob {
            index_seg,
            guard_req,
            phase: EcPhase::Locate { ix, pending, owners },
        });
        self.ec_maybe_locate_done(ctx);
    }

    /// A `LocQueryR` arrived; route it to the gate or locate phase.
    fn on_ec_loc_reply(
        &mut self,
        ctx: &mut impl Transport,
        req: ReqId,
        seg: SegId,
        reply_owners: Vec<(NodeId, Version)>,
    ) {
        let mut gate_owners: Option<Vec<NodeId>> = None;
        let mut locate_progress = false;
        {
            let Some(job) = self.ec_repair.as_mut() else {
                return;
            };
            match &mut job.phase {
                EcPhase::Gate { req: r, .. } if *r == req && seg == job.index_seg => {
                    gate_owners = Some(reply_owners.iter().map(|&(id, _)| id).collect());
                }
                EcPhase::Locate { pending, owners, .. } => {
                    if let Some(pos) = pending.iter().position(|&(r, _)| r == req) {
                        let (_, slot) = pending.swap_remove(pos);
                        owners[slot] = Some(reply_owners.iter().map(|&(id, _)| id).collect());
                        locate_progress = true;
                    }
                }
                _ => {}
            }
        }
        if let Some(owners) = gate_owners {
            self.ec_gate_decide(ctx, owners);
        } else if locate_progress {
            self.ec_maybe_locate_done(ctx);
        }
    }

    /// Once every shard's owner list is in, classify lost shards and
    /// either finish (healthy / unrecoverable) or fetch `k` survivors.
    fn ec_maybe_locate_done(&mut self, ctx: &mut impl Transport) {
        let complete = matches!(
            &self.ec_repair,
            Some(j) if matches!(
                &j.phase,
                EcPhase::Locate { owners, .. } if owners.iter().all(|o| o.is_some())
            )
        );
        if !complete {
            return;
        }
        let Some(job) = self.ec_repair.take() else {
            return;
        };
        let EcPhase::Locate { ix, owners, .. } = job.phase else {
            self.ec_repair = Some(job);
            return;
        };
        // Only live owners count: the location table lags death
        // declarations by at most one refresh, and installing onto a
        // site that later proves alive is merely an extra copy.
        let owners: Vec<Vec<NodeId>> = owners
            .into_iter()
            .map(|o| {
                o.expect("checked complete")
                    .into_iter()
                    .filter(|&id| self.view.is_live(id))
                    .collect()
            })
            .collect();
        let p = ix.ec_params().expect("scan checked params");
        let (k, m) = (p.k as usize, p.m as usize);
        let lost: Vec<usize> = owners
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_empty())
            .map(|(i, _)| i)
            .collect();
        if lost.is_empty() {
            return; // all shards alive — nothing to do
        }
        if lost.len() > m {
            ctx.metrics().count("provider.ec_unrecoverable", 1);
            return; // more failures than the code tolerates
        }
        // Fetch the first k survivors, each from its lowest-id owner.
        let entries: Vec<crate::layout::SegEntry> = ix
            .segments
            .iter()
            .chain(ix.parity.iter())
            .copied()
            .collect();
        let mut pending: Vec<(ReqId, usize)> = Vec::new();
        for (slot, own) in owners.iter().enumerate() {
            if own.is_empty() || pending.len() >= k {
                continue;
            }
            let source = *own.iter().min().expect("non-empty");
            let e = entries[slot];
            let req = self.fresh_req();
            pending.push((req, slot));
            ctx.send(
                source,
                Msg::ReadSeg {
                    req,
                    seg: e.seg,
                    offset: 0,
                    len: u64::MAX,
                    min_version: Some(e.version),
                    allow_redirect: false,
                },
            );
        }
        let total = entries.len();
        self.ec_repair = Some(EcRepairJob {
            index_seg: job.index_seg,
            guard_req: job.guard_req,
            phase: EcPhase::Fetch {
                ix,
                lost,
                owners,
                pending,
                shards: vec![None; total],
                fetched: 0,
                synthetic: None,
            },
        });
    }

    /// A survivor shard read came back.
    fn on_ec_read_reply(&mut self, ctx: &mut impl Transport, req: ReqId, reply: ReadReply) {
        enum Next {
            Wait,
            Abort,
            Reconstruct,
        }
        let next = {
            let Some(job) = self.ec_repair.as_mut() else {
                return;
            };
            let EcPhase::Fetch {
                ix,
                pending,
                shards,
                fetched,
                synthetic,
                ..
            } = &mut job.phase
            else {
                return;
            };
            let Some(pos) = pending.iter().position(|&(r, _)| r == req) else {
                return;
            };
            let (_, slot) = pending.swap_remove(pos);
            match reply {
                ReadReply::Data { data, version, .. } => {
                    // Reconstruction needs a *consistent* stripe. A
                    // version other than the one our index names means
                    // a newer commit landed (or our index replica is
                    // stale): that index's holders will repair.
                    let expected = ix
                        .segments
                        .iter()
                        .chain(ix.parity.iter())
                        .nth(slot)
                        .map(|e| e.version);
                    let is_synth = data.is_none();
                    if expected != Some(version)
                        || synthetic.is_some_and(|s| s != is_synth)
                    {
                        Next::Abort
                    } else {
                        *synthetic = Some(is_synth);
                        shards[slot] = data.map(|b| b.to_vec()).or(Some(Vec::new()));
                        *fetched += 1;
                        let k = ix.ec_params().expect("scan checked params").k as usize;
                        if *fetched >= k {
                            Next::Reconstruct
                        } else {
                            Next::Wait
                        }
                    }
                }
                // A survivor refused: abort, rescan later.
                _ => Next::Abort,
            }
        };
        match next {
            Next::Wait => {}
            Next::Abort => {
                self.ec_repair = None;
                ctx.metrics().count("provider.ec_repair_aborts", 1);
            }
            Next::Reconstruct => self.ec_reconstruct_and_install(ctx),
        }
    }

    /// All `k` survivors are in: rebuild the lost shards and push each
    /// onto a fresh provider holding no other shard of this file.
    fn ec_reconstruct_and_install(&mut self, ctx: &mut impl Transport) {
        let Some(job) = self.ec_repair.take() else {
            return;
        };
        let EcPhase::Fetch {
            ix,
            lost,
            owners,
            shards,
            synthetic,
            ..
        } = job.phase
        else {
            self.ec_repair = Some(job);
            return;
        };
        let now = ctx.now();
        let me = ctx.id();
        let p = ix.ec_params().expect("scan checked params");
        let shard_len = ix.ec_shard_len() as usize;
        let synthetic = synthetic.unwrap_or(false);
        let entries: Vec<crate::layout::SegEntry> = ix
            .segments
            .iter()
            .chain(ix.parity.iter())
            .copied()
            .collect();
        // Decode the lost shards (synthetic payloads are length-only,
        // so "reconstruction" is just re-materializing the lengths).
        let mut decoded: Vec<Option<Vec<u8>>> = vec![None; entries.len()];
        if !synthetic {
            let mut work: Vec<Option<Vec<u8>>> = shards
                .into_iter()
                .map(|s| {
                    s.map(|mut v| {
                        v.resize(shard_len, 0); // stored lengths are unpadded
                        v
                    })
                })
                .collect();
            let ok = sorrento_ec::ReedSolomon::new(p.k as usize, p.m as usize)
                .and_then(|rs| rs.reconstruct(&mut work))
                .is_ok();
            if !ok {
                ctx.metrics().count("provider.ec_repair_aborts", 1);
                return;
            }
            decoded = work;
        }
        // Place each rebuilt shard on a provider holding no shard of
        // this file (and not this node: the index holder stays a pure
        // coordinator so repair traffic spreads).
        let owner_sites: Vec<NodeId> = owners.iter().flatten().copied().collect();
        let mut picked: Vec<NodeId> = Vec::new();
        let mut pending: Vec<ReqId> = Vec::new();
        for &slot in &lost {
            let e = entries[slot];
            let cands = candidates_from_view(&self.view);
            let mut exclude: Vec<NodeId> = owner_sites.clone();
            exclude.push(me);
            exclude.extend(picked.iter().copied());
            let target = select_provider(
                &cands,
                (shard_len as u64).max(1),
                0.5,
                PlacementPolicy::LoadAware,
                &exclude,
                None,
                ctx.rng(),
            )
            .or_else(|| {
                // Distinct-site placement starves when every survivor
                // already hosts a shard (or is this coordinator).
                // Restoring decodability beats preserving perfect
                // failure independence: fall back to excluding only
                // this node and targets picked this round, and let a
                // later migration restore the spread.
                ctx.metrics().count("provider.ec_repair_relaxed", 1);
                let mut minimal = vec![me];
                minimal.extend(picked.iter().copied());
                select_provider(
                    &cands,
                    (shard_len as u64).max(1),
                    0.5,
                    PlacementPolicy::LoadAware,
                    &minimal,
                    None,
                    ctx.rng(),
                )
            });
            let Some(target) = target else {
                break; // cluster too small even relaxed; retry later
            };
            picked.push(target);
            let mut meta = SegMeta::from_options(&ix.options, synthetic);
            meta.replication = 1; // shards are singly stored by design
            let data = if synthetic {
                None
            } else {
                let mut bytes = decoded[slot].clone().expect("reconstruct filled");
                bytes.truncate(e.len as usize); // stored lengths are unpadded
                Some(bytes.into())
            };
            let image = ReplicaImage {
                seg: e.seg,
                version: e.version,
                len: e.len,
                data,
                meta,
            };
            let req = self.fresh_req();
            pending.push(req);
            self.repairs_issued.insert((e.seg, target), now);
            ctx.record(TelemetryEvent::EcRepair { seg: e.seg.0, to: target });
            ctx.metrics().count("provider.ec_repairs", 1);
            ctx.send(target, Msg::EcInstall { req, image: Box::new(image) });
        }
        if pending.is_empty() {
            return;
        }
        self.ec_repair = Some(EcRepairJob {
            index_seg: job.index_seg,
            guard_req: job.guard_req,
            phase: EcPhase::Install { pending },
        });
    }

    /// An install ack arrived from a fresh shard site.
    fn on_ec_install_reply(&mut self, req: ReqId, result: Result<(), Error>) {
        let Some(job) = self.ec_repair.as_mut() else {
            return;
        };
        let EcPhase::Install { pending } = &mut job.phase else {
            return;
        };
        let Some(pos) = pending.iter().position(|&r| r == req) else {
            return;
        };
        pending.swap_remove(pos);
        if result.is_ok() {
            self.ec_repairs_done += 1;
        }
        if self
            .ec_repair
            .as_ref()
            .is_some_and(|j| matches!(&j.phase, EcPhase::Install { pending } if pending.is_empty()))
        {
            self.ec_repair = None;
        }
    }

    fn enqueue_fetch(&mut self, ctx: &mut impl Transport, job: FetchJob) {
        // Drop duplicates already queued for the same segment/source.
        let dup = self.fetch_queue.iter().any(|j| j.seg == job.seg && j.source == job.source)
            || self
                .fetch_inflight
                .as_ref()
                .is_some_and(|(_, j)| j.seg == job.seg && j.source == job.source);
        if dup {
            return;
        }
        self.fetch_queue.push_back(job);
        self.kick_fetch(ctx);
    }

    fn kick_fetch(&mut self, ctx: &mut impl Transport) {
        if self.fetch_inflight.is_some() {
            return;
        }
        let Some(job) = self.fetch_queue.pop_front() else {
            return;
        };
        let req = self.fresh_req();
        self.fetch_inflight = Some((req, job));
        ctx.send(job.source, Msg::FetchSeg { req, seg: job.seg });
        let timeout = self.costs.rpc_timeout * 4 + Dur::for_bytes(job.bytes_hint, 2.5e5);
        ctx.set_timer(timeout, Msg::Tick(Tick::RpcTimeout(req)));
    }

    fn finish_fetch(&mut self, ctx: &mut impl Transport, job: FetchJob, installed: Option<Version>) {
        match job.reason {
            FetchReason::Sync => {
                if job.reply_req != 0 {
                    ctx.send(
                        job.reply_to,
                        Msg::SyncDone {
                            req: job.reply_req,
                            seg: job.seg,
                            version: installed.unwrap_or(Version::INITIAL),
                            result: if installed.is_some() {
                                Ok(())
                            } else {
                                Err(Error::NoSuchSegment)
                            },
                        },
                    );
                }
            }
            FetchReason::Migration => {
                ctx.send(
                    job.reply_to,
                    Msg::MigrateDone {
                        seg: job.seg,
                        ok: installed.is_some(),
                    },
                );
            }
        }
        self.kick_fetch(ctx);
    }

    // ---- migration daemon (§3.7) ----

    fn migration_tick(&mut self, ctx: &mut impl Transport) {
        if self.migration_inflight.is_some() || self.view.len() < 2 {
            return;
        }
        if self.try_locality_migration(ctx) {
            return;
        }
        self.try_balance_migration(ctx);
    }

    /// Locality-driven policy (§3.7.2): migrate a segment to the provider
    /// co-located with the machine generating most of its traffic.
    fn try_locality_migration(&mut self, ctx: &mut impl Transport) -> bool {
        let me = ctx.id();
        let segs = self.store.list_segments();
        for (seg, _) in segs {
            let Some(meta) = self.store.meta(seg) else {
                continue;
            };
            let PlacementPolicy::LocalityDriven { threshold } = meta.policy else {
                continue;
            };
            let shares = self.store.traffic_shares(seg);
            let Some(&(machine, share)) = shares.first() else {
                continue;
            };
            if machine == self.my_machine || share <= threshold.max(0.5) {
                continue;
            }
            let Some(dest) = self.view.provider_on_machine(machine) else {
                continue;
            };
            if dest == me {
                continue;
            }
            self.start_migration(ctx, seg, dest, "locality");
            return true;
        }
        false
    }

    /// Load/storage-balance policy (§3.7.1): move hot segments off
    /// I/O-loaded nodes (α = 0.8) and cold segments off full nodes
    /// (α = 0.3) when this node is in the top 10% and above mean + 3σ.
    /// Returns whether a migration was started.
    fn try_balance_migration(&mut self, ctx: &mut impl Transport) -> bool {
        let me = ctx.id();
        let n = self.view.len();
        let top_slots = ((n as f64 * self.costs.migration_top_fraction).ceil() as usize).max(1);
        // Use our own *heartbeat* values so ranking against the view
        // compares identically-computed numbers (deriving my_util from
        // the raw disk state differs in the last float ulp and can make
        // a node spuriously outrank itself).
        let util_of = |h: &Heartbeat| {
            if h.capacity == 0 {
                0.0
            } else {
                1.0 - h.available as f64 / h.capacity as f64
            }
        };
        let me_info = self.view.info(ctx.id());
        let my_load = me_info.map(|i| i.heartbeat.load).unwrap_or(0.0);
        let my_util = me_info.map(|i| util_of(&i.heartbeat)).unwrap_or(0.0);
        let (load_mean, load_sd) = self.view.load_stats();
        let (util_mean, util_sd) = self.view.storage_stats();
        // The paper's trigger is "among the highest 10% AND above
        // mean + 3σ". With a population of n nodes the maximum possible
        // z-score is √(n−1) — exactly 3.0 at the paper's own n = 10 — so
        // the literal condition is unreachable in practice, yet Figure 14
        // shows migration firing. We therefore add a relative-imbalance
        // fallback (>1.2× the mean with a significant absolute excess),
        // which preserves the intent — only the top-ranked clear outlier
        // migrates, one paced transfer at a time, so there is no
        // oscillation — while letting the balance converge to the
        // paper's observed band.
        let outlier = |value: f64, mean: f64, sd: f64, abs_gap: f64| {
            (sd > 0.0 && value > mean + 3.0 * sd)
                || (value > 1.2 * mean && value - mean > abs_gap)
        };
        let io_trigger = self.view.rank_descending(my_load, |h| h.load) < top_slots
            && outlier(my_load, load_mean, load_sd, 0.15);
        let util_trigger = self.view.rank_descending(my_util, |h| util_of(h)) < top_slots
            && outlier(my_util, util_mean, util_sd, 0.04);
        let (pick_hot, alpha) = if io_trigger {
            (true, self.costs.migration_alpha_hot)
        } else if util_trigger {
            (false, self.costs.migration_alpha_cold)
        } else {
            return false;
        };
        let by_temp = self.store.segments_by_temperature();
        let candidate_seg = if pick_hot {
            by_temp.iter().rev().find(|&&(_, _, bytes)| bytes > 0)
        } else {
            // Storage rebalancing wants cold data *and* meaningful volume:
            // among the coldest quartile, move the biggest segment.
            let quarter = (by_temp.len() / 4).max(1).min(by_temp.len());
            by_temp[..quarter]
                .iter()
                .filter(|&&(_, _, bytes)| bytes > 0)
                .max_by_key(|&&(seg, _, bytes)| (bytes, seg))
                .or_else(|| by_temp.iter().find(|&&(_, _, bytes)| bytes > 0))
        };
        let Some(&(seg, _, bytes)) = candidate_seg else {
            return false;
        };
        let cands: Vec<Candidate> = candidates_from_view(&self.view);
        // Never migrate *into* a node that is itself above average on the
        // dimension being balanced — the weighted draw alone discriminates
        // too weakly once the log factor saturates.
        let mut exclude = vec![me];
        for (id, info) in self.view.entries() {
            let over = if pick_hot {
                info.heartbeat.load >= load_mean
            } else {
                util_of(&info.heartbeat) >= util_mean
            };
            if over && id != me {
                exclude.push(id);
            }
        }
        let Some(dest) = select_provider(
            &cands,
            bytes,
            alpha,
            PlacementPolicy::LoadAware,
            &exclude,
            None,
            ctx.rng(),
        ) else {
            return false;
        };
        self.start_migration(ctx, seg, dest, if pick_hot { "load" } else { "capacity" });
        true
    }

    fn start_migration(
        &mut self,
        ctx: &mut impl Transport,
        seg: SegId,
        dest: NodeId,
        reason: &'static str,
    ) {
        let me = ctx.id();
        let bytes_hint = self.store.stored_bytes(seg);
        self.migration_inflight = Some(seg);
        ctx.record(TelemetryEvent::Migration { seg: seg.0, from: me, to: dest, reason });
        ctx.send(dest, Msg::MigrateTo { seg, source: me, bytes_hint });
        ctx.metrics().count("sorrento.migrations_started", 1);
        ctx.metrics().count_labeled("sorrento.migration", reason, 1);
    }

    fn on_membership_events(&mut self, ctx: &mut impl Transport, events: Vec<MembershipEvent>) {
        for ev in events {
            match ev {
                MembershipEvent::Joined(p) => {
                    ctx.record(TelemetryEvent::MemberJoin { of: p });
                    // Joins shift homes toward p; the delayed refresh
                    // below covers them, so the rebuild can wait.
                    self.ring_dirty = true;
                    if p != ctx.id() && !self.join_refresh_pending.contains(&p) {
                        self.join_refresh_pending.push(p);
                        // "the refreshing event is scheduled after a short
                        // random delay" (§3.4.1 event 2).
                        let max = self.costs.join_refresh_delay_max.as_nanos().max(1);
                        let delay = Dur::nanos(ctx.rng().gen_range(0..max));
                        ctx.set_timer(delay, Msg::Tick(Tick::JoinRefresh(p)));
                    }
                }
                MembershipEvent::Departed(p) => {
                    ctx.record(TelemetryEvent::DeathDeclared { of: p });
                    ctx.record(TelemetryEvent::MemberLeave { of: p });
                    let old_ring = self.ring().clone();
                    self.rebuild_ring();
                    self.join_refresh_pending.retain(|&x| x != p);
                    // Event 3: drop the departed owner everywhere; the
                    // affected entries get repair-checked.
                    let affected = self.loc.remove_provider(p);
                    ctx.record(TelemetryEvent::LocPurge {
                        of: p,
                        removed: affected.len() as u64,
                    });
                    for seg in affected {
                        self.check_entry_repairs(ctx, seg);
                    }
                    // Re-home our segments whose home was p.
                    let me = ctx.id();
                    let mut per_home: BTreeMap<NodeId, Vec<(SegId, Version, u32, u64)>> =
                        BTreeMap::new();
                    for (seg, version) in self.store.list_segments() {
                        if old_ring.home(seg) != Some(p) {
                            continue;
                        }
                        let Some(new_home) = self.ring().home(seg) else {
                            continue;
                        };
                        let replication =
                            self.store.meta(seg).map(|m| m.replication).unwrap_or(1);
                        let bytes = self.store.stored_bytes(seg);
                        per_home
                            .entry(new_home)
                            .or_default()
                            .push((seg, version, replication, bytes));
                    }
                    for (home, entries) in per_home {
                        if home == me {
                            for (seg, version, replication, bytes) in entries {
                                self.loc.upsert(seg, me, version, replication, bytes, ctx.now());
                                self.check_entry_repairs(ctx, seg);
                            }
                        } else {
                            ctx.send(home, Msg::LocRefresh { owner: me, entries });
                        }
                    }
                }
            }
        }
    }

    /// Export the provider's health gauges. Heartbeat mode calls this
    /// from the heartbeat tick; gossip mode from its own
    /// [`Tick::GaugeExport`] timer (same gauges, same order).
    fn export_gauges(&mut self, ctx: &mut impl Transport) {
        let me = ctx.id();
        ctx.metrics()
            .gauge_set(&format!("{me}.live_providers"), self.view.len() as f64);
        ctx.metrics()
            .gauge_set(&format!("{me}.loc_entries"), self.loc.len() as f64);
        ctx.metrics()
            .gauge_set(&format!("{me}.fetch_queue"), self.fetch_queue.len() as f64);
        ctx.metrics()
            .gauge_set(&format!("{me}.segments"), self.store.list_segments().len() as f64);
        ctx.metrics()
            .gauge_set(&format!("{me}.stored_bytes"), self.store.total_stored_bytes() as f64);
    }

    /// Fold what the SWIM detector learned into the membership view, so
    /// every downstream consumer (ring, placement, repair, migration)
    /// sees exactly the events the heartbeat path would have produced.
    fn fold_swim_events(&mut self, ctx: &mut impl Transport, events: Vec<SwimEvent>) {
        for ev in events {
            match ev {
                SwimEvent::Alive { node, payload } => {
                    let joined = self.view.observe(node, payload, ctx.now());
                    self.on_membership_events(ctx, joined.into_iter().collect());
                }
                SwimEvent::Suspect { node, incarnation } => {
                    ctx.record(TelemetryEvent::SwimSuspect { of: node, incarnation });
                }
                SwimEvent::Refuted { incarnation } => {
                    ctx.record(TelemetryEvent::SwimRefute { incarnation });
                }
                SwimEvent::Dead { node } => {
                    if self.view.remove(node) {
                        self.on_membership_events(
                            ctx,
                            vec![MembershipEvent::Departed(node)],
                        );
                    }
                }
            }
        }
    }

    /// The `sorrentoctl members` report: this node's membership view —
    /// the SWIM table (with states and incarnations) in gossip mode, the
    /// heartbeat view otherwise.
    fn members_json(&self, ctx: &mut impl Transport) -> String {
        use sorrento_json::Json;
        let mut members = Json::arr();
        match &self.swim {
            Some(swim) => {
                for u in swim.snapshot() {
                    let state = match u.state {
                        crate::swim::SwimState::Alive => "alive",
                        crate::swim::SwimState::Suspect => "suspect",
                        crate::swim::SwimState::Dead => "dead",
                    };
                    let mut m = Json::obj()
                        .with("node", u.node.index())
                        .with("state", state)
                        .with("incarnation", u.incarnation);
                    if let Some(hb) = u.payload {
                        m = m
                            .with("load", hb.load)
                            .with("available", hb.available)
                            .with("capacity", hb.capacity);
                    }
                    members.push(m);
                }
            }
            None => {
                for (id, info) in self.view.entries() {
                    members.push(
                        Json::obj()
                            .with("node", id.index())
                            .with("state", "alive")
                            .with("load", info.heartbeat.load)
                            .with("available", info.heartbeat.available)
                            .with("capacity", info.heartbeat.capacity),
                    );
                }
            }
        }
        Json::obj()
            .with("node", ctx.id().index())
            .with(
                "mode",
                if self.swim.is_some() { "swim" } else { "heartbeat" },
            )
            .with("location", self.location.name())
            .with("live", self.view.len())
            .with("members", members)
            .encode()
    }

    /// Serve a read against the local store, or redirect via the
    /// location table (home-host role), or fail.
    #[allow(clippy::too_many_arguments)]
    fn serve_read(
        &mut self,
        ctx: &mut impl Transport,
        from: NodeId,
        seg: SegId,
        offset: u64,
        len: u64,
        min_version: Option<Version>,
        allow_redirect: bool,
    ) -> ReadReply {
        // Serve the exact requested version when we hold it (the open
        // pinned it); otherwise our latest, provided it is not older than
        // requested. Exactness matters: a divergent orphan from a failed
        // 2PC can share a sequence number with the real commit, and only
        // the full (entropy-carrying) version identifies the right bytes.
        let serve_version = match (self.store.latest(seg), min_version) {
            (Some(_), Some(min)) if self.store.has_version(seg, min) => Some(Some(min)),
            (Some(v), Some(min)) if v >= min => Some(None),
            (Some(_), None) => Some(None),
            _ => None,
        };
        if let Some(version_sel) = serve_version {
            match self.store.read(seg, version_sel, offset, len) {
                Ok(out) => {
                    self.store
                        .touch(seg, ctx.now(), ctx.machine_of(from), out.len);
                    return ReadReply::Data {
                        len: out.len,
                        data: out.data,
                        version: out.version,
                    };
                }
                Err(e) => return ReadReply::Err(e),
            }
        }
        if allow_redirect {
            if let Some(entry) = self.loc.lookup(seg) {
                let owners: Vec<(NodeId, Version)> = entry
                    .owners
                    .iter()
                    .map(|(&id, info)| (id, info.version))
                    .collect();
                if !owners.is_empty() {
                    if std::env::var("SORRENTO_PROV_TRACE").is_ok() {
                        eprintln!(
                            "PTRACE {:?} t={:?} redirect {seg:?} -> {owners:?}",
                            ctx.id(),
                            ctx.now()
                        );
                    }
                    return ReadReply::Redirect(owners);
                }
            }
        }
        if std::env::var("SORRENTO_PROV_TRACE").is_ok() {
            eprintln!(
                "PTRACE {:?} t={:?} read miss {seg:?} latest={:?} has={} min={min_version:?}",
                ctx.id(),
                ctx.now(),
                self.store.latest(seg),
                self.store.has_segment(seg)
            );
        }
        ReadReply::Err(Error::NoSuchSegment)
    }
}

/// Runtime entry points: the same handlers drive the provider in the
/// simulator (via the thin [`Node`] impl below) and in the real-process
/// runtime (which calls them directly with its own [`Transport`]).
impl StorageProvider {
    /// Bring the provider online: reconcile disk accounting, announce
    /// membership, arm the maintenance timers.
    pub fn handle_start(&mut self, ctx: &mut impl Transport) {
        self.my_machine = ctx.machine_of(ctx.id());
        // Reconcile disk accounting (shadows died with a crash; committed
        // segments survived on disk).
        self.disk_accounted = ctx.disk().used();
        self.sync_disk(ctx);
        // Announce immediately, then periodically.
        let hb = self.heartbeat_payload(ctx);
        self.view.observe(ctx.id(), hb, ctx.now());
        self.rebuild_ring();
        match self.membership_mode {
            MembershipMode::Heartbeat => {
                self.hb_seq += 1;
                ctx.record(TelemetryEvent::HeartbeatSend { seq: self.hb_seq });
                ctx.multicast(Msg::Heartbeat(hb));
                ctx.set_timer(self.costs.heartbeat_interval, Msg::Tick(Tick::Heartbeat));
            }
            MembershipMode::Swim => {
                let mut swim =
                    SwimDetector::new(ctx.id(), self.swim_seeds.iter().copied(), self.costs.swim());
                swim.set_self_payload(hb);
                swim.start(ctx);
                self.swim = Some(swim);
                // Heartbeat-mode gauges ride the heartbeat tick; gossip
                // mode keeps them on a dedicated timer so observability
                // does not die with the multicast.
                ctx.set_timer(self.costs.heartbeat_interval, Msg::Tick(Tick::GaugeExport));
            }
        }
        // Stagger the first full refresh so a cold cluster doesn't refresh
        // in lockstep.
        let stagger =
            Dur::nanos(ctx.rng().gen_range(0..self.costs.refresh_interval.as_nanos().max(1)));
        ctx.set_timer(stagger, Msg::Tick(Tick::LocationRefresh));
        ctx.set_timer(self.costs.repair_scan_interval, Msg::Tick(Tick::RepairScan));
        ctx.set_timer(self.costs.migration_interval, Msg::Tick(Tick::Migration));
        ctx.set_timer(self.costs.location_gc_age, Msg::Tick(Tick::Gc));
    }

    /// Crash handling: soft state dies with the process; the store
    /// ("disk") survives into a later [`StorageProvider::handle_start`].
    pub fn handle_crash(&mut self) {
        // Soft state dies with the process; the store ("disk") survives.
        self.view = MembershipView::new();
        self.ring = Locator::build(self.location, []);
        self.ring_dirty = false;
        self.swim = None;
        self.loc.clear();
        self.fetch_queue.clear();
        self.fetch_inflight = None;
        self.migration_inflight = None;
        self.repairs_issued.clear();
        self.ec_repair = None;
        self.ec_scan_done.clear();
        self.join_refresh_pending.clear();
        self.replies.clear();
        self.store.expire_all_shadows();
    }

    /// Process one delivered message or fired timer.
    pub fn handle_message(&mut self, from: NodeId, msg: Msg, ctx: &mut impl Transport) {
        let now = ctx.now();
        // Replayed non-idempotent request (same-request resend after a
        // lost reply)? Answer from the cache without executing twice: a
        // re-run Commit on an already-consumed shadow would return
        // `ShadowExpired` for a write that actually succeeded.
        if let Some(req) = dedup_key(&msg) {
            if let Some(cached) = self.replies.get(from, req) {
                let reply = cached.clone();
                ctx.metrics().count("provider.dedup_replays", 1);
                ctx.record(TelemetryEvent::DedupHit {
                    span: crate::proto::span_of(&msg),
                    kind: crate::proto::dbg_kind(&msg),
                });
                let done = ctx.cpu(self.costs.provider_op_cpu);
                ctx.send_at(done, from, reply);
                return;
            }
        }
        match msg {
            // ---------------- timers ----------------
            Msg::Tick(Tick::Heartbeat) => {
                let hb = self.heartbeat_payload(ctx);
                self.view.observe(ctx.id(), hb, now);
                self.hb_seq += 1;
                ctx.record(TelemetryEvent::HeartbeatSend { seq: self.hb_seq });
                ctx.multicast(Msg::Heartbeat(hb));
                // Surface providers that are going silent *before* the
                // death deadline: failure-detection latency is visible in
                // the event stream, not just its outcome.
                let interval = self.costs.heartbeat_interval.as_nanos().max(1);
                let me = ctx.id();
                let misses: Vec<(NodeId, u32)> = self
                    .view
                    .entries()
                    .filter(|&(id, _)| id != me)
                    .filter_map(|(id, info)| {
                        let missed = (now.since(info.last_seen).as_nanos() / interval) as u32;
                        (missed >= 2).then_some((id, missed))
                    })
                    .collect();
                for (of, missed) in misses {
                    ctx.record(TelemetryEvent::HeartbeatMiss { of, missed });
                }
                let departed = self.view.expire(now, self.costs.heartbeat_interval);
                self.on_membership_events(ctx, departed);
                self.export_gauges(ctx);
                ctx.set_timer(self.costs.heartbeat_interval, Msg::Tick(Tick::Heartbeat));
            }
            Msg::Tick(Tick::GaugeExport) => {
                // Gossip mode's stand-in for the gauge export that rides
                // the heartbeat tick: same gauges, own timer.
                self.export_gauges(ctx);
                ctx.set_timer(self.costs.heartbeat_interval, Msg::Tick(Tick::GaugeExport));
            }
            Msg::Tick(Tick::SwimProbe) => {
                let Some(mut swim) = self.swim.take() else { return };
                let hb = self.heartbeat_payload(ctx);
                swim.set_self_payload(hb);
                self.view.observe(ctx.id(), hb, now);
                swim.on_probe_tick(ctx);
                self.swim = Some(swim);
            }
            Msg::Tick(Tick::SwimAckTimeout(seq)) => {
                let Some(mut swim) = self.swim.take() else { return };
                swim.on_ack_timeout(seq, ctx);
                self.swim = Some(swim);
            }
            Msg::Tick(Tick::SwimProbeTimeout(seq)) => {
                let Some(mut swim) = self.swim.take() else { return };
                let events = swim.on_probe_timeout(seq, ctx);
                self.swim = Some(swim);
                self.fold_swim_events(ctx, events);
            }
            Msg::Tick(Tick::SwimSuspectTimeout(node, incarnation)) => {
                let Some(mut swim) = self.swim.take() else { return };
                let events = swim.on_suspect_timeout(node, incarnation, ctx);
                self.swim = Some(swim);
                self.fold_swim_events(ctx, events);
            }
            Msg::Tick(Tick::SwimSync) => {
                let Some(mut swim) = self.swim.take() else { return };
                swim.on_sync_tick(ctx);
                self.swim = Some(swim);
            }
            Msg::Tick(Tick::LocationRefresh) => {
                self.refresh_locations(ctx, None);
                ctx.set_timer(self.costs.refresh_interval, Msg::Tick(Tick::LocationRefresh));
            }
            Msg::Tick(Tick::JoinRefresh(p)) => {
                self.join_refresh_pending.retain(|&x| x != p);
                if self.view.is_live(p) {
                    self.refresh_locations(ctx, Some(p));
                }
            }
            Msg::Tick(Tick::Gc) => {
                self.loc.purge_stale(now, self.costs.location_gc_age);
                self.store.expire_shadows(now);
                self.sync_disk(ctx);
                ctx.set_timer(self.costs.location_gc_age, Msg::Tick(Tick::Gc));
            }
            Msg::Tick(Tick::RepairScan) => {
                self.repair_scan(ctx);
                ctx.set_timer(self.costs.repair_scan_interval, Msg::Tick(Tick::RepairScan));
            }
            Msg::Tick(Tick::Migration) => {
                self.migration_tick(ctx);
                ctx.set_timer(self.costs.migration_interval, Msg::Tick(Tick::Migration));
            }
            Msg::Tick(Tick::MigrationContinue)
                // The active migration process streams: locality moves
                // first, then balance moves while the trigger still holds.
                if self.migration_inflight.is_none() && self.view.len() >= 2
                    && !self.try_locality_migration(ctx) => {
                        self.try_balance_migration(ctx);
                    }
            Msg::Tick(Tick::RpcTimeout(req)) => {
                // Provider-side fetches and EC repair jobs set this timer.
                if let Some((inflight, job)) = self.fetch_inflight {
                    if inflight == req {
                        self.fetch_inflight = None;
                        self.finish_fetch(ctx, job, None);
                    }
                }
                if self.ec_repair.as_ref().is_some_and(|j| j.guard_req == req) {
                    self.ec_repair = None;
                    ctx.metrics().count("provider.ec_repair_timeouts", 1);
                }
            }
            Msg::Tick(_) => {}

            // ---------------- membership ----------------
            Msg::Heartbeat(hb) => {
                let joined = self.view.observe(from, hb, now);
                self.on_membership_events(ctx, joined.into_iter().collect());
            }
            Msg::SwimPing { seq, origin, updates } => {
                let Some(mut swim) = self.swim.take() else { return };
                let events = swim.on_ping(from, seq, origin, &updates, ctx);
                self.swim = Some(swim);
                self.fold_swim_events(ctx, events);
            }
            Msg::SwimAck { seq, origin, updates } => {
                let Some(mut swim) = self.swim.take() else { return };
                let events = swim.on_ack(seq, origin, &updates, ctx);
                self.swim = Some(swim);
                self.fold_swim_events(ctx, events);
            }
            Msg::SwimPingReq { seq, target, origin, updates } => {
                let Some(mut swim) = self.swim.take() else { return };
                let events = swim.on_ping_req(seq, target, origin, &updates, ctx);
                self.swim = Some(swim);
                self.fold_swim_events(ctx, events);
            }
            Msg::MembersPull { req } => {
                if let Some(mut swim) = self.swim.take() {
                    swim.on_members_pull(from, req, ctx);
                    self.swim = Some(swim);
                }
            }
            Msg::MembersDigest { req: _, updates } => {
                let Some(mut swim) = self.swim.take() else { return };
                let events = swim.on_digest(&updates, ctx);
                self.swim = Some(swim);
                self.fold_swim_events(ctx, events);
            }
            Msg::MembersQuery { req } => {
                let json = self.members_json(ctx);
                ctx.send(from, Msg::MembersR { req, json });
            }

            // ---------------- location protocol ----------------
            Msg::LocQuery { req, seg } => {
                let owners: Vec<(NodeId, Version)> = self
                    .loc
                    .lookup(seg)
                    .map(|e| e.owners.iter().map(|(&id, o)| (id, o.version)).collect())
                    .unwrap_or_default();
                let label = if owners.is_empty() { "miss" } else { "hit" };
                ctx.metrics().count_labeled("loc.query", label, 1);
                let done = ctx.cpu(self.costs.provider_op_cpu);
                ctx.send_at(done, from, Msg::LocQueryR { req, seg, owners });
            }
            Msg::LocUpsert {
                seg,
                owner,
                version,
                replication,
                bytes,
                deleted,
            } => {
                if deleted {
                    self.loc.remove_owner(seg, owner);
                } else {
                    self.loc.upsert(seg, owner, version, replication, bytes, now);
                    self.check_entry_repairs(ctx, seg);
                }
            }
            Msg::LocRefresh { owner, entries } => {
                let added = entries.len() as u64;
                for (seg, version, replication, bytes) in entries {
                    self.loc.upsert(seg, owner, version, replication, bytes, now);
                }
                ctx.record(TelemetryEvent::LocRefresh { added, total: self.loc.len() as u64 });
            }
            Msg::BackupQuery { req, seg } => {
                ctx.metrics().count_labeled("loc.query", "backup", 1);
                if let Some(version) = self.store.latest(seg) {
                    let done = ctx.cpu(self.costs.provider_op_cpu);
                    ctx.send_at(done, from, Msg::BackupQueryR { req, seg, version });
                }
            }

            // ---------------- data path ----------------
            Msg::ReadSeg {
                req,
                seg,
                offset,
                len,
                min_version,
                allow_redirect,
            } => {
                let reply = self.serve_read(ctx, from, seg, offset, len, min_version, allow_redirect);
                let cpu_done = ctx.cpu(self.costs.provider_op_cpu);
                let done = if let ReadReply::Data { len, .. } = &reply {
                    let disk_done = ctx.disk_submit(*len, DiskAccess::Random);
                    cpu_done.max(disk_done)
                } else {
                    cpu_done
                };
                ctx.send_at(done, from, Msg::ReadSegR { req, reply });
            }
            Msg::CreateShadow {
                req,
                span,
                seg,
                base,
                meta,
            } => {
                let fresh = base.is_none();
                let result = match base {
                    Some(v) => self.store.open_shadow(seg, v, now, self.costs.shadow_ttl),
                    None => Ok(self
                        .store
                        .open_fresh_shadow(seg, meta, now, self.costs.shadow_ttl)),
                };
                if fresh && result.is_ok() {
                    ctx.record(TelemetryEvent::SegCreate { span, seg: seg.0, on: ctx.id() });
                }
                let done = ctx.cpu(self.costs.provider_op_cpu);
                let reply = Msg::CreateShadowR { req, result };
                self.replies.put(from, req, reply.clone());
                ctx.send_at(done, from, reply);
            }
            Msg::WriteShadow {
                req,
                shadow,
                offset,
                payload,
                truncate,
            } => {
                let bytes = payload.len();
                let result = if bytes > ctx.disk().available() {
                    Err(Error::OutOfSpace)
                } else {
                    let r = self.store.write_shadow(shadow, offset, payload);
                    if r.is_ok() && truncate {
                        let _ = self.store.truncate_shadow(shadow, offset + bytes);
                    }
                    r
                };
                self.sync_disk(ctx);
                let cpu_done = ctx.cpu(self.costs.provider_op_cpu);
                let disk_done = ctx.disk_submit(bytes, DiskAccess::Sequential);
                ctx.send_at(cpu_done.max(disk_done), from, Msg::WriteShadowR { req, result });
            }
            Msg::ReadShadow {
                req,
                shadow,
                offset,
                len,
            } => {
                let reply = match self.store.read_shadow(shadow, offset, len) {
                    Ok(out) => ReadReply::Data {
                        len: out.len,
                        data: out.data,
                        version: out.version,
                    },
                    Err(e) => ReadReply::Err(e),
                };
                let cpu_done = ctx.cpu(self.costs.provider_op_cpu);
                let done = if let ReadReply::Data { len, .. } = &reply {
                    let disk_done = ctx.disk_submit(*len, DiskAccess::Random);
                    cpu_done.max(disk_done)
                } else {
                    cpu_done
                };
                ctx.send_at(done, from, Msg::ReadShadowR { req, reply });
            }
            Msg::RenewShadow { shadow } => {
                let _ = self.store.renew_shadow(shadow, now, self.costs.shadow_ttl);
            }

            // ---------------- 2PC ----------------
            Msg::Prepare { req, span, items } => {
                let mut result = Ok(());
                for &(shadow, target) in &items {
                    let seg = self.store.shadow_segment(shadow).map(|s| s.0).unwrap_or(0);
                    let ok = match self.store.prepare_shadow(shadow, target) {
                        Ok(()) => true,
                        Err(e) => {
                            result = Err(e);
                            false
                        }
                    };
                    ctx.record(TelemetryEvent::TwoPcPrepare { span, seg, ok });
                    if !ok {
                        break;
                    }
                }
                let cpu_done = ctx.cpu(self.costs.provider_op_cpu);
                let disk_done = ctx.disk_submit(512, DiskAccess::Sync);
                let reply = Msg::PrepareR { req, result };
                self.replies.put(from, req, reply.clone());
                ctx.send_at(cpu_done.max(disk_done), from, reply);
            }
            Msg::Commit { req, span, items } => {
                let mut result = Ok(());
                let mut committed: Vec<(SegId, Version, u32)> = Vec::new();
                for &(shadow, target) in &items {
                    match self.store.shadow_segment(shadow) {
                        Some(seg) => match self.store.commit_shadow(shadow, target, now) {
                            Ok(()) => {
                                ctx.record(TelemetryEvent::SegCommit {
                                    span,
                                    seg: seg.0,
                                    version: target.0,
                                });
                                ctx.record(TelemetryEvent::TwoPcCommit { span, seg: seg.0 });
                                let replication =
                                    self.store.meta(seg).map(|m| m.replication).unwrap_or(1);
                                committed.push((seg, target, replication));
                            }
                            Err(e) => result = Err(e),
                        },
                        None => result = Err(Error::ShadowExpired),
                    }
                }
                self.sync_disk(ctx);
                // Fast-path location updates (Figure 6 step 10): owners
                // tell home hosts about the version advance, which kicks
                // lazy propagation to stale replicas.
                for (seg, version, replication) in committed {
                    self.upsert_location(ctx, seg, version, replication, false);
                }
                let cpu_done = ctx.cpu(self.costs.provider_op_cpu);
                let disk_done = ctx.disk_submit(512, DiskAccess::Sync);
                let reply = Msg::CommitR { req, result };
                self.replies.put(from, req, reply.clone());
                ctx.send_at(cpu_done.max(disk_done), from, reply);
            }
            Msg::Abort { span, items } => {
                for shadow in items {
                    let seg = self.store.shadow_segment(shadow).map(|s| s.0).unwrap_or(0);
                    ctx.record(TelemetryEvent::TwoPcAbort { span, seg, reason: "client_abort" });
                    self.store.abort_shadow(shadow);
                }
                self.sync_disk(ctx);
            }

            // ---------------- byte-range mode ----------------
            Msg::DirectWrite {
                req,
                seg,
                offset,
                payload,
                meta,
            } => {
                let bytes = payload.len();
                let existed = self.store.has_segment(seg);
                let result = if bytes > ctx.disk().available() {
                    Err(Error::OutOfSpace)
                } else {
                    self.store.direct_write(seg, offset, payload, meta, now)
                };
                self.sync_disk(ctx);
                if !existed && result.is_ok() {
                    self.upsert_location(ctx, seg, Version(1), meta.replication, false);
                }
                let cpu_done = ctx.cpu(self.costs.provider_op_cpu);
                let disk_done = ctx.disk_submit(bytes, DiskAccess::Sequential);
                let reply = Msg::DirectWriteR { req, result };
                self.replies.put(from, req, reply.clone());
                ctx.send_at(cpu_done.max(disk_done), from, reply);
            }

            // ---------------- lifecycle ----------------
            Msg::DeleteSeg { req, seg } => {
                let existed = self.store.delete_segment(seg);
                self.sync_disk(ctx);
                if existed {
                    self.upsert_location(ctx, seg, Version::INITIAL, 0, true);
                }
                let cpu_done = ctx.cpu(self.costs.provider_op_cpu);
                let disk_done = ctx.disk_submit(128, DiskAccess::Sync);
                ctx.send_at(cpu_done.max(disk_done), from, Msg::DeleteSegR { req, existed });
            }

            // ---------------- replication & migration ----------------
            Msg::FetchSeg { req, seg } => {
                let result = self.store.export(seg, None).map(Box::new);
                let cpu_done = ctx.cpu(self.costs.provider_op_cpu);
                let done = match &result {
                    Ok(img) => {
                        let disk_done = ctx.disk_submit(img.len, DiskAccess::Sequential);
                        cpu_done.max(disk_done)
                    }
                    Err(_) => cpu_done,
                };
                ctx.send_at(done, from, Msg::FetchSegR { req, result });
            }
            Msg::FetchSegR { req, result } => {
                let Some((inflight, job)) = self.fetch_inflight else {
                    return;
                };
                if inflight != req {
                    return;
                }
                self.fetch_inflight = None;
                let installed = match result {
                    Ok(img) => {
                        let version = img.version;
                        let len = img.len;
                        let fits = len <= ctx.disk().available().saturating_add(self.store.stored_bytes(job.seg));
                        if fits && self.store.install_replica(*img, now).unwrap_or(false) {
                            self.installs_done += 1;
                            if job.reason == FetchReason::Sync {
                                ctx.record(TelemetryEvent::RepairDone {
                                    seg: job.seg.0,
                                    to: ctx.id(),
                                });
                            }
                            self.sync_disk(ctx);
                            ctx.disk_submit(len, DiskAccess::Sequential);
                            let replication =
                                self.store.meta(job.seg).map(|m| m.replication).unwrap_or(1);
                            self.upsert_location(ctx, job.seg, version, replication, false);
                            Some(version)
                        } else {
                            None
                        }
                    }
                    Err(_) => None,
                };
                self.finish_fetch(ctx, job, installed);
            }
            Msg::SyncRequest { req, seg, source, bytes_hint } => {
                self.enqueue_fetch(
                    ctx,
                    FetchJob {
                        seg,
                        source,
                        reason: FetchReason::Sync,
                        reply_to: from,
                        reply_req: req,
                        bytes_hint,
                    },
                );
            }
            Msg::MigrateTo { seg, source, bytes_hint } => {
                self.enqueue_fetch(
                    ctx,
                    FetchJob {
                        seg,
                        source,
                        reason: FetchReason::Migration,
                        reply_to: source,
                        reply_req: 0,
                        bytes_hint,
                    },
                );
            }
            Msg::MigrateDone { seg, ok }
                if self.migration_inflight == Some(seg) => {
                    self.migration_inflight = None;
                    if ok {
                        self.migrations_done += 1;
                        self.store.delete_segment(seg);
                        self.sync_disk(ctx);
                        self.upsert_location(ctx, seg, Version::INITIAL, 0, true);
                        ctx.metrics().count("sorrento.migrations_done", 1);
                    }
                    // The migration *process* keeps draining qualifying
                    // segments (§3.7.1 allows one active migration per
                    // node; decisions are per minute but an active
                    // process streams until done), paced so it cannot
                    // monopolize the network.
                    ctx.set_timer(
                        self.costs.migration_pacing,
                        Msg::Tick(Tick::MigrationContinue),
                    );
                }
            Msg::SyncDone { .. } => {
                // Sync acks with req == 0 land here (home-host-initiated
                // repairs need no bookkeeping: the LocUpsert from the
                // target already updated the table).
            }

            // ---------------- erasure-coded repair ----------------
            // Providers only issue LocQuery/ReadSeg as EC repairers, so
            // these replies route straight to the active job (stale ones
            // fall through harmlessly on the request-id check).
            Msg::LocQueryR { req, seg, owners } => {
                self.on_ec_loc_reply(ctx, req, seg, owners);
            }
            Msg::ReadSegR { req, reply } => {
                self.on_ec_read_reply(ctx, req, reply);
            }
            Msg::EcInstall { req, image } => {
                let seg = image.seg;
                let version = image.version;
                let len = image.len;
                let fits = len
                    <= ctx
                        .disk()
                        .available()
                        .saturating_add(self.store.stored_bytes(seg));
                let result = if !fits {
                    Err(Error::OutOfSpace)
                } else {
                    match self.store.install_replica(*image, now) {
                        // `false` means we already hold this version or
                        // newer — the repair goal is met either way.
                        Ok(installed) => {
                            if installed {
                                self.installs_done += 1;
                                self.sync_disk(ctx);
                                ctx.disk_submit(len, DiskAccess::Sequential);
                                let replication = self
                                    .store
                                    .meta(seg)
                                    .map(|m| m.replication)
                                    .unwrap_or(1);
                                ctx.record(TelemetryEvent::RepairDone { seg: seg.0, to: ctx.id() });
                                self.upsert_location(ctx, seg, version, replication, false);
                            }
                            Ok(())
                        }
                        Err(e) => Err(e),
                    }
                };
                let cpu_done = ctx.cpu(self.costs.provider_op_cpu);
                let disk_done = ctx.disk_submit(512, DiskAccess::Sync);
                let reply = Msg::EcInstallR { req, seg, result };
                self.replies.put(from, req, reply.clone());
                ctx.send_at(cpu_done.max(disk_done), from, reply);
            }
            Msg::EcInstallR { req, result, .. } => {
                self.on_ec_install_reply(req, result);
            }

            _ => {}
        }
    }
}

/// The request id of a provider message that must not execute twice
/// (`None` for idempotent requests: reads, and shadow writes — which
/// place the same bytes at the same offset on replay).
fn dedup_key(msg: &Msg) -> Option<ReqId> {
    match msg {
        Msg::CreateShadow { req, .. }
        | Msg::Prepare { req, .. }
        | Msg::Commit { req, .. }
        | Msg::DirectWrite { req, .. }
        | Msg::EcInstall { req, .. } => Some(*req),
        _ => None,
    }
}

impl Node<Msg> for StorageProvider {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.handle_start(ctx)
    }

    fn on_crash(&mut self) {
        self.handle_crash()
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        self.handle_message(from, msg, ctx)
    }
}
