//! Protocol timing constants and per-request CPU/disk cost model.
//!
//! The structural behaviour (message counts, queueing, saturation) comes
//! from the simulator; these constants calibrate the *absolute* service
//! times to the paper's 2004-era hardware and are referenced from
//! EXPERIMENTS.md. Everything here is a tunable with its paper anchor
//! noted inline.

use sorrento_sim::Dur;

/// Timing and cost parameters for one Sorrento deployment.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    // -- membership (§3.3) ------------------------------------------------
    /// Heartbeat announcement interval. The paper does not publish the
    /// value; 2 s gives the ~10 s failure detection visible in Figure 13.
    pub heartbeat_interval: Dur,

    // -- SWIM gossip membership (opt-in; see crate::swim) ------------------
    /// One SWIM probe round per this interval. Only read in
    /// [`crate::swim::MembershipMode::Swim`].
    pub swim_probe_interval: Dur,
    /// Direct-ack window before the indirect fallback fires; the whole
    /// probe round is allowed 3× this.
    pub swim_ack_timeout: Dur,
    /// How long a suspicion stands unrefuted before the node is
    /// confirmed dead. Sized at ~8 probe rounds so a live accused has
    /// several independent chances to refute even under packet loss.
    pub swim_suspect_timeout: Dur,
    /// Indirect-probe fan-out (peers asked to relay a probe).
    pub swim_indirect_k: usize,
    /// Anti-entropy cadence: pull one random peer's full member table.
    pub swim_sync_interval: Dur,

    // -- location tables (§3.4.1) -----------------------------------------
    /// Periodic content refreshing cycle ("we set the table refreshing
    /// cycle to 15 minutes").
    pub refresh_interval: Dur,
    /// Upper bound of the random delay before refreshing a newly joined
    /// provider ("within 20 seconds in our test environment").
    pub join_refresh_delay_max: Dur,
    /// Location-table entries older than this are purged as garbage
    /// (twice the refresh cycle: a valid entry can never get this old).
    pub location_gc_age: Dur,

    // -- shadows & commits (§3.5) -----------------------------------------
    /// Shadow-copy expiration TTL.
    pub shadow_ttl: Dur,
    /// Namespace write-lock lease duration (held between commit-begin and
    /// commit-end).
    pub commit_lease: Dur,

    // -- placement & migration (§3.7) --------------------------------------
    /// Migration decision cadence ("the migration design is made once
    /// every minute").
    pub migration_interval: Dur,
    /// Pause between successive segment transfers of one node's active
    /// migration process, so migration traffic cannot monopolize the
    /// NICs ("prevent the traffic generated from data migration to
    /// disturb the normal operation of the system", §3.7.1).
    pub migration_pacing: Dur,
    /// α used when migrating hot segments off I/O-loaded providers.
    pub migration_alpha_hot: f64,
    /// α used when migrating cold segments off full providers.
    pub migration_alpha_cold: f64,
    /// A provider triggers migration when its load/utilization is within
    /// the top `migration_top_fraction` of providers AND above
    /// mean + 3σ.
    pub migration_top_fraction: f64,
    /// EWMA smoothing factor for the I/O-wait load.
    pub load_ewma_alpha: f64,
    /// Enable the §3.7.2 small-segment home-host weight boost (3N), which
    /// co-locates index segments with their home hosts and saves one
    /// round-trip on lookups. Off only for ablation runs.
    pub home_boost: bool,

    // -- per-request service costs -----------------------------------------
    /// Namespace server CPU per operation. §4.1.2 measures "a single
    /// namespace server is able to handle 1300 namespace operations per
    /// second" → ≈ 0.77 ms.
    pub ns_op_cpu: Dur,
    /// User-level storage-provider daemon CPU per request (socket +
    /// kernel-boundary crossings the paper blames for user-level
    /// overhead).
    pub provider_op_cpu: Dur,
    /// Client-stub CPU per request hop.
    pub client_op_cpu: Dur,
    /// Fixed RPC message overhead on the wire (headers), bytes.
    pub rpc_header_bytes: u64,

    // -- failure handling ---------------------------------------------------
    /// Client RPC timeout before declaring a provider dead and failing
    /// over (backup query / alternate replica).
    pub rpc_timeout: Dur,
    /// How long a client waits for backup-query replies before failing.
    pub backup_query_wait: Dur,

    // -- namespace sharding & hot standby -----------------------------------
    /// How often a shard primary drains its WAL-shipping tap to the hot
    /// standby. Empty shipments double as liveness beacons, so this also
    /// sets the standby's failure-detection resolution. Only read when a
    /// standby is configured.
    pub ns_ship_interval: Dur,
    /// How long a standby tolerates ship silence before promoting itself
    /// (assembling the shipped checkpoint + WAL tail and serving). Only
    /// read on standby nodes.
    pub ns_standby_grace: Dur,

    // -- repair/replication --------------------------------------------------
    /// Home hosts scan their location tables for under-replication and
    /// version discrepancies at this cadence (fast-path notifications
    /// handle the common case; the scan is the safety net).
    pub repair_scan_interval: Dur,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            heartbeat_interval: Dur::secs(2),
            swim_probe_interval: Dur::secs(1),
            swim_ack_timeout: Dur::millis(300),
            swim_suspect_timeout: Dur::secs(8),
            swim_indirect_k: 3,
            swim_sync_interval: Dur::secs(10),
            refresh_interval: Dur::minutes(15),
            join_refresh_delay_max: Dur::secs(20),
            location_gc_age: Dur::minutes(30),
            shadow_ttl: Dur::minutes(5),
            commit_lease: Dur::secs(30),
            migration_interval: Dur::minutes(1),
            migration_pacing: Dur::secs(3),
            migration_alpha_hot: 0.8,
            migration_alpha_cold: 0.3,
            migration_top_fraction: 0.10,
            load_ewma_alpha: 0.3,
            home_boost: true,
            ns_op_cpu: Dur::micros(770),
            provider_op_cpu: Dur::micros(4500),
            client_op_cpu: Dur::micros(150),
            rpc_header_bytes: 120,
            ns_ship_interval: Dur::millis(200),
            ns_standby_grace: Dur::secs(2),
            rpc_timeout: Dur::secs(3),
            backup_query_wait: Dur::millis(500),
            repair_scan_interval: Dur::secs(5),
        }
    }
}

impl CostModel {
    /// The SWIM-knob slice of this model, in the shape
    /// [`crate::swim::SwimDetector`] consumes.
    pub fn swim(&self) -> crate::swim::SwimConfig {
        crate::swim::SwimConfig {
            probe_interval: self.swim_probe_interval,
            ack_timeout: self.swim_ack_timeout,
            suspect_timeout: self.swim_suspect_timeout,
            indirect_k: self.swim_indirect_k,
            sync_interval: self.swim_sync_interval,
            max_piggyback: 8,
        }
    }

    /// A model with aggressive timers for fast unit tests (all the same
    /// protocol logic; just tighter cycles).
    pub fn fast_test() -> CostModel {
        CostModel {
            heartbeat_interval: Dur::millis(500),
            swim_probe_interval: Dur::millis(200),
            swim_ack_timeout: Dur::millis(60),
            swim_suspect_timeout: Dur::millis(1600),
            swim_sync_interval: Dur::secs(2),
            refresh_interval: Dur::secs(30),
            join_refresh_delay_max: Dur::secs(2),
            location_gc_age: Dur::secs(90),
            shadow_ttl: Dur::secs(30),
            commit_lease: Dur::secs(10),
            migration_interval: Dur::secs(5),
            migration_pacing: Dur::millis(300),
            repair_scan_interval: Dur::secs(1),
            rpc_timeout: Dur::millis(1500),
            ns_ship_interval: Dur::millis(50),
            ns_standby_grace: Dur::millis(400),
            ..CostModel::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = CostModel::default();
        assert_eq!(c.refresh_interval, Dur::minutes(15)); // §3.4.1
        assert_eq!(c.join_refresh_delay_max, Dur::secs(20)); // §3.4.1
        assert_eq!(c.migration_interval, Dur::minutes(1)); // §3.7.1
        assert_eq!(c.migration_alpha_hot, 0.8); // §3.7.1
        assert_eq!(c.migration_alpha_cold, 0.3); // §3.7.1
        // ns_op_cpu ≈ 1/1300 s (§4.1.2).
        let per_sec = 1.0 / c.ns_op_cpu.as_secs_f64();
        assert!(per_sec > 1200.0 && per_sec < 1400.0);
    }

    #[test]
    fn gc_age_exceeds_refresh_cycle() {
        let c = CostModel::default();
        assert!(c.location_gc_age.as_nanos() >= 2 * c.refresh_interval.as_nanos());
        let f = CostModel::fast_test();
        assert!(f.location_gc_age.as_nanos() >= 2 * f.refresh_interval.as_nanos());
    }
}
