//! The handle-based API layer (§2.3).
//!
//! "The basic Sorrento API layer exports an NFS-style interface, in
//! which operations are based on opaque file and directory handles.
//! Upon this layer, we have implemented another library interface that
//! is similar to the UNIX file-system calls."
//!
//! [`FsScript`] is that library interface for this reproduction: it
//! builds a validated operation program against opaque [`FileHandle`]s
//! and compiles it into the [`ClientOp`] stream a simulated client
//! executes. Validation happens at build time — double closes, I/O on
//! closed or read-only handles, and interleaved sessions (the client
//! stub holds one open file at a time, like one `FILE*` per thread) are
//! rejected before anything runs.
//!
//! ```
//! use sorrento::api::FsScript;
//!
//! let mut fs = FsScript::new();
//! fs.mkdir("/data").unwrap();
//! let h = fs.create("/data/report").unwrap();
//! fs.write(h, 0, b"quarterly numbers".to_vec()).unwrap();
//! fs.close(h).unwrap();
//! let h = fs.open("/data/report", false).unwrap();
//! fs.read(h, 0, 17).unwrap();
//! fs.close(h).unwrap();
//! let ops = fs.into_ops();
//! assert_eq!(ops.len(), 7);
//! ```

use crate::client::ClientOp;
use crate::store::WritePayload;
use crate::types::{Error, FileOptions, Result};
use sorrento_sim::Dur;

/// An opaque handle to an open file within an [`FsScript`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileHandle(u64);

#[derive(Debug, Clone, Copy, PartialEq)]
enum HandleState {
    OpenRead,
    OpenWrite,
    Closed,
}

/// A validated, handle-based operation program (§2.3's UNIX-like library
/// interface), compiled to [`ClientOp`]s via [`FsScript::into_ops`].
#[derive(Debug, Default)]
pub struct FsScript {
    ops: Vec<ClientOp>,
    handles: Vec<HandleState>,
    /// The handle currently holding the (single) open-file slot.
    current: Option<FileHandle>,
}

impl FsScript {
    /// An empty program.
    pub fn new() -> FsScript {
        FsScript::default()
    }

    fn alloc(&mut self, state: HandleState) -> FileHandle {
        let h = FileHandle(self.handles.len() as u64);
        self.handles.push(state);
        self.current = Some(h);
        h
    }

    fn check_current(&self, h: FileHandle, need_write: bool) -> Result<()> {
        if self.current != Some(h) {
            // Either closed, or another handle holds the open slot.
            return Err(match self.handles.get(h.0 as usize) {
                Some(HandleState::Closed) | None => Error::NotFound,
                Some(_) => Error::InvalidMode,
            });
        }
        if need_write && self.handles[h.0 as usize] != HandleState::OpenWrite {
            return Err(Error::InvalidMode);
        }
        Ok(())
    }

    /// Create a directory.
    pub fn mkdir(&mut self, path: impl Into<String>) -> Result<()> {
        if self.current.is_some() {
            return Err(Error::InvalidMode); // close the open file first
        }
        self.ops.push(ClientOp::Mkdir { path: path.into() });
        Ok(())
    }

    /// Rename a file (directories are refused server-side).
    pub fn rename(&mut self, src: impl Into<String>, dst: impl Into<String>) -> Result<()> {
        if self.current.is_some() {
            return Err(Error::InvalidMode); // close the open file first
        }
        self.ops.push(ClientOp::Rename { src: src.into(), dst: dst.into() });
        Ok(())
    }

    /// Create a file (default options) and open it for writing.
    pub fn create(&mut self, path: impl Into<String>) -> Result<FileHandle> {
        if self.current.is_some() {
            return Err(Error::InvalidMode);
        }
        self.ops.push(ClientOp::Create { path: path.into() });
        Ok(self.alloc(HandleState::OpenWrite))
    }

    /// Create a file with explicit options and open it for writing.
    pub fn create_with(
        &mut self,
        path: impl Into<String>,
        options: FileOptions,
    ) -> Result<FileHandle> {
        if self.current.is_some() {
            return Err(Error::InvalidMode);
        }
        self.ops.push(ClientOp::CreateWith {
            path: path.into(),
            options,
        });
        Ok(self.alloc(HandleState::OpenWrite))
    }

    /// Open an existing file.
    pub fn open(&mut self, path: impl Into<String>, write: bool) -> Result<FileHandle> {
        if self.current.is_some() {
            return Err(Error::InvalidMode);
        }
        self.ops.push(ClientOp::Open {
            path: path.into(),
            write,
        });
        Ok(self.alloc(if write {
            HandleState::OpenWrite
        } else {
            HandleState::OpenRead
        }))
    }

    /// Read a byte range through a handle.
    pub fn read(&mut self, h: FileHandle, offset: u64, len: u64) -> Result<()> {
        self.check_current(h, false)?;
        self.ops.push(ClientOp::Read { offset, len });
        Ok(())
    }

    /// Write real bytes through a writable handle.
    pub fn write(&mut self, h: FileHandle, offset: u64, data: impl Into<bytes::Bytes>) -> Result<()> {
        self.check_current(h, true)?;
        self.ops.push(ClientOp::Write {
            offset,
            payload: WritePayload::Real(data.into()),
        });
        Ok(())
    }

    /// Write a modeled (synthetic) length through a writable handle.
    pub fn write_synth(&mut self, h: FileHandle, offset: u64, len: u64) -> Result<()> {
        self.check_current(h, true)?;
        self.ops.push(ClientOp::write_synth(offset, len));
        Ok(())
    }

    /// Append through a writable handle.
    pub fn append(&mut self, h: FileHandle, data: impl Into<bytes::Bytes>) -> Result<()> {
        self.check_current(h, true)?;
        self.ops.push(ClientOp::Append {
            payload: WritePayload::Real(data.into()),
        });
        Ok(())
    }

    /// Atomic append (retry-on-conflict) through a writable handle.
    pub fn atomic_append(&mut self, h: FileHandle, data: impl Into<bytes::Bytes>) -> Result<()> {
        self.check_current(h, true)?;
        self.ops.push(ClientOp::AtomicAppend {
            payload: WritePayload::Real(data.into()),
        });
        Ok(())
    }

    /// Commit pending changes without closing (the implicit commit of a
    /// `sync` call, §3.5).
    pub fn sync(&mut self, h: FileHandle) -> Result<()> {
        self.check_current(h, true)?;
        self.ops.push(ClientOp::Sync);
        Ok(())
    }

    /// Close the handle (commits pending changes — the implicit commit
    /// of a `close` call, §3.5).
    pub fn close(&mut self, h: FileHandle) -> Result<()> {
        self.check_current(h, false)?;
        self.handles[h.0 as usize] = HandleState::Closed;
        self.current = None;
        self.ops.push(ClientOp::Close);
        Ok(())
    }

    /// Remove a file (no handle may be open on it).
    pub fn unlink(&mut self, path: impl Into<String>) -> Result<()> {
        if self.current.is_some() {
            return Err(Error::InvalidMode);
        }
        self.ops.push(ClientOp::Unlink { path: path.into() });
        Ok(())
    }

    /// Look up a path.
    pub fn stat(&mut self, path: impl Into<String>) -> Result<()> {
        self.ops.push(ClientOp::Stat { path: path.into() });
        Ok(())
    }

    /// List a directory.
    pub fn list(&mut self, path: impl Into<String>) -> Result<()> {
        self.ops.push(ClientOp::List { path: path.into() });
        Ok(())
    }

    /// Idle for a duration.
    pub fn think(&mut self, dur: Dur) {
        self.ops.push(ClientOp::Think { dur });
    }

    /// Number of compiled operations so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finish the program. Fails if a handle is still open (leaked
    /// handles would leave dangling shadow copies until their TTL).
    pub fn finish(self) -> Result<Vec<ClientOp>> {
        if self.current.is_some() {
            return Err(Error::InvalidMode);
        }
        Ok(self.ops)
    }

    /// Finish the program, auto-closing any open handle.
    pub fn into_ops(mut self) -> Vec<ClientOp> {
        if self.current.take().is_some() {
            self.ops.push(ClientOp::Close);
        }
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_compiles_in_order() {
        let mut fs = FsScript::new();
        fs.mkdir("/d").unwrap();
        let h = fs.create("/d/f").unwrap();
        fs.write(h, 0, vec![1, 2, 3]).unwrap();
        fs.sync(h).unwrap();
        fs.close(h).unwrap();
        let g = fs.open("/d/f", false).unwrap();
        fs.read(g, 0, 3).unwrap();
        fs.close(g).unwrap();
        fs.unlink("/d/f").unwrap();
        let kinds: Vec<&str> = fs.finish().unwrap().iter().map(|o| o.kind()).collect();
        assert_eq!(
            kinds,
            vec!["mkdir", "create", "write", "sync", "close", "open", "read", "close", "unlink"]
        );
    }

    #[test]
    fn writes_on_readonly_handles_are_rejected() {
        let mut fs = FsScript::new();
        let h = fs.open("/f", false).unwrap();
        assert_eq!(fs.write(h, 0, vec![1]).unwrap_err(), Error::InvalidMode);
        assert_eq!(fs.sync(h).unwrap_err(), Error::InvalidMode);
        fs.read(h, 0, 1).unwrap();
        fs.close(h).unwrap();
    }

    #[test]
    fn closed_handles_are_dead() {
        let mut fs = FsScript::new();
        let h = fs.create("/f").unwrap();
        fs.close(h).unwrap();
        assert_eq!(fs.read(h, 0, 1).unwrap_err(), Error::NotFound);
        assert_eq!(fs.close(h).unwrap_err(), Error::NotFound);
    }

    #[test]
    fn interleaved_sessions_are_rejected() {
        let mut fs = FsScript::new();
        let _a = fs.create("/a").unwrap();
        // Cannot open /b while /a is open (one open file per client).
        assert_eq!(fs.open("/b", false).unwrap_err(), Error::InvalidMode);
        assert_eq!(fs.create("/b").unwrap_err(), Error::InvalidMode);
        assert_eq!(fs.unlink("/c").unwrap_err(), Error::InvalidMode);
    }

    #[test]
    fn stale_handle_while_another_is_open() {
        let mut fs = FsScript::new();
        let a = fs.create("/a").unwrap();
        fs.close(a).unwrap();
        let b = fs.create("/b").unwrap();
        // `a` is closed, `b` holds the slot.
        assert_eq!(fs.read(a, 0, 1).unwrap_err(), Error::NotFound);
        fs.write(b, 0, vec![9]).unwrap();
        fs.close(b).unwrap();
    }

    #[test]
    fn finish_rejects_leaked_handles() {
        let mut fs = FsScript::new();
        let _h = fs.create("/leak").unwrap();
        assert!(fs.finish().is_err());
        // into_ops auto-closes instead.
        let mut fs = FsScript::new();
        let _h = fs.create("/leak").unwrap();
        let ops = fs.into_ops();
        assert_eq!(ops.last().unwrap().kind(), "close");
    }

    #[test]
    fn runs_against_a_cluster() {
        use crate::cluster::{ClusterBuilder, ScriptedWorkload};
        let mut fs = FsScript::new();
        let h = fs.create("/api-demo").unwrap();
        fs.write(h, 0, b"handle layer".to_vec()).unwrap();
        fs.close(h).unwrap();
        let g = fs.open("/api-demo", false).unwrap();
        fs.read(g, 0, 12).unwrap();
        fs.close(g).unwrap();
        let mut cluster = ClusterBuilder::new()
            .providers(3)
            .seed(5)
            .costs(crate::costs::CostModel::fast_test())
            .build();
        let id = cluster.add_client(ScriptedWorkload::new(fs.finish().unwrap()));
        cluster.run_for(sorrento_sim::Dur::secs(60));
        let stats = cluster.client_stats(id).unwrap();
        assert_eq!(stats.failed_ops, 0, "{:?}", stats.last_error);
        assert_eq!(stats.last_read.as_deref(), Some(&b"handle layer"[..]));
    }
}
