//! Load-aware data placement (§3.7.1).
//!
//! The same weighted-random provider-selection algorithm serves all three
//! contexts — placing a new segment, making a new replica, and choosing a
//! migration destination. Per the paper:
//!
//! ```text
//! f_l = min{10, 1/l − 1}            (load factor)
//! f_s = min{10, log2(S/s)}          (storage factor)
//! w   = f_l^α · f_s^(1−α),  α ∈ [0,1]
//! ```
//!
//! plus the small-segment optimization of §3.7.2: the home host's weight
//! is boosted by `3N` so tiny segments (index segments especially) tend
//! to live on their home host, eliminating the extra location round-trip.

use rand::rngs::SmallRng;
use rand::Rng;

use sorrento_sim::NodeId;

use crate::membership::MembershipView;
use crate::types::PlacementPolicy;

/// Clamp ceiling for both factors.
const FACTOR_CAP: f64 = 10.0;

/// Segments at or below this size get the home-host weight boost
/// (covers index segments and attached small files).
pub const SMALL_SEGMENT: u64 = 64 * 1024;

/// The load factor `f_l = min{10, 1/l − 1}` for load `l ∈ [0, 1]`.
pub fn load_factor(load: f64) -> f64 {
    let l = load.clamp(0.0, 1.0);
    if l <= 0.0 {
        return FACTOR_CAP;
    }
    (1.0 / l - 1.0).clamp(0.0, FACTOR_CAP)
}

/// The storage factor `f_s = min{10, log2(S/s)}` for available space `S`
/// and segment size `s`. Zero when the segment does not fit.
pub fn storage_factor(available: u64, seg_size: u64) -> f64 {
    if available == 0 || seg_size > available {
        return 0.0;
    }
    let s = seg_size.max(1);
    ((available as f64 / s as f64).log2()).clamp(0.0, FACTOR_CAP)
}

/// Combined weight `f_l^α · f_s^(1−α)`.
pub fn weight(f_l: f64, f_s: f64, alpha: f64) -> f64 {
    let a = alpha.clamp(0.0, 1.0);
    f_l.powf(a) * f_s.powf(1.0 - a)
}

/// A candidate provider as seen by the selection algorithm.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// The provider.
    pub id: NodeId,
    /// Its reported CPU + I/O-wait load.
    pub load: f64,
    /// Its reported available space.
    pub available: u64,
}

/// Select a provider for a segment of `seg_size` bytes.
///
/// * `exclude` — providers that may not be chosen (current replica
///   holders, §3.7.2: replicas of a segment go on different providers).
/// * `home` — the segment's home host; boosted by `3N` for small
///   segments.
/// * `policy` + `alpha` — [`PlacementPolicy::Random`] ignores weights;
///   everything else uses the weighted-random draw.
pub fn select_provider(
    candidates: &[Candidate],
    seg_size: u64,
    alpha: f64,
    policy: PlacementPolicy,
    exclude: &[NodeId],
    home: Option<NodeId>,
    rng: &mut SmallRng,
) -> Option<NodeId> {
    let eligible: Vec<&Candidate> = candidates
        .iter()
        .filter(|c| !exclude.contains(&c.id))
        .collect();
    if eligible.is_empty() {
        return None;
    }
    if matches!(policy, PlacementPolicy::Random) {
        return Some(eligible[rng.gen_range(0..eligible.len())].id);
    }
    let n = candidates.len() as f64;
    let weights: Vec<f64> = eligible
        .iter()
        .map(|c| {
            let w = weight(
                load_factor(c.load),
                storage_factor(c.available, seg_size),
                alpha,
            );
            if seg_size <= SMALL_SEGMENT && Some(c.id) == home {
                w * 3.0 * n
            } else {
                w
            }
        })
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // Everyone is saturated or full: fall back to any provider with
        // room, else give up.
        let with_room: Vec<&&Candidate> = eligible
            .iter()
            .filter(|c| c.available >= seg_size)
            .collect();
        if with_room.is_empty() {
            return None;
        }
        return Some(with_room[rng.gen_range(0..with_room.len())].id);
    }
    let mut draw = rng.gen_range(0.0..total);
    for (i, c) in eligible.iter().enumerate() {
        if draw < weights[i] {
            return Some(c.id);
        }
        draw -= weights[i];
    }
    // Floating-point edge: return the last positive-weight candidate.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .map(|i| eligible[i].id)
}

/// Build candidates from a membership view.
pub fn candidates_from_view(view: &MembershipView) -> Vec<Candidate> {
    view.entries()
        .map(|(id, info)| Candidate {
            id,
            load: info.heartbeat.load,
            available: info.heartbeat.available,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn load_factor_shape() {
        assert_eq!(load_factor(0.0), 10.0); // idle: capped at 10
        assert!((load_factor(0.5) - 1.0).abs() < 1e-12);
        assert!((load_factor(1.0) - 0.0).abs() < 1e-12);
        assert_eq!(load_factor(0.05), 10.0); // 19 clamps to 10
        assert_eq!(load_factor(-3.0), 10.0); // clamped input
        assert_eq!(load_factor(7.0), 0.0);
    }

    #[test]
    fn storage_factor_shape() {
        assert!((storage_factor(1024, 1024) - 0.0).abs() < 1e-12);
        assert!((storage_factor(4096, 1024) - 2.0).abs() < 1e-12);
        assert_eq!(storage_factor(1 << 40, 1), 10.0); // capped
        assert_eq!(storage_factor(100, 200), 0.0); // does not fit
        assert_eq!(storage_factor(0, 1), 0.0);
    }

    #[test]
    fn weight_alpha_extremes() {
        // α = 1: only load matters; α = 0: only storage.
        assert!((weight(4.0, 9.0, 1.0) - 4.0).abs() < 1e-12);
        assert!((weight(4.0, 9.0, 0.0) - 9.0).abs() < 1e-12);
        assert!((weight(4.0, 9.0, 0.5) - 6.0).abs() < 1e-12);
    }

    fn cands(specs: &[(usize, f64, u64)]) -> Vec<Candidate> {
        specs
            .iter()
            .map(|&(i, load, available)| Candidate {
                id: node(i),
                load,
                available,
            })
            .collect()
    }

    #[test]
    fn exclusion_is_respected() {
        let c = cands(&[(1, 0.1, 1 << 30), (2, 0.1, 1 << 30)]);
        let mut r = rng();
        for _ in 0..50 {
            let pick = select_provider(
                &c,
                1024,
                0.5,
                PlacementPolicy::LoadAware,
                &[node(1)],
                None,
                &mut r,
            );
            assert_eq!(pick, Some(node(2)));
        }
    }

    #[test]
    fn all_excluded_returns_none() {
        let c = cands(&[(1, 0.1, 1 << 30)]);
        let mut r = rng();
        assert_eq!(
            select_provider(
                &c,
                1024,
                0.5,
                PlacementPolicy::LoadAware,
                &[node(1)],
                None,
                &mut r
            ),
            None
        );
    }

    #[test]
    fn full_providers_are_never_chosen_when_alternatives_exist() {
        let c = cands(&[(1, 0.0, 100), (2, 0.0, 1 << 30)]);
        let mut r = rng();
        for _ in 0..100 {
            let pick = select_provider(
                &c,
                1 << 20,
                0.0,
                PlacementPolicy::LoadAware,
                &[],
                None,
                &mut r,
            )
            .unwrap();
            assert_eq!(pick, node(2));
        }
    }

    #[test]
    fn alpha_zero_prefers_space() {
        // α = 0 → storage-only. f_s = 3 vs 6 (both under the cap of 10).
        let c = cands(&[(1, 0.5, 1 << 13), (2, 0.5, 1 << 16)]);
        let mut r = rng();
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            match select_provider(&c, 1 << 10, 0.0, PlacementPolicy::LoadAware, &[], None, &mut r)
            {
                Some(p) if p == node(1) => counts[0] += 1,
                Some(p) if p == node(2) => counts[1] += 1,
                other => panic!("{other:?}"),
            }
        }
        // Weights 10 vs 20 → about 1:2.
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(ratio > 1.6 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn alpha_one_prefers_idle() {
        let c = cands(&[(1, 0.8, 1 << 30), (2, 0.2, 1 << 30)]);
        let mut r = rng();
        let mut idle = 0;
        for _ in 0..2000 {
            if select_provider(&c, 1 << 10, 1.0, PlacementPolicy::LoadAware, &[], None, &mut r)
                == Some(node(2))
            {
                idle += 1;
            }
        }
        // f_l: 0.25 vs 4.0 → node 2 picked ~94% of the time.
        assert!(idle > 1700, "idle picked {idle}/2000");
    }

    #[test]
    fn home_boost_dominates_for_small_segments() {
        let c = cands(&[(1, 0.5, 1 << 30), (2, 0.5, 1 << 30), (3, 0.5, 1 << 30)]);
        let mut r = rng();
        let mut home_hits = 0;
        for _ in 0..1000 {
            if select_provider(
                &c,
                1024, // small
                0.5,
                PlacementPolicy::LoadAware,
                &[],
                Some(node(3)),
                &mut r,
            ) == Some(node(3))
            {
                home_hits += 1;
            }
        }
        // Boost 3N = 9 → home weight 9w vs w+w: ~82%.
        assert!(home_hits > 700, "home picked {home_hits}/1000");
        // No boost for large segments.
        let mut large_home = 0;
        for _ in 0..1000 {
            if select_provider(
                &c,
                10 << 20,
                0.5,
                PlacementPolicy::LoadAware,
                &[],
                Some(node(3)),
                &mut r,
            ) == Some(node(3))
            {
                large_home += 1;
            }
        }
        assert!(large_home < 450, "large-seg home picked {large_home}/1000");
    }

    #[test]
    fn random_policy_ignores_load() {
        let c = cands(&[(1, 1.0, 100), (2, 0.0, 1 << 30)]);
        let mut r = rng();
        let mut saturated = 0;
        for _ in 0..2000 {
            if select_provider(&c, 10, 0.5, PlacementPolicy::Random, &[], None, &mut r)
                == Some(node(1))
            {
                saturated += 1;
            }
        }
        assert!(saturated > 800 && saturated < 1200, "{saturated}");
    }

    #[test]
    fn saturated_cluster_falls_back_to_any_fit() {
        // Both fully loaded (f_l = 0) → weights 0, but provider 2 has room.
        let c = cands(&[(1, 1.0, 10), (2, 1.0, 1 << 30)]);
        let mut r = rng();
        let pick = select_provider(&c, 1 << 20, 0.5, PlacementPolicy::LoadAware, &[], None, &mut r);
        assert_eq!(pick, Some(node(2)));
        // Nobody fits → None.
        let none = select_provider(&c, 1 << 40, 0.5, PlacementPolicy::LoadAware, &[], None, &mut r);
        assert_eq!(none, None);
    }
}
