//! JSON codecs for the persisted metadata types.
//!
//! Namespace entries and index segments are stored as segment bytes /
//! kvdb values; both use a hand-written JSON mapping over
//! [`sorrento_json::Json`] (the workspace is hermetic — no serde).
//! 128-bit ids are hex strings so they round-trip exactly; attached
//! small-file bytes are hex too (≤ [`crate::layout::ATTACH_MAX`], so
//! the blow-up is bounded).

use sorrento_json::Json;

use crate::layout::{IndexSegment, SegEntry};
use crate::proto::FileEntry;
use crate::types::{FileId, FileOptions, Organization, PlacementPolicy, SegId, Version};

fn u128_to_json(x: u128) -> Json {
    Json::Str(format!("{x:x}"))
}

fn u128_from_json(j: &Json) -> Option<u128> {
    u128::from_str_radix(j.as_str()?, 16).ok()
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(s.get(i * 2..i * 2 + 2)?, 16).ok())
        .collect()
}

fn organization_to_json(o: &Organization) -> Json {
    match o {
        Organization::Linear => Json::obj().with("mode", "linear"),
        Organization::Striped { stripes, max_size } => Json::obj()
            .with("mode", "striped")
            .with("stripes", *stripes)
            .with("max_size", *max_size),
        Organization::Hybrid { group_stripes } => Json::obj()
            .with("mode", "hybrid")
            .with("group_stripes", *group_stripes),
    }
}

fn organization_from_json(j: &Json) -> Option<Organization> {
    match j.get("mode")?.as_str()? {
        "linear" => Some(Organization::Linear),
        "striped" => Some(Organization::Striped {
            stripes: j.get("stripes")?.as_u64()? as u32,
            max_size: j.get("max_size")?.as_u64()?,
        }),
        "hybrid" => Some(Organization::Hybrid {
            group_stripes: j.get("group_stripes")?.as_u64()? as u32,
        }),
        _ => None,
    }
}

fn placement_to_json(p: &PlacementPolicy) -> Json {
    match p {
        PlacementPolicy::Random => Json::obj().with("policy", "random"),
        PlacementPolicy::LoadAware => Json::obj().with("policy", "load_aware"),
        PlacementPolicy::LocalityDriven { threshold } => Json::obj()
            .with("policy", "locality_driven")
            .with("threshold", *threshold),
    }
}

fn placement_from_json(j: &Json) -> Option<PlacementPolicy> {
    match j.get("policy")?.as_str()? {
        "random" => Some(PlacementPolicy::Random),
        "load_aware" => Some(PlacementPolicy::LoadAware),
        "locality_driven" => Some(PlacementPolicy::LocalityDriven {
            threshold: j.get("threshold")?.as_f64()?,
        }),
        _ => None,
    }
}

/// [`FileOptions`] → JSON.
pub fn options_to_json(o: &FileOptions) -> Json {
    Json::obj()
        .with("replication", o.replication)
        .with("alpha", o.alpha)
        .with("organization", organization_to_json(&o.organization))
        .with("placement", placement_to_json(&o.placement))
        .with("versioning_off", o.versioning_off)
        .with("eager_commit", o.eager_commit)
}

/// JSON → [`FileOptions`].
pub fn options_from_json(j: &Json) -> Option<FileOptions> {
    Some(FileOptions {
        replication: j.get("replication")?.as_u64()? as u32,
        alpha: j.get("alpha")?.as_f64()?,
        organization: organization_from_json(j.get("organization")?)?,
        placement: placement_from_json(j.get("placement")?)?,
        versioning_off: j.get("versioning_off")?.as_bool()?,
        eager_commit: j.get("eager_commit")?.as_bool()?,
    })
}

/// [`FileEntry`] → JSON (namespace kvdb value format).
pub fn entry_to_json(e: &FileEntry) -> Json {
    Json::obj()
        .with("file", u128_to_json(e.file.0))
        .with("version", e.version.0)
        .with("size", e.size)
        .with("is_dir", e.is_dir)
        .with("created_ns", e.created_ns)
        .with("modified_ns", e.modified_ns)
        .with("options", options_to_json(&e.options))
}

/// JSON → [`FileEntry`].
pub fn entry_from_json(j: &Json) -> Option<FileEntry> {
    Some(FileEntry {
        file: FileId(u128_from_json(j.get("file")?)?),
        version: Version(j.get("version")?.as_u64()?),
        size: j.get("size")?.as_u64()?,
        is_dir: j.get("is_dir")?.as_bool()?,
        created_ns: j.get("created_ns")?.as_u64()?,
        modified_ns: j.get("modified_ns")?.as_u64()?,
        options: options_from_json(j.get("options")?)?,
    })
}

fn seg_entry_to_json(s: &SegEntry) -> Json {
    Json::obj()
        .with("seg", u128_to_json(s.seg.0))
        .with("version", s.version.0)
        .with("len", s.len)
}

fn seg_entry_from_json(j: &Json) -> Option<SegEntry> {
    Some(SegEntry {
        seg: SegId(u128_from_json(j.get("seg")?)?),
        version: Version(j.get("version")?.as_u64()?),
        len: j.get("len")?.as_u64()?,
    })
}

/// [`IndexSegment`] → JSON (index-segment byte format).
pub fn index_to_json(ix: &IndexSegment) -> Json {
    let mut segs = Json::arr();
    for s in &ix.segments {
        segs.push(seg_entry_to_json(s));
    }
    let attached = match &ix.attached {
        Some(bytes) => Json::Str(hex_encode(bytes)),
        None => Json::Null,
    };
    Json::obj()
        .with("file", u128_to_json(ix.file.0))
        .with("options", options_to_json(&ix.options))
        .with("size", ix.size)
        .with("segments", segs)
        .with("attached", attached)
        .with("is_attached", ix.is_attached)
}

/// JSON → [`IndexSegment`].
pub fn index_from_json(j: &Json) -> Option<IndexSegment> {
    let segments = j
        .get("segments")?
        .as_arr()?
        .iter()
        .map(seg_entry_from_json)
        .collect::<Option<Vec<_>>>()?;
    let attached = match j.get("attached")? {
        Json::Null => None,
        Json::Str(s) => Some(hex_decode(s)?),
        _ => return None,
    };
    Some(IndexSegment {
        file: FileId(u128_from_json(j.get("file")?)?),
        options: options_from_json(j.get("options")?)?,
        size: j.get("size")?.as_u64()?,
        segments,
        attached,
        is_attached: j.get("is_attached")?.as_bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exotic_options() -> FileOptions {
        FileOptions {
            replication: 3,
            alpha: 0.75,
            organization: Organization::Striped { stripes: 4, max_size: 64 << 20 },
            placement: PlacementPolicy::LocalityDriven { threshold: 0.8 },
            versioning_off: false,
            eager_commit: true,
        }
    }

    #[test]
    fn options_round_trip() {
        for o in [
            FileOptions::default(),
            exotic_options(),
            FileOptions {
                organization: Organization::Hybrid { group_stripes: 2 },
                placement: PlacementPolicy::Random,
                versioning_off: true,
                ..FileOptions::default()
            },
        ] {
            let j = Json::parse(&options_to_json(&o).encode()).unwrap();
            assert_eq!(options_from_json(&j), Some(o));
        }
    }

    #[test]
    fn entry_round_trip() {
        let e = FileEntry {
            file: FileId(0xDEAD_BEEF_0000_0001_u128 << 64 | 7),
            version: Version(0x1234_5678_9ABC_DEF0),
            size: 1 << 40,
            is_dir: false,
            created_ns: 17,
            modified_ns: 23,
            options: exotic_options(),
        };
        let j = Json::parse(&entry_to_json(&e).encode()).unwrap();
        assert_eq!(entry_from_json(&j), Some(e));
    }

    #[test]
    fn index_round_trip_with_attachment() {
        let mut ix = IndexSegment::new(FileId(42), FileOptions::default());
        ix.size = 5;
        ix.attached = Some(vec![0, 1, 2, 254, 255]);
        ix.is_attached = true;
        let j = Json::parse(&index_to_json(&ix).encode()).unwrap();
        assert_eq!(index_from_json(&j), Some(ix));
    }

    #[test]
    fn index_round_trip_with_segments() {
        let mut ix = IndexSegment::new(FileId(9), exotic_options());
        ix.size = 3 << 20;
        ix.is_attached = false;
        ix.attached = None;
        ix.segments = vec![
            SegEntry { seg: SegId::derive(1, 1, 99), version: Version(1 << 16), len: 1 << 20 },
            SegEntry { seg: SegId::derive(2, 5, 7), version: Version(2 << 16 | 3), len: 2 << 20 },
        ];
        let j = Json::parse(&index_to_json(&ix).encode()).unwrap();
        assert_eq!(index_from_json(&j), Some(ix));
    }

    #[test]
    fn hex_helpers() {
        assert_eq!(hex_encode(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(hex_decode("00ff1a"), Some(vec![0x00, 0xff, 0x1a]));
        assert_eq!(hex_decode("0g"), None);
        assert_eq!(hex_decode("abc"), None);
    }
}
