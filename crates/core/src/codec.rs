//! JSON codecs for the persisted metadata types.
//!
//! Namespace entries and index segments are stored as segment bytes /
//! kvdb values; both use a hand-written JSON mapping over
//! [`sorrento_json::Json`] (the workspace is hermetic — no serde).
//! 128-bit ids are hex strings so they round-trip exactly; attached
//! small-file bytes are hex too (≤ [`crate::layout::ATTACH_MAX`], so
//! the blow-up is bounded).

use std::fmt;

use sorrento_json::Json;

use crate::layout::{IndexSegment, SegEntry};
use crate::proto::FileEntry;
use crate::types::{EcParams, FileId, FileOptions, Organization, PlacementPolicy, SegId, Version};

/// Why a persisted metadata value failed to parse. Unlike the earlier
/// `Option`-returning parsers, the error names the offending field, so
/// a corrupt namespace entry or index segment is diagnosable from the
/// error alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but has the wrong type or an unparsable
    /// value (bad hex, unknown enum tag, odd-length attachment, ...).
    InvalidField(&'static str),
    /// The value bytes are not UTF-8 text.
    NotUtf8,
    /// The text is not well-formed JSON.
    BadJson,
}

impl CodecError {
    /// A static label for metrics/telemetry (never allocates).
    pub fn label(self) -> &'static str {
        match self {
            CodecError::MissingField(f) | CodecError::InvalidField(f) => f,
            CodecError::NotUtf8 => "utf8",
            CodecError::BadJson => "json",
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::MissingField(name) => write!(f, "missing field `{name}`"),
            CodecError::InvalidField(name) => write!(f, "invalid field `{name}`"),
            CodecError::NotUtf8 => f.write_str("value is not UTF-8"),
            CodecError::BadJson => f.write_str("value is not valid JSON"),
        }
    }
}

impl std::error::Error for CodecError {}

fn field<'a>(j: &'a Json, name: &'static str) -> Result<&'a Json, CodecError> {
    j.get(name).ok_or(CodecError::MissingField(name))
}

fn u64_field(j: &Json, name: &'static str) -> Result<u64, CodecError> {
    field(j, name)?
        .as_u64()
        .ok_or(CodecError::InvalidField(name))
}

fn f64_field(j: &Json, name: &'static str) -> Result<f64, CodecError> {
    field(j, name)?
        .as_f64()
        .ok_or(CodecError::InvalidField(name))
}

fn bool_field(j: &Json, name: &'static str) -> Result<bool, CodecError> {
    field(j, name)?
        .as_bool()
        .ok_or(CodecError::InvalidField(name))
}

fn str_field<'a>(j: &'a Json, name: &'static str) -> Result<&'a str, CodecError> {
    field(j, name)?
        .as_str()
        .ok_or(CodecError::InvalidField(name))
}

fn u128_to_json(x: u128) -> Json {
    Json::Str(format!("{x:x}"))
}

fn u128_field(j: &Json, name: &'static str) -> Result<u128, CodecError> {
    u128::from_str_radix(str_field(j, name)?, 16).map_err(|_| CodecError::InvalidField(name))
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(s.get(i * 2..i * 2 + 2)?, 16).ok())
        .collect()
}

fn organization_to_json(o: &Organization) -> Json {
    match o {
        Organization::Linear => Json::obj().with("mode", "linear"),
        Organization::Striped { stripes, max_size } => Json::obj()
            .with("mode", "striped")
            .with("stripes", *stripes)
            .with("max_size", *max_size),
        Organization::Hybrid { group_stripes } => Json::obj()
            .with("mode", "hybrid")
            .with("group_stripes", *group_stripes),
    }
}

fn organization_from_json(j: &Json) -> Result<Organization, CodecError> {
    match str_field(j, "mode")? {
        "linear" => Ok(Organization::Linear),
        "striped" => Ok(Organization::Striped {
            stripes: u64_field(j, "stripes")? as u32,
            max_size: u64_field(j, "max_size")?,
        }),
        "hybrid" => Ok(Organization::Hybrid {
            group_stripes: u64_field(j, "group_stripes")? as u32,
        }),
        _ => Err(CodecError::InvalidField("mode")),
    }
}

fn placement_to_json(p: &PlacementPolicy) -> Json {
    match p {
        PlacementPolicy::Random => Json::obj().with("policy", "random"),
        PlacementPolicy::LoadAware => Json::obj().with("policy", "load_aware"),
        PlacementPolicy::LocalityDriven { threshold } => Json::obj()
            .with("policy", "locality_driven")
            .with("threshold", *threshold),
    }
}

fn placement_from_json(j: &Json) -> Result<PlacementPolicy, CodecError> {
    match str_field(j, "policy")? {
        "random" => Ok(PlacementPolicy::Random),
        "load_aware" => Ok(PlacementPolicy::LoadAware),
        "locality_driven" => Ok(PlacementPolicy::LocalityDriven {
            threshold: f64_field(j, "threshold")?,
        }),
        _ => Err(CodecError::InvalidField("policy")),
    }
}

/// [`FileOptions`] → JSON. The `ec` key is only emitted for
/// erasure-coded files, so metadata written by older builds (no `ec`
/// field at all) and replicated files decode identically.
pub fn options_to_json(o: &FileOptions) -> Json {
    let j = Json::obj()
        .with("replication", o.replication)
        .with("alpha", o.alpha)
        .with("organization", organization_to_json(&o.organization))
        .with("placement", placement_to_json(&o.placement))
        .with("versioning_off", o.versioning_off)
        .with("eager_commit", o.eager_commit);
    match o.ec {
        Some(p) => j.with("ec", Json::obj().with("k", p.k as u64).with("m", p.m as u64)),
        None => j,
    }
}

/// JSON → [`FileOptions`].
pub fn options_from_json(j: &Json) -> Result<FileOptions, CodecError> {
    let ec = match j.get("ec") {
        None | Some(Json::Null) => None,
        Some(e) => Some(EcParams {
            k: u64_field(e, "k")? as u8,
            m: u64_field(e, "m")? as u8,
        }),
    };
    Ok(FileOptions {
        replication: u64_field(j, "replication")? as u32,
        alpha: f64_field(j, "alpha")?,
        organization: organization_from_json(field(j, "organization")?)?,
        placement: placement_from_json(field(j, "placement")?)?,
        versioning_off: bool_field(j, "versioning_off")?,
        eager_commit: bool_field(j, "eager_commit")?,
        ec,
    })
}

/// [`FileEntry`] → JSON (namespace kvdb value format).
pub fn entry_to_json(e: &FileEntry) -> Json {
    Json::obj()
        .with("file", u128_to_json(e.file.0))
        .with("version", e.version.0)
        .with("size", e.size)
        .with("is_dir", e.is_dir)
        .with("created_ns", e.created_ns)
        .with("modified_ns", e.modified_ns)
        .with("options", options_to_json(&e.options))
}

/// JSON → [`FileEntry`].
pub fn entry_from_json(j: &Json) -> Result<FileEntry, CodecError> {
    Ok(FileEntry {
        file: FileId(u128_field(j, "file")?),
        version: Version(u64_field(j, "version")?),
        size: u64_field(j, "size")?,
        is_dir: bool_field(j, "is_dir")?,
        created_ns: u64_field(j, "created_ns")?,
        modified_ns: u64_field(j, "modified_ns")?,
        options: options_from_json(field(j, "options")?)?,
    })
}

fn seg_entry_to_json(s: &SegEntry) -> Json {
    Json::obj()
        .with("seg", u128_to_json(s.seg.0))
        .with("version", s.version.0)
        .with("len", s.len)
}

fn seg_entry_from_json(j: &Json) -> Result<SegEntry, CodecError> {
    Ok(SegEntry {
        seg: SegId(u128_field(j, "seg")?),
        version: Version(u64_field(j, "version")?),
        len: u64_field(j, "len")?,
    })
}

/// [`IndexSegment`] → JSON (index-segment byte format). `parity` is
/// only emitted when non-empty (EC files), keeping replicated files'
/// index bytes identical to older builds.
pub fn index_to_json(ix: &IndexSegment) -> Json {
    let mut segs = Json::arr();
    for s in &ix.segments {
        segs.push(seg_entry_to_json(s));
    }
    let attached = match &ix.attached {
        Some(bytes) => Json::Str(hex_encode(bytes)),
        None => Json::Null,
    };
    let j = Json::obj()
        .with("file", u128_to_json(ix.file.0))
        .with("options", options_to_json(&ix.options))
        .with("size", ix.size)
        .with("segments", segs)
        .with("attached", attached)
        .with("is_attached", ix.is_attached);
    if ix.parity.is_empty() {
        j
    } else {
        let mut par = Json::arr();
        for s in &ix.parity {
            par.push(seg_entry_to_json(s));
        }
        j.with("parity", par)
    }
}

/// JSON → [`IndexSegment`].
pub fn index_from_json(j: &Json) -> Result<IndexSegment, CodecError> {
    let segments = field(j, "segments")?
        .as_arr()
        .ok_or(CodecError::InvalidField("segments"))?
        .iter()
        .map(seg_entry_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let parity = match j.get("parity") {
        None | Some(Json::Null) => Vec::new(),
        Some(p) => p
            .as_arr()
            .ok_or(CodecError::InvalidField("parity"))?
            .iter()
            .map(seg_entry_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let attached = match field(j, "attached")? {
        Json::Null => None,
        Json::Str(s) => Some(hex_decode(s).ok_or(CodecError::InvalidField("attached"))?),
        _ => return Err(CodecError::InvalidField("attached")),
    };
    Ok(IndexSegment {
        file: FileId(u128_field(j, "file")?),
        options: options_from_json(field(j, "options")?)?,
        size: u64_field(j, "size")?,
        segments,
        parity,
        attached,
        is_attached: bool_field(j, "is_attached")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exotic_options() -> FileOptions {
        FileOptions {
            replication: 3,
            alpha: 0.75,
            organization: Organization::Striped { stripes: 4, max_size: 64 << 20 },
            placement: PlacementPolicy::LocalityDriven { threshold: 0.8 },
            versioning_off: false,
            eager_commit: true,
            ec: None,
        }
    }

    #[test]
    fn options_round_trip() {
        for o in [
            FileOptions::default(),
            exotic_options(),
            FileOptions {
                organization: Organization::Hybrid { group_stripes: 2 },
                placement: PlacementPolicy::Random,
                versioning_off: true,
                ..FileOptions::default()
            },
            FileOptions::erasure_coded(4, 2, 16 << 20),
        ] {
            let j = Json::parse(&options_to_json(&o).encode()).unwrap();
            assert_eq!(options_from_json(&j), Ok(o));
        }
    }

    #[test]
    fn entry_round_trip() {
        let e = FileEntry {
            file: FileId(0xDEAD_BEEF_0000_0001_u128 << 64 | 7),
            version: Version(0x1234_5678_9ABC_DEF0),
            size: 1 << 40,
            is_dir: false,
            created_ns: 17,
            modified_ns: 23,
            options: exotic_options(),
        };
        let j = Json::parse(&entry_to_json(&e).encode()).unwrap();
        assert_eq!(entry_from_json(&j), Ok(e));
    }

    #[test]
    fn index_round_trip_with_attachment() {
        let mut ix = IndexSegment::new(FileId(42), FileOptions::default());
        ix.size = 5;
        ix.attached = Some(vec![0, 1, 2, 254, 255]);
        ix.is_attached = true;
        let j = Json::parse(&index_to_json(&ix).encode()).unwrap();
        assert_eq!(index_from_json(&j), Ok(ix));
    }

    #[test]
    fn index_round_trip_with_segments() {
        let mut ix = IndexSegment::new(FileId(9), exotic_options());
        ix.size = 3 << 20;
        ix.is_attached = false;
        ix.attached = None;
        ix.segments = vec![
            SegEntry { seg: SegId::derive(1, 1, 99), version: Version(1 << 16), len: 1 << 20 },
            SegEntry { seg: SegId::derive(2, 5, 7), version: Version(2 << 16 | 3), len: 2 << 20 },
        ];
        let j = Json::parse(&index_to_json(&ix).encode()).unwrap();
        assert_eq!(index_from_json(&j), Ok(ix));
    }

    #[test]
    fn index_round_trip_with_parity() {
        let mut ix = IndexSegment::new(FileId(11), FileOptions::erasure_coded(2, 2, 4 << 20));
        ix.size = 1 << 20;
        ix.is_attached = false;
        ix.attached = None;
        ix.segments = vec![
            SegEntry { seg: SegId::derive(1, 1, 5), version: Version(1 << 16), len: 1 << 19 },
            SegEntry { seg: SegId::derive(1, 2, 5), version: Version(1 << 16), len: 1 << 19 },
        ];
        ix.parity = vec![
            SegEntry { seg: SegId::derive(1, 3, 5), version: Version(1 << 16), len: 1 << 19 },
            SegEntry { seg: SegId::derive(1, 4, 5), version: Version(1 << 16), len: 1 << 19 },
        ];
        let j = Json::parse(&index_to_json(&ix).encode()).unwrap();
        assert_eq!(index_from_json(&j), Ok(ix));

        // Old metadata without the parity/ec fields still parses.
        let mut ix = IndexSegment::new(FileId(12), FileOptions::default());
        ix.size = 7;
        let mut j = index_to_json(&ix);
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "parity");
        }
        assert_eq!(index_from_json(&j), Ok(ix));
    }

    #[test]
    fn hex_helpers() {
        assert_eq!(hex_encode(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(hex_decode("00ff1a"), Some(vec![0x00, 0xff, 0x1a]));
        assert_eq!(hex_decode("0g"), None);
        assert_eq!(hex_decode("abc"), None);
    }

    #[test]
    fn errors_name_the_offending_field() {
        // Missing field.
        let mut j = Json::parse(&options_to_json(&FileOptions::default()).encode()).unwrap();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "alpha");
        }
        assert_eq!(options_from_json(&j), Err(CodecError::MissingField("alpha")));

        // Wrong type.
        let j = Json::parse(&options_to_json(&FileOptions::default()).encode())
            .unwrap()
            .with("replication", "three");
        assert_eq!(options_from_json(&j), Err(CodecError::InvalidField("replication")));

        // Unknown enum tag, nested under `organization`.
        let e = FileEntry {
            file: FileId(1),
            version: Version(1),
            size: 0,
            is_dir: false,
            created_ns: 0,
            modified_ns: 0,
            options: FileOptions::default(),
        };
        let j = entry_to_json(&e)
            .with("options", options_to_json(&FileOptions::default()).with("organization", Json::obj().with("mode", "sideways")));
        assert_eq!(entry_from_json(&j), Err(CodecError::InvalidField("mode")));

        // Corrupt hex attachment.
        let mut ix = IndexSegment::new(FileId(42), FileOptions::default());
        ix.attached = Some(vec![1, 2, 3]);
        ix.is_attached = true;
        let j = index_to_json(&ix).with("attached", "abc");
        assert_eq!(index_from_json(&j), Err(CodecError::InvalidField("attached")));
    }
}
