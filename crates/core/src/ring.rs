//! Consistent hashing (§3.4.1): maps every SegID to its *home host*, the
//! provider responsible for tracking the segment's owners.
//!
//! Unlike Chord, "a Sorrento client has the complete view of all the
//! storage providers and can directly determine the home host of a
//! certain SegID" — so this is a plain hash ring rebuilt locally from the
//! membership view, with virtual nodes for balance. All nodes with the
//! same live set compute the same ring; transient disagreement is
//! absorbed by the backup multicast query (§3.4.2).

use sorrento_sim::NodeId;

use crate::types::SegId;

/// Virtual nodes per provider: enough for good balance at LAN scales
/// without making ring rebuilds costly.
pub const VNODES: u32 = 64;

/// A consistent-hash ring over the live providers.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// Sorted `(point, provider)` pairs.
    points: Vec<(u64, NodeId)>,
}

/// 64-bit mix (splitmix64 finalizer): cheap, well-distributed, and
/// deterministic across nodes.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

pub(crate) fn hash_segid(seg: SegId) -> u64 {
    mix(seg.0 as u64 ^ mix((seg.0 >> 64) as u64))
}

fn hash_vnode(provider: NodeId, vnode: u32) -> u64 {
    mix(((provider.index() as u64) << 32) | vnode as u64)
}

impl HashRing {
    /// Build the ring for a set of live providers.
    pub fn build(providers: impl IntoIterator<Item = NodeId>) -> HashRing {
        HashRing::build_with_vnodes(providers, VNODES)
    }

    /// Build with an explicit virtual-node count (balance/ablation
    /// studies; the protocol always uses [`VNODES`]).
    pub fn build_with_vnodes(
        providers: impl IntoIterator<Item = NodeId>,
        vnodes: u32,
    ) -> HashRing {
        let mut points = Vec::new();
        for p in providers {
            for v in 0..vnodes {
                points.push((hash_vnode(p, v), p));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|(h, _)| *h);
        HashRing { points }
    }

    /// The home host for a SegID: the first virtual node at or after the
    /// segment's hash point (wrapping). `None` on an empty ring.
    pub fn home(&self, seg: SegId) -> Option<NodeId> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash_segid(seg);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, provider) = self.points[idx % self.points.len()];
        Some(provider)
    }

    /// Number of distinct providers on the ring.
    pub fn provider_count(&self) -> usize {
        let mut ps: Vec<NodeId> = self.points.iter().map(|&(_, p)| p).collect();
        ps.sort_unstable();
        ps.dedup();
        ps.len()
    }

    /// Whether the ring has no providers.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of hash points (virtual nodes) on the ring.
    pub(crate) fn point_count(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn segs(n: u64) -> Vec<SegId> {
        (0..n).map(|i| SegId::derive(3, i, i ^ 0xABCD)).collect()
    }

    #[test]
    fn empty_ring_has_no_home() {
        let ring = HashRing::build([]);
        assert!(ring.is_empty());
        assert_eq!(ring.home(SegId(1)), None);
    }

    #[test]
    fn single_provider_owns_everything() {
        let ring = HashRing::build([node(5)]);
        for s in segs(100) {
            assert_eq!(ring.home(s), Some(node(5)));
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = HashRing::build((0..8).map(node));
        let b = HashRing::build((0..8).map(node));
        for s in segs(200) {
            assert_eq!(a.home(s), b.home(s));
        }
    }

    #[test]
    fn order_of_providers_does_not_matter() {
        let a = HashRing::build((0..8).map(node));
        let b = HashRing::build((0..8).rev().map(node));
        for s in segs(200) {
            assert_eq!(a.home(s), b.home(s));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let n = 10usize;
        let ring = HashRing::build((0..n).map(node));
        let mut counts = vec![0usize; n];
        let total = 10_000;
        for s in segs(total) {
            counts[ring.home(s).unwrap().index()] += 1;
        }
        let expect = total as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expect * 0.5 && (c as f64) < expect * 1.7,
                "provider {i} got {c} of {total}"
            );
        }
    }

    #[test]
    fn removal_only_moves_departed_providers_keys() {
        // Consistent hashing's defining property: removing one provider
        // relocates only the keys that homed on it.
        let ring_full = HashRing::build((0..10).map(node));
        let ring_less = HashRing::build((0..9).map(node)); // node 9 gone
        let mut moved = 0;
        let mut total = 0;
        for s in segs(5_000) {
            let before = ring_full.home(s).unwrap();
            let after = ring_less.home(s).unwrap();
            total += 1;
            if before != after {
                moved += 1;
                assert_eq!(before, node(9), "a surviving provider's key moved");
            }
        }
        // Roughly 1/10 of keys should move.
        assert!(moved > total / 20 && moved < total / 5, "moved {moved}");
    }

    #[test]
    fn addition_only_steals_keys_for_new_provider() {
        let before = HashRing::build((0..9).map(node));
        let after = HashRing::build((0..10).map(node));
        for s in segs(5_000) {
            let b = before.home(s).unwrap();
            let a = after.home(s).unwrap();
            if a != b {
                assert_eq!(a, node(9));
            }
        }
    }

    #[test]
    fn provider_count() {
        let ring = HashRing::build((0..7).map(node));
        assert_eq!(ring.provider_count(), 7);
    }
}
