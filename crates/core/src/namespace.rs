//! The namespace server (§3.1): one per volume, holding the hierarchical
//! directory tree and per-file entries (FileID, latest version,
//! timestamps) — but **not** segment locations, which would make it a
//! bottleneck under migration.
//!
//! The directory tree lives in [`sorrento_kvdb`] (the Berkeley DB
//! substitute), giving WAL + checkpoint durability: on a crash the node
//! drops its in-memory state and recovers from the backend image on
//! restart. Commit approval implements the §3.5 optimistic check — a
//! commit with a stale base version is refused — plus short write-lock
//! leases between commit-begin and commit-end so two cooperative writers
//! never interleave 2PC windows.

use std::collections::HashMap;

use sorrento_kvdb::{Db, DbConfig, MemBackend};
use sorrento_sim::{Ctx, DiskAccess, Node, NodeId, SimTime, TelemetryEvent};

use crate::transport::Transport;

use crate::costs::CostModel;
use crate::dedup::{ReplyCache, DEFAULT_REPLY_CACHE};
use crate::proto::{FileEntry, Msg, ReqId, Tick};
use crate::types::{Error, FileId, FileOptions, Version};

/// Key prefix for namespace entries.
const KEY_PREFIX: &str = "ns:";

fn key_of(path: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(KEY_PREFIX.len() + path.len());
    k.extend_from_slice(KEY_PREFIX.as_bytes());
    k.extend_from_slice(path.as_bytes());
    k
}

fn parent_of(path: &str) -> Option<&str> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&path[..i]),
        None => None,
    }
}

fn encode_entry(e: &FileEntry) -> Vec<u8> {
    crate::codec::entry_to_json(e).encode().into_bytes()
}

fn decode_entry(bytes: &[u8]) -> Result<FileEntry, crate::codec::CodecError> {
    let text = std::str::from_utf8(bytes).map_err(|_| crate::codec::CodecError::NotUtf8)?;
    let j = sorrento_json::Json::parse(text).map_err(|_| crate::codec::CodecError::BadJson)?;
    crate::codec::entry_from_json(&j)
}

/// An active commit lease.
#[derive(Debug, Clone, Copy)]
struct Lease {
    holder: NodeId,
    expires: SimTime,
}

/// The namespace server node.
pub struct NamespaceServer {
    costs: CostModel,
    /// `None` only transiently across a crash (state is parked in
    /// `parked_backend`).
    db: Option<Db<MemBackend>>,
    parked_backend: Option<MemBackend>,
    /// Commit locks: path → lease.
    leases: HashMap<String, Lease>,
    /// Operations served (observability).
    pub ops_served: u64,
    /// Number of WAL batches replayed at the last recovery.
    pub recovered_batches: usize,
    /// Replies to recent mutations, replayed verbatim when a resilient
    /// client re-sends a request whose reply was lost.
    replies: ReplyCache,
}

impl NamespaceServer {
    /// A fresh namespace server with the root directory pre-created.
    pub fn new(costs: CostModel) -> NamespaceServer {
        let mut db = Db::open(MemBackend::new(), DbConfig::default()).expect("mem backend");
        let root = FileEntry {
            file: FileId(0),
            version: Version::INITIAL,
            size: 0,
            is_dir: true,
            created_ns: 0,
            modified_ns: 0,
            options: FileOptions::default(),
        };
        db.put(key_of("/"), encode_entry(&root)).expect("mem io");
        NamespaceServer {
            costs,
            db: Some(db),
            parked_backend: None,
            leases: HashMap::new(),
            ops_served: 0,
            recovered_batches: 0,
            replies: ReplyCache::new(DEFAULT_REPLY_CACHE),
        }
    }

    fn db(&self) -> &Db<MemBackend> {
        self.db.as_ref().expect("namespace db open")
    }

    fn db_mut(&mut self) -> &mut Db<MemBackend> {
        self.db.as_mut().expect("namespace db open")
    }

    fn get(&self, path: &str) -> Option<FileEntry> {
        // A corrupt entry is treated as absent here; the caller maps it
        // to `Error::NotFound` like any other missing path.
        self.db().get(key_of(path)).and_then(|b| decode_entry(b).ok())
    }

    fn put(&mut self, path: &str, entry: &FileEntry) {
        let bytes = encode_entry(entry);
        self.db_mut().put(key_of(path), bytes).expect("mem io");
    }

    /// Number of namespace entries (including the root).
    pub fn entry_count(&self) -> usize {
        self.db().len()
    }

    // ---- operations ----

    fn lookup(&self, path: &str) -> Result<FileEntry, Error> {
        self.get(path).ok_or(Error::NotFound)
    }

    fn create(
        &mut self,
        path: &str,
        file: FileId,
        options: FileOptions,
        now: SimTime,
    ) -> Result<FileEntry, Error> {
        if self.get(path).is_some() {
            return Err(Error::AlreadyExists);
        }
        let parent = parent_of(path).ok_or(Error::NotFound)?;
        let pentry = self.get(parent).ok_or(Error::NotFound)?;
        if !pentry.is_dir {
            return Err(Error::NotADirectory);
        }
        let entry = FileEntry {
            file,
            version: Version::INITIAL,
            size: 0,
            is_dir: false,
            created_ns: now.nanos(),
            modified_ns: now.nanos(),
            options,
        };
        self.put(path, &entry);
        Ok(entry)
    }

    fn mkdir(&mut self, path: &str, now: SimTime) -> Result<(), Error> {
        if self.get(path).is_some() {
            return Err(Error::AlreadyExists);
        }
        let parent = parent_of(path).ok_or(Error::NotFound)?;
        let pentry = self.get(parent).ok_or(Error::NotFound)?;
        if !pentry.is_dir {
            return Err(Error::NotADirectory);
        }
        let entry = FileEntry {
            file: FileId(0),
            version: Version::INITIAL,
            size: 0,
            is_dir: true,
            created_ns: now.nanos(),
            modified_ns: now.nanos(),
            options: FileOptions::default(),
        };
        self.put(path, &entry);
        Ok(())
    }

    fn list(&self, path: &str) -> Result<Vec<String>, Error> {
        let entry = self.get(path).ok_or(Error::NotFound)?;
        if !entry.is_dir {
            return Err(Error::NotADirectory);
        }
        let prefix_str = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let prefix = key_of(&prefix_str);
        let mut names = Vec::new();
        for (k, _) in self.db().scan_prefix(&prefix) {
            let full = std::str::from_utf8(&k[KEY_PREFIX.len()..]).unwrap_or("");
            let rest = &full[prefix_str.len()..];
            if !rest.is_empty() && !rest.contains('/') {
                names.push(rest.to_string());
            }
        }
        Ok(names)
    }

    fn remove(&mut self, path: &str, client: NodeId) -> Result<FileEntry, Error> {
        let entry = self.get(path).ok_or(Error::NotFound)?;
        if entry.is_dir && !self.list(path)?.is_empty() {
            return Err(Error::NotEmpty);
        }
        if let Some(lease) = self.leases.get(path) {
            if lease.holder != client {
                return Err(Error::LeaseHeld);
            }
        }
        self.db_mut().delete(key_of(path)).expect("mem io");
        self.leases.remove(path);
        Ok(entry)
    }

    fn commit_begin(
        &mut self,
        path: &str,
        base: Version,
        client: NodeId,
        now: SimTime,
    ) -> Result<(), Error> {
        let entry = self.get(path).ok_or(Error::NotFound)?;
        // Optimistic concurrency check (§3.5): a base older than the
        // stored latest means another writer committed first.
        if entry.version != base {
            return Err(Error::VersionConflict);
        }
        match self.leases.get(path) {
            Some(l) if l.holder != client && l.expires > now => Err(Error::LeaseHeld),
            _ => {
                self.leases.insert(
                    path.to_string(),
                    Lease {
                        holder: client,
                        expires: now + self.costs.commit_lease,
                    },
                );
                Ok(())
            }
        }
    }

    fn commit_end(
        &mut self,
        path: &str,
        commit: bool,
        new_version: Version,
        new_size: u64,
        client: NodeId,
        now: SimTime,
    ) -> Result<(), Error> {
        match self.leases.get(path) {
            Some(l) if l.holder == client => {
                self.leases.remove(path);
            }
            Some(_) => return Err(Error::LeaseHeld),
            None if commit => return Err(Error::VersionConflict), // lease lost
            None => return Ok(()),
        }
        if commit {
            let mut entry = self.get(path).ok_or(Error::NotFound)?;
            entry.version = new_version;
            entry.size = new_size;
            entry.modified_ns = now.nanos();
            self.put(path, &entry);
        }
        Ok(())
    }
}

/// Runtime entry points: shared by the simulator (via the thin [`Node`]
/// impl below) and the real-process runtime.
impl NamespaceServer {
    /// Bring the server online: recover the metadata db, arm the lease
    /// sweep.
    pub fn handle_start(&mut self, ctx: &mut impl Transport) {
        // Recover from the parked backend after a crash.
        if let Some(backend) = self.parked_backend.take() {
            let db = Db::open(backend, DbConfig::default()).expect("recovery");
            self.recovered_batches = db.recovered_batches();
            self.db = Some(db);
            self.leases.clear();
        }
        ctx.set_timer(self.costs.commit_lease, Msg::Tick(Tick::LeaseSweep));
    }

    /// Crash handling: in-memory state dies; the kvdb backend ("disk")
    /// survives.
    pub fn handle_crash(&mut self) {
        // In-memory state dies; the kvdb backend ("disk") survives.
        if let Some(db) = self.db.take() {
            self.parked_backend = Some(db.into_backend());
        }
        self.leases.clear();
        self.replies.clear();
    }

    /// Process one delivered message or fired timer.
    pub fn handle_message(&mut self, from: NodeId, msg: Msg, ctx: &mut impl Transport) {
        let now = ctx.now();
        match msg {
            Msg::Tick(Tick::LeaseSweep) => {
                self.leases.retain(|_, l| l.expires > now);
                ctx.set_timer(self.costs.commit_lease, Msg::Tick(Tick::LeaseSweep));
                return;
            }
            Msg::Tick(_) | Msg::Heartbeat(_) => return,
            _ => {}
        }
        // Replayed mutation (same-request resend after a lost reply)?
        // Answer from the cache without executing twice: the first
        // execution may have succeeded, and re-running would turn that
        // success into a spurious AlreadyExists/VersionConflict.
        let dedup_req = dedup_key(&msg);
        if let Some(req) = dedup_req {
            if let Some(cached) = self.replies.get(from, req) {
                let reply = cached.clone();
                ctx.metrics().count("ns.dedup_replays", 1);
                ctx.record(TelemetryEvent::DedupHit {
                    span: crate::proto::span_of(&msg),
                    kind: crate::proto::dbg_kind(&msg),
                });
                let done = ctx.cpu(self.costs.ns_op_cpu);
                ctx.send_at(done, from, reply);
                return;
            }
        }
        self.ops_served += 1;
        let cpu_done = ctx.cpu(self.costs.ns_op_cpu);
        let reply = match msg {
            Msg::NsLookup { req, path } => Msg::NsLookupR {
                req,
                result: self.lookup(&path),
            },
            Msg::NsCreate {
                req,
                path,
                file,
                options,
            } => {
                let result = self.create(&path, file, options, now);
                Msg::NsCreateR { req, result }
            }
            Msg::NsMkdir { req, path } => Msg::NsMkdirR {
                req,
                result: self.mkdir(&path, now),
            },
            Msg::NsRemove { req, path } => Msg::NsRemoveR {
                req,
                result: self.remove(&path, from),
            },
            Msg::NsList { req, path } => Msg::NsListR {
                req,
                result: self.list(&path),
            },
            Msg::NsCommitBegin { req, span, path, base } => {
                let file = self.get(&path).map(|e| e.file.0).unwrap_or(0);
                let result = self.commit_begin(&path, base, from, now);
                // The §3.5 optimistic check, traced: a failed check is the
                // decisive hop in any version-conflict causal chain.
                ctx.record(TelemetryEvent::VersionCheck {
                    span,
                    file,
                    version: base.0,
                    ok: result.is_ok(),
                });
                Msg::NsCommitBeginR { req, result }
            }
            Msg::NsCommitEnd {
                req,
                span,
                path,
                commit,
                new_version,
                new_size,
            } => {
                let result = self.commit_end(&path, commit, new_version, new_size, from, now);
                if commit {
                    ctx.record(TelemetryEvent::VersionCheck {
                        span,
                        file: self.get(&path).map(|e| e.file.0).unwrap_or(0),
                        version: new_version.0,
                        ok: result.is_ok(),
                    });
                }
                Msg::NsCommitEndR { req, result }
            }
            _ => return, // not a namespace message
        };
        // Mutations pay a WAL append: sequential like Berkeley DB's log
        // (group commit keeps the platter sync off the per-op path),
        // which is what lets one namespace server sustain the ~1300
        // ops/s measured in §4.1.2. Reads are memory + CPU.
        let mutating = matches!(
            reply,
            Msg::NsCreateR { .. }
                | Msg::NsMkdirR { .. }
                | Msg::NsRemoveR { .. }
                | Msg::NsCommitEndR { .. }
        );
        let done = if mutating {
            let disk_done = ctx.disk_submit(256, DiskAccess::Sequential);
            cpu_done.max(disk_done)
        } else {
            cpu_done
        };
        if let Some(req) = dedup_req {
            self.replies.put(from, req, reply.clone());
        }
        ctx.send_at(done, from, reply);
    }
}

/// The request id of a namespace message that must not execute twice
/// (`None` for idempotent reads, which are cheaper to re-run than to
/// cache).
fn dedup_key(msg: &Msg) -> Option<ReqId> {
    match msg {
        Msg::NsCreate { req, .. }
        | Msg::NsMkdir { req, .. }
        | Msg::NsRemove { req, .. }
        | Msg::NsCommitBegin { req, .. }
        | Msg::NsCommitEnd { req, .. } => Some(*req),
        _ => None,
    }
}

impl Node<Msg> for NamespaceServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.handle_start(ctx)
    }

    fn on_crash(&mut self) {
        self.handle_crash()
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        self.handle_message(from, msg, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorrento_sim::Dur;

    fn ns() -> NamespaceServer {
        NamespaceServer::new(CostModel::fast_test())
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Dur::secs(s)
    }

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn opts() -> FileOptions {
        FileOptions::default()
    }

    #[test]
    fn create_lookup_remove() {
        let mut n = ns();
        let entry = n.create("/a", FileId(1), opts(), t(0)).unwrap();
        assert_eq!(entry.file, FileId(1));
        assert_eq!(entry.version, Version::INITIAL);
        assert_eq!(n.lookup("/a").unwrap().file, FileId(1));
        assert_eq!(n.create("/a", FileId(2), opts(), t(0)), Err(Error::AlreadyExists));
        assert_eq!(n.lookup("/missing"), Err(Error::NotFound));
        let removed = n.remove("/a", node(1)).unwrap();
        assert_eq!(removed.file, FileId(1));
        assert_eq!(n.lookup("/a"), Err(Error::NotFound));
    }

    #[test]
    fn nested_paths_require_parent_dirs() {
        let mut n = ns();
        assert_eq!(
            n.create("/d/x", FileId(1), opts(), t(0)),
            Err(Error::NotFound)
        );
        n.mkdir("/d", t(0)).unwrap();
        n.create("/d/x", FileId(1), opts(), t(0)).unwrap();
        // A file is not a directory.
        assert_eq!(
            n.create("/d/x/y", FileId(2), opts(), t(0)),
            Err(Error::NotADirectory)
        );
    }

    #[test]
    fn list_direct_children_only() {
        let mut n = ns();
        n.mkdir("/d", t(0)).unwrap();
        n.mkdir("/d/sub", t(0)).unwrap();
        n.create("/d/a", FileId(1), opts(), t(0)).unwrap();
        n.create("/d/sub/deep", FileId(2), opts(), t(0)).unwrap();
        n.create("/da", FileId(3), opts(), t(0)).unwrap(); // sibling prefix
        let mut names = n.list("/d").unwrap();
        names.sort();
        assert_eq!(names, vec!["a", "sub"]);
        let mut root = n.list("/").unwrap();
        root.sort();
        assert_eq!(root, vec!["d", "da"]);
    }

    #[test]
    fn remove_nonempty_dir_refused() {
        let mut n = ns();
        n.mkdir("/d", t(0)).unwrap();
        n.create("/d/a", FileId(1), opts(), t(0)).unwrap();
        assert_eq!(n.remove("/d", node(1)), Err(Error::NotEmpty));
        n.remove("/d/a", node(1)).unwrap();
        n.remove("/d", node(1)).unwrap();
    }

    #[test]
    fn commit_flow_advances_version() {
        let mut n = ns();
        n.create("/f", FileId(1), opts(), t(0)).unwrap();
        n.commit_begin("/f", Version::INITIAL, node(1), t(1)).unwrap();
        n.commit_end("/f", true, Version(1), 4096, node(1), t(1))
            .unwrap();
        let e = n.lookup("/f").unwrap();
        assert_eq!(e.version, Version(1));
        assert_eq!(e.size, 4096);
    }

    #[test]
    fn stale_base_is_refused() {
        let mut n = ns();
        n.create("/f", FileId(1), opts(), t(0)).unwrap();
        n.commit_begin("/f", Version::INITIAL, node(1), t(1)).unwrap();
        n.commit_end("/f", true, Version(1), 10, node(1), t(1))
            .unwrap();
        // A second writer based on v0 must conflict.
        assert_eq!(
            n.commit_begin("/f", Version::INITIAL, node(2), t(2)),
            Err(Error::VersionConflict)
        );
        // Based on v1 it goes through.
        n.commit_begin("/f", Version(1), node(2), t(2)).unwrap();
    }

    #[test]
    fn concurrent_commit_lease_blocks_second_writer() {
        let mut n = ns();
        n.create("/f", FileId(1), opts(), t(0)).unwrap();
        n.commit_begin("/f", Version::INITIAL, node(1), t(1)).unwrap();
        assert_eq!(
            n.commit_begin("/f", Version::INITIAL, node(2), t(2)),
            Err(Error::LeaseHeld)
        );
        // Abort releases the lease.
        n.commit_end("/f", false, Version::INITIAL, 0, node(1), t(3))
            .unwrap();
        n.commit_begin("/f", Version::INITIAL, node(2), t(3)).unwrap();
    }

    #[test]
    fn expired_lease_can_be_stolen() {
        let mut n = ns();
        n.create("/f", FileId(1), opts(), t(0)).unwrap();
        n.commit_begin("/f", Version::INITIAL, node(1), t(0)).unwrap();
        // fast_test lease = 10 s.
        assert_eq!(
            n.commit_begin("/f", Version::INITIAL, node(2), t(5)),
            Err(Error::LeaseHeld)
        );
        n.commit_begin("/f", Version::INITIAL, node(2), t(11)).unwrap();
        // The original holder lost its lease: its commit-end fails.
        assert_eq!(
            n.commit_end("/f", true, Version(1), 10, node(1), t(12)),
            Err(Error::LeaseHeld)
        );
    }

    #[test]
    fn state_survives_crash_via_backend() {
        let mut n = ns();
        n.create("/f", FileId(7), opts(), t(0)).unwrap();
        n.commit_begin("/f", Version::INITIAL, node(1), t(1)).unwrap();
        n.commit_end("/f", true, Version(1), 99, node(1), t(1))
            .unwrap();
        // Crash: park the backend (what Node::on_crash does).
        n.on_crash();
        assert!(n.db.is_none());
        // Recover (what on_start does).
        let db = Db::open(n.parked_backend.take().unwrap(), DbConfig::default()).unwrap();
        n.db = Some(db);
        let e = n.lookup("/f").unwrap();
        assert_eq!(e.version, Version(1));
        assert_eq!(e.size, 99);
    }
}
