//! The namespace server (§3.1): one per volume, holding the hierarchical
//! directory tree and per-file entries (FileID, latest version,
//! timestamps) — but **not** segment locations, which would make it a
//! bottleneck under migration.
//!
//! The directory tree lives in [`sorrento_kvdb`] (the Berkeley DB
//! substitute), giving WAL + checkpoint durability: on a crash the node
//! drops its in-memory state and recovers from the backend image on
//! restart. Commit approval implements the §3.5 optimistic check — a
//! commit with a stale base version is refused — plus short write-lock
//! leases between commit-begin and commit-end so two cooperative writers
//! never interleave 2PC windows.
//!
//! # Sharding (metadata plane)
//!
//! The namespace can be partitioned over several servers with the
//! rendezvous partition function in [`crate::nsmap`]: the entry for path
//! `p` lives on `shard_of_dir(parent(p))`, so `ls`, create-in-dir and
//! the §3.5 commit check stay single-shard. A directory `d` additionally
//! keeps a *stub* entry on `shard_of_dir(d)` — the shard holding its
//! children — so a child's parent-existence check is local too. Only
//! `mkdir`, directory `remove`, and cross-shard `rename` pay a
//! two-shard handshake ([`Msg::NsShardInstall`] / [`Msg::NsShardDrop`]),
//! driven by a pending table with resend-safe idempotent targets. With
//! one shard every handshake degenerates to a local put and the server
//! behaves byte-for-byte like the unsharded original.
//!
//! # Hot standby ("cheap recovery")
//!
//! A shard primary can ship its WAL to a hot standby: every
//! [`CostModel::ns_ship_interval`] it drains the kvdb shipping tap into
//! a [`Msg::NsWalShip`] (empty shipments double as liveness beacons).
//! The standby *stores* the latest checkpoint image plus the record
//! tail without applying them; when shipments fall silent for
//! [`CostModel::ns_standby_grace`] it assembles the shipped state and
//! replays the tail — takeover time is therefore bounded by the
//! primary's uncheckpointed WAL tail, which the
//! [`DbConfig::checkpoint_every_batches`] knob caps.

use std::collections::HashMap;

use sorrento_kvdb::{assemble_shipped, Db, DbConfig, MemBackend};
use sorrento_sim::{Ctx, DiskAccess, Node, NodeId, SimTime, TelemetryEvent};

use crate::transport::Transport;

use crate::costs::CostModel;
use crate::dedup::{ReplyCache, DEFAULT_REPLY_CACHE};
use crate::proto::{FileEntry, Msg, ReqId, Tick};
use crate::types::{Error, FileId, FileOptions, Version};

/// Key prefix for namespace entries.
const KEY_PREFIX: &str = "ns:";

fn key_of(path: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(KEY_PREFIX.len() + path.len());
    k.extend_from_slice(KEY_PREFIX.as_bytes());
    k.extend_from_slice(path.as_bytes());
    k
}

fn parent_of(path: &str) -> Option<&str> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&path[..i]),
        None => None,
    }
}

fn encode_entry(e: &FileEntry) -> Vec<u8> {
    crate::codec::entry_to_json(e).encode().into_bytes()
}

fn decode_entry(bytes: &[u8]) -> Result<FileEntry, crate::codec::CodecError> {
    let text = std::str::from_utf8(bytes).map_err(|_| crate::codec::CodecError::NotUtf8)?;
    let j = sorrento_json::Json::parse(text).map_err(|_| crate::codec::CodecError::BadJson)?;
    crate::codec::entry_from_json(&j)
}

/// An active commit lease.
#[derive(Debug, Clone, Copy)]
struct Lease {
    holder: NodeId,
    expires: SimTime,
}

/// A two-shard handshake awaiting the peer shard's reply.
#[derive(Debug, Clone)]
struct Pending {
    /// The client whose operation is suspended on this handshake.
    client: NodeId,
    /// The client's original request id (the final reply carries it).
    req: ReqId,
    op: PendingOp,
}

/// What to complete once the peer shard confirms.
#[derive(Debug, Clone)]
enum PendingOp {
    /// Cross-shard `mkdir`: stub installed remotely → put the real
    /// entry locally and reply.
    Mkdir { path: String, entry: FileEntry },
    /// Cross-shard directory remove: the children's shard confirmed
    /// empty and dropped the stub → drop the real entry and reply.
    RemoveDir { path: String, entry: FileEntry },
    /// Cross-shard rename: destination installed → drop the source
    /// entry and reply.
    Rename { src: String },
}

fn root_entry() -> FileEntry {
    FileEntry {
        file: FileId(0),
        version: Version::INITIAL,
        size: 0,
        is_dir: true,
        created_ns: 0,
        modified_ns: 0,
        options: FileOptions::default(),
    }
}

/// The namespace server node: a shard primary (possibly the only
/// shard), or a hot standby that promotes itself when its primary's
/// WAL shipments fall silent.
pub struct NamespaceServer {
    costs: CostModel,
    /// `None` transiently across a crash (state is parked in
    /// `parked_backend`) and on a standby before promotion.
    db: Option<Db<MemBackend>>,
    parked_backend: Option<MemBackend>,
    db_config: DbConfig,
    /// Commit locks: path → lease.
    leases: HashMap<String, Lease>,
    /// Operations served (observability).
    pub ops_served: u64,
    /// Number of WAL batches replayed at the last recovery.
    pub recovered_batches: usize,
    /// Replies to recent mutations, replayed verbatim when a resilient
    /// client re-sends a request whose reply was lost.
    replies: ReplyCache,
    // ---- sharding ----
    shard: u32,
    nshards: u32,
    shard_map: crate::nsmap::NsShardMap,
    /// In-flight two-shard handshakes, keyed by the internal request id
    /// used on the shard-to-shard RPC.
    pending: HashMap<ReqId, Pending>,
    next_xreq: ReqId,
    // ---- hot standby (primary side) ----
    standby: Option<NodeId>,
    ship_seq: u64,
    // ---- hot standby (standby side) ----
    standby_mode: bool,
    shipped_ckpt: Option<Vec<u8>>,
    shipped_recs: Vec<Vec<u8>>,
    have_seq: u64,
    /// Promote when `now` passes this without a shipment.
    ship_deadline: SimTime,
    /// WAL batches replayed at the last standby takeover (the measured
    /// failover tail).
    pub failover_replayed: usize,
}

impl NamespaceServer {
    /// A fresh unsharded namespace server with the root pre-created —
    /// the classic single-server deployment.
    pub fn new(costs: CostModel) -> NamespaceServer {
        NamespaceServer::new_sharded(costs, 0, 1)
    }

    /// Shard `shard` of an `nshards`-way partitioned namespace. The root
    /// directory is pre-created on every shard so top-level parent
    /// checks never cross shards.
    pub fn new_sharded(costs: CostModel, shard: u32, nshards: u32) -> NamespaceServer {
        let db_config = DbConfig::default();
        let mut db = Db::open(MemBackend::new(), db_config).expect("mem backend");
        db.put(key_of("/"), encode_entry(&root_entry())).expect("mem io");
        NamespaceServer {
            costs,
            db: Some(db),
            parked_backend: None,
            db_config,
            leases: HashMap::new(),
            ops_served: 0,
            recovered_batches: 0,
            replies: ReplyCache::new(DEFAULT_REPLY_CACHE),
            shard,
            nshards: nshards.max(1),
            shard_map: crate::nsmap::NsShardMap::default(),
            pending: HashMap::new(),
            // Internal handshake ids live far above any client's
            // request counter so a target's reply can never be
            // mistaken for a client reply.
            next_xreq: 1 << 48,
            standby: None,
            ship_seq: 0,
            standby_mode: false,
            shipped_ckpt: None,
            shipped_recs: Vec::new(),
            have_seq: 0,
            ship_deadline: SimTime::ZERO,
            failover_replayed: 0,
        }
    }

    /// A hot standby for shard `shard`: stores shipped WAL state and
    /// serves nothing until its primary's shipments fall silent.
    pub fn new_standby(costs: CostModel, shard: u32, nshards: u32) -> NamespaceServer {
        let mut ns = NamespaceServer::new_sharded(costs, shard, nshards);
        ns.db = None;
        ns.standby_mode = true;
        ns
    }

    /// Install the volume's shard map (used to route the two-shard
    /// handshakes and answer [`Msg::ShardMapQuery`]).
    pub fn set_shard_map(&mut self, map: crate::nsmap::NsShardMap) {
        self.shard_map = map;
    }

    /// Configure WAL shipping to a hot standby (primary side; takes
    /// effect at the next start).
    pub fn set_standby(&mut self, standby: NodeId) {
        self.standby = Some(standby);
    }

    /// Bound the WAL replay tail — and therefore failover time — to at
    /// most `every` batches between checkpoints.
    pub fn set_checkpoint_every_batches(&mut self, every: Option<u64>) {
        self.db_config.checkpoint_every_batches = every;
        if let Some(db) = self.db.as_mut() {
            db.set_checkpoint_every_batches(every);
        }
    }

    /// Whether this node is an unpromoted standby.
    pub fn is_standby(&self) -> bool {
        self.standby_mode
    }

    /// This server's shard index.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Bytes currently in the WAL tail (0 on an unpromoted standby).
    pub fn wal_tail_bytes(&self) -> usize {
        self.db.as_ref().map_or(0, Db::wal_bytes)
    }

    /// Bulk-load one entry straight into the backend — no WAL record, no
    /// shipping, no checkpoint trigger. Benchmark-harness seeding only:
    /// it lets a scaling ablation stand up a multi-million-entry tree in
    /// O(n) harness time instead of replaying n client creates. The
    /// caller owns routing — insert each path on the shard that owns its
    /// parent directory, and give a directory a stub copy on the shard
    /// that owns its children (see the module docs).
    pub fn preseed(&mut self, path: &str, file: FileId, is_dir: bool) {
        let entry = FileEntry {
            file,
            version: Version::INITIAL,
            size: 0,
            is_dir,
            created_ns: 0,
            modified_ns: 0,
            options: FileOptions::default(),
        };
        self.db_mut().load_unlogged(key_of(path), encode_entry(&entry));
    }

    fn db(&self) -> &Db<MemBackend> {
        self.db.as_ref().expect("namespace db open")
    }

    fn db_mut(&mut self) -> &mut Db<MemBackend> {
        self.db.as_mut().expect("namespace db open")
    }

    fn get(&self, path: &str) -> Option<FileEntry> {
        // A corrupt entry is treated as absent here; the caller maps it
        // to `Error::NotFound` like any other missing path.
        self.db().get(key_of(path)).and_then(|b| decode_entry(b).ok())
    }

    fn put(&mut self, path: &str, entry: &FileEntry) {
        let bytes = encode_entry(entry);
        self.db_mut().put(key_of(path), bytes).expect("mem io");
    }

    /// Number of namespace entries (including the root).
    pub fn entry_count(&self) -> usize {
        self.db().len()
    }

    // ---- operations ----

    fn lookup(&self, path: &str) -> Result<FileEntry, Error> {
        self.get(path).ok_or(Error::NotFound)
    }

    fn create(
        &mut self,
        path: &str,
        file: FileId,
        options: FileOptions,
        now: SimTime,
    ) -> Result<FileEntry, Error> {
        if self.get(path).is_some() {
            return Err(Error::AlreadyExists);
        }
        let parent = parent_of(path).ok_or(Error::NotFound)?;
        let pentry = self.get(parent).ok_or(Error::NotFound)?;
        if !pentry.is_dir {
            return Err(Error::NotADirectory);
        }
        let entry = FileEntry {
            file,
            version: Version::INITIAL,
            size: 0,
            is_dir: false,
            created_ns: now.nanos(),
            modified_ns: now.nanos(),
            options,
        };
        self.put(path, &entry);
        Ok(entry)
    }

    fn mkdir(&mut self, path: &str, now: SimTime) -> Result<(), Error> {
        if self.get(path).is_some() {
            return Err(Error::AlreadyExists);
        }
        let parent = parent_of(path).ok_or(Error::NotFound)?;
        let pentry = self.get(parent).ok_or(Error::NotFound)?;
        if !pentry.is_dir {
            return Err(Error::NotADirectory);
        }
        let entry = FileEntry {
            file: FileId(0),
            version: Version::INITIAL,
            size: 0,
            is_dir: true,
            created_ns: now.nanos(),
            modified_ns: now.nanos(),
            options: FileOptions::default(),
        };
        self.put(path, &entry);
        Ok(())
    }

    fn list(&self, path: &str) -> Result<Vec<String>, Error> {
        let entry = self.get(path).ok_or(Error::NotFound)?;
        if !entry.is_dir {
            return Err(Error::NotADirectory);
        }
        let prefix_str = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let prefix = key_of(&prefix_str);
        let mut names = Vec::new();
        for (k, _) in self.db().scan_prefix(&prefix) {
            let full = std::str::from_utf8(&k[KEY_PREFIX.len()..]).unwrap_or("");
            let rest = &full[prefix_str.len()..];
            if !rest.is_empty() && !rest.contains('/') {
                names.push(rest.to_string());
            }
        }
        Ok(names)
    }

    fn remove(&mut self, path: &str, client: NodeId) -> Result<FileEntry, Error> {
        let entry = self.get(path).ok_or(Error::NotFound)?;
        if entry.is_dir && !self.list(path)?.is_empty() {
            return Err(Error::NotEmpty);
        }
        if let Some(lease) = self.leases.get(path) {
            if lease.holder != client {
                return Err(Error::LeaseHeld);
            }
        }
        self.db_mut().delete(key_of(path)).expect("mem io");
        self.leases.remove(path);
        Ok(entry)
    }

    fn commit_begin(
        &mut self,
        path: &str,
        base: Version,
        client: NodeId,
        now: SimTime,
    ) -> Result<(), Error> {
        let entry = self.get(path).ok_or(Error::NotFound)?;
        // Optimistic concurrency check (§3.5): a base older than the
        // stored latest means another writer committed first.
        if entry.version != base {
            return Err(Error::VersionConflict);
        }
        match self.leases.get(path) {
            Some(l) if l.holder != client && l.expires > now => Err(Error::LeaseHeld),
            _ => {
                self.leases.insert(
                    path.to_string(),
                    Lease {
                        holder: client,
                        expires: now + self.costs.commit_lease,
                    },
                );
                Ok(())
            }
        }
    }

    fn commit_end(
        &mut self,
        path: &str,
        commit: bool,
        new_version: Version,
        new_size: u64,
        client: NodeId,
        now: SimTime,
    ) -> Result<(), Error> {
        match self.leases.get(path) {
            Some(l) if l.holder == client => {
                self.leases.remove(path);
            }
            Some(_) => return Err(Error::LeaseHeld),
            None if commit => return Err(Error::VersionConflict), // lease lost
            None => return Ok(()),
        }
        if commit {
            let mut entry = self.get(path).ok_or(Error::NotFound)?;
            entry.version = new_version;
            entry.size = new_size;
            entry.modified_ns = now.nanos();
            self.put(path, &entry);
        }
        Ok(())
    }

    // ---- sharded operations ----

    /// The shard holding `dir`'s children (and its stub).
    fn child_shard(&self, dir: &str) -> u32 {
        crate::nsmap::shard_of_dir(dir, self.nshards)
    }

    /// True when a handshake for this `(client, req)` is already in
    /// flight (the client resent while we wait on the peer shard).
    fn handshake_in_flight(&self, client: NodeId, req: ReqId) -> bool {
        self.pending.values().any(|p| p.client == client && p.req == req)
    }

    fn alloc_xreq(&mut self) -> ReqId {
        let x = self.next_xreq;
        self.next_xreq += 1;
        x
    }

    /// Start a two-shard handshake: send `msg` to shard `target`'s
    /// primary and park the suspended operation. Returns `false` when
    /// the target shard is unknown (no map installed).
    fn start_handshake(
        &mut self,
        target: u32,
        xreq: ReqId,
        msg_of: impl FnOnce(ReqId) -> Msg,
        pending: Pending,
        ctx: &mut impl Transport,
    ) -> bool {
        let Some(primary) = self.shard_map.get(target as usize).map(|s| s.primary) else {
            return false;
        };
        ctx.send(primary, msg_of(xreq));
        ctx.set_timer(self.costs.rpc_timeout, Msg::Tick(Tick::XShardTimeout(xreq)));
        self.pending.insert(xreq, pending);
        true
    }

    /// `mkdir` with the directory's children on another shard: validate
    /// locally, install the stub remotely, put the real entry when the
    /// peer confirms. Returns `None` when suspended on the handshake.
    fn mkdir_sharded(
        &mut self,
        path: &str,
        client: NodeId,
        req: ReqId,
        now: SimTime,
        ctx: &mut impl Transport,
    ) -> Option<Result<(), Error>> {
        if self.get(path).is_some() {
            return Some(Err(Error::AlreadyExists));
        }
        let Some(parent) = parent_of(path) else {
            return Some(Err(Error::NotFound));
        };
        let Some(pentry) = self.get(parent) else {
            return Some(Err(Error::NotFound));
        };
        if !pentry.is_dir {
            return Some(Err(Error::NotADirectory));
        }
        let entry = FileEntry {
            file: FileId(0),
            version: Version::INITIAL,
            size: 0,
            is_dir: true,
            created_ns: now.nanos(),
            modified_ns: now.nanos(),
            options: FileOptions::default(),
        };
        let child_shard = self.child_shard(path);
        if child_shard == self.shard {
            // The real entry doubles as the stub: one local put.
            self.put(path, &entry);
            return Some(Ok(()));
        }
        if self.handshake_in_flight(client, req) {
            return None; // client resend; first handshake still pending
        }
        let xreq = self.alloc_xreq();
        let p = path.to_string();
        let e = entry.clone();
        let started = self.start_handshake(
            child_shard,
            xreq,
            |x| Msg::NsShardInstall { req: x, path: p, entry: e, xfer: false },
            Pending {
                client,
                req,
                op: PendingOp::Mkdir { path: path.to_string(), entry },
            },
            ctx,
        );
        if started {
            None
        } else {
            Some(Err(Error::Unavailable))
        }
    }

    /// `remove` routed shard-aware: files and same-shard directories are
    /// local; a directory whose children live elsewhere needs the peer
    /// to confirm-empty and drop the stub first.
    fn remove_sharded(
        &mut self,
        path: &str,
        client: NodeId,
        req: ReqId,
        ctx: &mut impl Transport,
    ) -> Option<Result<FileEntry, Error>> {
        let Some(entry) = self.get(path) else {
            return Some(Err(Error::NotFound));
        };
        if let Some(lease) = self.leases.get(path) {
            if lease.holder != client {
                return Some(Err(Error::LeaseHeld));
            }
        }
        let child_shard = self.child_shard(path);
        if !entry.is_dir || child_shard == self.shard {
            return Some(self.remove(path, client));
        }
        if self.handshake_in_flight(client, req) {
            return None;
        }
        let xreq = self.alloc_xreq();
        let p = path.to_string();
        let started = self.start_handshake(
            child_shard,
            xreq,
            |x| Msg::NsShardDrop { req: x, path: p, check_empty: true },
            Pending {
                client,
                req,
                op: PendingOp::RemoveDir { path: path.to_string(), entry },
            },
            ctx,
        );
        if started {
            None
        } else {
            Some(Err(Error::Unavailable))
        }
    }

    /// File-only `rename`, routed to the source's shard. A same-shard
    /// destination is one local transaction; otherwise the destination
    /// shard installs the entry first and the source is dropped on its
    /// confirmation.
    fn rename_sharded(
        &mut self,
        src: &str,
        dst: &str,
        client: NodeId,
        req: ReqId,
        ctx: &mut impl Transport,
    ) -> Option<Result<(), Error>> {
        let Some(entry) = self.get(src) else {
            return Some(Err(Error::NotFound));
        };
        if entry.is_dir {
            // Directory renames would re-home every descendant's shard;
            // refused (same stance as mode-illegal operations).
            return Some(Err(Error::InvalidMode));
        }
        if let Some(lease) = self.leases.get(src) {
            if lease.holder != client {
                return Some(Err(Error::LeaseHeld));
            }
        }
        let dst_shard = crate::nsmap::shard_of_path(dst, self.nshards);
        if dst_shard == self.shard {
            if self.get(dst).is_some() {
                return Some(Err(Error::AlreadyExists));
            }
            let Some(parent) = parent_of(dst) else {
                return Some(Err(Error::NotFound));
            };
            let Some(pentry) = self.get(parent) else {
                return Some(Err(Error::NotFound));
            };
            if !pentry.is_dir {
                return Some(Err(Error::NotADirectory));
            }
            self.put(dst, &entry);
            self.db_mut().delete(key_of(src)).expect("mem io");
            self.leases.remove(src);
            return Some(Ok(()));
        }
        if self.handshake_in_flight(client, req) {
            return None;
        }
        let xreq = self.alloc_xreq();
        let d = dst.to_string();
        let e = entry.clone();
        let started = self.start_handshake(
            dst_shard,
            xreq,
            |x| Msg::NsShardInstall { req: x, path: d, entry: e, xfer: true },
            Pending {
                client,
                req,
                op: PendingOp::Rename { src: src.to_string() },
            },
            ctx,
        );
        if started {
            None
        } else {
            Some(Err(Error::Unavailable))
        }
    }

    /// Peer-shard side of the handshakes: install a directory stub
    /// (`xfer: false`, unconditional — idempotent under resends) or a
    /// transferred rename destination (`xfer: true`, with local
    /// destination checks).
    fn shard_install(&mut self, path: &str, entry: &FileEntry, xfer: bool) -> Result<(), Error> {
        if !xfer {
            self.put(path, entry);
            return Ok(());
        }
        if let Some(existing) = self.get(path) {
            // An identical entry means this is a resend of a handshake
            // we already completed: confirm instead of conflicting.
            return if existing == *entry { Ok(()) } else { Err(Error::AlreadyExists) };
        }
        let parent = parent_of(path).ok_or(Error::NotFound)?;
        let pentry = self.get(parent).ok_or(Error::NotFound)?;
        if !pentry.is_dir {
            return Err(Error::NotADirectory);
        }
        self.put(path, entry);
        Ok(())
    }

    /// Peer-shard side of directory removal: confirm the directory has
    /// no children here, then drop its stub. A missing stub is a
    /// completed resend → confirm.
    fn shard_drop(&mut self, path: &str, check_empty: bool) -> Result<(), Error> {
        if self.get(path).is_none() {
            return Ok(());
        }
        if check_empty && !self.list(path)?.is_empty() {
            return Err(Error::NotEmpty);
        }
        self.db_mut().delete(key_of(path)).expect("mem io");
        Ok(())
    }

    /// Complete a suspended operation when the peer shard's reply
    /// arrives: apply the local half (on success) and release the
    /// client's reply.
    fn complete_handshake(
        &mut self,
        xreq: ReqId,
        result: Result<(), Error>,
        ctx: &mut impl Transport,
    ) {
        let Some(p) = self.pending.remove(&xreq) else {
            return; // timed out and retried, or a duplicate reply
        };
        let reply = match p.op {
            PendingOp::Mkdir { path, entry } => {
                let result = result.map(|()| self.put(&path, &entry));
                Msg::NsMkdirR { req: p.req, result }
            }
            PendingOp::RemoveDir { path, entry } => {
                let result = result.map(|()| {
                    self.db_mut().delete(key_of(&path)).expect("mem io");
                    self.leases.remove(&path);
                    entry
                });
                Msg::NsRemoveR { req: p.req, result }
            }
            PendingOp::Rename { src } => {
                let result = result.map(|()| {
                    self.db_mut().delete(key_of(&src)).expect("mem io");
                    self.leases.remove(&src);
                });
                Msg::NsRenameR { req: p.req, result }
            }
        };
        self.replies.put(p.client, p.req, reply.clone());
        let done = ctx.cpu(self.costs.ns_op_cpu);
        let disk_done = ctx.disk_submit(256, DiskAccess::Sequential);
        ctx.send_at(done.max(disk_done), p.client, reply);
    }

    // ---- hot standby ----

    /// Export this shard's heartbeat gauges (entries, ops, WAL tail,
    /// failover tail).
    pub fn export_gauges(&mut self, ctx: &mut impl Transport) {
        let k = self.shard;
        if let Some(db) = self.db.as_ref() {
            ctx.metrics().gauge_set(&format!("ns{k}.entries"), db.len() as f64);
            ctx.metrics()
                .gauge_set(&format!("ns{k}.wal_tail_bytes"), db.wal_bytes() as f64);
        }
        ctx.metrics().gauge_set(&format!("ns{k}.ops"), self.ops_served as f64);
        ctx.metrics().gauge_set(
            &format!("ns{k}.failover_replayed"),
            self.failover_replayed as f64,
        );
    }

    /// Drain the shipping tap to the standby. Runs on every
    /// [`Tick::NsShip`]; an empty shipment is still sent as a liveness
    /// beacon.
    fn ship_wal(&mut self, ctx: &mut impl Transport) {
        let Some(standby) = self.standby else { return };
        let Some(db) = self.db.as_mut() else { return };
        let s = db.take_shipment();
        self.ship_seq += 1;
        ctx.send(
            standby,
            Msg::NsWalShip {
                shard: self.shard,
                seq: self.ship_seq,
                ckpt: s.ckpt.map(bytes::Bytes::from),
                recs: s.recs.into_iter().map(bytes::Bytes::from).collect(),
            },
        );
        ctx.set_timer(self.costs.ns_ship_interval, Msg::Tick(Tick::NsShip));
    }

    /// Standby side: store a shipment without applying it. A sequence
    /// gap (lost shipment or primary restart) triggers a catch-up
    /// request for a fresh full image.
    fn ingest_shipment(
        &mut self,
        from: NodeId,
        seq: u64,
        ckpt: Option<Vec<u8>>,
        recs: Vec<Vec<u8>>,
        ctx: &mut impl Transport,
    ) {
        if !self.standby_mode {
            return; // already promoted; a straggler ship is stale
        }
        self.ship_deadline = ctx.now() + self.costs.ns_standby_grace;
        if let Some(img) = ckpt {
            // A full image subsumes everything stored so far and
            // resynchronizes the sequence unconditionally.
            self.shipped_ckpt = Some(img);
            self.shipped_recs = recs;
            self.have_seq = seq;
        } else if seq == self.have_seq + 1 {
            self.have_seq = seq;
            self.shipped_recs.extend(recs);
        } else {
            ctx.send(
                from,
                Msg::NsCatchup { shard: self.shard, have_seq: self.have_seq },
            );
        }
    }

    /// Promote this standby: assemble the shipped checkpoint + tail,
    /// replay the tail, and start serving as the shard primary. The
    /// replayed-batch count is the measured failover tail.
    fn promote(&mut self, ctx: &mut impl Transport) {
        let backend = assemble_shipped(self.shipped_ckpt.as_deref(), &self.shipped_recs);
        let mut db = Db::open(backend, self.db_config).expect("standby promote");
        if !db.contains(key_of("/")) {
            // Nothing was ever shipped: come up as an empty shard.
            db.put(key_of("/"), encode_entry(&root_entry())).expect("mem io");
        }
        self.failover_replayed = db.recovered_batches();
        self.recovered_batches = db.recovered_batches();
        self.db = Some(db);
        self.standby_mode = false;
        self.shipped_ckpt = None;
        self.shipped_recs = Vec::new();
        // Serve as this shard's primary from now on (the map row is
        // updated so ShardMapQuery answers point clients here).
        if self.shard_map.get(self.shard as usize).is_some() {
            self.shard_map.set_primary(self.shard as usize, ctx.id());
        }
        ctx.metrics().count("ns.failovers", 1);
        ctx.metrics().gauge_set(
            &format!("ns{}.failover_replayed", self.shard),
            self.failover_replayed as f64,
        );
        ctx.set_timer(self.costs.commit_lease, Msg::Tick(Tick::LeaseSweep));
    }
}

/// Runtime entry points: shared by the simulator (via the thin [`Node`]
/// impl below) and the real-process runtime.
impl NamespaceServer {
    /// Bring the server online: recover the metadata db, arm the lease
    /// sweep (primaries) or the ship-silence watchdog (standbys).
    pub fn handle_start(&mut self, ctx: &mut impl Transport) {
        if self.standby_mode {
            self.ship_deadline = ctx.now() + self.costs.ns_standby_grace;
            ctx.set_timer(self.costs.ns_standby_grace, Msg::Tick(Tick::StandbyCheck));
            return;
        }
        // Recover from the parked backend after a crash.
        if let Some(backend) = self.parked_backend.take() {
            let db = Db::open(backend, self.db_config).expect("recovery");
            self.recovered_batches = db.recovered_batches();
            self.db = Some(db);
            self.leases.clear();
        }
        if self.standby.is_some() {
            // Prime the shipping tap with a full image so the standby
            // starts from a complete base (also after our own restart).
            let db = self.db_mut();
            db.enable_shipping();
            db.checkpoint().expect("mem io");
            ctx.set_timer(self.costs.ns_ship_interval, Msg::Tick(Tick::NsShip));
        }
        ctx.set_timer(self.costs.commit_lease, Msg::Tick(Tick::LeaseSweep));
    }

    /// Crash handling: in-memory state dies; the kvdb backend ("disk")
    /// survives.
    pub fn handle_crash(&mut self) {
        // In-memory state dies; the kvdb backend ("disk") survives.
        if let Some(db) = self.db.take() {
            self.parked_backend = Some(db.into_backend());
        }
        self.leases.clear();
        self.replies.clear();
        self.pending.clear();
    }

    /// Process one delivered message or fired timer.
    pub fn handle_message(&mut self, from: NodeId, msg: Msg, ctx: &mut impl Transport) {
        let now = ctx.now();
        match msg {
            Msg::Tick(Tick::LeaseSweep) => {
                self.leases.retain(|_, l| l.expires > now);
                self.export_gauges(ctx);
                ctx.set_timer(self.costs.commit_lease, Msg::Tick(Tick::LeaseSweep));
                return;
            }
            Msg::Tick(Tick::NsShip) => {
                self.ship_wal(ctx);
                return;
            }
            Msg::Tick(Tick::StandbyCheck) => {
                if self.standby_mode {
                    if now >= self.ship_deadline {
                        self.promote(ctx);
                    } else {
                        ctx.set_timer(
                            self.costs.ns_standby_grace,
                            Msg::Tick(Tick::StandbyCheck),
                        );
                    }
                }
                return;
            }
            Msg::Tick(Tick::XShardTimeout(xreq)) => {
                // Abandon the handshake: the client's own resend will
                // start a fresh one (targets are idempotent).
                self.pending.remove(&xreq);
                return;
            }
            Msg::SwimPing { seq, origin, .. } => {
                // Namespace nodes are not gossip members (they carry no
                // load/capacity payload), but they answer probes so a
                // SWIM deployment can seed every daemon with every peer
                // without role bookkeeping.
                ctx.send(from, Msg::SwimAck { seq, origin, updates: Vec::new() });
                return;
            }
            Msg::Tick(_) | Msg::Heartbeat(_) => return,
            Msg::NsWalShip { seq, ckpt, recs, .. } => {
                self.ingest_shipment(
                    from,
                    seq,
                    ckpt.map(|b| b.to_vec()),
                    recs.into_iter().map(|b| b.to_vec()).collect(),
                    ctx,
                );
                return;
            }
            Msg::NsCatchup { .. } => {
                // The standby fell behind the shipped tail: force-ship a
                // full image (which resynchronizes its sequence).
                if self.standby.is_some() && self.db.is_some() {
                    let db = self.db_mut();
                    let _ = db.take_shipment(); // subsumed by the image
                    let img = db.checkpoint_image();
                    self.ship_seq += 1;
                    ctx.send(
                        from,
                        Msg::NsWalShip {
                            shard: self.shard,
                            seq: self.ship_seq,
                            ckpt: Some(bytes::Bytes::from(img)),
                            recs: Vec::new(),
                        },
                    );
                }
                return;
            }
            Msg::NsShardInstallR { req, result } | Msg::NsShardDropR { req, result } => {
                self.complete_handshake(req, result, ctx);
                return;
            }
            _ => {}
        }
        if self.standby_mode {
            // Not promoted: a client that failed over here too eagerly
            // gets silence and will retry its primary.
            return;
        }
        // Replayed mutation (same-request resend after a lost reply)?
        // Answer from the cache without executing twice: the first
        // execution may have succeeded, and re-running would turn that
        // success into a spurious AlreadyExists/VersionConflict.
        let dedup_req = dedup_key(&msg);
        if let Some(req) = dedup_req {
            if let Some(cached) = self.replies.get(from, req) {
                let reply = cached.clone();
                ctx.metrics().count("ns.dedup_replays", 1);
                ctx.record(TelemetryEvent::DedupHit {
                    span: crate::proto::span_of(&msg),
                    kind: crate::proto::dbg_kind(&msg),
                });
                let done = ctx.cpu(self.costs.ns_op_cpu);
                ctx.send_at(done, from, reply);
                return;
            }
        }
        self.ops_served += 1;
        let cpu_done = ctx.cpu(self.costs.ns_op_cpu);
        let reply = match msg {
            Msg::NsLookup { req, path } => Msg::NsLookupR {
                req,
                result: self.lookup(&path),
            },
            Msg::NsCreate {
                req,
                path,
                file,
                options,
            } => {
                let result = self.create(&path, file, options, now);
                Msg::NsCreateR { req, result }
            }
            Msg::NsMkdir { req, path } => {
                if self.nshards > 1 {
                    match self.mkdir_sharded(&path, from, req, now, ctx) {
                        Some(result) => Msg::NsMkdirR { req, result },
                        None => return, // suspended on a two-shard handshake
                    }
                } else {
                    Msg::NsMkdirR { req, result: self.mkdir(&path, now) }
                }
            }
            Msg::NsRemove { req, path } => {
                if self.nshards > 1 {
                    match self.remove_sharded(&path, from, req, ctx) {
                        Some(result) => Msg::NsRemoveR { req, result },
                        None => return,
                    }
                } else {
                    Msg::NsRemoveR { req, result: self.remove(&path, from) }
                }
            }
            Msg::NsRename { req, src, dst } => {
                match self.rename_sharded(&src, &dst, from, req, ctx) {
                    Some(result) => Msg::NsRenameR { req, result },
                    None => return,
                }
            }
            Msg::NsShardInstall { req, path, entry, xfer } => Msg::NsShardInstallR {
                req,
                result: self.shard_install(&path, &entry, xfer),
            },
            Msg::NsShardDrop { req, path, check_empty } => Msg::NsShardDropR {
                req,
                result: self.shard_drop(&path, check_empty),
            },
            Msg::ShardMapQuery { req } => Msg::ShardMapR {
                req,
                rows: self
                    .shard_map
                    .iter()
                    .map(|(k, s)| (k, s.primary, s.standby))
                    .collect(),
            },
            Msg::NsList { req, path } => Msg::NsListR {
                req,
                result: self.list(&path),
            },
            Msg::NsCommitBegin { req, span, path, base } => {
                let file = self.get(&path).map(|e| e.file.0).unwrap_or(0);
                let result = self.commit_begin(&path, base, from, now);
                // The §3.5 optimistic check, traced: a failed check is the
                // decisive hop in any version-conflict causal chain.
                ctx.record(TelemetryEvent::VersionCheck {
                    span,
                    file,
                    version: base.0,
                    ok: result.is_ok(),
                });
                Msg::NsCommitBeginR { req, result }
            }
            Msg::NsCommitEnd {
                req,
                span,
                path,
                commit,
                new_version,
                new_size,
            } => {
                let result = self.commit_end(&path, commit, new_version, new_size, from, now);
                if commit {
                    ctx.record(TelemetryEvent::VersionCheck {
                        span,
                        file: self.get(&path).map(|e| e.file.0).unwrap_or(0),
                        version: new_version.0,
                        ok: result.is_ok(),
                    });
                }
                Msg::NsCommitEndR { req, result }
            }
            _ => return, // not a namespace message
        };
        // Mutations pay a WAL append: sequential like Berkeley DB's log
        // (group commit keeps the platter sync off the per-op path),
        // which is what lets one namespace server sustain the ~1300
        // ops/s measured in §4.1.2. Reads are memory + CPU.
        let mutating = matches!(
            reply,
            Msg::NsCreateR { .. }
                | Msg::NsMkdirR { .. }
                | Msg::NsRemoveR { .. }
                | Msg::NsCommitEndR { .. }
                | Msg::NsRenameR { .. }
                | Msg::NsShardInstallR { .. }
                | Msg::NsShardDropR { .. }
        );
        let done = if mutating {
            let disk_done = ctx.disk_submit(256, DiskAccess::Sequential);
            cpu_done.max(disk_done)
        } else {
            cpu_done
        };
        if let Some(req) = dedup_req {
            self.replies.put(from, req, reply.clone());
        }
        ctx.send_at(done, from, reply);
    }
}

/// The request id of a namespace message that must not execute twice
/// (`None` for idempotent reads, which are cheaper to re-run than to
/// cache).
fn dedup_key(msg: &Msg) -> Option<ReqId> {
    match msg {
        Msg::NsCreate { req, .. }
        | Msg::NsMkdir { req, .. }
        | Msg::NsRemove { req, .. }
        | Msg::NsRename { req, .. }
        | Msg::NsCommitBegin { req, .. }
        | Msg::NsCommitEnd { req, .. } => Some(*req),
        _ => None,
    }
}

impl Node<Msg> for NamespaceServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.handle_start(ctx)
    }

    fn on_crash(&mut self) {
        self.handle_crash()
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        self.handle_message(from, msg, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorrento_sim::Dur;

    fn ns() -> NamespaceServer {
        NamespaceServer::new(CostModel::fast_test())
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Dur::secs(s)
    }

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn opts() -> FileOptions {
        FileOptions::default()
    }

    #[test]
    fn create_lookup_remove() {
        let mut n = ns();
        let entry = n.create("/a", FileId(1), opts(), t(0)).unwrap();
        assert_eq!(entry.file, FileId(1));
        assert_eq!(entry.version, Version::INITIAL);
        assert_eq!(n.lookup("/a").unwrap().file, FileId(1));
        assert_eq!(n.create("/a", FileId(2), opts(), t(0)), Err(Error::AlreadyExists));
        assert_eq!(n.lookup("/missing"), Err(Error::NotFound));
        let removed = n.remove("/a", node(1)).unwrap();
        assert_eq!(removed.file, FileId(1));
        assert_eq!(n.lookup("/a"), Err(Error::NotFound));
    }

    #[test]
    fn nested_paths_require_parent_dirs() {
        let mut n = ns();
        assert_eq!(
            n.create("/d/x", FileId(1), opts(), t(0)),
            Err(Error::NotFound)
        );
        n.mkdir("/d", t(0)).unwrap();
        n.create("/d/x", FileId(1), opts(), t(0)).unwrap();
        // A file is not a directory.
        assert_eq!(
            n.create("/d/x/y", FileId(2), opts(), t(0)),
            Err(Error::NotADirectory)
        );
    }

    #[test]
    fn list_direct_children_only() {
        let mut n = ns();
        n.mkdir("/d", t(0)).unwrap();
        n.mkdir("/d/sub", t(0)).unwrap();
        n.create("/d/a", FileId(1), opts(), t(0)).unwrap();
        n.create("/d/sub/deep", FileId(2), opts(), t(0)).unwrap();
        n.create("/da", FileId(3), opts(), t(0)).unwrap(); // sibling prefix
        let mut names = n.list("/d").unwrap();
        names.sort();
        assert_eq!(names, vec!["a", "sub"]);
        let mut root = n.list("/").unwrap();
        root.sort();
        assert_eq!(root, vec!["d", "da"]);
    }

    #[test]
    fn remove_nonempty_dir_refused() {
        let mut n = ns();
        n.mkdir("/d", t(0)).unwrap();
        n.create("/d/a", FileId(1), opts(), t(0)).unwrap();
        assert_eq!(n.remove("/d", node(1)), Err(Error::NotEmpty));
        n.remove("/d/a", node(1)).unwrap();
        n.remove("/d", node(1)).unwrap();
    }

    #[test]
    fn commit_flow_advances_version() {
        let mut n = ns();
        n.create("/f", FileId(1), opts(), t(0)).unwrap();
        n.commit_begin("/f", Version::INITIAL, node(1), t(1)).unwrap();
        n.commit_end("/f", true, Version(1), 4096, node(1), t(1))
            .unwrap();
        let e = n.lookup("/f").unwrap();
        assert_eq!(e.version, Version(1));
        assert_eq!(e.size, 4096);
    }

    #[test]
    fn stale_base_is_refused() {
        let mut n = ns();
        n.create("/f", FileId(1), opts(), t(0)).unwrap();
        n.commit_begin("/f", Version::INITIAL, node(1), t(1)).unwrap();
        n.commit_end("/f", true, Version(1), 10, node(1), t(1))
            .unwrap();
        // A second writer based on v0 must conflict.
        assert_eq!(
            n.commit_begin("/f", Version::INITIAL, node(2), t(2)),
            Err(Error::VersionConflict)
        );
        // Based on v1 it goes through.
        n.commit_begin("/f", Version(1), node(2), t(2)).unwrap();
    }

    #[test]
    fn concurrent_commit_lease_blocks_second_writer() {
        let mut n = ns();
        n.create("/f", FileId(1), opts(), t(0)).unwrap();
        n.commit_begin("/f", Version::INITIAL, node(1), t(1)).unwrap();
        assert_eq!(
            n.commit_begin("/f", Version::INITIAL, node(2), t(2)),
            Err(Error::LeaseHeld)
        );
        // Abort releases the lease.
        n.commit_end("/f", false, Version::INITIAL, 0, node(1), t(3))
            .unwrap();
        n.commit_begin("/f", Version::INITIAL, node(2), t(3)).unwrap();
    }

    #[test]
    fn expired_lease_can_be_stolen() {
        let mut n = ns();
        n.create("/f", FileId(1), opts(), t(0)).unwrap();
        n.commit_begin("/f", Version::INITIAL, node(1), t(0)).unwrap();
        // fast_test lease = 10 s.
        assert_eq!(
            n.commit_begin("/f", Version::INITIAL, node(2), t(5)),
            Err(Error::LeaseHeld)
        );
        n.commit_begin("/f", Version::INITIAL, node(2), t(11)).unwrap();
        // The original holder lost its lease: its commit-end fails.
        assert_eq!(
            n.commit_end("/f", true, Version(1), 10, node(1), t(12)),
            Err(Error::LeaseHeld)
        );
    }

    #[test]
    fn shard_install_stub_is_idempotent() {
        let mut n = ns();
        let mut stub = root_entry();
        stub.created_ns = 1;
        n.shard_install("/d", &stub, false).unwrap();
        n.shard_install("/d", &stub, false).unwrap(); // resend: still Ok
        assert!(n.lookup("/d").unwrap().is_dir);
    }

    #[test]
    fn shard_install_transfer_checks_destination() {
        let mut n = ns();
        n.mkdir("/d", t(0)).unwrap();
        let fe = n.create("/seed", FileId(5), opts(), t(0)).unwrap();
        n.remove("/seed", node(1)).unwrap();
        n.shard_install("/d/f", &fe, true).unwrap();
        // Identical resend confirms; a different entry conflicts.
        n.shard_install("/d/f", &fe, true).unwrap();
        let mut other = fe.clone();
        other.file = FileId(6);
        assert_eq!(n.shard_install("/d/f", &other, true), Err(Error::AlreadyExists));
        // Missing destination parent is refused.
        assert_eq!(n.shard_install("/nodir/f", &fe, true), Err(Error::NotFound));
    }

    #[test]
    fn shard_drop_confirms_empty_and_tolerates_resends() {
        let mut n = ns();
        n.mkdir("/d", t(0)).unwrap();
        n.create("/d/f", FileId(1), opts(), t(0)).unwrap();
        assert_eq!(n.shard_drop("/d", true), Err(Error::NotEmpty));
        n.remove("/d/f", node(1)).unwrap();
        n.shard_drop("/d", true).unwrap();
        n.shard_drop("/d", true).unwrap(); // stub already gone: confirm
        assert_eq!(n.lookup("/d"), Err(Error::NotFound));
    }

    #[test]
    fn state_survives_crash_via_backend() {
        let mut n = ns();
        n.create("/f", FileId(7), opts(), t(0)).unwrap();
        n.commit_begin("/f", Version::INITIAL, node(1), t(1)).unwrap();
        n.commit_end("/f", true, Version(1), 99, node(1), t(1))
            .unwrap();
        // Crash: park the backend (what Node::on_crash does).
        n.on_crash();
        assert!(n.db.is_none());
        // Recover (what on_start does).
        let db = Db::open(n.parked_backend.take().unwrap(), DbConfig::default()).unwrap();
        n.db = Some(db);
        let e = n.lookup("/f").unwrap();
        assert_eq!(e.version, Version(1));
        assert_eq!(e.size, 99);
    }
}
