//! The transport abstraction shared by the simulator and the real
//! runtime.
//!
//! Every Sorrento state machine (storage provider, namespace server,
//! client) is written against [`Transport`] instead of the simulator's
//! concrete [`Ctx`] handle. The trait mirrors the `Ctx` surface
//! exactly, so:
//!
//! * In the simulator, `Ctx<'_, M>` implements `Transport<M>` by plain
//!   delegation — the generic protocol code monomorphizes to the same
//!   calls it made before the trait existed, and seeded event streams
//!   stay bit-for-bit identical.
//! * In the real-process runtime (`sorrento-net`), a wall-clock context
//!   implements the same trait over TCP sockets, OS timers and a real
//!   metrics registry, and the *same* protocol code runs unchanged.
//!
//! Time is `SimTime` in both worlds: a plain nanosecond counter. The
//! simulator advances it through the event queue; the real runtime
//! feeds it nanoseconds elapsed since daemon start, so soft-state types
//! keyed on `SimTime` (membership views, location tables, shadow TTLs)
//! work identically.

use rand::rngs::SmallRng;
use sorrento_sim::{Ctx, DiskAccess, DiskState, Dur, Metrics, NodeId, Payload, SimTime, TelemetryEvent, TimerId};

use crate::proto::Msg;

/// The environment a Sorrento state machine runs in: identity, clock,
/// message delivery, timers, local disk, RNG, metrics and telemetry.
///
/// Defaults to the Sorrento wire protocol ([`Msg`]); the parameter
/// exists so the trait stays usable for auxiliary machines with their
/// own message enums.
pub trait Transport<M: Payload = Msg> {
    /// This node's id.
    fn id(&self) -> NodeId;

    /// Current time (virtual in the simulator, monotonic nanoseconds
    /// since start in the real runtime).
    fn now(&self) -> SimTime;

    /// Send `msg` to `dst` now. Delivery is best-effort: a dead or
    /// unreachable destination drops the message silently, and the
    /// sender learns about it only through its own timeouts.
    fn send(&mut self, dst: NodeId, msg: M);

    /// Send `msg` to `dst`, handing it to the network at `at` (≥ now).
    /// Used to emit a reply after a modeled CPU or disk completion; the
    /// real runtime sends immediately (the work already took real time).
    fn send_at(&mut self, at: SimTime, dst: NodeId, msg: M);

    /// Deliver `msg` to every known live peer except this node
    /// (Ethernet multicast in the simulator, peer-list fan-out in the
    /// real runtime).
    fn multicast(&mut self, msg: M);

    /// Deliver `msg` back to this node after `delay`.
    fn set_timer(&mut self, delay: Dur, msg: M) -> TimerId;

    /// Cancel a pending timer (no-op if already fired).
    fn cancel_timer(&mut self, id: TimerId);

    /// Charge `service` of CPU time; returns the completion instant
    /// (pass to [`Transport::send_at`]). The real runtime returns `now`.
    fn cpu(&mut self, service: Dur) -> SimTime;

    /// Submit a disk request; returns its completion time.
    fn disk_submit(&mut self, bytes: u64, access: DiskAccess) -> SimTime;

    /// This node's disk state (capacity accounting, load sampling).
    fn disk(&mut self) -> &mut DiskState;

    /// The physical machine `id` runs on (infrastructure knowledge,
    /// like an IP address; drives locality placement).
    fn machine_of(&self, id: NodeId) -> u32;

    /// The deterministic RNG (seeded per run in the simulator, per
    /// process in the real runtime).
    fn rng(&mut self) -> &mut SmallRng;

    /// The metrics sink.
    fn metrics(&mut self) -> &mut Metrics;

    /// Record a telemetry event into this node's bounded event log.
    fn record(&mut self, ev: TelemetryEvent);
}

impl<M: Payload> Transport<M> for Ctx<'_, M> {
    fn id(&self) -> NodeId {
        Ctx::id(self)
    }
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }
    fn send(&mut self, dst: NodeId, msg: M) {
        Ctx::send(self, dst, msg)
    }
    fn send_at(&mut self, at: SimTime, dst: NodeId, msg: M) {
        Ctx::send_at(self, at, dst, msg)
    }
    fn multicast(&mut self, msg: M) {
        Ctx::multicast(self, msg)
    }
    fn set_timer(&mut self, delay: Dur, msg: M) -> TimerId {
        Ctx::set_timer(self, delay, msg)
    }
    fn cancel_timer(&mut self, id: TimerId) {
        Ctx::cancel_timer(self, id)
    }
    fn cpu(&mut self, service: Dur) -> SimTime {
        Ctx::cpu(self, service)
    }
    fn disk_submit(&mut self, bytes: u64, access: DiskAccess) -> SimTime {
        Ctx::disk_submit(self, bytes, access)
    }
    fn disk(&mut self) -> &mut DiskState {
        Ctx::disk(self)
    }
    fn machine_of(&self, id: NodeId) -> u32 {
        Ctx::machine_of(self, id)
    }
    fn rng(&mut self) -> &mut SmallRng {
        Ctx::rng(self)
    }
    fn metrics(&mut self) -> &mut Metrics {
        Ctx::metrics(self)
    }
    fn record(&mut self, ev: TelemetryEvent) {
        Ctx::record(self, ev)
    }
}
