#![warn(missing_docs)]

//! # sorrento-workloads — the paper's workloads, regenerated
//!
//! Generators and trace replay for every workload §4 evaluates:
//!
//! * [`smallfile`] — the §4.1 interactive microbenchmarks: the
//!   create/write/read/unlink latency script (Figure 9) and the endless
//!   create–write–close session loop (Figure 10);
//! * [`bulk`] — the §4.2.1 `bulkread`/`bulkwrite` microbenchmarks: 4 MB
//!   requests at random 4 KB-aligned offsets over sets of 512 MB files
//!   (Figures 11 and 13);
//! * [`crawler`] — the §4.4 Ask Jeeves crawler: heavy-tailed
//!   pages-per-domain (hundreds to millions), >10× crawler speed
//!   discrepancy, pages appended to one file per domain (Figure 14);
//! * [`psm`] — the §4.2.2/§4.5 parallel Protein Sequence Matching
//!   service: 24 partitions of 1–1.5 GB, each service process scanning
//!   its 3 assigned partitions per query (Figures 12 and 15);
//! * [`btio`] — the §4.2.2 NAS BTIO replay: block-tridiagonal solution
//!   checkpoints written as disjoint byte ranges through the
//!   versioning-off mode, then read back (Figure 12);
//! * [`replay`] — record/replay adapters bridging
//!   [`sorrento_trace::Trace`] and the [`Workload`] trait.
//!
//! All generators take a scale factor so the same code drives quick unit
//! tests and full-size experiment runs.

pub mod btio;
pub mod bulk;
pub mod crawler;
pub mod psm;
pub mod replay;
pub mod smallfile;

pub use replay::{ReplayMode, TraceRecorder, TraceReplayer};

use sorrento::client::Workload;

/// Convenience: a boxed workload.
pub type BoxedWorkload = Box<dyn Workload>;
