//! §4.1 small-file microbenchmarks.
//!
//! *Interactive responses* (Figure 9): "create repeatedly creates a new
//! file then closes it immediately. write repeatedly opens the files
//! created by create, writes 12KB data into it, then closes it. read
//! repeatedly opens the files written by write, reads 12KB data from it,
//! then closes it. unlink unlinks all the files created by create."
//!
//! *Sustained throughput* (Figure 10): "multiple client processes
//! simultaneously, each of which repeatedly creates a file, writes 12KB
//! into it, and closes it" — counted as sessions/second.

use sorrento::client::{ClientOp, OpResult, Workload};
use sorrento_sim::SimTime;

/// The 12 KB request size used throughout §4.1.
pub const SMALL_IO: u64 = 12 * 1024;

/// Figure 9's four-phase latency script over `n` files under `dir`.
/// Returns the op list; per-phase latencies come out of
/// `ClientStats::latencies` keyed by op kind.
pub fn latency_script(dir: &str, n: usize) -> Vec<ClientOp> {
    let mut ops = Vec::with_capacity(4 * n + 1);
    ops.push(ClientOp::Mkdir { path: dir.to_string() });
    let path = |i: usize| format!("{dir}/f{i}");
    // Phase 1: create.
    for i in 0..n {
        ops.push(ClientOp::Create { path: path(i) });
        ops.push(ClientOp::Close);
    }
    // Phase 2: write 12 KB.
    for i in 0..n {
        ops.push(ClientOp::Open { path: path(i), write: true });
        ops.push(ClientOp::write_synth(0, SMALL_IO));
        ops.push(ClientOp::Close);
    }
    // Phase 3: read 12 KB.
    for i in 0..n {
        ops.push(ClientOp::Open { path: path(i), write: false });
        ops.push(ClientOp::Read { offset: 0, len: SMALL_IO });
        ops.push(ClientOp::Close);
    }
    // Phase 4: unlink.
    for i in 0..n {
        ops.push(ClientOp::Unlink { path: path(i) });
    }
    ops
}

/// Figure 10's endless session loop: create → write 12 KB → close,
/// with a fresh file each iteration. [`SessionLoop::sessions`] counts
/// completed sessions for throughput reporting.
pub struct SessionLoop {
    prefix: String,
    i: u64,
    stage: u8,
    /// Completed (create, write, close) sessions.
    pub sessions: u64,
    /// When each session completed (for warmup trimming).
    pub session_times: Vec<SimTime>,
}

impl SessionLoop {
    /// Sessions create files named `{prefix}-{n}`.
    pub fn new(prefix: impl Into<String>) -> SessionLoop {
        SessionLoop {
            prefix: prefix.into(),
            i: 0,
            stage: 0,
            sessions: 0,
            session_times: Vec::new(),
        }
    }
}

impl Workload for SessionLoop {
    fn next_op(&mut self, _now: SimTime, _rng: &mut rand::rngs::SmallRng) -> Option<ClientOp> {
        let op = match self.stage {
            0 => ClientOp::Create {
                path: format!("{}-{}", self.prefix, self.i),
            },
            1 => ClientOp::write_synth(0, SMALL_IO),
            _ => ClientOp::Close,
        };
        self.stage = (self.stage + 1) % 3;
        if self.stage == 0 {
            self.i += 1;
        }
        Some(op)
    }

    fn on_result(&mut self, op: &ClientOp, result: &OpResult, now: SimTime) {
        if matches!(op, ClientOp::Close) && result.is_ok() {
            self.sessions += 1;
            self.session_times.push(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn latency_script_shape() {
        let ops = latency_script("/bench", 3);
        let creates = ops.iter().filter(|o| o.kind() == "create").count();
        let writes = ops.iter().filter(|o| o.kind() == "write").count();
        let reads = ops.iter().filter(|o| o.kind() == "read").count();
        let unlinks = ops.iter().filter(|o| o.kind() == "unlink").count();
        assert_eq!((creates, writes, reads, unlinks), (3, 3, 3, 3));
        // Phases are ordered: all creates before all writes, etc.
        let first_write = ops.iter().position(|o| o.kind() == "write").unwrap();
        let last_create = ops.iter().rposition(|o| o.kind() == "create").unwrap();
        assert!(last_create < first_write);
    }

    #[test]
    fn session_loop_cycles() {
        let mut w = SessionLoop::new("/t/x");
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let kinds: Vec<&str> = (0..6)
            .map(|_| w.next_op(SimTime::ZERO, &mut rng).unwrap().kind())
            .collect();
        assert_eq!(kinds, vec!["create", "write", "close", "create", "write", "close"]);
        // Distinct file per session.
        if let Some(ClientOp::Create { path }) = w.next_op(SimTime::ZERO, &mut rng) {
            assert_eq!(path, "/t/x-2");
        } else {
            panic!("expected create");
        }
    }
}
