//! §4.2.2's NAS BTIO replay (class-B-like volume, scaled).
//!
//! BTIO solves a block-tridiagonal system; every few timesteps each MPI
//! rank writes its (non-contiguous) share of the solution array into one
//! shared file via MPI-IO list writes, and at the end the file is read
//! back for verification. The paper replays this through Sorrento's
//! byte-range primitive: "BTIO uses PVFS's list-write primitive, which
//! is emulated in Sorrento through asynchronous I/O calls, and we
//! disabled version-based data management to support concurrent writes
//! to different byte ranges."
//!
//! Totals in the paper: "four trace replayers wrote 2.7GB data and read
//! 1.7GB data."

use sorrento::client::ClientOp;
use sorrento::types::{FileOptions, Organization};
use sorrento_trace::{Trace, TraceOp};

/// BTIO replay parameters.
#[derive(Debug, Clone, Copy)]
pub struct BtioConfig {
    /// Number of replayer ranks (4 in the paper).
    pub ranks: usize,
    /// Total bytes written across all ranks (2.7 GB in the paper).
    pub write_total: u64,
    /// Total bytes read back across all ranks (1.7 GB in the paper).
    pub read_total: u64,
    /// Bytes per list-write piece (one rank's contiguous cell run).
    pub piece: u64,
    /// Number of dump steps (appends interleave across steps).
    pub steps: u64,
}

impl Default for BtioConfig {
    fn default() -> Self {
        BtioConfig {
            ranks: 4,
            write_total: 2_700 << 20,
            read_total: 1_700 << 20,
            piece: 1 << 20,
            steps: 20,
        }
    }
}

/// Path of the shared solution file.
pub const SOLUTION_PATH: &str = "/btio-solution";

/// File options for the shared solution file: striped for parallel I/O,
/// versioning disabled for byte-range sharing.
pub fn solution_options(cfg: &BtioConfig, stripes: u32) -> FileOptions {
    FileOptions {
        organization: Organization::Striped {
            stripes,
            max_size: cfg.write_total,
        },
        versioning_off: true,
        ..FileOptions::default()
    }
}

/// The coordinator's script: create and pre-size the shared file (rank 0
/// creates the file in MPI-IO; sizing up front keeps the index stable so
/// concurrent ranks never contend on it).
pub fn coordinator_script(cfg: &BtioConfig, stripes: u32) -> Vec<ClientOp> {
    vec![
        ClientOp::CreateWith {
            path: SOLUTION_PATH.into(),
            options: solution_options(cfg, stripes),
        },
        ClientOp::write_synth(0, cfg.write_total),
        ClientOp::Close,
    ]
}

/// Build rank `r`'s trace: per step, write its interleaved byte ranges;
/// at the end, read back its share for verification.
pub fn rank_trace(cfg: &BtioConfig, r: usize) -> Trace {
    let mut t = Trace::new();
    t.push(TraceOp::Open {
        path: SOLUTION_PATH.into(),
        write: true,
    });
    let per_rank_write = cfg.write_total / cfg.ranks as u64;
    let per_step = per_rank_write / cfg.steps;
    let pieces_per_step = (per_step / cfg.piece).max(1);
    // Rank r owns every ranks-th piece (block-cyclic, like BT's cell
    // decomposition).
    for step in 0..cfg.steps {
        let step_base = step * (cfg.write_total / cfg.steps);
        for p in 0..pieces_per_step {
            let offset = step_base + (p * cfg.ranks as u64 + r as u64) * cfg.piece;
            if offset + cfg.piece <= cfg.write_total {
                t.push(TraceOp::Write {
                    offset,
                    len: cfg.piece,
                });
            }
        }
    }
    // Verification read-back of this rank's share of read_total.
    let per_rank_read = cfg.read_total / cfg.ranks as u64;
    let mut read = 0;
    let mut offset = (r as u64) * cfg.piece;
    while read < per_rank_read {
        let n = cfg.piece.min(per_rank_read - read);
        if offset + n > cfg.write_total {
            offset = (r as u64) * cfg.piece;
        }
        t.push(TraceOp::Read { offset, len: n });
        offset += cfg.ranks as u64 * cfg.piece;
        read += n;
    }
    t.push(TraceOp::Close);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_traces_cover_volumes() {
        let cfg = BtioConfig {
            ranks: 4,
            write_total: 256 << 20,
            read_total: 128 << 20,
            piece: 1 << 20,
            steps: 8,
        };
        let mut written = 0;
        let mut read = 0;
        for r in 0..cfg.ranks {
            let t = rank_trace(&cfg, r);
            written += t.bytes_written();
            read += t.bytes_read();
        }
        // Within a piece of the targets (block-cyclic truncation).
        assert!(written >= cfg.write_total * 9 / 10, "wrote {written}");
        assert!(written <= cfg.write_total);
        assert_eq!(read, cfg.read_total);
    }

    #[test]
    fn ranks_write_disjoint_ranges() {
        let cfg = BtioConfig {
            ranks: 2,
            write_total: 32 << 20,
            read_total: 8 << 20,
            piece: 1 << 20,
            steps: 2,
        };
        let collect = |r| -> Vec<(u64, u64)> {
            rank_trace(&cfg, r)
                .records
                .iter()
                .filter_map(|rec| match rec.op {
                    TraceOp::Write { offset, len } => Some((offset, offset + len)),
                    _ => None,
                })
                .collect()
        };
        let a = collect(0);
        let b = collect(1);
        for (s1, e1) in &a {
            for (s2, e2) in &b {
                assert!(e1 <= s2 || e2 <= s1, "overlap: [{s1},{e1}) vs [{s2},{e2})");
            }
        }
    }

    #[test]
    fn coordinator_presizes_file() {
        let cfg = BtioConfig::default();
        let ops = coordinator_script(&cfg, 8);
        assert_eq!(ops.len(), 3);
        match &ops[1] {
            ClientOp::Write { payload, .. } => assert_eq!(payload.len(), cfg.write_total),
            other => panic!("unexpected {other:?}"),
        }
    }
}
