//! §4.4's search-engine crawler (Ask Jeeves).
//!
//! "a number of crawlers are assigned disjoint sets of seed URLs ...
//! Pages from one domain are stored in a single file. ... the number of
//! pages from a single domain can range from hundreds to millions. And
//! there is typically a speed discrepancy of more than ten folds among
//! crawlers. The high skewness of the file size distribution and I/O
//! workload distribution makes it a good candidate to study ...
//! load-aware data placement and migration."

use rand::rngs::SmallRng;
use rand::Rng;
use sorrento::client::{ClientOp, OpResult, Workload};
use sorrento_sim::{Dur, SimTime};

/// Crawler parameters.
#[derive(Debug, Clone)]
pub struct CrawlerConfig {
    /// Domains this crawler owns.
    pub domains: usize,
    /// Minimum pages per domain.
    pub min_pages: u64,
    /// Zipf-like skew exponent for pages-per-domain (≥ 0; larger =
    /// heavier tail).
    pub skew: f64,
    /// Largest domain (pages).
    pub max_pages: u64,
    /// Bytes per page.
    pub page_bytes: u64,
    /// Pages fetched per write (pages buffer in memory, then append).
    pub pages_per_write: u64,
    /// Mean simulated Internet fetch latency per write batch; models the
    /// crawler's speed (vary per crawler for the >10× discrepancy).
    pub fetch_think: Dur,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            domains: 20,
            min_pages: 50,
            skew: 1.6,
            max_pages: 200_000,
            page_bytes: 10 * 1024,
            pages_per_write: 64,
            fetch_think: Dur::millis(400),
        }
    }
}

/// Sample a heavy-tailed pages-per-domain count: inverse-power transform
/// of a uniform draw, clamped to `[min_pages, max_pages]`.
pub fn sample_domain_pages(cfg: &CrawlerConfig, rng: &mut SmallRng) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let scaled = cfg.min_pages as f64 * u.powf(-cfg.skew);
    (scaled as u64).clamp(cfg.min_pages, cfg.max_pages)
}

/// One crawler process: for each owned domain, create the domain file
/// and append fetched pages batch by batch, thinking between batches to
/// model fetch latency.
pub struct Crawler {
    cfg: CrawlerConfig,
    id: String,
    /// Remaining pages for the current domain (`None` before it starts).
    domain: usize,
    remaining: Option<u64>,
    stage: u8,
    /// Total bytes stored so far.
    pub stored: u64,
    done: bool,
}

impl Crawler {
    /// A crawler with a unique id (used in its file paths).
    pub fn new(id: impl Into<String>, cfg: CrawlerConfig) -> Crawler {
        Crawler {
            cfg,
            id: id.into(),
            domain: 0,
            remaining: None,
            stage: 0,
            stored: 0,
            done: false,
        }
    }
}

impl Workload for Crawler {
    fn next_op(&mut self, _now: SimTime, rng: &mut SmallRng) -> Option<ClientOp> {
        if self.done {
            return None;
        }
        loop {
            match (self.stage, self.remaining) {
                // Start a new domain.
                (0, None) => {
                    if self.domain >= self.cfg.domains {
                        self.done = true;
                        return None;
                    }
                    self.remaining = Some(sample_domain_pages(&self.cfg, rng));
                    self.stage = 1;
                    return Some(ClientOp::Create {
                        path: format!("/crawl-{}-d{}", self.id, self.domain),
                    });
                }
                // Think (fetch pages from the Internet)...
                (1, Some(_)) => {
                    self.stage = 2;
                    // Jitter ±50% around the crawler's fetch latency.
                    let base = self.cfg.fetch_think.as_nanos();
                    let jitter = rng.gen_range(base / 2..=base * 3 / 2);
                    return Some(ClientOp::Think {
                        dur: Dur::nanos(jitter),
                    });
                }
                // ...then append the fetched batch.
                (2, Some(rem)) => {
                    let pages = self.cfg.pages_per_write.min(rem);
                    let bytes = pages * self.cfg.page_bytes;
                    let left = rem - pages;
                    if left == 0 {
                        self.remaining = None;
                        self.stage = 3; // close after this write
                    } else {
                        self.remaining = Some(left);
                        self.stage = 1;
                    }
                    return Some(ClientOp::append_synth(bytes));
                }
                // Domain finished: close its file.
                (3, None) => {
                    self.stage = 0;
                    self.domain += 1;
                    return Some(ClientOp::Close);
                }
                _ => {
                    // Inconsistent state: restart the domain loop.
                    self.stage = 0;
                    self.remaining = None;
                }
            }
        }
    }

    fn on_result(&mut self, op: &ClientOp, result: &OpResult, _now: SimTime) {
        if result.is_ok() && matches!(op, ClientOp::Append { .. }) {
            self.stored += result.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn domain_sizes_are_heavy_tailed() {
        let cfg = CrawlerConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let sizes: Vec<u64> = (0..5000).map(|_| sample_domain_pages(&cfg, &mut rng)).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(min >= cfg.min_pages);
        assert!(max <= cfg.max_pages);
        // Skewness: the largest domain dwarfs the median by orders of
        // magnitude ("hundreds to millions").
        let mut sorted = sizes.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        assert!(
            max > median * 50,
            "tail not heavy enough: max {max}, median {median}"
        );
    }

    #[test]
    fn crawler_emits_create_think_append_close_cycles() {
        let cfg = CrawlerConfig {
            domains: 2,
            min_pages: 10,
            max_pages: 10,
            pages_per_write: 10,
            ..CrawlerConfig::default()
        };
        let mut c = Crawler::new("c0", cfg);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut kinds = Vec::new();
        while let Some(op) = c.next_op(SimTime::ZERO, &mut rng) {
            kinds.push(op.kind());
            if kinds.len() > 20 {
                break;
            }
        }
        assert_eq!(
            kinds,
            vec![
                "create", "think", "append", "close", "create", "think", "append", "close"
            ]
        );
    }

    #[test]
    fn crawler_accounts_bytes() {
        let cfg = CrawlerConfig {
            domains: 1,
            min_pages: 10,
            max_pages: 10,
            pages_per_write: 4,
            page_bytes: 100,
            ..CrawlerConfig::default()
        };
        let mut c = Crawler::new("c0", cfg);
        let mut rng = SmallRng::seed_from_u64(5);
        while let Some(op) = c.next_op(SimTime::ZERO, &mut rng) {
            let bytes = match &op {
                ClientOp::Append { payload } => payload.len(),
                _ => 0,
            };
            c.on_result(
                &op,
                &OpResult {
                    error: None,
                    bytes,
                    latency: Dur::millis(1),
                    data: None,
                    span: 0,
                },
                SimTime::ZERO,
            );
        }
        assert_eq!(c.stored, 1000); // 10 pages × 100 bytes
    }
}
