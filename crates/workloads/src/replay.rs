//! Bridging [`Trace`]s and the [`Workload`] trait: replay a trace
//! against any backend, or record what a workload actually did.

use sorrento::client::{ClientOp, OpResult, Workload};
use sorrento::store::WritePayload;
use sorrento_sim::{Dur, SimTime};
use sorrento_trace::{Trace, TraceOp, TraceRecord};

/// How recorded timing is honoured during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Ignore gaps: issue requests back-to-back, as fast as they
    /// complete (§4.2.2).
    AsFast,
    /// Reproduce `Gap` records as think time (§4.4, §4.5).
    Faithful,
}

/// A [`Workload`] that replays a [`Trace`]. Payloads are synthetic
/// (lengths only), as in real I/O traces.
pub struct TraceReplayer {
    ops: std::vec::IntoIter<TraceRecord>,
    mode: ReplayMode,
    /// Completed logical queries: `(finish time, accumulated I/O time)`,
    /// delimited by `QueryBoundary` records (Figure 15's y-axis).
    pub query_io: Vec<(SimTime, Dur)>,
    current_query_io: Dur,
}

impl TraceReplayer {
    /// Replay `trace` under `mode`.
    pub fn new(trace: Trace, mode: ReplayMode) -> TraceReplayer {
        TraceReplayer {
            ops: trace.records.into_iter(),
            mode,
            query_io: Vec::new(),
            current_query_io: Dur::ZERO,
        }
    }
}

impl Workload for TraceReplayer {
    fn next_op(&mut self, now: SimTime, _rng: &mut rand::rngs::SmallRng) -> Option<ClientOp> {
        loop {
            let rec = self.ops.next()?;
            let op = match rec.op {
                TraceOp::Create { path } => ClientOp::Create { path },
                TraceOp::Open { path, write } => ClientOp::Open { path, write },
                TraceOp::Read { offset, len } => ClientOp::Read { offset, len },
                TraceOp::Write { offset, len } => ClientOp::Write {
                    offset,
                    payload: WritePayload::Synthetic { len },
                },
                TraceOp::Append { len } => ClientOp::Append {
                    payload: WritePayload::Synthetic { len },
                },
                TraceOp::Sync => ClientOp::Sync,
                TraceOp::Close => ClientOp::Close,
                TraceOp::Unlink { path } => ClientOp::Unlink { path },
                TraceOp::Mkdir { path } => ClientOp::Mkdir { path },
                TraceOp::Gap { ns } => {
                    if self.mode == ReplayMode::Faithful && ns > 0 {
                        return Some(ClientOp::Think { dur: Dur::nanos(ns) });
                    }
                    continue;
                }
                TraceOp::QueryBoundary => {
                    self.query_io.push((now, self.current_query_io));
                    self.current_query_io = Dur::ZERO;
                    continue;
                }
            };
            return Some(op);
        }
    }

    fn on_result(&mut self, op: &ClientOp, result: &OpResult, _now: SimTime) {
        // Accumulate the I/O portion of the current query (Figure 15
        // reports "the I/O portion of the service time").
        if !matches!(op, ClientOp::Think { .. }) {
            self.current_query_io += result.latency;
        }
    }
}

/// Wraps a workload and records everything it issues (with issue times
/// and completion durations) into a [`Trace`] — the role of the paper's
/// glibc/PVFS-library interception shims.
pub struct TraceRecorder<W> {
    inner: W,
    /// The captured trace (read it out after the run).
    pub trace: Trace,
    last_issue: Option<SimTime>,
}

impl<W: Workload> TraceRecorder<W> {
    /// Record everything `inner` does.
    pub fn new(inner: W) -> TraceRecorder<W> {
        TraceRecorder {
            inner,
            trace: Trace::new(),
            last_issue: None,
        }
    }
}

fn op_to_trace(op: &ClientOp) -> Option<TraceOp> {
    Some(match op {
        ClientOp::Create { path } | ClientOp::CreateWith { path, .. } => TraceOp::Create {
            path: path.clone(),
        },
        ClientOp::Open { path, write } => TraceOp::Open {
            path: path.clone(),
            write: *write,
        },
        ClientOp::Read { offset, len } => TraceOp::Read {
            offset: *offset,
            len: *len,
        },
        ClientOp::Write { offset, payload } => TraceOp::Write {
            offset: *offset,
            len: payload.len(),
        },
        ClientOp::Append { payload } | ClientOp::AtomicAppend { payload } => TraceOp::Append {
            len: payload.len(),
        },
        ClientOp::Sync => TraceOp::Sync,
        ClientOp::Close => TraceOp::Close,
        ClientOp::Unlink { path } => TraceOp::Unlink { path: path.clone() },
        ClientOp::Mkdir { path } => TraceOp::Mkdir { path: path.clone() },
        ClientOp::Think { dur } => TraceOp::Gap { ns: dur.as_nanos() },
        ClientOp::Stat { .. } | ClientOp::List { .. } | ClientOp::Rename { .. } => return None,
    })
}

impl<W: Workload> Workload for TraceRecorder<W> {
    fn next_op(&mut self, now: SimTime, rng: &mut rand::rngs::SmallRng) -> Option<ClientOp> {
        let op = self.inner.next_op(now, rng)?;
        if let Some(top) = op_to_trace(&op) {
            self.trace.push_at(now.nanos(), None, top);
            self.last_issue = Some(now);
        }
        Some(op)
    }

    fn on_result(&mut self, op: &ClientOp, result: &OpResult, now: SimTime) {
        if let Some(rec) = self.trace.records.last_mut() {
            if rec.dur_ns.is_none() {
                rec.dur_ns = Some(result.latency.as_nanos());
            }
        }
        self.inner.on_result(op, result, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(0)
    }

    #[test]
    fn replayer_converts_ops() {
        let mut t = Trace::new();
        t.push(TraceOp::Create { path: "/f".into() })
            .push(TraceOp::Write { offset: 0, len: 100 })
            .push(TraceOp::Gap { ns: 5_000_000 })
            .push(TraceOp::Close);
        let mut r = TraceReplayer::new(t.clone(), ReplayMode::Faithful);
        let mut kinds = Vec::new();
        while let Some(op) = r.next_op(SimTime::ZERO, &mut rng()) {
            kinds.push(op.kind());
        }
        assert_eq!(kinds, vec!["create", "write", "think", "close"]);
        // AsFast skips the gap.
        let mut r = TraceReplayer::new(t, ReplayMode::AsFast);
        let mut kinds = Vec::new();
        while let Some(op) = r.next_op(SimTime::ZERO, &mut rng()) {
            kinds.push(op.kind());
        }
        assert_eq!(kinds, vec!["create", "write", "close"]);
    }

    #[test]
    fn query_boundaries_aggregate_io_time() {
        let mut t = Trace::new();
        t.push(TraceOp::Read { offset: 0, len: 10 })
            .push(TraceOp::QueryBoundary)
            .push(TraceOp::Read { offset: 0, len: 10 })
            .push(TraceOp::QueryBoundary);
        let mut r = TraceReplayer::new(t, ReplayMode::AsFast);
        let mut now = SimTime::ZERO;
        while let Some(op) = r.next_op(now, &mut rng()) {
            now += Dur::millis(7);
            r.on_result(
                &op,
                &OpResult {
                    error: None,
                    bytes: 10,
                    latency: Dur::millis(7),
                    data: None,
                    span: 0,
                },
                now,
            );
        }
        // Trailing boundary is consumed on the final next_op call.
        assert_eq!(r.query_io.len(), 2);
        assert_eq!(r.query_io[0].1, Dur::millis(7));
        assert_eq!(r.query_io[1].1, Dur::millis(7));
    }

    #[test]
    fn recorder_captures_what_ran() {
        use sorrento::cluster::ScriptedWorkload;
        let inner = ScriptedWorkload::new(vec![
            ClientOp::Create { path: "/x".into() },
            ClientOp::write_synth(0, 4096),
            ClientOp::Close,
        ]);
        let mut rec = TraceRecorder::new(inner);
        let mut now = SimTime::ZERO;
        while let Some(op) = rec.next_op(now, &mut rng()) {
            now += Dur::millis(1);
            rec.on_result(
                &op,
                &OpResult {
                    error: None,
                    bytes: 0,
                    latency: Dur::millis(1),
                    data: None,
                    span: 0,
                },
                now,
            );
        }
        assert_eq!(rec.trace.len(), 3);
        assert_eq!(rec.trace.bytes_written(), 4096);
        assert!(rec.trace.records.iter().all(|r| r.dur_ns == Some(1_000_000)));
        // Round-trip: the recorded trace replays to the same op kinds.
        let mut rep = TraceReplayer::new(rec.trace.clone(), ReplayMode::AsFast);
        let mut kinds = Vec::new();
        while let Some(op) = rep.next_op(SimTime::ZERO, &mut rng()) {
            kinds.push(op.kind());
        }
        assert_eq!(kinds, vec!["create", "write", "close"]);
    }
}
