//! §4.2.1 large-file microbenchmarks.
//!
//! "benchmark bulkread repeatedly reads 4MB data at random offsets
//! (aligned at 4KB boundary) from a set of 512MB-large files. Similarly,
//! benchmark bulkwrite repeatedly writes 4MB data at random offsets ...
//! In each run, a client reads or writes 256MB data." Different clients
//! access disjoint file sets; datasets exceed memory so caching is moot.

use rand::Rng;
use sorrento::client::{ClientOp, OpResult, Workload};
use sorrento::types::{FileOptions, Organization};
use sorrento_sim::SimTime;

/// Request size (4 MB).
pub const BULK_IO: u64 = 4 << 20;
/// Offset alignment (4 KB).
pub const ALIGN: u64 = 4 << 10;
/// File size (512 MB).
pub const FILE_SIZE: u64 = 512 << 20;

/// Script that pre-populates `count` files of `size` bytes under
/// `prefix` (synthetic payloads, written in 32 MB slabs).
pub fn populate_script(prefix: &str, count: usize, size: u64, options: FileOptions) -> Vec<ClientOp> {
    let slab = 32 << 20;
    let mut ops = Vec::new();
    for i in 0..count {
        ops.push(ClientOp::CreateWith {
            path: format!("{prefix}{i}"),
            options,
        });
        let mut off = 0;
        while off < size {
            let n = slab.min(size - off);
            ops.push(ClientOp::write_synth(off, n));
            off += n;
        }
        ops.push(ClientOp::Close);
    }
    ops
}

/// Default file options for the bulk benchmarks: hybrid organization so
/// large files spread over multiple providers (the paper's parallel-I/O
/// configuration).
pub fn bulk_options() -> FileOptions {
    FileOptions {
        organization: Organization::Hybrid { group_stripes: 4 },
        ..FileOptions::default()
    }
}

/// Read or write mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkMode {
    /// 4 MB random-offset reads.
    Read,
    /// 4 MB random-offset writes (committed per request via sync).
    Write,
}

/// The bulkread/bulkwrite client: random 4 MB requests over its own file
/// set until `quota` bytes are transferred (256 MB in the paper), or
/// forever if `quota` is `None` (Figure 13's constant workload).
pub struct BulkIo {
    prefix: String,
    file_count: usize,
    file_size: u64,
    mode: BulkMode,
    quota: Option<u64>,
    stage: u8,
    current_file: usize,
    moved: u64,
    /// `(completion time, bytes)` per finished request — the harness
    /// derives transfer-rate time series (Figure 13) from this.
    pub transfers: Vec<(SimTime, u64)>,
    /// Consecutive failures; the workload aborts after 50 so a broken
    /// backend cannot spin forever.
    fail_streak: u32,
}

impl BulkIo {
    /// A client over files `{prefix}{0..file_count}` of `file_size`.
    pub fn new(
        prefix: impl Into<String>,
        file_count: usize,
        file_size: u64,
        mode: BulkMode,
        quota: Option<u64>,
    ) -> BulkIo {
        BulkIo {
            prefix: prefix.into(),
            file_count,
            file_size,
            mode,
            quota,
            stage: 0,
            current_file: 0,
            moved: 0,
            transfers: Vec::new(),
            fail_streak: 0,
        }
    }

    /// Bytes transferred so far.
    pub fn moved(&self) -> u64 {
        self.moved
    }
}

impl Workload for BulkIo {
    fn next_op(&mut self, _now: SimTime, rng: &mut rand::rngs::SmallRng) -> Option<ClientOp> {
        if self.fail_streak > 50 {
            return None;
        }
        if let Some(q) = self.quota {
            if self.moved >= q {
                // Close whatever is open, then stop.
                if self.stage == 1 {
                    self.stage = 0;
                    return Some(ClientOp::Close);
                }
                return None;
            }
        }
        match self.stage {
            0 => {
                // Open the next file in the set (round-robin).
                self.current_file = (self.current_file + 1) % self.file_count.max(1);
                self.stage = 1;
                Some(ClientOp::Open {
                    path: format!("{}{}", self.prefix, self.current_file),
                    write: self.mode == BulkMode::Write,
                })
            }
            _ => {
                // A batch of random requests against the open file, then
                // close and rotate. Writes commit per request (each
                // request is an independent update, as in the paper's
                // benchmark where every write must land).
                let max_off = (self.file_size - BULK_IO) / ALIGN;
                let offset = rng.gen_range(0..=max_off) * ALIGN;
                self.stage += 1;
                if self.stage >= 10 {
                    self.stage = 1;
                }
                match self.mode {
                    BulkMode::Read => Some(ClientOp::Read {
                        offset,
                        len: BULK_IO,
                    }),
                    BulkMode::Write => Some(ClientOp::write_synth(offset, BULK_IO)),
                }
            }
        }
    }

    fn on_result(&mut self, op: &ClientOp, result: &OpResult, now: SimTime) {
        if !result.is_ok() {
            self.fail_streak += 1;
            return;
        }
        self.fail_streak = 0;
        match op {
            ClientOp::Read { .. } | ClientOp::Write { .. } => {
                self.moved += result.bytes;
                self.transfers.push((now, result.bytes));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn populate_covers_whole_files() {
        let ops = populate_script("/b/f", 2, 100 << 20, bulk_options());
        let creates = ops.iter().filter(|o| o.kind() == "create").count();
        let writes: u64 = ops
            .iter()
            .filter_map(|o| match o {
                ClientOp::Write { payload, .. } => Some(payload.len()),
                _ => None,
            })
            .sum();
        assert_eq!(creates, 2);
        assert_eq!(writes, 2 * (100 << 20));
    }

    #[test]
    fn requests_are_aligned_and_in_bounds() {
        let mut w = BulkIo::new("/b/f", 2, FILE_SIZE, BulkMode::Read, Some(64 << 20));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut reads = 0;
        for _ in 0..200 {
            let Some(op) = w.next_op(SimTime::ZERO, &mut rng) else {
                break;
            };
            if let ClientOp::Read { offset, len } = op {
                assert_eq!(offset % ALIGN, 0);
                assert!(offset + len <= FILE_SIZE);
                reads += 1;
                w.on_result(
                    &ClientOp::Read { offset, len },
                    &OpResult {
                        error: None,
                        bytes: len,
                        latency: sorrento_sim::Dur::millis(1),
                        data: None,
                        span: 0,
                    },
                    SimTime::ZERO,
                );
            }
        }
        assert!(reads >= 16, "quota should allow 16 reads, got {reads}");
        // Quota reached: drained.
        assert_eq!(w.moved(), 64 << 20);
    }

    #[test]
    fn write_mode_emits_writes() {
        let mut w = BulkIo::new("/b/f", 1, FILE_SIZE, BulkMode::Write, None);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let kinds: Vec<&str> = (0..4)
            .map(|_| w.next_op(SimTime::ZERO, &mut rng).unwrap().kind())
            .collect();
        assert_eq!(kinds[0], "open");
        assert!(kinds[1..].iter().all(|k| *k == "write"));
    }
}
