//! §4.2.2 / §4.5's parallel Protein Sequence Matching service (PSM,
//! based on NCBI Blast).
//!
//! "the total dataset consists of 24 partitions, each of which is
//! between 1GB and 1.5GB. Each PSM service process is statically
//! assigned a disjoint set of three partitions. To serve a request, a
//! PSM service process performs a local search on its assigned
//! partitions" — i.e. scans parts of each partition per query, with
//! think time between queries from the traced query arrival gaps.

use rand::rngs::SmallRng;
use rand::Rng;
use sorrento::client::{ClientOp, OpResult, Workload};
use sorrento::types::{FileOptions, PlacementPolicy};
use sorrento_sim::{Dur, SimTime};

/// PSM deployment parameters.
#[derive(Debug, Clone)]
pub struct PsmConfig {
    /// Total number of database partitions (24 in the paper).
    pub partitions: usize,
    /// Partitions per service process (3 in the paper).
    pub per_process: usize,
    /// Minimum partition size (1 GB in the paper; scale down for tests).
    pub min_partition: u64,
    /// Maximum partition size (1.5 GB in the paper).
    pub max_partition: u64,
    /// Bytes scanned per partition per query.
    pub scan_per_query: u64,
    /// Scan request chunk size.
    pub chunk: u64,
    /// Mean think time between queries (query arrival gap).
    pub query_gap: Dur,
    /// Queries each process serves (`None` = unbounded).
    pub queries: Option<u64>,
}

impl Default for PsmConfig {
    fn default() -> Self {
        PsmConfig {
            partitions: 24,
            per_process: 3,
            min_partition: 1 << 30,
            max_partition: 3 << 29, // 1.5 GB
            scan_per_query: 256 << 10,
            chunk: 128 << 10,
            query_gap: Dur::millis(300),
            queries: None,
        }
    }
}

/// Path of partition `i`.
pub fn partition_path(i: usize) -> String {
    format!("/psm-part{i}")
}

/// Deterministic size of partition `i` within the configured band.
pub fn partition_size(cfg: &PsmConfig, i: usize) -> u64 {
    let span = cfg.max_partition - cfg.min_partition;
    cfg.min_partition + (i as u64 * 2_654_435_761) % span.max(1)
}

/// Script that imports all partitions (run by a loader client before the
/// service starts). Uses the locality-driven placement policy when
/// `locality` is set (§4.5) so the partitions can migrate toward their
/// service processes.
pub fn import_script(cfg: &PsmConfig, locality: Option<f64>) -> Vec<ClientOp> {
    let options = FileOptions {
        placement: match locality {
            Some(threshold) => PlacementPolicy::LocalityDriven { threshold },
            None => PlacementPolicy::LoadAware,
        },
        ..FileOptions::default()
    };
    let slab = 64 << 20;
    let mut ops = Vec::new();
    for i in 0..cfg.partitions {
        ops.push(ClientOp::CreateWith {
            path: partition_path(i),
            options,
        });
        let size = partition_size(cfg, i);
        let mut off = 0;
        while off < size {
            let n = slab.min(size - off);
            ops.push(ClientOp::write_synth(off, n));
            off += n;
        }
        ops.push(ClientOp::Close);
    }
    ops
}

/// One PSM service process: per query, scan a random window of the next
/// assigned partition (round-robin across its set — the partitions hold
/// disjoint database shards, so each query's matching work walks one
/// shard at a time), then idle until the next query arrives.
pub struct PsmService {
    cfg: PsmConfig,
    /// Partition indices assigned to this process.
    parts: Vec<usize>,
    /// Current position in the per-query scan plan.
    stage: PsmStage,
    queries_done: u64,
    /// `(query completion time, I/O time within the query)` — Figure 15's
    /// per-query I/O time series.
    pub query_io: Vec<(SimTime, Dur)>,
    current_io: Dur,
}

#[derive(Debug)]
enum PsmStage {
    /// Opening partition `k` for the current query.
    Opening(usize),
    /// Scanning partition `k`: `done` of `scan_per_query` bytes issued.
    Scanning { k: usize, done: u64, offset: u64 },
    /// Closing partition `k` (ends the query).
    Closing(usize),
    /// Query finished: think before the next.
    Idle,
}

impl PsmService {
    /// A service process over the given partition indices.
    pub fn new(cfg: PsmConfig, parts: Vec<usize>) -> PsmService {
        PsmService {
            cfg,
            parts,
            stage: PsmStage::Opening(0),
            queries_done: 0,
            query_io: Vec::new(),
            current_io: Dur::ZERO,
        }
    }

    /// Queries completed.
    pub fn queries_done(&self) -> u64 {
        self.queries_done
    }
}

impl Workload for PsmService {
    fn next_op(&mut self, now: SimTime, rng: &mut SmallRng) -> Option<ClientOp> {
        if let Some(limit) = self.cfg.queries {
            if self.queries_done >= limit {
                return None;
            }
        }
        match self.stage {
            PsmStage::Opening(k) => {
                let part = self.parts[k];
                self.stage = PsmStage::Scanning {
                    k,
                    done: 0,
                    offset: {
                        let size = partition_size(&self.cfg, part);
                        let span = size.saturating_sub(self.cfg.scan_per_query).max(1);
                        rng.gen_range(0..span)
                    },
                };
                Some(ClientOp::Open {
                    path: partition_path(part),
                    write: false,
                })
            }
            PsmStage::Scanning { k, done, offset } => {
                if done >= self.cfg.scan_per_query {
                    self.stage = PsmStage::Closing(k);
                    return Some(ClientOp::Close);
                }
                let n = self.cfg.chunk.min(self.cfg.scan_per_query - done);
                self.stage = PsmStage::Scanning {
                    k,
                    done: done + n,
                    offset,
                };
                Some(ClientOp::Read {
                    offset: offset + done,
                    len: n,
                })
            }
            PsmStage::Closing(k) => {
                // Query complete; the next query scans the next partition.
                self.queries_done += 1;
                self.query_io.push((now, self.current_io));
                self.current_io = Dur::ZERO;
                self.stage = PsmStage::Idle;
                let _ = k;
                let base = self.cfg.query_gap.as_nanos().max(2);
                Some(ClientOp::Think {
                    dur: Dur::nanos(rng.gen_range(base / 2..=base * 3 / 2)),
                })
            }
            PsmStage::Idle => {
                let next = (self.queries_done as usize) % self.parts.len();
                self.stage = PsmStage::Opening(next);
                self.next_op(now, rng)
            }
        }
    }

    fn on_result(&mut self, op: &ClientOp, result: &OpResult, _now: SimTime) {
        // Figure 15 reports the I/O portion of the service time: the
        // latency of read requests within the query.
        if matches!(op, ClientOp::Read { .. }) && result.is_ok() {
            self.current_io += result.latency;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_cfg() -> PsmConfig {
        PsmConfig {
            partitions: 4,
            per_process: 2,
            min_partition: 1 << 20,
            max_partition: 2 << 20,
            scan_per_query: 64 << 10,
            chunk: 32 << 10,
            queries: Some(2),
            ..PsmConfig::default()
        }
    }

    #[test]
    fn partition_sizes_within_band() {
        let cfg = PsmConfig::default();
        for i in 0..cfg.partitions {
            let s = partition_size(&cfg, i);
            assert!(s >= cfg.min_partition && s < cfg.max_partition, "{s}");
        }
    }

    #[test]
    fn import_covers_all_partitions() {
        let cfg = small_cfg();
        let ops = import_script(&cfg, Some(0.6));
        let creates = ops.iter().filter(|o| o.kind() == "create").count();
        assert_eq!(creates, 4);
        let written: u64 = ops
            .iter()
            .filter_map(|o| match o {
                ClientOp::Write { payload, .. } => Some(payload.len()),
                _ => None,
            })
            .sum();
        let expect: u64 = (0..4).map(|i| partition_size(&cfg, i)).sum();
        assert_eq!(written, expect);
    }

    #[test]
    fn service_round_robins_partitions_across_queries() {
        let cfg = small_cfg();
        let mut svc = PsmService::new(cfg, vec![0, 2]);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut opens = Vec::new();
        let mut reads = 0;
        while let Some(op) = svc.next_op(SimTime::ZERO, &mut rng) {
            match &op {
                ClientOp::Open { path, .. } => opens.push(path.clone()),
                ClientOp::Read { .. } => reads += 1,
                _ => {}
            }
            svc.on_result(
                &op,
                &OpResult {
                    error: None,
                    bytes: 0,
                    latency: Dur::millis(2),
                    data: None,
                    span: 0,
                },
                SimTime::ZERO,
            );
        }
        // One partition per query, cycling through the assigned set.
        assert_eq!(opens, vec![partition_path(0), partition_path(2)]);
        // 2 queries × (64K / 32K chunks).
        assert_eq!(reads, 4);
        assert_eq!(svc.queries_done(), 2);
        assert_eq!(svc.query_io.len(), 2);
        // I/O time accumulated from read latencies only.
        assert_eq!(svc.query_io[0].1, Dur::millis(4));
    }
}
