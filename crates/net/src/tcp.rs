//! A std-only TCP mesh for Sorrento daemons.
//!
//! Each node owns one listening socket, a reader thread per inbound
//! connection feeding a bounded inbox, and — on the outbound side — one
//! sender thread per peer behind a bounded queue of encoded frames.
//! `Hello` frames register the sender's listen address, so a node only
//! needs a seed peer list — everyone it has ever heard from becomes
//! routable, which is how the runtime replaces the simulator's Ethernet
//! multicast with peer-list fan-out.
//!
//! Outbound data path: `send` encodes the frame once into a buffer
//! checked out of a [`BufPool`] and hands an `Arc` of it to the peer's
//! queue (a multicast shares the same encoded frame across every
//! queue). The sender thread drains its queue in batches and pushes
//! them to the socket with vectored writes, so a burst of pipelined
//! chunks coalesces into few syscalls. Crucially, no lock is held
//! while a socket write is in flight: a peer that stops reading stalls
//! only its own queue — other peers, and the caller, never block on it.
//! When a queue fills, further frames to that peer are dropped and
//! counted, mirroring the lossy-network semantics below.
//!
//! Delivery semantics deliberately mirror the simulator's lossy
//! network: a send to a dead or unreachable peer is retried once after
//! a short backoff and then dropped silently. The protocol already
//! treats message loss as normal (RPC timeouts, repair scans), so the
//! transport never needs to surface per-message errors.

use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use sorrento::proto::Msg;
use sorrento_sim::{NodeId, TelemetryEvent};

use crate::chaos::{Chaos, ChaosConfig, Fault};
use crate::flight::FlightRecorder;
use crate::frame::{self, Frame, HEADER_LEN};
use crate::pool::{BufPool, PooledBuf};

/// Most frames folded into one vectored write.
const COALESCE_MAX: usize = 32;

/// Consecutive queue-full drops to one peer before its sender (and the
/// stalled connection it owns) is evicted and joined. A healthy peer
/// never gets close; a wedged one is torn down within one queue's worth
/// of traffic so its socket and thread are reclaimed.
const EVICT_AFTER_FULL: u32 = 64;

/// Transport tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Outbound connection establishment budget.
    pub connect_timeout: Duration,
    /// Socket read timeout (also the shutdown poll period for reader
    /// and sender threads).
    pub read_timeout: Duration,
    /// Wait before the single resend attempt after a send failure.
    pub retry_backoff: Duration,
    /// Bounded inbox depth; senders beyond it are dropped, not blocked.
    pub inbox_capacity: usize,
    /// Per-peer outbound queue depth; frames beyond it are dropped, not
    /// blocked — one slow peer must never apply backpressure to the
    /// daemon loop.
    pub outbound_queue: usize,
}

impl Default for MeshConfig {
    fn default() -> MeshConfig {
        MeshConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(100),
            retry_backoff: Duration::from_millis(50),
            inbox_capacity: 1024,
            outbound_queue: 256,
        }
    }
}

/// Counters the mesh keeps about itself (drained into the node's
/// metrics registry by the daemon loop). Atomics, because sender
/// threads bump them concurrently.
#[derive(Debug, Default)]
struct MeshCounters {
    sent: AtomicU64,
    send_failures: AtomicU64,
    dropped_inbox_full: AtomicU64,
    decode_errors: AtomicU64,
    chaos_dropped: AtomicU64,
    chaos_duplicated: AtomicU64,
    chaos_delayed: AtomicU64,
}

/// A point-in-time copy of the mesh counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeshStats {
    /// Frames written to a socket successfully.
    pub sent: u64,
    /// Frames dropped: peer unreachable after retry, or queue full.
    pub send_failures: u64,
    /// Inbound messages dropped because the inbox was full.
    pub dropped_inbox_full: u64,
    /// Connections dropped for undecodable bytes.
    pub decode_errors: u64,
    /// Frames dropped by injected chaos (random loss + partitions).
    pub chaos_dropped: u64,
    /// Frames duplicated by injected chaos.
    pub chaos_duplicated: u64,
    /// Frames delayed by injected chaos.
    pub chaos_delayed: u64,
}

struct Shared {
    /// NodeId → listen address, learned from config and `Hello` frames.
    peers: Mutex<HashMap<NodeId, SocketAddr>>,
    /// Nodes whose listen address changed since we last dialed them: the
    /// cached outbound stream points at a dead incarnation and must be
    /// evicted before reuse, or the first write after the change is
    /// silently buffered into a socket nobody reads.
    stale: Mutex<HashSet<NodeId>>,
    counters: MeshCounters,
    shutdown: AtomicBool,
}

/// Work for a peer's sender thread.
enum OutItem {
    /// A fully encoded frame (header + payload), shared so a multicast
    /// encodes once, plus chaos-injected latency (zero = none; the
    /// sender thread sleeps it off before writing, so the added delay is
    /// in link order, like queueing delay on a real NIC). The buffer
    /// returns to the pool when the last queue drops it.
    Frame(Arc<PooledBuf>, Duration),
    /// Connect (and send our `Hello`) if not already connected.
    EnsureConn,
}

struct PeerSender {
    tx: SyncSender<OutItem>,
    /// Per-sender stop flag: lets eviction and shutdown join the thread
    /// promptly even while it is mid-retry against a stalled peer.
    quit: Arc<AtomicBool>,
    /// Frames queued but not yet picked up by the sender thread
    /// (incremented at enqueue, decremented at dequeue): the per-peer
    /// backlog gauge. A persistently high value marks a slow or wedged
    /// link before eviction kicks in.
    depth: Arc<AtomicU64>,
    thread: JoinHandle<()>,
}

impl PeerSender {
    /// Stop the sender thread and wait for it. Socket operations are all
    /// bounded (connect/read/write timeouts), so the join is too.
    fn stop(self) {
        self.quit.store(true, Ordering::SeqCst);
        drop(self.tx); // disconnect the queue: recv returns immediately
        let _ = self.thread.join();
    }
}

/// The node's connection fabric.
pub struct Mesh {
    me: NodeId,
    listen_addr: SocketAddr,
    cfg: MeshConfig,
    shared: Arc<Shared>,
    inbox: Receiver<(NodeId, Msg)>,
    pool: BufPool,
    /// One sender thread + bounded queue per peer (only the daemon
    /// thread enqueues).
    senders: HashMap<NodeId, PeerSender>,
    /// Consecutive queue-full drops per peer (eviction trigger).
    full_strikes: HashMap<NodeId, u32>,
    /// Installed fault-injection rules, if any (see [`crate::chaos`]).
    chaos: Option<Chaos>,
    /// Flight recorder for chaos-injection telemetry (chaos verdicts
    /// happen here at the enqueue boundary, on the daemon thread).
    flight: Option<FlightRecorder>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Mesh {
    /// Start the mesh on an already-bound listener with a seed peer
    /// list. The listener is taken over by an accept thread.
    pub fn start(
        me: NodeId,
        listener: TcpListener,
        seed_peers: HashMap<NodeId, SocketAddr>,
        cfg: MeshConfig,
    ) -> std::io::Result<Mesh> {
        let listen_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::sync_channel(cfg.inbox_capacity);
        let shared = Arc::new(Shared {
            peers: Mutex::new(seed_peers),
            stale: Mutex::new(HashSet::new()),
            counters: MeshCounters::default(),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("sorrento-accept-{}", me.index()))
            .spawn(move || accept_loop(listener, accept_shared, tx, cfg))?;
        Ok(Mesh {
            me,
            listen_addr,
            cfg,
            shared,
            inbox: rx,
            pool: BufPool::new(),
            senders: HashMap::new(),
            full_strikes: HashMap::new(),
            chaos: None,
            flight: None,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Register (or update) a peer's listen address.
    pub fn add_peer(&self, id: NodeId, addr: SocketAddr) {
        self.shared.peers.lock().unwrap().insert(id, addr);
    }

    /// Every peer currently known (never includes this node).
    pub fn known_peers(&self) -> Vec<NodeId> {
        let peers = self.shared.peers.lock().unwrap();
        peers.keys().copied().filter(|&p| p != self.me).collect()
    }

    /// Blocking receive with a timeout; `None` on timeout or shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(NodeId, Msg)> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Send to one peer: best-effort, one retry after backoff, then the
    /// message is dropped (the peer's death shows up as RPC timeouts,
    /// exactly as in the simulator). Never blocks the caller: the frame
    /// is encoded into a pooled buffer and queued; a full queue drops
    /// the frame.
    pub fn send(&mut self, to: NodeId, msg: &Msg) {
        let mut buf = self.pool.check_out();
        frame::encode_msg_into(&mut buf, self.me, msg);
        self.enqueue(to, Arc::new(buf));
    }

    /// Fan a message out to every known peer, encoding it exactly once.
    pub fn multicast(&mut self, msg: &Msg) {
        let peers = self.known_peers();
        if peers.is_empty() {
            return;
        }
        let mut buf = self.pool.check_out();
        frame::encode_msg_into(&mut buf, self.me, msg);
        let shared_frame = Arc::new(buf);
        for peer in peers {
            self.enqueue(peer, Arc::clone(&shared_frame));
        }
    }

    /// Install (or clear, with `None` / an inactive config) deterministic
    /// fault injection on every outbound link. Applies from the next
    /// frame on; see [`crate::chaos`] for the semantics.
    pub fn set_chaos(&mut self, cfg: Option<ChaosConfig>) {
        self.chaos = match cfg {
            Some(c) if c.is_active() => Some(Chaos::new(self.me, c)),
            _ => None,
        };
    }

    /// Attach the node's flight recorder so chaos injections show up in
    /// the event ring alongside the counters.
    pub fn set_flight(&mut self, rec: FlightRecorder) {
        self.flight = Some(rec);
    }

    fn enqueue(&mut self, to: NodeId, frame: Arc<PooledBuf>) {
        // Chaos verdict first (daemon thread, frame order: the decision
        // stream is deterministic for a given seed and link).
        let mut delay = Duration::ZERO;
        let mut copies = 1u32;
        if let Some(chaos) = &mut self.chaos {
            let fault = chaos.decide(to);
            let label = match fault {
                Fault::Deliver => None,
                Fault::Drop | Fault::Partitioned => Some("drop"),
                Fault::Duplicate => Some("duplicate"),
                Fault::Delay(_) => Some("delay"),
            };
            if let (Some(fault), Some(rec)) = (label, &self.flight) {
                rec.record_now(TelemetryEvent::ChaosInject { fault, to });
            }
            match fault {
                Fault::Deliver => {}
                Fault::Drop | Fault::Partitioned => {
                    self.shared.counters.chaos_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Fault::Duplicate => {
                    copies = 2;
                    self.shared.counters.chaos_duplicated.fetch_add(1, Ordering::Relaxed);
                }
                Fault::Delay(d) => {
                    delay = d;
                    self.shared.counters.chaos_delayed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        for _ in 0..copies {
            let sender = self.sender_for(to);
            let depth = Arc::clone(&sender.depth);
            match sender.tx.try_send(OutItem::Frame(Arc::clone(&frame), delay)) {
                Ok(()) => {
                    depth.fetch_add(1, Ordering::Relaxed);
                    self.full_strikes.remove(&to);
                }
                Err(TrySendError::Full(_)) => {
                    self.shared.counters.send_failures.fetch_add(1, Ordering::Relaxed);
                    // A queue that stays full means the peer's connection
                    // is wedged (TCP window exhausted by a non-reader, or
                    // a blackholed route): after enough consecutive
                    // strikes, evict — stop and *join* the sender thread,
                    // releasing its socket — so a later send starts over
                    // on a fresh connection instead of feeding a dead one.
                    let strikes = self.full_strikes.entry(to).or_insert(0);
                    *strikes += 1;
                    if *strikes >= EVICT_AFTER_FULL {
                        self.full_strikes.remove(&to);
                        if let Some(s) = self.senders.remove(&to) {
                            s.stop();
                        }
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    // Sender thread died (shutdown or panic): reap it —
                    // the join is immediate since the thread already
                    // exited — and let a later send respawn it.
                    if let Some(s) = self.senders.remove(&to) {
                        s.stop();
                    }
                    self.shared.counters.send_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn sender_for(&mut self, to: NodeId) -> &PeerSender {
        self.senders.entry(to).or_insert_with(|| {
            let (tx, rx) = mpsc::sync_channel(self.cfg.outbound_queue);
            let shared = Arc::clone(&self.shared);
            let cfg = self.cfg;
            let me = self.me;
            let listen = self.listen_addr;
            let quit = Arc::new(AtomicBool::new(false));
            let quit_flag = Arc::clone(&quit);
            let depth = Arc::new(AtomicU64::new(0));
            let depth_flag = Arc::clone(&depth);
            let thread = std::thread::Builder::new()
                .name(format!("sorrento-send-{}-{}", me.index(), to.index()))
                .spawn(move || sender_loop(to, rx, shared, cfg, me, listen, quit_flag, depth_flag))
                .expect("spawn sender thread");
            PeerSender { tx, quit, depth, thread }
        })
    }

    /// Open a connection (which carries our `Hello`) to every known
    /// peer. A joining node calls this so daemons learn its listen
    /// address — and start multicasting to it — before it sends any
    /// protocol traffic.
    pub fn hello_all(&mut self) {
        for peer in self.known_peers() {
            let sender = self.sender_for(peer);
            let _ = sender.tx.try_send(OutItem::EnsureConn);
        }
    }

    /// Per-peer sender-queue depth: frames enqueued but not yet picked
    /// up by each peer's sender thread.
    pub fn queue_depths(&self) -> Vec<(NodeId, u64)> {
        let mut depths: Vec<(NodeId, u64)> = self
            .senders
            .iter()
            .map(|(&peer, s)| (peer, s.depth.load(Ordering::Relaxed)))
            .collect();
        depths.sort_by_key(|&(peer, _)| peer.index());
        depths
    }

    /// A snapshot of the mesh counters.
    pub fn stats(&self) -> MeshStats {
        let c = &self.shared.counters;
        MeshStats {
            sent: c.sent.load(Ordering::Relaxed),
            send_failures: c.send_failures.load(Ordering::Relaxed),
            dropped_inbox_full: c.dropped_inbox_full.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
            chaos_dropped: c.chaos_dropped.load(Ordering::Relaxed),
            chaos_duplicated: c.chaos_duplicated.load(Ordering::Relaxed),
            chaos_delayed: c.chaos_delayed.load(Ordering::Relaxed),
        }
    }

    /// Flush mesh counters into labeled metrics, including one
    /// `net_queue_depth_<peer>` gauge per live sender queue.
    pub fn export_metrics(&self, metrics: &mut sorrento_sim::Metrics) {
        let s = self.stats();
        metrics.gauge_set("net_sent", s.sent as f64);
        metrics.gauge_set("net_send_failures", s.send_failures as f64);
        metrics.gauge_set("net_dropped_inbox_full", s.dropped_inbox_full as f64);
        metrics.gauge_set("net_decode_errors", s.decode_errors as f64);
        metrics.gauge_set("net_chaos_dropped", s.chaos_dropped as f64);
        metrics.gauge_set("net_chaos_duplicated", s.chaos_duplicated as f64);
        metrics.gauge_set("net_chaos_delayed", s.chaos_delayed as f64);
        let mut max_depth = 0u64;
        for (peer, depth) in self.queue_depths() {
            max_depth = max_depth.max(depth);
            metrics.gauge_set(&format!("net_queue_depth_{}", peer.index()), depth as f64);
        }
        metrics.gauge_set("net_queue_depth_max", max_depth as f64);
    }

    /// Stop the accept thread, reader threads, and sender threads.
    ///
    /// Sender threads are *joined*, not abandoned: every socket
    /// operation they perform is bounded by a timeout and they check
    /// their stop flag between operations, so even a sender mid-write to
    /// a stalled peer exits within one timeout period.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for (_, sender) in self.senders.drain() {
            sender.stop();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Mesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------------- send side

/// Per-peer sender: owns the peer's outbound `TcpStream` outright, so
/// connecting, `Hello`, retries, and the blocking writes themselves all
/// happen outside any shared lock.
#[allow(clippy::too_many_arguments)]
fn sender_loop(
    peer: NodeId,
    rx: Receiver<OutItem>,
    shared: Arc<Shared>,
    cfg: MeshConfig,
    me: NodeId,
    listen_addr: SocketAddr,
    quit: Arc<AtomicBool>,
    depth: Arc<AtomicU64>,
) {
    let mut conn: Option<TcpStream> = None;
    let mut batch: Vec<Arc<PooledBuf>> = Vec::with_capacity(COALESCE_MAX);
    let stopping = |quit: &AtomicBool, shared: &Shared| {
        quit.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst)
    };
    loop {
        if stopping(&quit, &shared) {
            return;
        }
        let first = match rx.recv_timeout(cfg.read_timeout) {
            Ok(item) => item,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // A stale marker means the peer's listen address changed: the
        // cached stream points at a dead incarnation.
        if shared.stale.lock().unwrap().remove(&peer) {
            conn = None;
        }
        batch.clear();
        let mut delay = Duration::ZERO;
        match first {
            OutItem::EnsureConn => {
                ensure_conn(&mut conn, peer, &shared, cfg, me, listen_addr);
                continue;
            }
            OutItem::Frame(f, d) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                delay = delay.max(d);
                batch.push(f);
            }
        }
        // Coalesce whatever else is already queued into one vectored
        // write (EnsureConn is implied by having frames to send). A
        // chaos delay on any coalesced frame delays the whole batch —
        // frames on one link stay in order, as on a real FIFO path.
        while batch.len() < COALESCE_MAX {
            match rx.try_recv() {
                Ok(OutItem::Frame(f, d)) => {
                    depth.fetch_sub(1, Ordering::Relaxed);
                    delay = delay.max(d);
                    batch.push(f);
                }
                Ok(OutItem::EnsureConn) => {}
                Err(_) => break,
            }
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let ok = write_batch(&mut conn, &batch, peer, &shared, cfg, me, listen_addr, &quit)
            || {
                // One retry on a fresh connection after a short backoff,
                // then the batch is dropped (lossy-network semantics).
                conn = None;
                if stopping(&quit, &shared) {
                    return;
                }
                std::thread::sleep(cfg.retry_backoff);
                write_batch(&mut conn, &batch, peer, &shared, cfg, me, listen_addr, &quit)
            };
        if ok {
            shared.counters.sent.fetch_add(batch.len() as u64, Ordering::Relaxed);
        } else {
            conn = None;
            shared.counters.send_failures.fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
    }
}

fn ensure_conn(
    conn: &mut Option<TcpStream>,
    peer: NodeId,
    shared: &Shared,
    cfg: MeshConfig,
    me: NodeId,
    listen_addr: SocketAddr,
) -> bool {
    if conn.is_some() {
        return true;
    }
    let addr = match shared.peers.lock().unwrap().get(&peer).copied() {
        Some(a) => a,
        None => return false,
    };
    let mut stream = match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
        Ok(s) => s,
        Err(_) => return false,
    };
    let _ = stream.set_nodelay(true);
    // Bounded writes: a peer that stops draining its receive window must
    // not pin this thread in `write` forever — the timeout lets the loop
    // notice its stop flag, which is what makes eviction and shutdown
    // able to *join* sender threads instead of leaking them.
    let _ = stream.set_write_timeout(Some(cfg.read_timeout));
    // Introduce ourselves so the peer can route replies and multicasts
    // back without prior configuration.
    let hello = frame::encode_hello(me, &listen_addr.to_string());
    if stream.write_all(&hello).is_err() {
        return false;
    }
    *conn = Some(stream);
    true
}

/// Write a batch of frames with as few syscalls as possible. Any write
/// error invalidates the connection (a partial frame cannot be resumed
/// on a byte stream — the receiver resyncs by dropping the connection).
#[allow(clippy::too_many_arguments)]
fn write_batch(
    conn: &mut Option<TcpStream>,
    batch: &[Arc<PooledBuf>],
    peer: NodeId,
    shared: &Shared,
    cfg: MeshConfig,
    me: NodeId,
    listen_addr: SocketAddr,
    quit: &AtomicBool,
) -> bool {
    if !ensure_conn(conn, peer, shared, cfg, me, listen_addr) {
        return false;
    }
    let stream = conn.as_mut().expect("conn just ensured");
    let mut idx = 0;
    let mut off = 0;
    while idx < batch.len() {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(batch.len() - idx);
        slices.push(IoSlice::new(&batch[idx][off..]));
        for b in &batch[idx + 1..] {
            slices.push(IoSlice::new(b));
        }
        match stream.write_vectored(&slices) {
            Ok(0) => {
                *conn = None;
                return false;
            }
            Ok(mut n) => {
                while n > 0 {
                    let rem = batch[idx].len() - off;
                    if n >= rem {
                        n -= rem;
                        idx += 1;
                        off = 0;
                    } else {
                        off += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // The peer's receive window is full. Keep trying — the
                // window may drain — but stay joinable: on eviction or
                // shutdown the partial frame is abandoned with the
                // connection (a half-written frame cannot be resumed).
                if quit.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
                    *conn = None;
                    return false;
                }
                continue;
            }
            Err(_) => {
                *conn = None;
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------- receive side

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    tx: SyncSender<(NodeId, Msg)>,
    cfg: MeshConfig,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                let _ = std::thread::Builder::new()
                    .name("sorrento-reader".to_string())
                    .spawn(move || reader_loop(stream, shared, tx, cfg));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn reader_loop(
    mut stream: TcpStream,
    shared: Arc<Shared>,
    tx: SyncSender<(NodeId, Msg)>,
    cfg: MeshConfig,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let mut header = [0u8; HEADER_LEN];
    while !shared.shutdown.load(Ordering::SeqCst) {
        match read_exact_polled(&mut stream, &mut header, &shared) {
            ReadOutcome::Ok => {}
            ReadOutcome::Closed => return,
        }
        let h = match frame::decode_header(&header) {
            Ok(h) => h,
            Err(_) => {
                // The stream is out of sync; there is no resync point in
                // a byte stream, so drop the connection.
                shared.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let mut payload = vec![0u8; h.payload_len as usize];
        match read_exact_polled(&mut stream, &mut payload, &shared) {
            ReadOutcome::Ok => {}
            ReadOutcome::Closed => return,
        }
        // Moving the Vec into a shared Bytes is allocation-transfer,
        // not a copy: blob fields decoded out of it are sub-views, so
        // the buffer read off the socket is the one the store lands.
        let payload = Bytes::from(payload);
        match frame::decode_payload(&h, &payload) {
            Ok(Frame::Hello { listen_addr }) => {
                if let Ok(addr) = listen_addr.parse() {
                    let prev = shared.peers.lock().unwrap().insert(h.sender, addr);
                    if prev.is_some_and(|p| p != addr) {
                        shared.stale.lock().unwrap().insert(h.sender);
                    }
                }
            }
            Ok(Frame::Msg(msg)) => match tx.try_send((h.sender, msg)) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    shared.counters.dropped_inbox_full.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(_) => {
                shared.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

enum ReadOutcome {
    Ok,
    Closed,
}

/// `read_exact` that keeps polling through read timeouts so the thread
/// can notice shutdown, but treats EOF and hard errors as closed.
fn read_exact_polled(stream: &mut TcpStream, buf: &mut [u8], shared: &Shared) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return ReadOutcome::Closed;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Mid-frame stalls are fine; keep waiting unless shutting
                // down.
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn two_nodes_exchange_messages() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a0 = l0.local_addr().unwrap();
        let a1 = l1.local_addr().unwrap();
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let mut m0 = Mesh::start(
            n0,
            l0,
            HashMap::from([(n1, a1)]),
            MeshConfig::default(),
        )
        .unwrap();
        let m1 = Mesh::start(n1, l1, HashMap::from([(n0, a0)]), MeshConfig::default()).unwrap();

        m0.send(n1, &Msg::StatsQuery { req: 42 });
        let (from, msg) = m1.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(from, n0);
        assert!(matches!(msg, Msg::StatsQuery { req: 42 }));
    }

    #[test]
    fn send_to_dead_peer_drops_silently() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let mut m0 =
            Mesh::start(n0, l0, HashMap::from([(n1, dead)]), MeshConfig::default()).unwrap();
        m0.send(n1, &Msg::StatsQuery { req: 1 });
        // The failure is now recorded by the peer's sender thread after
        // its connect + one retry, so poll for it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while m0.stats().send_failures == 0 {
            assert!(Instant::now() < deadline, "send failure never counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(m0.stats().send_failures, 1);
        assert_eq!(m0.stats().sent, 0);
    }

    /// Count live threads whose name marks them as `me`'s sender
    /// threads (`/proc` thread names are truncated to 15 bytes, so the
    /// prefix identifies the owning mesh as long as tests use distinct
    /// single-digit node indices).
    #[cfg(target_os = "linux")]
    fn sender_threads_of(me: NodeId) -> usize {
        let prefix = format!("sorrento-send-{}", me.index());
        let prefix = &prefix[..prefix.len().min(15)];
        let Ok(tasks) = std::fs::read_dir("/proc/self/task") else { return 0 };
        tasks
            .flatten()
            .filter_map(|t| std::fs::read_to_string(t.path().join("comm")).ok())
            .filter(|comm| comm.trim_end() == prefix)
            .count()
    }

    /// One peer that accepts but never reads must not delay delivery to
    /// a healthy peer: its frames pile into its own queue (and
    /// eventually drop), while the healthy peer's sender thread keeps
    /// flowing. Under the old shared-connection-cache design the first
    /// blocked `write_all` to the slow peer stalled every send.
    ///
    /// The shutdown half pins the sender-thread-leak fix: dropping the
    /// mesh must *join* every sender thread — including the one wedged
    /// mid-write against the never-reading peer — leaving no thread
    /// growth behind.
    #[test]
    fn slow_peer_does_not_stall_other_sends() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l_fast = TcpListener::bind("127.0.0.1:0").unwrap();
        let a_fast = l_fast.local_addr().unwrap();
        // The slow peer: a raw listener whose accept loop deliberately
        // never reads, so the sender's TCP window fills and its writes
        // block.
        let l_slow = TcpListener::bind("127.0.0.1:0").unwrap();
        let a_slow = l_slow.local_addr().unwrap();
        let slow_guard = std::thread::spawn(move || {
            let conns: Vec<TcpStream> = (0..1).filter_map(|_| l_slow.accept().ok().map(|(s, _)| s)).collect();
            std::thread::sleep(Duration::from_secs(3));
            drop(conns);
        });

        // Node index 9 is unique to this test, so the /proc thread-name
        // census below cannot race other tests' meshes.
        let n0 = NodeId::from_index(9);
        let n_fast = NodeId::from_index(1);
        let n_slow = NodeId::from_index(2);
        let cfg = MeshConfig { outbound_queue: 8, ..MeshConfig::default() };
        let mut m0 = Mesh::start(
            n0,
            l0,
            HashMap::from([(n_fast, a_fast), (n_slow, a_slow)]),
            cfg,
        )
        .unwrap();
        let m_fast =
            Mesh::start(n_fast, l_fast, HashMap::new(), MeshConfig::default()).unwrap();

        // Flood the slow peer with large frames until both the TCP
        // buffers and its bounded queue are saturated.
        let big = Msg::StatsR { req: 0, json: "x".repeat(1 << 20) };
        for _ in 0..64 {
            m0.send(n_slow, &big);
        }
        // A send to the healthy peer must still go through promptly.
        let t0 = Instant::now();
        m0.send(n_fast, &Msg::StatsQuery { req: 7 });
        let (from, msg) = m_fast.recv_timeout(Duration::from_secs(2)).expect("fast peer starved");
        assert_eq!(from, n0);
        assert!(matches!(msg, Msg::StatsQuery { req: 7 }));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "healthy-peer delivery took {:?}",
            t0.elapsed()
        );
        #[cfg(target_os = "linux")]
        assert!(sender_threads_of(n0) >= 1, "sender threads should be live mid-test");
        drop(m0);
        // Shutdown joins the senders, so the census is zero right after
        // the drop — a leaked (signalled but unjoined) thread would
        // still be mid-write against the slow peer here.
        #[cfg(target_os = "linux")]
        assert_eq!(sender_threads_of(n0), 0, "sender threads leaked past mesh shutdown");
        let _ = slow_guard.join();
    }

    /// Chaos at 100% drop suppresses every frame (counted, nothing
    /// delivered); at 100% duplicate each send lands twice; uninstalling
    /// chaos restores clean delivery.
    #[test]
    fn chaos_rules_apply_at_the_enqueue_boundary() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a1 = l1.local_addr().unwrap();
        let n0 = NodeId::from_index(3);
        let n1 = NodeId::from_index(4);
        let mut m0 =
            Mesh::start(n0, l0, HashMap::from([(n1, a1)]), MeshConfig::default()).unwrap();
        let m1 = Mesh::start(n1, l1, HashMap::new(), MeshConfig::default()).unwrap();

        m0.set_chaos(Some(ChaosConfig {
            seed: 1,
            drop_permille: 1000,
            ..ChaosConfig::default()
        }));
        m0.send(n1, &Msg::StatsQuery { req: 1 });
        assert!(m1.recv_timeout(Duration::from_millis(300)).is_none(), "dropped frame arrived");
        assert_eq!(m0.stats().chaos_dropped, 1);

        m0.set_chaos(Some(ChaosConfig {
            seed: 1,
            dup_permille: 1000,
            ..ChaosConfig::default()
        }));
        m0.send(n1, &Msg::StatsQuery { req: 2 });
        for _ in 0..2 {
            let (_, msg) = m1.recv_timeout(Duration::from_secs(5)).expect("duplicate copy");
            assert!(matches!(msg, Msg::StatsQuery { req: 2 }));
        }
        assert_eq!(m0.stats().chaos_duplicated, 1);

        m0.set_chaos(None);
        m0.send(n1, &Msg::StatsQuery { req: 3 });
        let (_, msg) = m1.recv_timeout(Duration::from_secs(5)).expect("clean delivery");
        assert!(matches!(msg, Msg::StatsQuery { req: 3 }));
        assert!(m1.recv_timeout(Duration::from_millis(200)).is_none());
    }

    /// A multicast encodes the frame once and shares it; every peer
    /// still gets a complete copy.
    #[test]
    fn multicast_reaches_all_peers() {
        let mk = || TcpListener::bind("127.0.0.1:0").unwrap();
        let (l0, l1, l2) = (mk(), mk(), mk());
        let (a1, a2) = (l1.local_addr().unwrap(), l2.local_addr().unwrap());
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        let mut m0 = Mesh::start(
            n0,
            l0,
            HashMap::from([(n1, a1), (n2, a2)]),
            MeshConfig::default(),
        )
        .unwrap();
        let m1 = Mesh::start(n1, l1, HashMap::new(), MeshConfig::default()).unwrap();
        let m2 = Mesh::start(n2, l2, HashMap::new(), MeshConfig::default()).unwrap();
        m0.multicast(&Msg::StatsQuery { req: 9 });
        for m in [&m1, &m2] {
            let (from, msg) = m.recv_timeout(Duration::from_secs(5)).expect("delivery");
            assert_eq!(from, n0);
            assert!(matches!(msg, Msg::StatsQuery { req: 9 }));
        }
    }
}
