//! A std-only, readiness-driven TCP mesh for Sorrento daemons.
//!
//! One event-loop thread per node owns *every* connection — the
//! listening socket, all inbound connections, and all outbound
//! connections — multiplexed through the in-repo [`epoll`] shim
//! (raw `epoll_create1`/`epoll_ctl`/`epoll_wait` on Linux). A second,
//! fixed thread dials outbound connections (blocking
//! `connect_timeout` must not stall the loop). That is the whole
//! census: **O(1) threads regardless of peer or connection count**,
//! which is what lets one node hold tens of thousands of client
//! sessions where the previous thread-per-connection design ran
//! 2+ threads per peer.
//!
//! Receive path: sockets are nonblocking; on `EPOLLIN` the loop reads
//! whatever bytes the kernel has into a per-connection
//! [`frame::StreamDecoder`], which reassembles frames across arbitrary
//! read boundaries (zero-copy: payload bytes land in the allocation
//! that becomes the frame's shared `Bytes`). Complete messages go to a
//! bounded inbox; `Hello` frames register the sender's listen address,
//! so a node only needs a seed peer list — everyone it has ever heard
//! from becomes routable.
//!
//! Send path: `send` encodes the frame once into a buffer checked out
//! of a [`BufPool`] and pushes an `Arc` of it onto the peer's bounded
//! queue (a multicast shares one encoded frame across every queue),
//! then kicks the loop through an eventfd waker. The loop drains each
//! queue into ≤32-frame vectored writes; when the socket's buffer
//! fills it subscribes `EPOLLOUT` (counted — the backpressure gauge)
//! and resumes exactly where the partial write stopped. Replies
//! prefer the live inbound connection a peer's frames arrived on, so
//! a client does not need its own listener to be answered.
//!
//! Delivery semantics deliberately mirror the simulator's lossy
//! network: a send to a dead or unreachable peer gets one redial after
//! a short backoff and is then dropped silently; a full queue drops
//! the frame. The protocol already treats message loss as normal (RPC
//! timeouts, repair scans), so the transport never surfaces
//! per-message errors.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use epoll::{Interest, Poller, Token, Waker};
use sorrento::proto::Msg;
use sorrento_sim::{NodeId, TelemetryEvent};

use crate::chaos::{Chaos, ChaosConfig, Fault};
use crate::flight::FlightRecorder;
use crate::frame::{self, Frame, StreamDecoder};
use crate::pool::{BufPool, PooledBuf};

/// Most frames folded into one vectored write.
const COALESCE_MAX: usize = 32;

/// Consecutive queue-full drops to one peer before its connection is
/// evicted (closed and redialed on the next send). A healthy peer never
/// gets close; a wedged one is torn down within one queue's worth of
/// traffic so its socket is reclaimed.
const EVICT_AFTER_FULL: u32 = 64;

/// Reads drained from one connection per readiness event before the
/// loop moves on — fairness under a firehose from one peer
/// (level-triggered epoll re-arms anything left).
const READS_PER_EVENT: usize = 256;

/// Bound on the parting flush at shutdown: frames enqueued just before
/// `shutdown()` (a daemon's final replies) get this long to reach the
/// kernel; whatever a wedged peer still holds after it is dropped, so
/// the thread join stays bounded.
const FLUSH_ON_SHUTDOWN: Duration = Duration::from_millis(100);

/// Waker token.
const TOK_WAKER: Token = 0;
/// Listener token.
const TOK_LISTENER: Token = 1;
/// First connection token (= slot index + TOK_CONN0).
const TOK_CONN0: Token = 2;

/// Transport tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Outbound connection establishment budget (dialer thread).
    pub connect_timeout: Duration,
    /// Upper bound on one event-loop sleep (shutdown responsiveness
    /// backstop; the waker normally interrupts sleeps immediately).
    pub read_timeout: Duration,
    /// Wait before the single redial attempt after a connect failure.
    pub retry_backoff: Duration,
    /// Bounded inbox depth; senders beyond it are dropped, not blocked.
    pub inbox_capacity: usize,
    /// Per-peer outbound queue depth; frames beyond it are dropped, not
    /// blocked — one slow peer must never apply backpressure to the
    /// daemon loop.
    pub outbound_queue: usize,
}

impl Default for MeshConfig {
    fn default() -> MeshConfig {
        MeshConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(100),
            retry_backoff: Duration::from_millis(50),
            inbox_capacity: 1024,
            outbound_queue: 256,
        }
    }
}

/// Counters the mesh keeps about itself (drained into the node's
/// metrics registry by the daemon loop). Atomics, because the event
/// loop and the daemon thread bump them concurrently.
#[derive(Debug, Default)]
struct MeshCounters {
    sent: AtomicU64,
    send_failures: AtomicU64,
    dropped_inbox_full: AtomicU64,
    decode_errors: AtomicU64,
    chaos_dropped: AtomicU64,
    chaos_duplicated: AtomicU64,
    chaos_delayed: AtomicU64,
    epollout_waits: AtomicU64,
    conns: AtomicU64,
}

/// A point-in-time copy of the mesh counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeshStats {
    /// Frames written to a socket successfully.
    pub sent: u64,
    /// Frames dropped: peer unreachable after redial, queue full, or
    /// connection lost mid-write.
    pub send_failures: u64,
    /// Inbound messages dropped because the inbox was full.
    pub dropped_inbox_full: u64,
    /// Connections dropped for undecodable bytes.
    pub decode_errors: u64,
    /// Frames dropped by injected chaos (random loss + partitions).
    pub chaos_dropped: u64,
    /// Frames duplicated by injected chaos.
    pub chaos_duplicated: u64,
    /// Frames delayed by injected chaos.
    pub chaos_delayed: u64,
    /// Times a socket write filled the kernel buffer and the loop had
    /// to wait for `EPOLLOUT` — the write-backpressure gauge.
    pub epollout_waits: u64,
    /// Live connections (inbound + outbound) owned by the event loop.
    pub conns: u64,
}

/// One queued outbound frame: the shared encoded bytes plus the
/// earliest instant it may hit the wire (chaos delay; `None` = now).
struct QItem {
    buf: Arc<PooledBuf>,
    deliver_at: Option<Instant>,
}

/// State the daemon thread and the event loop agree on for one peer's
/// outbound traffic. `kicked` lives under the queue mutex so the
/// "queue drained, allow a new kick" / "frame pushed, kick needed"
/// handoff has no lost-wakeup window.
struct QueueInner {
    q: VecDeque<QItem>,
    kicked: bool,
}

struct PeerQueue {
    inner: Mutex<QueueInner>,
    depth: AtomicU64,
}

impl PeerQueue {
    fn new() -> PeerQueue {
        PeerQueue {
            inner: Mutex::new(QueueInner { q: VecDeque::new(), kicked: false }),
            depth: AtomicU64::new(0),
        }
    }
}

struct Shared {
    /// NodeId → listen address, learned from config and `Hello` frames.
    peers: Mutex<HashMap<NodeId, SocketAddr>>,
    /// Per-peer bounded outbound queues (created on first send).
    queues: Mutex<HashMap<NodeId, Arc<PeerQueue>>>,
    counters: MeshCounters,
    shutdown: AtomicBool,
}

/// Daemon-thread → event-loop commands (paired with a waker kick).
enum Cmd {
    /// Peer has queued frames to drain.
    Kick(NodeId),
    /// Connect (and send our `Hello`) if not already connected.
    Ensure(NodeId),
    /// Tear down the peer's connection and queued frames (wedged link).
    Evict(NodeId),
}

/// The node's connection fabric.
pub struct Mesh {
    me: NodeId,
    listen_addr: SocketAddr,
    cfg: MeshConfig,
    shared: Arc<Shared>,
    inbox: Receiver<(NodeId, Msg)>,
    pool: BufPool,
    cmd_tx: Sender<Cmd>,
    waker: Arc<Waker>,
    /// Consecutive queue-full drops per peer (eviction trigger).
    full_strikes: HashMap<NodeId, u32>,
    /// Installed fault-injection rules, if any (see [`crate::chaos`]).
    chaos: Option<Chaos>,
    /// Flight recorder for chaos-injection telemetry (chaos verdicts
    /// happen here at the enqueue boundary, on the daemon thread).
    flight: Option<FlightRecorder>,
    loop_thread: Option<JoinHandle<()>>,
    dial_thread: Option<JoinHandle<()>>,
}

impl Mesh {
    /// Start the mesh on an already-bound listener with a seed peer
    /// list. The listener is taken over by the event-loop thread.
    pub fn start(
        me: NodeId,
        listener: TcpListener,
        seed_peers: HashMap<NodeId, SocketAddr>,
        cfg: MeshConfig,
    ) -> std::io::Result<Mesh> {
        let listen_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (inbox_tx, inbox_rx) = mpsc::sync_channel(cfg.inbox_capacity);
        let (cmd_tx, cmd_rx) = mpsc::channel();
        let (dial_req_tx, dial_req_rx) = mpsc::channel::<DialReq>();
        let (dial_res_tx, dial_res_rx) = mpsc::channel::<DialRes>();
        let waker = Arc::new(Waker::new()?);
        let shared = Arc::new(Shared {
            peers: Mutex::new(seed_peers),
            queues: Mutex::new(HashMap::new()),
            counters: MeshCounters::default(),
            shutdown: AtomicBool::new(false),
        });

        let dial_shared = Arc::clone(&shared);
        let dial_waker = Arc::clone(&waker);
        let dial_thread = std::thread::Builder::new()
            .name(format!("sorrento-dial-{}", me.index()))
            .spawn(move || {
                dial_loop(dial_req_rx, dial_res_tx, dial_waker, dial_shared, cfg, me, listen_addr)
            })?;

        let mut el = EventLoop {
            poller: Poller::new()?,
            waker: Arc::clone(&waker),
            listener,
            shared: Arc::clone(&shared),
            cfg,
            inbox: inbox_tx,
            cmd_rx,
            dial_req: dial_req_tx,
            dial_res: dial_res_rx,
            conns: Vec::new(),
            free: Vec::new(),
            free_pending: Vec::new(),
            route: HashMap::new(),
            dialing: HashMap::new(),
            timers: Vec::new(),
        };
        el.poller.add(waker.fd(), TOK_WAKER, Interest::READABLE)?;
        el.poller.add(el.listener.as_raw_fd(), TOK_LISTENER, Interest::READABLE)?;
        let loop_thread = std::thread::Builder::new()
            .name(format!("sorrento-net-{}", me.index()))
            .spawn(move || el.run())?;

        Ok(Mesh {
            me,
            listen_addr,
            cfg,
            shared,
            inbox: inbox_rx,
            pool: BufPool::new(),
            cmd_tx,
            waker,
            full_strikes: HashMap::new(),
            chaos: None,
            flight: None,
            loop_thread: Some(loop_thread),
            dial_thread: Some(dial_thread),
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Register (or update) a peer's listen address.
    pub fn add_peer(&self, id: NodeId, addr: SocketAddr) {
        self.shared.peers.lock().unwrap().insert(id, addr);
    }

    /// Every peer currently known (never includes this node).
    pub fn known_peers(&self) -> Vec<NodeId> {
        let peers = self.shared.peers.lock().unwrap();
        peers.keys().copied().filter(|&p| p != self.me).collect()
    }

    /// Blocking receive with a timeout; `None` on timeout or shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(NodeId, Msg)> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Send to one peer: best-effort, one redial after backoff, then the
    /// message is dropped (the peer's death shows up as RPC timeouts,
    /// exactly as in the simulator). Never blocks the caller: the frame
    /// is encoded into a pooled buffer and queued; a full queue drops
    /// the frame.
    pub fn send(&mut self, to: NodeId, msg: &Msg) {
        let mut buf = self.pool.check_out();
        frame::encode_msg_into(&mut buf, self.me, msg);
        self.enqueue(to, Arc::new(buf));
    }

    /// Fan a message out to every known peer, encoding it exactly once.
    pub fn multicast(&mut self, msg: &Msg) {
        let peers = self.known_peers();
        if peers.is_empty() {
            return;
        }
        let mut buf = self.pool.check_out();
        frame::encode_msg_into(&mut buf, self.me, msg);
        let shared_frame = Arc::new(buf);
        for peer in peers {
            self.enqueue(peer, Arc::clone(&shared_frame));
        }
    }

    /// Install (or clear, with `None` / an inactive config) deterministic
    /// fault injection on every outbound link. Applies from the next
    /// frame on; see [`crate::chaos`] for the semantics.
    pub fn set_chaos(&mut self, cfg: Option<ChaosConfig>) {
        self.chaos = match cfg {
            Some(c) if c.is_active() => Some(Chaos::new(self.me, c)),
            _ => None,
        };
    }

    /// Attach the node's flight recorder so chaos injections show up in
    /// the event ring alongside the counters.
    pub fn set_flight(&mut self, rec: FlightRecorder) {
        self.flight = Some(rec);
    }

    fn enqueue(&mut self, to: NodeId, frame: Arc<PooledBuf>) {
        // Chaos verdict first (daemon thread, frame order: the decision
        // stream is deterministic for a given seed and link).
        let mut delay = None;
        let mut copies = 1u32;
        if let Some(chaos) = &mut self.chaos {
            let fault = chaos.decide(to);
            let label = match fault {
                Fault::Deliver => None,
                Fault::Drop | Fault::Partitioned => Some("drop"),
                Fault::Duplicate => Some("duplicate"),
                Fault::Delay(_) => Some("delay"),
            };
            if let (Some(fault), Some(rec)) = (label, &self.flight) {
                rec.record_now(TelemetryEvent::ChaosInject { fault, to });
            }
            match fault {
                Fault::Deliver => {}
                Fault::Drop | Fault::Partitioned => {
                    self.shared.counters.chaos_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Fault::Duplicate => {
                    copies = 2;
                    self.shared.counters.chaos_duplicated.fetch_add(1, Ordering::Relaxed);
                }
                Fault::Delay(d) => {
                    delay = Some(Instant::now() + d);
                    self.shared.counters.chaos_delayed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let pq = {
            let mut queues = self.shared.queues.lock().unwrap();
            Arc::clone(queues.entry(to).or_insert_with(|| Arc::new(PeerQueue::new())))
        };
        for _ in 0..copies {
            let need_kick = {
                let mut g = pq.inner.lock().unwrap();
                if g.q.len() >= self.cfg.outbound_queue {
                    drop(g);
                    self.shared.counters.send_failures.fetch_add(1, Ordering::Relaxed);
                    // A queue that stays full means the peer's connection
                    // is wedged (TCP window exhausted by a non-reader, or
                    // a blackholed route): after enough consecutive
                    // strikes, evict — the loop closes the socket and
                    // drops the backlog — so a later send starts over on
                    // a fresh connection instead of feeding a dead one.
                    let strikes = self.full_strikes.entry(to).or_insert(0);
                    *strikes += 1;
                    if *strikes >= EVICT_AFTER_FULL {
                        self.full_strikes.remove(&to);
                        let _ = self.cmd_tx.send(Cmd::Evict(to));
                        self.waker.wake();
                    }
                    continue;
                }
                g.q.push_back(QItem { buf: Arc::clone(&frame), deliver_at: delay });
                self.full_strikes.remove(&to);
                let kick = !g.kicked;
                g.kicked = true;
                kick
            };
            pq.depth.fetch_add(1, Ordering::Relaxed);
            if need_kick {
                let _ = self.cmd_tx.send(Cmd::Kick(to));
                self.waker.wake();
            }
        }
    }

    /// Open a connection (which carries our `Hello`) to every known
    /// peer. A joining node calls this so daemons learn its listen
    /// address — and start multicasting to it — before it sends any
    /// protocol traffic. Safe to call repeatedly (a boot-retry loop):
    /// peers that are already connected are left untouched.
    pub fn hello_all(&mut self) {
        for peer in self.known_peers() {
            let _ = self.cmd_tx.send(Cmd::Ensure(peer));
        }
        self.waker.wake();
    }

    /// Per-peer sender-queue depth: frames enqueued but not yet written
    /// to (or dropped from) the peer's connection.
    pub fn queue_depths(&self) -> Vec<(NodeId, u64)> {
        let queues = self.shared.queues.lock().unwrap();
        let mut depths: Vec<(NodeId, u64)> =
            queues.iter().map(|(&peer, q)| (peer, q.depth.load(Ordering::Relaxed))).collect();
        depths.sort_by_key(|&(peer, _)| peer.index());
        depths
    }

    /// A snapshot of the mesh counters.
    pub fn stats(&self) -> MeshStats {
        let c = &self.shared.counters;
        MeshStats {
            sent: c.sent.load(Ordering::Relaxed),
            send_failures: c.send_failures.load(Ordering::Relaxed),
            dropped_inbox_full: c.dropped_inbox_full.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
            chaos_dropped: c.chaos_dropped.load(Ordering::Relaxed),
            chaos_duplicated: c.chaos_duplicated.load(Ordering::Relaxed),
            chaos_delayed: c.chaos_delayed.load(Ordering::Relaxed),
            epollout_waits: c.epollout_waits.load(Ordering::Relaxed),
            conns: c.conns.load(Ordering::Relaxed),
        }
    }

    /// Flush mesh counters into labeled metrics, including one
    /// `net_queue_depth_<peer>` gauge per live peer queue, the
    /// live-connection gauge (`net_conns` — "mesh.conns" in DESIGN
    /// terms) and the `EPOLLOUT` backpressure counter.
    pub fn export_metrics(&self, metrics: &mut sorrento_sim::Metrics) {
        let s = self.stats();
        metrics.gauge_set("net_sent", s.sent as f64);
        metrics.gauge_set("net_send_failures", s.send_failures as f64);
        metrics.gauge_set("net_dropped_inbox_full", s.dropped_inbox_full as f64);
        metrics.gauge_set("net_decode_errors", s.decode_errors as f64);
        metrics.gauge_set("net_chaos_dropped", s.chaos_dropped as f64);
        metrics.gauge_set("net_chaos_duplicated", s.chaos_duplicated as f64);
        metrics.gauge_set("net_chaos_delayed", s.chaos_delayed as f64);
        metrics.gauge_set("net_epollout_waits", s.epollout_waits as f64);
        metrics.gauge_set("net_conns", s.conns as f64);
        let mut max_depth = 0u64;
        for (peer, depth) in self.queue_depths() {
            max_depth = max_depth.max(depth);
            metrics.gauge_set(&format!("net_queue_depth_{}", peer.index()), depth as f64);
        }
        metrics.gauge_set("net_queue_depth_max", max_depth as f64);
    }

    /// Stop and *join* the event-loop and dialer threads. Frames
    /// already queued to connected peers get one bounded parting
    /// flush (100 ms) so a reply sent just before the
    /// stop is not silently stranded; every socket the loop owns is
    /// nonblocking and the dialer's connect is timeout-bounded, so
    /// the join is bounded too.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.dial_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Mesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------------ dial thread

struct DialReq {
    peer: NodeId,
    addr: SocketAddr,
}

struct DialRes {
    peer: NodeId,
    stream: Option<TcpStream>,
}

/// The one fixed dialer thread: blocking (timeout-bounded) connects and
/// the `Hello` handshake happen here so the event loop never stalls on
/// a dead address. Established streams are handed to the loop already
/// nonblocking.
fn dial_loop(
    req_rx: Receiver<DialReq>,
    res_tx: Sender<DialRes>,
    waker: Arc<Waker>,
    shared: Arc<Shared>,
    cfg: MeshConfig,
    me: NodeId,
    listen_addr: SocketAddr,
) {
    // The loop exiting drops `req_rx`'s sender, ending this thread.
    while let Ok(req) = req_rx.recv() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = connect_hello(req.addr, cfg, me, listen_addr);
        let lost = res_tx.send(DialRes { peer: req.peer, stream }).is_err();
        waker.wake();
        if lost {
            return;
        }
    }
}

/// Connect, introduce ourselves, and switch to nonblocking. Any failure
/// yields `None` — the loop decides whether to retry.
fn connect_hello(
    addr: SocketAddr,
    cfg: MeshConfig,
    me: NodeId,
    listen_addr: SocketAddr,
) -> Option<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(cfg.connect_timeout));
    // Introduce ourselves so the peer can route replies and multicasts
    // back without prior configuration.
    let hello = frame::encode_hello(me, &listen_addr.to_string());
    stream.write_all(&hello).ok()?;
    stream.set_nonblocking(true).ok()?;
    Some(stream)
}

// ------------------------------------------------------------ event loop

/// One live connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    decoder: StreamDecoder,
    /// The node on the other end: the dial target, or the sender of the
    /// first frame received (inbound connections are anonymous until
    /// their `Hello` arrives).
    peer: Option<NodeId>,
    /// Frames mid-write: front may be partially written (`front_off`).
    batch: VecDeque<Arc<PooledBuf>>,
    front_off: usize,
    /// `EPOLLOUT` currently subscribed.
    want_write: bool,
}

/// Loop-local timers (chaos-delayed frames, redial backoff).
enum Timer {
    Kick(NodeId),
    Redial(NodeId),
}

struct EventLoop {
    poller: Poller,
    waker: Arc<Waker>,
    listener: TcpListener,
    shared: Arc<Shared>,
    cfg: MeshConfig,
    inbox: SyncSender<(NodeId, Msg)>,
    cmd_rx: Receiver<Cmd>,
    dial_req: Sender<DialReq>,
    dial_res: Receiver<DialRes>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots freed during the current event batch; recycled only after
    /// the batch so a stale event cannot hit a fresh connection.
    free_pending: Vec<usize>,
    /// Preferred connection for sending to a peer. Inbound connections
    /// registered here on their `Hello` let replies flow back without a
    /// reverse dial — a client does not need a listener of its own.
    route: HashMap<NodeId, usize>,
    /// Outstanding dial attempt count per peer (1 = first, 2 = redial).
    dialing: HashMap<NodeId, u32>,
    timers: Vec<(Instant, Timer)>,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<epoll::Event> = Vec::new();
        let mut iter: u32 = 0;
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            self.drain_channels();
            self.fire_timers();
            let timeout = self.next_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            for ev in &events {
                match ev.token {
                    TOK_WAKER => self.waker.drain(),
                    TOK_LISTENER => self.accept_ready(),
                    tok => {
                        let idx = (tok - TOK_CONN0) as usize;
                        if ev.readable || ev.error {
                            self.conn_readable(idx);
                        }
                        if ev.writable {
                            self.conn_writable(idx);
                        }
                    }
                }
            }
            self.free.append(&mut self.free_pending);
            // Backstop sweep: any queue left non-empty with no kick in
            // flight (a race lost at a quiescence edge, a registration
            // failure) would otherwise wedge forever — its owner skips
            // further kicks while `kicked` is set. Sweeping on idle
            // ticks (and periodically under sustained load) bounds any
            // such stall at roughly one `read_timeout`.
            iter = iter.wrapping_add(1);
            if events.is_empty() || iter.is_multiple_of(64) {
                self.sweep_queues();
            }
        }
        // Unregister before dropping so the poll(2) fallback stays tidy.
        // The listener and waker go first so the parting flush only
        // sees connection events (no new accepts on the way out).
        let _ = self.poller.remove(self.listener.as_raw_fd());
        let _ = self.poller.remove(self.waker.fd());
        self.flush_before_close(&mut events);
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.close_conn(idx);
            }
        }
    }

    /// Best-effort parting flush: a frame enqueued just before
    /// `shutdown()` — a daemon's final reply — gets one bounded window
    /// to reach the kernel instead of being silently stranded by
    /// teardown. Only peers with a live connection are pumped (no
    /// fresh dials on the way out), and a blocked socket is waited on
    /// only until the deadline, so a wedged peer cannot hold the
    /// thread join hostage. Whatever is still queued afterwards is
    /// dropped exactly as before — lossy semantics unchanged.
    fn flush_before_close(&mut self, events: &mut Vec<epoll::Event>) {
        let deadline = Instant::now() + FLUSH_ON_SHUTDOWN;
        loop {
            let routed: Vec<NodeId> = {
                let queues = self.shared.queues.lock().unwrap();
                queues
                    .iter()
                    .filter(|(p, q)| {
                        q.depth.load(Ordering::Relaxed) > 0 && self.route.contains_key(p)
                    })
                    .map(|(p, _)| *p)
                    .collect()
            };
            for peer in &routed {
                self.pump_peer(*peer);
            }
            let unflushed = self.conns.iter().flatten().any(|c| !c.batch.is_empty());
            if !unflushed {
                break;
            }
            let now = Instant::now();
            if now >= deadline || self.poller.wait(events, Some(deadline - now)).is_err() {
                break;
            }
            for ev in events.iter() {
                if ev.token >= TOK_CONN0 && ev.writable {
                    self.conn_writable((ev.token - TOK_CONN0) as usize);
                }
            }
            self.free.append(&mut self.free_pending);
        }
    }

    /// Pump every peer whose queue has frames waiting (see `run`).
    fn sweep_queues(&mut self) {
        let pending: Vec<NodeId> = {
            let queues = self.shared.queues.lock().unwrap();
            queues
                .iter()
                .filter(|(_, q)| q.depth.load(Ordering::Relaxed) > 0)
                .map(|(p, _)| *p)
                .collect()
        };
        for peer in pending {
            self.pump_peer(peer);
        }
    }

    /// Commands from the daemon thread and results from the dialer.
    fn drain_channels(&mut self) {
        while let Ok(cmd) = self.cmd_rx.try_recv() {
            match cmd {
                Cmd::Kick(peer) => self.pump_peer(peer),
                Cmd::Ensure(peer) => {
                    if !self.connected(peer) && !self.dialing.contains_key(&peer) {
                        self.start_dial(peer, 1);
                    }
                }
                Cmd::Evict(peer) => self.evict(peer),
            }
        }
        while let Ok(res) = self.dial_res.try_recv() {
            self.dial_finished(res);
        }
    }

    fn connected(&self, peer: NodeId) -> bool {
        self.route.get(&peer).is_some_and(|&i| {
            self.conns.get(i).is_some_and(|c| {
                c.as_ref().is_some_and(|c| c.peer == Some(peer))
            })
        })
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        let mut due = Vec::new();
        self.timers.retain(|(at, t)| {
            if *at <= now {
                due.push(match t {
                    Timer::Kick(p) => Timer::Kick(*p),
                    Timer::Redial(p) => Timer::Redial(*p),
                });
                false
            } else {
                true
            }
        });
        for t in due {
            match t {
                Timer::Kick(peer) => self.pump_peer(peer),
                Timer::Redial(peer) => {
                    if let Some(addr) = self.addr_of(peer) {
                        let _ = self.dial_req.send(DialReq { peer, addr });
                    } else {
                        self.dialing.remove(&peer);
                        self.drop_backlog(peer);
                    }
                }
            }
        }
    }

    fn next_timeout(&self) -> Duration {
        let mut t = self.cfg.read_timeout;
        let now = Instant::now();
        for (at, _) in &self.timers {
            t = t.min(at.saturating_duration_since(now).max(Duration::from_millis(1)));
        }
        t
    }

    fn addr_of(&self, peer: NodeId) -> Option<SocketAddr> {
        self.shared.peers.lock().unwrap().get(&peer).copied()
    }

    // ---------------------------------------------------------- accept

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.register_conn(stream, None).is_err() {
                        continue;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient (ECONNABORTED etc.): the next readiness
                // event retries.
                Err(_) => break,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream, peer: Option<NodeId>) -> std::io::Result<usize> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let tok = TOK_CONN0 + idx as Token;
        if let Err(e) = self.poller.add(stream.as_raw_fd(), tok, Interest::READABLE) {
            self.free.push(idx);
            return Err(e);
        }
        self.conns[idx] = Some(Conn {
            stream,
            decoder: StreamDecoder::new(),
            peer,
            batch: VecDeque::new(),
            front_off: 0,
            want_write: false,
        });
        if let Some(p) = peer {
            self.route.insert(p, idx);
        }
        self.shared.counters.conns.fetch_add(1, Ordering::Relaxed);
        Ok(idx)
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else { return };
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        if !conn.batch.is_empty() {
            self.shared
                .counters
                .send_failures
                .fetch_add(conn.batch.len() as u64, Ordering::Relaxed);
        }
        if let Some(p) = conn.peer {
            if self.route.get(&p) == Some(&idx) {
                self.route.remove(&p);
            }
        }
        self.free_pending.push(idx);
        self.shared.counters.conns.fetch_sub(1, Ordering::Relaxed);
        // Frames may still be queued for this peer: redial so they are
        // either delivered on a fresh connection or dropped by the
        // dial-failure path (lossy semantics, bounded retry).
        if let Some(p) = conn.peer {
            if self.backlog_pending(p) && !self.dialing.contains_key(&p) {
                self.start_dial(p, 1);
            }
        }
    }

    // ------------------------------------------------------------ read

    fn conn_readable(&mut self, idx: usize) {
        for _ in 0..READS_PER_EVENT {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
            let spare = conn.decoder.spare();
            if spare.is_empty() {
                self.close_conn(idx);
                return;
            }
            match conn.stream.read(spare) {
                Ok(0) => {
                    self.close_conn(idx);
                    return;
                }
                Ok(n) => match conn.decoder.advance(n) {
                    Ok(Some((sender, frame))) => self.on_frame(idx, sender, frame),
                    Ok(None) => {}
                    Err(_) => {
                        // The stream is out of sync; there is no resync
                        // point in a byte stream, so drop the connection.
                        self.shared.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                        self.close_conn(idx);
                        return;
                    }
                },
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
    }

    fn on_frame(&mut self, idx: usize, sender: NodeId, frame: Frame) {
        // First frame pins the connection's peer identity; the
        // connection becomes the preferred reply route if none exists
        // (so listener-less clients can be answered over their own
        // connection).
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
        if conn.peer.is_none() {
            conn.peer = Some(sender);
        }
        match frame {
            Frame::Hello { listen_addr } => {
                if let Ok(addr) = listen_addr.parse() {
                    let prev = self.shared.peers.lock().unwrap().insert(sender, addr);
                    if prev.is_some_and(|p| p != addr) {
                        // The peer's listen address changed: a cached
                        // outbound connection points at a dead
                        // incarnation and must not swallow more frames.
                        if let Some(&old) = self.route.get(&sender) {
                            if old != idx {
                                self.close_conn(old);
                            }
                        }
                    }
                }
                // A Hello is a deliberate introduction: prefer this
                // connection for replies from now on.
                self.route.insert(sender, idx);
                self.pump_peer(sender);
            }
            Frame::Msg(msg) => {
                self.route.entry(sender).or_insert(idx);
                match self.inbox.try_send((sender, msg)) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                        self.shared.counters.dropped_inbox_full.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    // ----------------------------------------------------------- write

    fn queue_of(&self, peer: NodeId) -> Option<Arc<PeerQueue>> {
        self.shared.queues.lock().unwrap().get(&peer).cloned()
    }

    fn backlog_pending(&self, peer: NodeId) -> bool {
        self.queue_of(peer)
            .is_some_and(|q| !q.inner.lock().unwrap().q.is_empty())
    }

    /// Drop every queued frame for `peer` (unreachable after redial, or
    /// evicted), counting them as send failures, and re-arm kicks.
    fn drop_backlog(&mut self, peer: NodeId) {
        let Some(pq) = self.queue_of(peer) else { return };
        let mut g = pq.inner.lock().unwrap();
        let n = g.q.len() as u64;
        g.q.clear();
        g.kicked = false;
        drop(g);
        if n > 0 {
            pq.depth.fetch_sub(n, Ordering::Relaxed);
            self.shared.counters.send_failures.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Move queued frames for `peer` toward the wire: ensure a
    /// connection (dialing if needed), refill the write batch, write
    /// until done or the socket blocks.
    fn pump_peer(&mut self, peer: NodeId) {
        let Some(&idx) = self.route.get(&peer) else {
            // No live connection: dial unless one is in progress.
            if self.backlog_pending(peer) && !self.dialing.contains_key(&peer) {
                self.start_dial(peer, 1);
            }
            return;
        };
        self.pump_conn(idx, peer);
    }

    fn pump_conn(&mut self, idx: usize, peer: NodeId) {
        let Some(pq) = self.queue_of(peer) else { return };
        loop {
            // Refill the batch from the queue (chaos-delayed frames hold
            // the link — FIFO order is preserved, like queueing delay on
            // a real NIC).
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
            {
                let now = Instant::now();
                let mut g = pq.inner.lock().unwrap();
                let mut took = 0u64;
                while conn.batch.len() < COALESCE_MAX {
                    match g.q.front() {
                        Some(item) => {
                            if let Some(at) = item.deliver_at {
                                if at > now {
                                    self.timers.push((at, Timer::Kick(peer)));
                                    break;
                                }
                            }
                        }
                        None => break,
                    }
                    let item = g.q.pop_front().expect("front just checked");
                    conn.batch.push_back(item.buf);
                    took += 1;
                }
                if g.q.is_empty() && conn.batch.is_empty() {
                    // Fully drained: the next enqueue must kick again.
                    g.kicked = false;
                }
                drop(g);
                if took > 0 {
                    pq.depth.fetch_sub(took, Ordering::Relaxed);
                }
            }
            if conn.batch.is_empty() {
                self.set_want_write(idx, false);
                return;
            }
            match self.write_batch(idx) {
                WriteOutcome::Drained => continue,
                WriteOutcome::Blocked => {
                    self.set_want_write(idx, true);
                    return;
                }
                WriteOutcome::Closed => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
    }

    fn conn_writable(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
        let Some(peer) = conn.peer else { return };
        self.pump_conn(idx, peer);
    }

    /// Write the connection's batch with as few syscalls as possible,
    /// resuming mid-frame. Any hard write error invalidates the
    /// connection (a partial frame cannot be resumed on a byte stream —
    /// the receiver resyncs by dropping the connection).
    fn write_batch(&mut self, idx: usize) -> WriteOutcome {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return WriteOutcome::Closed;
        };
        while !conn.batch.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(conn.batch.len());
            for (i, b) in conn.batch.iter().enumerate() {
                let bytes: &[u8] = b;
                slices.push(IoSlice::new(if i == 0 { &bytes[conn.front_off..] } else { bytes }));
            }
            match conn.stream.write_vectored(&slices) {
                Ok(0) => return WriteOutcome::Closed,
                Ok(mut n) => {
                    while n > 0 {
                        let front_len = conn.batch.front().expect("batch nonempty").len();
                        let rem = front_len - conn.front_off;
                        if n >= rem {
                            n -= rem;
                            conn.batch.pop_front();
                            conn.front_off = 0;
                            self.shared.counters.sent.fetch_add(1, Ordering::Relaxed);
                        } else {
                            conn.front_off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    return WriteOutcome::Blocked;
                }
                Err(_) => return WriteOutcome::Closed,
            }
        }
        WriteOutcome::Drained
    }

    fn set_want_write(&mut self, idx: usize, want: bool) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
        if conn.want_write == want {
            return;
        }
        conn.want_write = want;
        let interest = if want { Interest::BOTH } else { Interest::READABLE };
        if want {
            // The write-backpressure counter: each transition into an
            // EPOLLOUT wait is one instance of "the kernel buffer is
            // full and the peer is not draining fast enough".
            self.shared.counters.epollout_waits.fetch_add(1, Ordering::Relaxed);
        }
        let tok = TOK_CONN0 + idx as Token;
        let _ = self.poller.modify(conn.stream.as_raw_fd(), tok, interest);
    }

    // ------------------------------------------------------------ dial

    fn start_dial(&mut self, peer: NodeId, attempt: u32) {
        let Some(addr) = self.addr_of(peer) else {
            // Unroutable: nothing to dial, nothing will drain the queue.
            self.drop_backlog(peer);
            return;
        };
        self.dialing.insert(peer, attempt);
        let _ = self.dial_req.send(DialReq { peer, addr });
    }

    fn dial_finished(&mut self, res: DialRes) {
        let attempt = self.dialing.remove(&res.peer).unwrap_or(1);
        match res.stream {
            Some(stream) => match self.register_conn(stream, Some(res.peer)) {
                Ok(idx) => self.pump_conn(idx, res.peer),
                // Registration failure (fd exhaustion): without a
                // connection nothing will ever drain the backlog.
                Err(_) => self.drop_backlog(res.peer),
            },
            None => {
                if attempt == 1 {
                    // One redial after a short backoff, then the backlog
                    // is dropped (lossy-network semantics).
                    self.dialing.insert(res.peer, 2);
                    self.timers
                        .push((Instant::now() + self.cfg.retry_backoff, Timer::Redial(res.peer)));
                } else {
                    self.drop_backlog(res.peer);
                }
            }
        }
    }

    fn evict(&mut self, peer: NodeId) {
        if let Some(&idx) = self.route.get(&peer) {
            self.close_conn(idx);
        }
        self.drop_backlog(peer);
    }
}

enum WriteOutcome {
    Drained,
    Blocked,
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Count live threads owned by `me`'s mesh: the event loop
    /// (`sorrento-net-<idx>`) and the dialer (`sorrento-dial-<idx>`).
    /// `/proc` thread names are truncated to 15 bytes, so the census is
    /// exact as long as tests use distinct single-digit node indices.
    #[cfg(target_os = "linux")]
    fn mesh_threads_of(me: NodeId) -> usize {
        let prefixes = [format!("sorrento-net-{}", me.index()), format!("sorrento-dial-{}", me.index())];
        let prefixes: Vec<&str> = prefixes.iter().map(|p| &p[..p.len().min(15)]).collect();
        let Ok(tasks) = std::fs::read_dir("/proc/self/task") else { return 0 };
        tasks
            .flatten()
            .filter_map(|t| std::fs::read_to_string(t.path().join("comm")).ok())
            .filter(|comm| prefixes.contains(&comm.trim_end()))
            .count()
    }

    #[test]
    fn two_nodes_exchange_messages() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a0 = l0.local_addr().unwrap();
        let a1 = l1.local_addr().unwrap();
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let mut m0 = Mesh::start(
            n0,
            l0,
            HashMap::from([(n1, a1)]),
            MeshConfig::default(),
        )
        .unwrap();
        let m1 = Mesh::start(n1, l1, HashMap::from([(n0, a0)]), MeshConfig::default()).unwrap();

        m0.send(n1, &Msg::StatsQuery { req: 42 });
        let (from, msg) = m1.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(from, n0);
        assert!(matches!(msg, Msg::StatsQuery { req: 42 }));
    }

    #[test]
    fn send_to_dead_peer_drops_silently() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let mut m0 =
            Mesh::start(n0, l0, HashMap::from([(n1, dead)]), MeshConfig::default()).unwrap();
        m0.send(n1, &Msg::StatsQuery { req: 1 });
        // The failure is recorded by the event loop after the dialer's
        // connect + one retry, so poll for it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while m0.stats().send_failures == 0 {
            assert!(Instant::now() < deadline, "send failure never counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(m0.stats().send_failures, 1);
        assert_eq!(m0.stats().sent, 0);
    }

    /// One peer that accepts but never reads must not delay delivery to
    /// a healthy peer: its frames pile into its own queue (and
    /// eventually drop) while the event loop keeps the healthy peer's
    /// connection flowing — a blocked socket costs an `EPOLLOUT`
    /// subscription, never a stalled loop.
    ///
    /// The shutdown half pins the thread-join guarantee: dropping the
    /// mesh joins the event loop and the dialer even while a socket is
    /// wedged against the never-reading peer, leaving no thread growth
    /// behind.
    #[test]
    fn slow_peer_does_not_stall_other_sends() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l_fast = TcpListener::bind("127.0.0.1:0").unwrap();
        let a_fast = l_fast.local_addr().unwrap();
        // The slow peer: a raw listener whose accept loop deliberately
        // never reads, so the sender's TCP window fills and its writes
        // would block.
        let l_slow = TcpListener::bind("127.0.0.1:0").unwrap();
        let a_slow = l_slow.local_addr().unwrap();
        let slow_guard = std::thread::spawn(move || {
            let conns: Vec<TcpStream> =
                (0..1).filter_map(|_| l_slow.accept().ok().map(|(s, _)| s)).collect();
            std::thread::sleep(Duration::from_secs(3));
            drop(conns);
        });

        // Node index 9 is unique to this test, so the /proc thread-name
        // census below cannot race other tests' meshes.
        let n0 = NodeId::from_index(9);
        let n_fast = NodeId::from_index(1);
        let n_slow = NodeId::from_index(2);
        let cfg = MeshConfig { outbound_queue: 8, ..MeshConfig::default() };
        let mut m0 = Mesh::start(
            n0,
            l0,
            HashMap::from([(n_fast, a_fast), (n_slow, a_slow)]),
            cfg,
        )
        .unwrap();
        let m_fast = Mesh::start(n_fast, l_fast, HashMap::new(), MeshConfig::default()).unwrap();

        // Flood the slow peer with large frames until both the TCP
        // buffers and its bounded queue are saturated.
        let big = Msg::StatsR { req: 0, json: "x".repeat(1 << 20) };
        for _ in 0..64 {
            m0.send(n_slow, &big);
        }
        // A send to the healthy peer must still go through promptly.
        let t0 = Instant::now();
        m0.send(n_fast, &Msg::StatsQuery { req: 7 });
        let (from, msg) = m_fast.recv_timeout(Duration::from_secs(2)).expect("fast peer starved");
        assert_eq!(from, n0);
        assert!(matches!(msg, Msg::StatsQuery { req: 7 }));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "healthy-peer delivery took {:?}",
            t0.elapsed()
        );
        // The whole mesh — two live connections, one of them wedged —
        // runs on exactly two threads.
        #[cfg(target_os = "linux")]
        expect_census(n0, 2, "mesh must run O(1) threads");
        drop(m0);
        // Shutdown joins both threads, so the census is zero right
        // after the drop.
        #[cfg(target_os = "linux")]
        expect_census(n0, 0, "mesh threads leaked past shutdown");
        let _ = slow_guard.join();
    }

    /// Poll until the census reaches `expected` (threads name
    /// themselves after spawn, so a fresh mesh needs a beat).
    #[cfg(target_os = "linux")]
    fn expect_census(me: NodeId, expected: usize, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let n = mesh_threads_of(me);
            if n == expected {
                return;
            }
            assert!(Instant::now() < deadline, "{what}: census {n}, expected {expected}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// The thread census is independent of how many peers the mesh
    /// talks to: 2 threads with zero peers, 2 threads with three live
    /// connections (under the old design this was 1 + peers·2).
    #[test]
    fn thread_count_is_constant_in_peer_count() {
        let hub_id = NodeId::from_index(5);
        let l_hub = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut hub = Mesh::start(hub_id, l_hub, HashMap::new(), MeshConfig::default()).unwrap();
        #[cfg(target_os = "linux")]
        expect_census(hub_id, 2, "census with zero peers");

        let peers: Vec<Mesh> = (6..9)
            .map(|i| {
                let l = TcpListener::bind("127.0.0.1:0").unwrap();
                let id = NodeId::from_index(i);
                hub.add_peer(id, l.local_addr().unwrap());
                Mesh::start(id, l, HashMap::new(), MeshConfig::default()).unwrap()
            })
            .collect();
        for (i, peer) in peers.iter().enumerate() {
            hub.send(NodeId::from_index(6 + i), &Msg::StatsQuery { req: i as u64 });
            let (from, _) = peer.recv_timeout(Duration::from_secs(5)).expect("delivery");
            assert_eq!(from, hub_id);
        }
        assert!(hub.stats().conns >= 3, "expected 3 live connections");
        #[cfg(target_os = "linux")]
        expect_census(hub_id, 2, "census must not grow with connections");
        drop(hub);
        #[cfg(target_os = "linux")]
        expect_census(hub_id, 0, "mesh threads leaked past shutdown");
    }

    /// A listener-less client (raw socket, `Hello` with an empty listen
    /// address) must still be answerable: replies route over the live
    /// inbound connection its frames arrived on. This is what lets
    /// thousands of storm sessions hammer one daemon without a reverse
    /// dial per session.
    #[test]
    fn replies_flow_over_the_inbound_connection() {
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a1 = l1.local_addr().unwrap();
        let n1 = NodeId::from_index(8);
        let client = NodeId::from_index(100);
        let mut m1 = Mesh::start(n1, l1, HashMap::new(), MeshConfig::default()).unwrap();

        let mut c = TcpStream::connect(a1).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(&frame::encode_hello(client, "")).unwrap();
        c.write_all(&frame::encode_msg(client, &Msg::StatsQuery { req: 5 })).unwrap();

        let (from, msg) = m1.recv_timeout(Duration::from_secs(5)).expect("request");
        assert_eq!(from, client);
        assert!(matches!(msg, Msg::StatsQuery { req: 5 }));

        m1.send(client, &Msg::StatsR { req: 5, json: "ok".into() });
        let mut dec = StreamDecoder::new();
        loop {
            let n = c.read(dec.spare()).expect("reply bytes");
            assert_ne!(n, 0, "daemon closed the connection instead of replying");
            if let Some((sender, Frame::Msg(msg))) = dec.advance(n).expect("clean frame") {
                assert_eq!(sender, n1);
                assert!(matches!(msg, Msg::StatsR { req: 5, .. }));
                break;
            }
        }
        assert_eq!(m1.stats().send_failures, 0, "reply must not need a reverse dial");
    }

    /// Chaos at 100% drop suppresses every frame (counted, nothing
    /// delivered); at 100% duplicate each send lands twice; uninstalling
    /// chaos restores clean delivery.
    #[test]
    fn chaos_rules_apply_at_the_enqueue_boundary() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a1 = l1.local_addr().unwrap();
        let n0 = NodeId::from_index(3);
        let n1 = NodeId::from_index(4);
        let mut m0 =
            Mesh::start(n0, l0, HashMap::from([(n1, a1)]), MeshConfig::default()).unwrap();
        let m1 = Mesh::start(n1, l1, HashMap::new(), MeshConfig::default()).unwrap();

        m0.set_chaos(Some(ChaosConfig {
            seed: 1,
            drop_permille: 1000,
            ..ChaosConfig::default()
        }));
        m0.send(n1, &Msg::StatsQuery { req: 1 });
        assert!(m1.recv_timeout(Duration::from_millis(300)).is_none(), "dropped frame arrived");
        assert_eq!(m0.stats().chaos_dropped, 1);

        m0.set_chaos(Some(ChaosConfig {
            seed: 1,
            dup_permille: 1000,
            ..ChaosConfig::default()
        }));
        m0.send(n1, &Msg::StatsQuery { req: 2 });
        for _ in 0..2 {
            let (_, msg) = m1.recv_timeout(Duration::from_secs(5)).expect("duplicate copy");
            assert!(matches!(msg, Msg::StatsQuery { req: 2 }));
        }
        assert_eq!(m0.stats().chaos_duplicated, 1);

        m0.set_chaos(None);
        m0.send(n1, &Msg::StatsQuery { req: 3 });
        let (_, msg) = m1.recv_timeout(Duration::from_secs(5)).expect("clean delivery");
        assert!(matches!(msg, Msg::StatsQuery { req: 3 }));
        assert!(m1.recv_timeout(Duration::from_millis(200)).is_none());
    }

    /// A multicast encodes the frame once and shares it; every peer
    /// still gets a complete copy.
    #[test]
    fn multicast_reaches_all_peers() {
        let mk = || TcpListener::bind("127.0.0.1:0").unwrap();
        let (l0, l1, l2) = (mk(), mk(), mk());
        let (a1, a2) = (l1.local_addr().unwrap(), l2.local_addr().unwrap());
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        let mut m0 = Mesh::start(
            n0,
            l0,
            HashMap::from([(n1, a1), (n2, a2)]),
            MeshConfig::default(),
        )
        .unwrap();
        let m1 = Mesh::start(n1, l1, HashMap::new(), MeshConfig::default()).unwrap();
        let m2 = Mesh::start(n2, l2, HashMap::new(), MeshConfig::default()).unwrap();
        m0.multicast(&Msg::StatsQuery { req: 9 });
        for m in [&m1, &m2] {
            let (from, msg) = m.recv_timeout(Duration::from_secs(5)).expect("delivery");
            assert_eq!(from, n0);
            assert!(matches!(msg, Msg::StatsQuery { req: 9 }));
        }
    }
}
