//! A std-only TCP mesh for Sorrento daemons.
//!
//! Each node owns one listening socket and a cache of outbound
//! connections keyed by peer [`NodeId`]. Inbound connections get a
//! reader thread each; decoded messages land in a bounded inbox the
//! daemon loop drains. `Hello` frames register the sender's listen
//! address, so a node only needs a seed peer list — everyone it has
//! ever heard from becomes routable, which is how the runtime replaces
//! the simulator's Ethernet multicast with peer-list fan-out.
//!
//! Delivery semantics deliberately mirror the simulator's lossy
//! network: a send to a dead or unreachable peer is retried once after
//! a short backoff and then dropped silently. The protocol already
//! treats message loss as normal (RPC timeouts, repair scans), so the
//! transport never needs to surface per-message errors.

use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sorrento::proto::Msg;
use sorrento_sim::NodeId;

use crate::frame::{self, Frame, HEADER_LEN};

/// Transport tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Outbound connection establishment budget.
    pub connect_timeout: Duration,
    /// Socket read timeout (also the shutdown poll period for reader
    /// threads).
    pub read_timeout: Duration,
    /// Wait before the single resend attempt after a send failure.
    pub retry_backoff: Duration,
    /// Bounded inbox depth; senders beyond it are dropped, not blocked.
    pub inbox_capacity: usize,
}

impl Default for MeshConfig {
    fn default() -> MeshConfig {
        MeshConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(100),
            retry_backoff: Duration::from_millis(50),
            inbox_capacity: 1024,
        }
    }
}

/// Counters the mesh keeps about itself (drained into the node's
/// metrics registry by the daemon loop).
#[derive(Debug, Default)]
struct MeshCounters {
    sent: u64,
    send_failures: u64,
    dropped_inbox_full: u64,
    decode_errors: u64,
}

struct Shared {
    /// NodeId → listen address, learned from config and `Hello` frames.
    peers: Mutex<HashMap<NodeId, SocketAddr>>,
    /// Nodes whose listen address changed since we last dialed them: the
    /// cached outbound stream points at a dead incarnation and must be
    /// evicted before reuse, or the first write after the change is
    /// silently buffered into a socket nobody reads.
    stale: Mutex<HashSet<NodeId>>,
    counters: Mutex<MeshCounters>,
    shutdown: AtomicBool,
}

/// The node's connection fabric.
pub struct Mesh {
    me: NodeId,
    listen_addr: SocketAddr,
    cfg: MeshConfig,
    shared: Arc<Shared>,
    inbox: Receiver<(NodeId, Msg)>,
    /// Cached outbound streams (only the daemon thread sends).
    conns: HashMap<NodeId, TcpStream>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Mesh {
    /// Start the mesh on an already-bound listener with a seed peer
    /// list. The listener is taken over by an accept thread.
    pub fn start(
        me: NodeId,
        listener: TcpListener,
        seed_peers: HashMap<NodeId, SocketAddr>,
        cfg: MeshConfig,
    ) -> std::io::Result<Mesh> {
        let listen_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::sync_channel(cfg.inbox_capacity);
        let shared = Arc::new(Shared {
            peers: Mutex::new(seed_peers),
            stale: Mutex::new(HashSet::new()),
            counters: Mutex::new(MeshCounters::default()),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("sorrento-accept-{}", me.index()))
            .spawn(move || accept_loop(listener, accept_shared, tx, cfg))?;
        Ok(Mesh {
            me,
            listen_addr,
            cfg,
            shared,
            inbox: rx,
            conns: HashMap::new(),
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Register (or update) a peer's listen address.
    pub fn add_peer(&self, id: NodeId, addr: SocketAddr) {
        self.shared.peers.lock().unwrap().insert(id, addr);
    }

    /// Every peer currently known (never includes this node).
    pub fn known_peers(&self) -> Vec<NodeId> {
        let peers = self.shared.peers.lock().unwrap();
        peers.keys().copied().filter(|&p| p != self.me).collect()
    }

    /// Blocking receive with a timeout; `None` on timeout or shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(NodeId, Msg)> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Send to one peer: best-effort, one retry after backoff, then the
    /// message is dropped (the peer's death shows up as RPC timeouts,
    /// exactly as in the simulator).
    pub fn send(&mut self, to: NodeId, msg: &Msg) {
        let bytes = frame::encode_msg(self.me, msg);
        if self.send_bytes(to, &bytes) {
            self.shared.counters.lock().unwrap().sent += 1;
        } else {
            std::thread::sleep(self.cfg.retry_backoff);
            self.conns.remove(&to);
            if self.send_bytes(to, &bytes) {
                self.shared.counters.lock().unwrap().sent += 1;
            } else {
                self.shared.counters.lock().unwrap().send_failures += 1;
            }
        }
    }

    /// Fan a message out to every known peer.
    pub fn multicast(&mut self, msg: &Msg) {
        for peer in self.known_peers() {
            self.send(peer, msg);
        }
    }

    /// Open a connection (which carries our `Hello`) to every known
    /// peer. A joining node calls this so daemons learn its listen
    /// address — and start multicasting to it — before it sends any
    /// protocol traffic.
    pub fn hello_all(&mut self) {
        for peer in self.known_peers() {
            self.ensure_conn(peer);
        }
    }

    /// Flush mesh counters into labeled metrics.
    pub fn export_metrics(&self, metrics: &mut sorrento_sim::Metrics) {
        let c = self.shared.counters.lock().unwrap();
        metrics.gauge_set("net_sent", c.sent as f64);
        metrics.gauge_set("net_send_failures", c.send_failures as f64);
        metrics.gauge_set("net_dropped_inbox_full", c.dropped_inbox_full as f64);
        metrics.gauge_set("net_decode_errors", c.decode_errors as f64);
    }

    /// Stop the accept thread and all reader threads.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.conns.clear();
    }

    /// Establish (or reuse) the outbound connection to `to`, sending
    /// our `Hello` on a fresh connection.
    fn ensure_conn(&mut self, to: NodeId) -> bool {
        if self.shared.stale.lock().unwrap().remove(&to) {
            self.conns.remove(&to);
        }
        if self.conns.contains_key(&to) {
            return true;
        }
        let addr = match self.shared.peers.lock().unwrap().get(&to).copied() {
            Some(a) => a,
            None => return false,
        };
        let mut stream = match TcpStream::connect_timeout(&addr, self.cfg.connect_timeout) {
            Ok(s) => s,
            Err(_) => return false,
        };
        let _ = stream.set_nodelay(true);
        // Introduce ourselves so the peer can route replies and
        // multicasts back without prior configuration.
        let hello = frame::encode_hello(self.me, &self.listen_addr.to_string());
        if stream.write_all(&hello).is_err() {
            return false;
        }
        self.conns.insert(to, stream);
        true
    }

    fn send_bytes(&mut self, to: NodeId, bytes: &[u8]) -> bool {
        if !self.ensure_conn(to) {
            return false;
        }
        let stream = self.conns.get_mut(&to).expect("conn just ensured");
        if stream.write_all(bytes).is_err() {
            self.conns.remove(&to);
            return false;
        }
        true
    }
}

impl Drop for Mesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    tx: SyncSender<(NodeId, Msg)>,
    cfg: MeshConfig,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                let _ = std::thread::Builder::new()
                    .name("sorrento-reader".to_string())
                    .spawn(move || reader_loop(stream, shared, tx, cfg));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn reader_loop(
    mut stream: TcpStream,
    shared: Arc<Shared>,
    tx: SyncSender<(NodeId, Msg)>,
    cfg: MeshConfig,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let mut header = [0u8; HEADER_LEN];
    while !shared.shutdown.load(Ordering::SeqCst) {
        match read_exact_polled(&mut stream, &mut header, &shared) {
            ReadOutcome::Ok => {}
            ReadOutcome::Closed => return,
        }
        let h = match frame::decode_header(&header) {
            Ok(h) => h,
            Err(_) => {
                // The stream is out of sync; there is no resync point in
                // a byte stream, so drop the connection.
                shared.counters.lock().unwrap().decode_errors += 1;
                return;
            }
        };
        let mut payload = vec![0u8; h.payload_len as usize];
        match read_exact_polled(&mut stream, &mut payload, &shared) {
            ReadOutcome::Ok => {}
            ReadOutcome::Closed => return,
        }
        match frame::decode_payload(&h, &payload) {
            Ok(Frame::Hello { listen_addr }) => {
                if let Ok(addr) = listen_addr.parse() {
                    let prev = shared.peers.lock().unwrap().insert(h.sender, addr);
                    if prev.is_some_and(|p| p != addr) {
                        shared.stale.lock().unwrap().insert(h.sender);
                    }
                }
            }
            Ok(Frame::Msg(msg)) => match tx.try_send((h.sender, msg)) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    shared.counters.lock().unwrap().dropped_inbox_full += 1;
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(_) => {
                shared.counters.lock().unwrap().decode_errors += 1;
                return;
            }
        }
    }
}

enum ReadOutcome {
    Ok,
    Closed,
}

/// `read_exact` that keeps polling through read timeouts so the thread
/// can notice shutdown, but treats EOF and hard errors as closed.
fn read_exact_polled(stream: &mut TcpStream, buf: &mut [u8], shared: &Shared) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return ReadOutcome::Closed;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Mid-frame stalls are fine; keep waiting unless shutting
                // down.
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_nodes_exchange_messages() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a0 = l0.local_addr().unwrap();
        let a1 = l1.local_addr().unwrap();
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let mut m0 = Mesh::start(
            n0,
            l0,
            HashMap::from([(n1, a1)]),
            MeshConfig::default(),
        )
        .unwrap();
        let m1 = Mesh::start(n1, l1, HashMap::from([(n0, a0)]), MeshConfig::default()).unwrap();

        m0.send(n1, &Msg::StatsQuery { req: 42 });
        let (from, msg) = m1.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(from, n0);
        assert!(matches!(msg, Msg::StatsQuery { req: 42 }));
    }

    #[test]
    fn send_to_dead_peer_drops_silently() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let mut m0 =
            Mesh::start(n0, l0, HashMap::from([(n1, dead)]), MeshConfig::default()).unwrap();
        m0.send(n1, &Msg::StatsQuery { req: 1 });
        assert_eq!(m0.shared.counters.lock().unwrap().send_failures, 1);
    }
}
