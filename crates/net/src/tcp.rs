//! A std-only TCP mesh for Sorrento daemons.
//!
//! Each node owns one listening socket, a reader thread per inbound
//! connection feeding a bounded inbox, and — on the outbound side — one
//! sender thread per peer behind a bounded queue of encoded frames.
//! `Hello` frames register the sender's listen address, so a node only
//! needs a seed peer list — everyone it has ever heard from becomes
//! routable, which is how the runtime replaces the simulator's Ethernet
//! multicast with peer-list fan-out.
//!
//! Outbound data path: `send` encodes the frame once into a buffer
//! checked out of a [`BufPool`] and hands an `Arc` of it to the peer's
//! queue (a multicast shares the same encoded frame across every
//! queue). The sender thread drains its queue in batches and pushes
//! them to the socket with vectored writes, so a burst of pipelined
//! chunks coalesces into few syscalls. Crucially, no lock is held
//! while a socket write is in flight: a peer that stops reading stalls
//! only its own queue — other peers, and the caller, never block on it.
//! When a queue fills, further frames to that peer are dropped and
//! counted, mirroring the lossy-network semantics below.
//!
//! Delivery semantics deliberately mirror the simulator's lossy
//! network: a send to a dead or unreachable peer is retried once after
//! a short backoff and then dropped silently. The protocol already
//! treats message loss as normal (RPC timeouts, repair scans), so the
//! transport never needs to surface per-message errors.

use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use sorrento::proto::Msg;
use sorrento_sim::NodeId;

use crate::frame::{self, Frame, HEADER_LEN};
use crate::pool::{BufPool, PooledBuf};

/// Most frames folded into one vectored write.
const COALESCE_MAX: usize = 32;

/// Transport tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Outbound connection establishment budget.
    pub connect_timeout: Duration,
    /// Socket read timeout (also the shutdown poll period for reader
    /// and sender threads).
    pub read_timeout: Duration,
    /// Wait before the single resend attempt after a send failure.
    pub retry_backoff: Duration,
    /// Bounded inbox depth; senders beyond it are dropped, not blocked.
    pub inbox_capacity: usize,
    /// Per-peer outbound queue depth; frames beyond it are dropped, not
    /// blocked — one slow peer must never apply backpressure to the
    /// daemon loop.
    pub outbound_queue: usize,
}

impl Default for MeshConfig {
    fn default() -> MeshConfig {
        MeshConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(100),
            retry_backoff: Duration::from_millis(50),
            inbox_capacity: 1024,
            outbound_queue: 256,
        }
    }
}

/// Counters the mesh keeps about itself (drained into the node's
/// metrics registry by the daemon loop). Atomics, because sender
/// threads bump them concurrently.
#[derive(Debug, Default)]
struct MeshCounters {
    sent: AtomicU64,
    send_failures: AtomicU64,
    dropped_inbox_full: AtomicU64,
    decode_errors: AtomicU64,
}

/// A point-in-time copy of the mesh counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeshStats {
    /// Frames written to a socket successfully.
    pub sent: u64,
    /// Frames dropped: peer unreachable after retry, or queue full.
    pub send_failures: u64,
    /// Inbound messages dropped because the inbox was full.
    pub dropped_inbox_full: u64,
    /// Connections dropped for undecodable bytes.
    pub decode_errors: u64,
}

struct Shared {
    /// NodeId → listen address, learned from config and `Hello` frames.
    peers: Mutex<HashMap<NodeId, SocketAddr>>,
    /// Nodes whose listen address changed since we last dialed them: the
    /// cached outbound stream points at a dead incarnation and must be
    /// evicted before reuse, or the first write after the change is
    /// silently buffered into a socket nobody reads.
    stale: Mutex<HashSet<NodeId>>,
    counters: MeshCounters,
    shutdown: AtomicBool,
}

/// Work for a peer's sender thread.
enum OutItem {
    /// A fully encoded frame (header + payload), shared so a multicast
    /// encodes once. The buffer returns to the pool when the last queue
    /// drops it.
    Frame(Arc<PooledBuf>),
    /// Connect (and send our `Hello`) if not already connected.
    EnsureConn,
}

struct PeerSender {
    tx: SyncSender<OutItem>,
    _thread: JoinHandle<()>,
}

/// The node's connection fabric.
pub struct Mesh {
    me: NodeId,
    listen_addr: SocketAddr,
    cfg: MeshConfig,
    shared: Arc<Shared>,
    inbox: Receiver<(NodeId, Msg)>,
    pool: BufPool,
    /// One sender thread + bounded queue per peer (only the daemon
    /// thread enqueues).
    senders: HashMap<NodeId, PeerSender>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Mesh {
    /// Start the mesh on an already-bound listener with a seed peer
    /// list. The listener is taken over by an accept thread.
    pub fn start(
        me: NodeId,
        listener: TcpListener,
        seed_peers: HashMap<NodeId, SocketAddr>,
        cfg: MeshConfig,
    ) -> std::io::Result<Mesh> {
        let listen_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::sync_channel(cfg.inbox_capacity);
        let shared = Arc::new(Shared {
            peers: Mutex::new(seed_peers),
            stale: Mutex::new(HashSet::new()),
            counters: MeshCounters::default(),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("sorrento-accept-{}", me.index()))
            .spawn(move || accept_loop(listener, accept_shared, tx, cfg))?;
        Ok(Mesh {
            me,
            listen_addr,
            cfg,
            shared,
            inbox: rx,
            pool: BufPool::new(),
            senders: HashMap::new(),
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Register (or update) a peer's listen address.
    pub fn add_peer(&self, id: NodeId, addr: SocketAddr) {
        self.shared.peers.lock().unwrap().insert(id, addr);
    }

    /// Every peer currently known (never includes this node).
    pub fn known_peers(&self) -> Vec<NodeId> {
        let peers = self.shared.peers.lock().unwrap();
        peers.keys().copied().filter(|&p| p != self.me).collect()
    }

    /// Blocking receive with a timeout; `None` on timeout or shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(NodeId, Msg)> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Send to one peer: best-effort, one retry after backoff, then the
    /// message is dropped (the peer's death shows up as RPC timeouts,
    /// exactly as in the simulator). Never blocks the caller: the frame
    /// is encoded into a pooled buffer and queued; a full queue drops
    /// the frame.
    pub fn send(&mut self, to: NodeId, msg: &Msg) {
        let mut buf = self.pool.check_out();
        frame::encode_msg_into(&mut buf, self.me, msg);
        self.enqueue(to, Arc::new(buf));
    }

    /// Fan a message out to every known peer, encoding it exactly once.
    pub fn multicast(&mut self, msg: &Msg) {
        let peers = self.known_peers();
        if peers.is_empty() {
            return;
        }
        let mut buf = self.pool.check_out();
        frame::encode_msg_into(&mut buf, self.me, msg);
        let shared_frame = Arc::new(buf);
        for peer in peers {
            self.enqueue(peer, Arc::clone(&shared_frame));
        }
    }

    fn enqueue(&mut self, to: NodeId, frame: Arc<PooledBuf>) {
        let sender = self.sender_for(to);
        match sender.tx.try_send(OutItem::Frame(frame)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.shared.counters.send_failures.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => {
                // Sender thread died (shutdown or panic); a later send
                // will respawn it.
                self.senders.remove(&to);
                self.shared.counters.send_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn sender_for(&mut self, to: NodeId) -> &PeerSender {
        self.senders.entry(to).or_insert_with(|| {
            let (tx, rx) = mpsc::sync_channel(self.cfg.outbound_queue);
            let shared = Arc::clone(&self.shared);
            let cfg = self.cfg;
            let me = self.me;
            let listen = self.listen_addr;
            let thread = std::thread::Builder::new()
                .name(format!("sorrento-send-{}-{}", me.index(), to.index()))
                .spawn(move || sender_loop(to, rx, shared, cfg, me, listen))
                .expect("spawn sender thread");
            PeerSender { tx, _thread: thread }
        })
    }

    /// Open a connection (which carries our `Hello`) to every known
    /// peer. A joining node calls this so daemons learn its listen
    /// address — and start multicasting to it — before it sends any
    /// protocol traffic.
    pub fn hello_all(&mut self) {
        for peer in self.known_peers() {
            let sender = self.sender_for(peer);
            let _ = sender.tx.try_send(OutItem::EnsureConn);
        }
    }

    /// A snapshot of the mesh counters.
    pub fn stats(&self) -> MeshStats {
        let c = &self.shared.counters;
        MeshStats {
            sent: c.sent.load(Ordering::Relaxed),
            send_failures: c.send_failures.load(Ordering::Relaxed),
            dropped_inbox_full: c.dropped_inbox_full.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
        }
    }

    /// Flush mesh counters into labeled metrics.
    pub fn export_metrics(&self, metrics: &mut sorrento_sim::Metrics) {
        let s = self.stats();
        metrics.gauge_set("net_sent", s.sent as f64);
        metrics.gauge_set("net_send_failures", s.send_failures as f64);
        metrics.gauge_set("net_dropped_inbox_full", s.dropped_inbox_full as f64);
        metrics.gauge_set("net_decode_errors", s.decode_errors as f64);
    }

    /// Stop the accept thread, reader threads, and sender threads.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Dropping the queues disconnects the sender threads; they exit
        // on their next queue poll rather than being joined, so a
        // thread mid-write to a stalled peer cannot wedge shutdown.
        self.senders.clear();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Mesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------------- send side

/// Per-peer sender: owns the peer's outbound `TcpStream` outright, so
/// connecting, `Hello`, retries, and the blocking writes themselves all
/// happen outside any shared lock.
fn sender_loop(
    peer: NodeId,
    rx: Receiver<OutItem>,
    shared: Arc<Shared>,
    cfg: MeshConfig,
    me: NodeId,
    listen_addr: SocketAddr,
) {
    let mut conn: Option<TcpStream> = None;
    let mut batch: Vec<Arc<PooledBuf>> = Vec::with_capacity(COALESCE_MAX);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let first = match rx.recv_timeout(cfg.read_timeout) {
            Ok(item) => item,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // A stale marker means the peer's listen address changed: the
        // cached stream points at a dead incarnation.
        if shared.stale.lock().unwrap().remove(&peer) {
            conn = None;
        }
        batch.clear();
        match first {
            OutItem::EnsureConn => {
                ensure_conn(&mut conn, peer, &shared, cfg, me, listen_addr);
                continue;
            }
            OutItem::Frame(f) => batch.push(f),
        }
        // Coalesce whatever else is already queued into one vectored
        // write (EnsureConn is implied by having frames to send).
        while batch.len() < COALESCE_MAX {
            match rx.try_recv() {
                Ok(OutItem::Frame(f)) => batch.push(f),
                Ok(OutItem::EnsureConn) => {}
                Err(_) => break,
            }
        }
        let ok = write_batch(&mut conn, &batch, peer, &shared, cfg, me, listen_addr) || {
            // One retry on a fresh connection after a short backoff,
            // then the batch is dropped (lossy-network semantics).
            conn = None;
            std::thread::sleep(cfg.retry_backoff);
            write_batch(&mut conn, &batch, peer, &shared, cfg, me, listen_addr)
        };
        if ok {
            shared.counters.sent.fetch_add(batch.len() as u64, Ordering::Relaxed);
        } else {
            conn = None;
            shared.counters.send_failures.fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
    }
}

fn ensure_conn(
    conn: &mut Option<TcpStream>,
    peer: NodeId,
    shared: &Shared,
    cfg: MeshConfig,
    me: NodeId,
    listen_addr: SocketAddr,
) -> bool {
    if conn.is_some() {
        return true;
    }
    let addr = match shared.peers.lock().unwrap().get(&peer).copied() {
        Some(a) => a,
        None => return false,
    };
    let mut stream = match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
        Ok(s) => s,
        Err(_) => return false,
    };
    let _ = stream.set_nodelay(true);
    // Introduce ourselves so the peer can route replies and multicasts
    // back without prior configuration.
    let hello = frame::encode_hello(me, &listen_addr.to_string());
    if stream.write_all(&hello).is_err() {
        return false;
    }
    *conn = Some(stream);
    true
}

/// Write a batch of frames with as few syscalls as possible. Any write
/// error invalidates the connection (a partial frame cannot be resumed
/// on a byte stream — the receiver resyncs by dropping the connection).
fn write_batch(
    conn: &mut Option<TcpStream>,
    batch: &[Arc<PooledBuf>],
    peer: NodeId,
    shared: &Shared,
    cfg: MeshConfig,
    me: NodeId,
    listen_addr: SocketAddr,
) -> bool {
    if !ensure_conn(conn, peer, shared, cfg, me, listen_addr) {
        return false;
    }
    let stream = conn.as_mut().expect("conn just ensured");
    let mut idx = 0;
    let mut off = 0;
    while idx < batch.len() {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(batch.len() - idx);
        slices.push(IoSlice::new(&batch[idx][off..]));
        for b in &batch[idx + 1..] {
            slices.push(IoSlice::new(b));
        }
        match stream.write_vectored(&slices) {
            Ok(0) => {
                *conn = None;
                return false;
            }
            Ok(mut n) => {
                while n > 0 {
                    let rem = batch[idx].len() - off;
                    if n >= rem {
                        n -= rem;
                        idx += 1;
                        off = 0;
                    } else {
                        off += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                *conn = None;
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------- receive side

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    tx: SyncSender<(NodeId, Msg)>,
    cfg: MeshConfig,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                let _ = std::thread::Builder::new()
                    .name("sorrento-reader".to_string())
                    .spawn(move || reader_loop(stream, shared, tx, cfg));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn reader_loop(
    mut stream: TcpStream,
    shared: Arc<Shared>,
    tx: SyncSender<(NodeId, Msg)>,
    cfg: MeshConfig,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let mut header = [0u8; HEADER_LEN];
    while !shared.shutdown.load(Ordering::SeqCst) {
        match read_exact_polled(&mut stream, &mut header, &shared) {
            ReadOutcome::Ok => {}
            ReadOutcome::Closed => return,
        }
        let h = match frame::decode_header(&header) {
            Ok(h) => h,
            Err(_) => {
                // The stream is out of sync; there is no resync point in
                // a byte stream, so drop the connection.
                shared.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let mut payload = vec![0u8; h.payload_len as usize];
        match read_exact_polled(&mut stream, &mut payload, &shared) {
            ReadOutcome::Ok => {}
            ReadOutcome::Closed => return,
        }
        // Moving the Vec into a shared Bytes is allocation-transfer,
        // not a copy: blob fields decoded out of it are sub-views, so
        // the buffer read off the socket is the one the store lands.
        let payload = Bytes::from(payload);
        match frame::decode_payload(&h, &payload) {
            Ok(Frame::Hello { listen_addr }) => {
                if let Ok(addr) = listen_addr.parse() {
                    let prev = shared.peers.lock().unwrap().insert(h.sender, addr);
                    if prev.is_some_and(|p| p != addr) {
                        shared.stale.lock().unwrap().insert(h.sender);
                    }
                }
            }
            Ok(Frame::Msg(msg)) => match tx.try_send((h.sender, msg)) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    shared.counters.dropped_inbox_full.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(_) => {
                shared.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

enum ReadOutcome {
    Ok,
    Closed,
}

/// `read_exact` that keeps polling through read timeouts so the thread
/// can notice shutdown, but treats EOF and hard errors as closed.
fn read_exact_polled(stream: &mut TcpStream, buf: &mut [u8], shared: &Shared) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return ReadOutcome::Closed;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Mid-frame stalls are fine; keep waiting unless shutting
                // down.
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn two_nodes_exchange_messages() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a0 = l0.local_addr().unwrap();
        let a1 = l1.local_addr().unwrap();
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let mut m0 = Mesh::start(
            n0,
            l0,
            HashMap::from([(n1, a1)]),
            MeshConfig::default(),
        )
        .unwrap();
        let m1 = Mesh::start(n1, l1, HashMap::from([(n0, a0)]), MeshConfig::default()).unwrap();

        m0.send(n1, &Msg::StatsQuery { req: 42 });
        let (from, msg) = m1.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(from, n0);
        assert!(matches!(msg, Msg::StatsQuery { req: 42 }));
    }

    #[test]
    fn send_to_dead_peer_drops_silently() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let mut m0 =
            Mesh::start(n0, l0, HashMap::from([(n1, dead)]), MeshConfig::default()).unwrap();
        m0.send(n1, &Msg::StatsQuery { req: 1 });
        // The failure is now recorded by the peer's sender thread after
        // its connect + one retry, so poll for it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while m0.stats().send_failures == 0 {
            assert!(Instant::now() < deadline, "send failure never counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(m0.stats().send_failures, 1);
        assert_eq!(m0.stats().sent, 0);
    }

    /// One peer that accepts but never reads must not delay delivery to
    /// a healthy peer: its frames pile into its own queue (and
    /// eventually drop), while the healthy peer's sender thread keeps
    /// flowing. Under the old shared-connection-cache design the first
    /// blocked `write_all` to the slow peer stalled every send.
    #[test]
    fn slow_peer_does_not_stall_other_sends() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l_fast = TcpListener::bind("127.0.0.1:0").unwrap();
        let a_fast = l_fast.local_addr().unwrap();
        // The slow peer: a raw listener whose accept loop deliberately
        // never reads, so the sender's TCP window fills and its writes
        // block.
        let l_slow = TcpListener::bind("127.0.0.1:0").unwrap();
        let a_slow = l_slow.local_addr().unwrap();
        let slow_guard = std::thread::spawn(move || {
            let conns: Vec<TcpStream> = (0..1).filter_map(|_| l_slow.accept().ok().map(|(s, _)| s)).collect();
            std::thread::sleep(Duration::from_secs(3));
            drop(conns);
        });

        let n0 = NodeId::from_index(0);
        let n_fast = NodeId::from_index(1);
        let n_slow = NodeId::from_index(2);
        let cfg = MeshConfig { outbound_queue: 8, ..MeshConfig::default() };
        let mut m0 = Mesh::start(
            n0,
            l0,
            HashMap::from([(n_fast, a_fast), (n_slow, a_slow)]),
            cfg,
        )
        .unwrap();
        let m_fast =
            Mesh::start(n_fast, l_fast, HashMap::new(), MeshConfig::default()).unwrap();

        // Flood the slow peer with large frames until both the TCP
        // buffers and its bounded queue are saturated.
        let big = Msg::StatsR { req: 0, json: "x".repeat(1 << 20) };
        for _ in 0..64 {
            m0.send(n_slow, &big);
        }
        // A send to the healthy peer must still go through promptly.
        let t0 = Instant::now();
        m0.send(n_fast, &Msg::StatsQuery { req: 7 });
        let (from, msg) = m_fast.recv_timeout(Duration::from_secs(2)).expect("fast peer starved");
        assert_eq!(from, n0);
        assert!(matches!(msg, Msg::StatsQuery { req: 7 }));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "healthy-peer delivery took {:?}",
            t0.elapsed()
        );
        drop(m0);
        let _ = slow_guard.join();
    }

    /// A multicast encodes the frame once and shares it; every peer
    /// still gets a complete copy.
    #[test]
    fn multicast_reaches_all_peers() {
        let mk = || TcpListener::bind("127.0.0.1:0").unwrap();
        let (l0, l1, l2) = (mk(), mk(), mk());
        let (a1, a2) = (l1.local_addr().unwrap(), l2.local_addr().unwrap());
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        let mut m0 = Mesh::start(
            n0,
            l0,
            HashMap::from([(n1, a1), (n2, a2)]),
            MeshConfig::default(),
        )
        .unwrap();
        let m1 = Mesh::start(n1, l1, HashMap::new(), MeshConfig::default()).unwrap();
        let m2 = Mesh::start(n2, l2, HashMap::new(), MeshConfig::default()).unwrap();
        m0.multicast(&Msg::StatsQuery { req: 9 });
        for m in [&m1, &m2] {
            let (from, msg) = m.recv_timeout(Duration::from_secs(5)).expect("delivery");
            assert_eq!(from, n0);
            assert!(matches!(msg, Msg::StatsQuery { req: 9 }));
        }
    }
}
