//! [`RealCtx`]: the wall-clock [`Transport`] implementation.
//!
//! The state machines see the same trait surface as under the
//! simulator; here `now()` is monotonic nanoseconds since process
//! start, timers live in a local heap the daemon loop drains, and
//! sends accumulate in an outbox the loop flushes through the TCP
//! mesh. `SimTime` stays the time type in both worlds — it is just a
//! nanosecond counter, so membership views, location-table aging and
//! shadow TTLs behave identically on virtual and real clocks.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sorrento::proto::Msg;
use sorrento::Transport;
use sorrento_sim::{
    DiskAccess, DiskConfig, DiskState, Dur, Metrics, NodeId, SimTime, TelemetryEvent, TimerId,
};

use crate::flight::FlightRecorder;

/// An outbound delivery the daemon loop must perform.
#[derive(Debug)]
pub enum Out {
    /// Send to one node (possibly this node: loopback).
    Unicast(NodeId, Msg),
    /// Fan out to every known peer.
    Multicast(Msg),
}

/// Wall-clock transport state for one node.
pub struct RealCtx {
    me: NodeId,
    epoch: Instant,
    rng: SmallRng,
    metrics: Metrics,
    flight: FlightRecorder,
    disk: DiskState,
    /// NodeId → physical machine, from the cluster config.
    machines: HashMap<NodeId, u32>,
    next_timer: u64,
    /// Min-heap of `(deadline ns, timer id)`.
    timers: BinaryHeap<Reverse<(u64, u64)>>,
    timer_msgs: HashMap<u64, Msg>,
    cancelled: HashSet<u64>,
    outbox: Vec<Out>,
}

impl RealCtx {
    /// Default flight-recorder capacity (records, not bytes): enough
    /// for minutes of steady-state traffic at a few KiB/record overhead.
    pub const FLIGHT_CAP: usize = 4096;

    /// A fresh context for node `me` with the given RNG seed, disk
    /// capacity, and machine map. The flight recorder's unix epoch is
    /// captured here, at the same moment as the monotonic epoch, so
    /// `epoch_unix_ns + now()` is the wall clock.
    pub fn new(me: NodeId, seed: u64, capacity: u64, machines: HashMap<NodeId, u32>) -> RealCtx {
        RealCtx {
            me,
            epoch: Instant::now(),
            rng: SmallRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            flight: FlightRecorder::new(me, Self::FLIGHT_CAP),
            disk: DiskState::new(DiskConfig::scsi_10krpm(capacity)),
            machines,
            next_timer: 1,
            timers: BinaryHeap::new(),
            timer_msgs: HashMap::new(),
            cancelled: HashSet::new(),
            outbox: Vec::new(),
        }
    }

    /// Take everything queued for delivery.
    pub fn drain_outbox(&mut self) -> Vec<Out> {
        std::mem::take(&mut self.outbox)
    }

    /// Pop every timer whose deadline has passed, in deadline order
    /// (ties broken by creation order, as in the simulator).
    pub fn due_timers(&mut self) -> Vec<Msg> {
        let now = self.now().nanos();
        let mut due = Vec::new();
        while let Some(&Reverse((at, id))) = self.timers.peek() {
            if at > now {
                break;
            }
            self.timers.pop();
            if self.cancelled.remove(&id) {
                continue;
            }
            if let Some(msg) = self.timer_msgs.remove(&id) {
                due.push(msg);
            }
        }
        due
    }

    /// Nanoseconds until the next live timer fires (None if no timers).
    pub fn next_deadline(&self) -> Option<u64> {
        self.timers
            .iter()
            .filter(|Reverse((_, id))| !self.cancelled.contains(id))
            .map(|Reverse((at, _))| *at)
            .min()
    }

    /// Immutable metrics access (JSON export without `&mut`).
    pub fn metrics_ref(&self) -> &Metrics {
        &self.metrics
    }

    /// The node's flight recorder (cheap clone: shared ring). Threads
    /// that outlive or run beside the daemon loop — crash hooks, the
    /// mesh — record and dump through clones of this handle.
    pub fn flight(&self) -> FlightRecorder {
        self.flight.clone()
    }
}

impl Transport<Msg> for RealCtx {
    fn id(&self) -> NodeId {
        self.me
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn send(&mut self, dst: NodeId, msg: Msg) {
        self.outbox.push(Out::Unicast(dst, msg));
    }

    fn send_at(&mut self, _at: SimTime, dst: NodeId, msg: Msg) {
        // Modeled CPU/disk completions already happened in real time by
        // the time this executes; ship immediately.
        self.outbox.push(Out::Unicast(dst, msg));
    }

    fn multicast(&mut self, msg: Msg) {
        self.outbox.push(Out::Multicast(msg));
    }

    fn set_timer(&mut self, delay: Dur, msg: Msg) -> TimerId {
        let id = self.next_timer;
        self.next_timer += 1;
        let at = self.now().nanos().saturating_add(delay.as_nanos());
        self.timers.push(Reverse((at, id)));
        self.timer_msgs.insert(id, msg);
        TimerId::from_raw(id)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        let raw = id.raw();
        if self.timer_msgs.remove(&raw).is_some() {
            self.cancelled.insert(raw);
        }
    }

    fn cpu(&mut self, _service: Dur) -> SimTime {
        // Real CPU time is spent, not modeled.
        self.now()
    }

    fn disk_submit(&mut self, bytes: u64, access: DiskAccess) -> SimTime {
        // Keep the disk model's accounting (capacity, io-wait sampling)
        // but let real I/O pace itself.
        let now = self.now();
        self.disk.submit(now, bytes, access)
    }

    fn disk(&mut self) -> &mut DiskState {
        &mut self.disk
    }

    fn machine_of(&self, id: NodeId) -> u32 {
        self.machines.get(&id).copied().unwrap_or(id.index() as u32)
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    fn metrics(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn record(&mut self, ev: TelemetryEvent) {
        let now = self.now();
        self.metrics.count_labeled("event", ev.kind(), 1);
        self.flight.record(now, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorrento::proto::Tick;

    #[test]
    fn timers_fire_in_order_and_respect_cancellation() {
        let mut ctx = RealCtx::new(NodeId::from_index(0), 1, 1 << 30, HashMap::new());
        let _a = ctx.set_timer(Dur::ZERO, Msg::Tick(Tick::Gc));
        let b = ctx.set_timer(Dur::ZERO, Msg::Tick(Tick::Membership));
        let _c = ctx.set_timer(Dur::ZERO, Msg::Tick(Tick::NextOp));
        ctx.cancel_timer(b);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let due = ctx.due_timers();
        assert_eq!(due.len(), 2);
        assert!(matches!(due[0], Msg::Tick(Tick::Gc)));
        assert!(matches!(due[1], Msg::Tick(Tick::NextOp)));
        // Far-future timer does not fire.
        ctx.set_timer(Dur::minutes(10), Msg::Tick(Tick::Gc));
        assert!(ctx.due_timers().is_empty());
        assert!(ctx.next_deadline().is_some());
    }

    #[test]
    fn sends_accumulate_in_outbox() {
        let mut ctx = RealCtx::new(NodeId::from_index(0), 1, 1 << 30, HashMap::new());
        ctx.send(NodeId::from_index(1), Msg::StatsQuery { req: 1 });
        ctx.multicast(Msg::StatsQuery { req: 2 });
        let out = ctx.drain_outbox();
        assert_eq!(out.len(), 2);
        assert!(ctx.drain_outbox().is_empty());
    }
}
