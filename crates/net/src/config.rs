//! The node config file: a small JSON document describing one daemon
//! and its peer list.
//!
//! ```json
//! {
//!   "node_id": 1,
//!   "role": "provider",
//!   "listen": "127.0.0.1:7401",
//!   "data_dir": "/var/tmp/sorrento/p1",
//!   "seed": 42,
//!   "capacity": 1073741824,
//!   "machine": 1,
//!   "rack": 1,
//!   "costs": "default",
//!   "peers": [
//!     { "id": 0, "addr": "127.0.0.1:7400", "machine": 0 }
//!   ]
//! }
//! ```
//!
//! Only `node_id`, `role` and `listen` are required; everything else
//! has workable defaults. The peer list replaces the simulator's
//! multicast domain — it only needs to seed connectivity, because
//! `Hello` frames teach nodes about everyone else at runtime.

use std::path::PathBuf;
use std::time::Duration;

use crate::chaos::ChaosConfig;
use sorrento::costs::CostModel;
use sorrento::locator::LocationScheme;
use sorrento::nsmap::ShardInfo;
use sorrento::swim::MembershipMode;
use sorrento_json::Json;
use sorrento_sim::NodeId;

/// What a daemon does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Namespace server (pathname → entry, commit approval). With a
    /// shard map it serves one shard of the partitioned namespace.
    Namespace,
    /// Hot standby for one namespace shard: applies shipped WAL and
    /// promotes itself when the primary's shipments stop.
    Standby,
    /// Storage provider (segments, shadows, replication).
    Provider,
}

/// One peer in the seed list.
#[derive(Debug, Clone)]
pub struct PeerSpec {
    /// The peer's node id.
    pub id: NodeId,
    /// Its `host:port` listen address.
    pub addr: String,
    /// Physical machine it runs on (locality placement input).
    pub machine: u32,
}

/// A daemon's full boot configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// This node's cluster-unique id.
    pub node_id: NodeId,
    /// Namespace server or storage provider.
    pub role: Role,
    /// `host:port` to listen on (`:0` picks an ephemeral port).
    pub listen: String,
    /// Where segment images persist; `None` keeps the store volatile.
    pub data_dir: Option<PathBuf>,
    /// RNG seed for placement decisions.
    pub seed: u64,
    /// Advertised disk capacity in bytes.
    pub capacity: u64,
    /// Physical machine id of this node.
    pub machine: u32,
    /// Rack id (failure-domain-aware replica spreading).
    pub rack: u32,
    /// Protocol cost model (timer intervals, timeouts).
    pub costs: CostModel,
    /// Fault-injection rules installed into the mesh at boot (all-zero
    /// default = chaos off). Also togglable at runtime via
    /// `Msg::ChaosCtl`.
    pub chaos: ChaosConfig,
    /// Append a versioned metrics snapshot to `data_dir/metrics.jsonl`
    /// every this many milliseconds (`None` = off). Benches and chaos
    /// drills get post-hoc time series for free.
    pub metrics_interval_ms: Option<u64>,
    /// Which namespace shard this node serves (namespace/standby roles).
    pub shard: u32,
    /// Total namespace shard count (1 = classic unsharded deployment).
    pub ns_shards: u32,
    /// The namespace shard map: per-shard primary and optional standby
    /// node ids, in shard order. Empty means unsharded.
    pub ns_map: Vec<ShardInfo>,
    /// Checkpoint the namespace kvdb every this many applied batches
    /// (bounds the WAL tail a standby replays at failover).
    pub ns_checkpoint_batches: Option<u64>,
    /// How providers learn about each other: `"heartbeat"` (default,
    /// periodic multicast) or `"swim"` (gossip failure detector with
    /// indirect probes and suspect/confirm).
    pub membership: MembershipMode,
    /// Segment-home location strategy: `"ring"` (default, consistent
    /// hashing), `"rendezvous"` (highest random weight) or `"asura"`
    /// (seeded random walk over a slot table).
    pub location: LocationScheme,
    /// Seed peers.
    pub peers: Vec<PeerSpec>,
}

/// Why a config failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The file is not valid JSON.
    BadJson,
    /// A required field is absent.
    Missing(&'static str),
    /// A field has the wrong type or an unknown value.
    Invalid(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::BadJson => f.write_str("config is not valid JSON"),
            ConfigError::Missing(name) => write!(f, "config missing field `{name}`"),
            ConfigError::Invalid(name) => write!(f, "config field `{name}` is invalid"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl DaemonConfig {
    /// Parse a config document.
    pub fn parse(text: &str) -> Result<DaemonConfig, ConfigError> {
        let j = Json::parse(text).map_err(|_| ConfigError::BadJson)?;
        let node_id = req_u64(&j, "node_id")? as usize;
        let role = match req_str(&j, "role")? {
            "namespace" => Role::Namespace,
            "standby" => Role::Standby,
            "provider" => Role::Provider,
            _ => return Err(ConfigError::Invalid("role")),
        };
        let listen = req_str(&j, "listen")?.to_string();
        let data_dir = match j.get("data_dir") {
            None | Some(Json::Null) => None,
            Some(v) => Some(PathBuf::from(
                v.as_str().ok_or(ConfigError::Invalid("data_dir"))?,
            )),
        };
        let costs = match j.get("costs") {
            None => CostModel::default(),
            Some(v) => match v.as_str().ok_or(ConfigError::Invalid("costs"))? {
                "default" => CostModel::default(),
                "fast_test" => CostModel::fast_test(),
                _ => return Err(ConfigError::Invalid("costs")),
            },
        };
        let mut peers = Vec::new();
        if let Some(arr) = j.get("peers") {
            for p in arr.as_arr().ok_or(ConfigError::Invalid("peers"))? {
                peers.push(PeerSpec {
                    id: NodeId::from_index(req_u64(p, "id")? as usize),
                    addr: req_str(p, "addr")?.to_string(),
                    machine: opt_u64(p, "machine")?.unwrap_or(0) as u32,
                });
            }
        }
        let chaos = parse_chaos(&j)?;
        let ns_map = parse_ns_map(&j)?;
        Ok(DaemonConfig {
            node_id: NodeId::from_index(node_id),
            role,
            listen,
            data_dir,
            seed: opt_u64(&j, "seed")?.unwrap_or(1),
            capacity: opt_u64(&j, "capacity")?.unwrap_or(8 << 30),
            machine: opt_u64(&j, "machine")?.unwrap_or(node_id as u64) as u32,
            rack: opt_u64(&j, "rack")?.unwrap_or(node_id as u64) as u32,
            costs,
            chaos,
            metrics_interval_ms: opt_u64(&j, "metrics_interval_ms")?,
            shard: opt_u64(&j, "shard")?.unwrap_or(0) as u32,
            ns_shards: opt_u64(&j, "ns_shards")?.unwrap_or(1).max(1) as u32,
            ns_map,
            ns_checkpoint_batches: opt_u64(&j, "ns_checkpoint_batches")?,
            membership: parse_membership(&j)?,
            location: parse_location(&j)?,
            peers,
        })
    }
}

/// Parse the optional `"membership"` knob (`"heartbeat"` | `"swim"`).
fn parse_membership(j: &Json) -> Result<MembershipMode, ConfigError> {
    match j.get("membership") {
        None | Some(Json::Null) => Ok(MembershipMode::Heartbeat),
        Some(v) => match v.as_str().ok_or(ConfigError::Invalid("membership"))? {
            "heartbeat" => Ok(MembershipMode::Heartbeat),
            "swim" => Ok(MembershipMode::Swim),
            _ => Err(ConfigError::Invalid("membership")),
        },
    }
}

/// Parse the optional `"location"` knob (`"ring"` | `"rendezvous"` |
/// `"asura"`).
fn parse_location(j: &Json) -> Result<LocationScheme, ConfigError> {
    match j.get("location") {
        None | Some(Json::Null) => Ok(LocationScheme::Ring),
        Some(v) => LocationScheme::parse(v.as_str().ok_or(ConfigError::Invalid("location"))?)
            .ok_or(ConfigError::Invalid("location")),
    }
}

/// Parse an optional `"ns_map"` array — the namespace shard map, one
/// row per shard in shard order:
///
/// ```json
/// { "ns_map": [ { "primary": 0, "standby": 5 }, { "primary": 1 } ] }
/// ```
fn parse_ns_map(j: &Json) -> Result<Vec<ShardInfo>, ConfigError> {
    let Some(arr) = j.get("ns_map") else { return Ok(Vec::new()) };
    let mut rows = Vec::new();
    for row in arr.as_arr().ok_or(ConfigError::Invalid("ns_map"))? {
        let standby = match row.get("standby") {
            None | Some(Json::Null) => None,
            Some(v) => Some(NodeId::from_index(
                v.as_u64().ok_or(ConfigError::Invalid("ns_map.standby"))? as usize,
            )),
        };
        rows.push(ShardInfo {
            primary: NodeId::from_index(req_u64(row, "primary")? as usize),
            standby,
        });
    }
    Ok(rows)
}

/// Parse an optional `"chaos"` object:
///
/// ```json
/// { "chaos": { "seed": 42, "drop_permille": 100, "dup_permille": 20,
///              "delay_permille": 50, "delay_us": 2000,
///              "partition": [3] } }
/// ```
///
/// Absent means no fault injection; every field inside defaults to 0 /
/// empty. The same knobs ride on `Msg::ChaosCtl` for runtime toggling.
fn parse_chaos(j: &Json) -> Result<ChaosConfig, ConfigError> {
    let Some(c) = j.get("chaos") else { return Ok(ChaosConfig::default()) };
    if matches!(c, Json::Null) {
        return Ok(ChaosConfig::default());
    }
    let mut partition = Vec::new();
    if let Some(arr) = c.get("partition") {
        for id in arr.as_arr().ok_or(ConfigError::Invalid("chaos.partition"))? {
            partition.push(NodeId::from_index(
                id.as_u64().ok_or(ConfigError::Invalid("chaos.partition"))? as usize,
            ));
        }
    }
    Ok(ChaosConfig {
        seed: opt_u64(c, "seed")?.unwrap_or(0),
        drop_permille: opt_u64(c, "drop_permille")?.unwrap_or(0) as u32,
        dup_permille: opt_u64(c, "dup_permille")?.unwrap_or(0) as u32,
        delay_permille: opt_u64(c, "delay_permille")?.unwrap_or(0) as u32,
        delay: Duration::from_micros(opt_u64(c, "delay_us")?.unwrap_or(0)),
        partition,
    })
}

/// What `sorrentoctl` needs to talk to a cluster: where the daemons
/// are and which one is the namespace server.
#[derive(Debug, Clone)]
pub struct CtlConfig {
    /// The node id the control client joins the mesh as (must not
    /// collide with any daemon id).
    pub ctl_id: NodeId,
    /// The namespace server's node id.
    pub namespace: NodeId,
    /// RNG seed for placement decisions made client-side.
    pub seed: u64,
    /// Default replication degree for files the client creates.
    pub replication: u32,
    /// Protocol cost model (drives client RPC timeouts).
    pub costs: CostModel,
    /// Split large extent writes into chunks of this many bytes and
    /// pipeline them (`None` keeps the one-message-per-extent path).
    pub write_chunk: Option<u64>,
    /// How many chunks may be in flight per extent when chunking is on.
    pub write_window: usize,
    /// Extra same-request resends per RPC before the client suspects
    /// the target (0 keeps the classic timeout-then-failover path).
    /// Resent requests carry the same request id, so receivers
    /// deduplicate replays.
    pub rpc_resends: u32,
    /// Whole-operation deadline in milliseconds; an op that cannot
    /// finish in time fails with `Error::DeadlineExceeded` instead of
    /// retrying forever (`None` = no deadline).
    pub op_deadline_ms: Option<u64>,
    /// The namespace shard map (same `"ns_map"` shape as the daemon
    /// config). Empty means unsharded: route everything to `namespace`.
    pub ns_map: Vec<ShardInfo>,
    /// Cluster membership mode — must match the daemons' `membership`
    /// knob so the client refreshes its provider view the same way.
    pub membership: MembershipMode,
    /// Cluster location strategy — must match the daemons' `location`
    /// knob so client-side segment homing agrees with the providers.
    pub location: LocationScheme,
    /// All daemons in the cluster.
    pub peers: Vec<PeerSpec>,
}

impl CtlConfig {
    /// Parse a cluster-description document:
    ///
    /// ```json
    /// {
    ///   "namespace": 0,
    ///   "replication": 2,
    ///   "costs": "default",
    ///   "peers": [
    ///     { "id": 0, "addr": "127.0.0.1:7400" },
    ///     { "id": 1, "addr": "127.0.0.1:7401" }
    ///   ]
    /// }
    /// ```
    pub fn parse(text: &str) -> Result<CtlConfig, ConfigError> {
        let j = Json::parse(text).map_err(|_| ConfigError::BadJson)?;
        let mut peers = Vec::new();
        for p in j
            .get("peers")
            .ok_or(ConfigError::Missing("peers"))?
            .as_arr()
            .ok_or(ConfigError::Invalid("peers"))?
        {
            peers.push(PeerSpec {
                id: NodeId::from_index(req_u64(p, "id")? as usize),
                addr: req_str(p, "addr")?.to_string(),
                machine: opt_u64(p, "machine")?.unwrap_or(0) as u32,
            });
        }
        let costs = match j.get("costs") {
            None => CostModel::default(),
            Some(v) => match v.as_str().ok_or(ConfigError::Invalid("costs"))? {
                "default" => CostModel::default(),
                "fast_test" => CostModel::fast_test(),
                _ => return Err(ConfigError::Invalid("costs")),
            },
        };
        Ok(CtlConfig {
            ctl_id: NodeId::from_index(opt_u64(&j, "ctl_id")?.unwrap_or(1000) as usize),
            namespace: NodeId::from_index(req_u64(&j, "namespace")? as usize),
            seed: opt_u64(&j, "seed")?.unwrap_or(1),
            replication: opt_u64(&j, "replication")?.unwrap_or(1) as u32,
            costs,
            write_chunk: opt_u64(&j, "write_chunk")?,
            write_window: opt_u64(&j, "write_window")?.unwrap_or(4) as usize,
            rpc_resends: opt_u64(&j, "rpc_resends")?.unwrap_or(0) as u32,
            op_deadline_ms: opt_u64(&j, "op_deadline_ms")?,
            ns_map: parse_ns_map(&j)?,
            membership: parse_membership(&j)?,
            location: parse_location(&j)?,
            peers,
        })
    }
}

fn req_str<'a>(j: &'a Json, name: &'static str) -> Result<&'a str, ConfigError> {
    j.get(name)
        .ok_or(ConfigError::Missing(name))?
        .as_str()
        .ok_or(ConfigError::Invalid(name))
}

fn req_u64(j: &Json, name: &'static str) -> Result<u64, ConfigError> {
    j.get(name)
        .ok_or(ConfigError::Missing(name))?
        .as_u64()
        .ok_or(ConfigError::Invalid(name))
}

fn opt_u64(j: &Json, name: &'static str) -> Result<Option<u64>, ConfigError> {
    match j.get(name) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(ConfigError::Invalid(name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_provider_config() {
        let cfg = DaemonConfig::parse(
            r#"{"node_id": 2, "role": "provider", "listen": "127.0.0.1:0",
                "costs": "fast_test",
                "peers": [{"id": 0, "addr": "127.0.0.1:7400"}]}"#,
        )
        .unwrap();
        assert_eq!(cfg.node_id, NodeId::from_index(2));
        assert_eq!(cfg.role, Role::Provider);
        assert_eq!(cfg.peers.len(), 1);
        assert_eq!(cfg.machine, 2);
        assert!(cfg.data_dir.is_none());
    }

    #[test]
    fn parses_chaos_and_resilience_knobs() {
        let cfg = DaemonConfig::parse(
            r#"{"node_id": 2, "role": "provider", "listen": "127.0.0.1:0",
                "chaos": {"seed": 9, "drop_permille": 100, "delay_us": 2000,
                          "partition": [3, 4]}}"#,
        )
        .unwrap();
        assert_eq!(cfg.chaos.seed, 9);
        assert_eq!(cfg.chaos.drop_permille, 100);
        assert_eq!(cfg.chaos.delay, Duration::from_micros(2000));
        assert_eq!(cfg.chaos.partition, vec![NodeId::from_index(3), NodeId::from_index(4)]);
        assert!(cfg.chaos.is_active());

        let ctl = CtlConfig::parse(
            r#"{"namespace": 0, "rpc_resends": 2, "op_deadline_ms": 1500,
                "peers": [{"id": 0, "addr": "127.0.0.1:7400"}]}"#,
        )
        .unwrap();
        assert_eq!(ctl.rpc_resends, 2);
        assert_eq!(ctl.op_deadline_ms, Some(1500));
        // Both default to off.
        let ctl = CtlConfig::parse(
            r#"{"namespace": 0, "peers": [{"id": 0, "addr": "x"}]}"#,
        )
        .unwrap();
        assert_eq!(ctl.rpc_resends, 0);
        assert_eq!(ctl.op_deadline_ms, None);
    }

    #[test]
    fn parses_metadata_plane_knobs() {
        let cfg = DaemonConfig::parse(
            r#"{"node_id": 5, "role": "standby", "listen": "127.0.0.1:0",
                "shard": 1, "ns_shards": 2, "ns_checkpoint_batches": 256,
                "ns_map": [{"primary": 0, "standby": 4}, {"primary": 1, "standby": 5}]}"#,
        )
        .unwrap();
        assert_eq!(cfg.role, Role::Standby);
        assert_eq!((cfg.shard, cfg.ns_shards), (1, 2));
        assert_eq!(cfg.ns_checkpoint_batches, Some(256));
        assert_eq!(cfg.ns_map.len(), 2);
        assert_eq!(cfg.ns_map[1].primary, NodeId::from_index(1));
        assert_eq!(cfg.ns_map[1].standby, Some(NodeId::from_index(5)));

        // Defaults keep the classic unsharded deployment.
        let cfg = DaemonConfig::parse(
            r#"{"node_id": 0, "role": "namespace", "listen": "127.0.0.1:0"}"#,
        )
        .unwrap();
        assert_eq!((cfg.shard, cfg.ns_shards), (0, 1));
        assert!(cfg.ns_map.is_empty());
        assert_eq!(cfg.ns_checkpoint_batches, None);

        let ctl = CtlConfig::parse(
            r#"{"namespace": 0, "ns_map": [{"primary": 0}, {"primary": 1}],
                "peers": [{"id": 0, "addr": "x"}, {"id": 1, "addr": "y"}]}"#,
        )
        .unwrap();
        assert_eq!(ctl.ns_map.len(), 2);
        assert_eq!(ctl.ns_map[0].standby, None);
    }

    #[test]
    fn parses_membership_and_location_knobs() {
        let cfg = DaemonConfig::parse(
            r#"{"node_id": 2, "role": "provider", "listen": "127.0.0.1:0",
                "membership": "swim", "location": "rendezvous"}"#,
        )
        .unwrap();
        assert_eq!(cfg.membership, MembershipMode::Swim);
        assert_eq!(cfg.location, LocationScheme::Rendezvous);

        // Defaults keep the classic heartbeat + ring deployment.
        let cfg = DaemonConfig::parse(
            r#"{"node_id": 2, "role": "provider", "listen": "127.0.0.1:0"}"#,
        )
        .unwrap();
        assert_eq!(cfg.membership, MembershipMode::Heartbeat);
        assert_eq!(cfg.location, LocationScheme::Ring);

        let ctl = CtlConfig::parse(
            r#"{"namespace": 0, "membership": "swim", "location": "asura",
                "peers": [{"id": 0, "addr": "x"}]}"#,
        )
        .unwrap();
        assert_eq!(ctl.membership, MembershipMode::Swim);
        assert_eq!(ctl.location, LocationScheme::Asura);

        assert_eq!(
            DaemonConfig::parse(
                r#"{"node_id": 2, "role": "provider", "listen": "x",
                    "membership": "carrier-pigeon"}"#,
            )
            .unwrap_err(),
            ConfigError::Invalid("membership")
        );
        assert_eq!(
            DaemonConfig::parse(
                r#"{"node_id": 2, "role": "provider", "listen": "x",
                    "location": "phonebook"}"#,
            )
            .unwrap_err(),
            ConfigError::Invalid("location")
        );
    }

    #[test]
    fn errors_name_the_field() {
        assert_eq!(
            DaemonConfig::parse(r#"{"role": "provider", "listen": "x"}"#).unwrap_err(),
            ConfigError::Missing("node_id")
        );
        assert_eq!(
            DaemonConfig::parse(r#"{"node_id": 1, "role": "president", "listen": "x"}"#)
                .unwrap_err(),
            ConfigError::Invalid("role")
        );
        assert_eq!(DaemonConfig::parse("not json").unwrap_err(), ConfigError::BadJson);
    }
}
