//! Deterministic fault injection for the TCP mesh.
//!
//! Chaos lives at the mesh's enqueue boundary: every outbound frame is
//! run through a per-link decision stream *before* it reaches a sender
//! thread, so faults are decided on the daemon thread, in frame order,
//! from a seeded RNG. Given the same seed and the same sequence of
//! frames on a link, the drop/duplicate/delay pattern is byte-identical
//! across runs — which is what lets `chaos_recovery.rs` replay a
//! failure drill from three fixed seeds instead of hoping the network
//! misbehaves on cue.
//!
//! Four fault classes, mirroring what a real lossy network does to a
//! frame stream:
//!
//! * **drop** — the frame is never enqueued (the peer sees nothing);
//! * **duplicate** — the frame is enqueued twice back-to-back, which is
//!   how retry-key dedup at the receivers gets exercised;
//! * **delay** — the frame (and, as on a real FIFO link, everything
//!   queued behind it) is held back by a fixed latency;
//! * **partition** — all frames to a configured peer set are dropped
//!   unconditionally, RNG untouched, until the partition is lifted.
//!
//! Rules are installed at boot from the daemon config or at runtime via
//! [`Msg::ChaosCtl`](sorrento::proto::Msg::ChaosCtl) (handled by the
//! daemon loop, never by the state machines). An all-zero config turns
//! chaos off.

use std::collections::HashMap;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sorrento_sim::NodeId;

/// Fault-injection rules, applied per outbound frame.
///
/// Rates are in permille (0–1000) and are mutually exclusive per frame:
/// one draw in `0..1000` selects drop, duplicate, delay, or clean
/// delivery, in that priority order. `Default` is all-zero: no faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Base seed; each link derives its own stream from this, the
    /// sending node, and the peer, so links are decorrelated but every
    /// link's stream is reproducible.
    pub seed: u64,
    /// Per-frame drop probability in permille.
    pub drop_permille: u32,
    /// Per-frame duplicate probability in permille.
    pub dup_permille: u32,
    /// Per-frame delay probability in permille.
    pub delay_permille: u32,
    /// Latency added to a delayed frame.
    pub delay: Duration,
    /// Peers to sever entirely (simulated partition).
    pub partition: Vec<NodeId>,
}

impl ChaosConfig {
    /// Whether this config injects any fault at all; an inactive config
    /// is equivalent to chaos being uninstalled.
    pub fn is_active(&self) -> bool {
        self.drop_permille > 0
            || self.dup_permille > 0
            || self.delay_permille > 0
            || !self.partition.is_empty()
    }
}

/// What chaos decided to do with one outbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Deliver normally.
    Deliver,
    /// Never enqueue the frame.
    Drop,
    /// Enqueue the frame twice.
    Duplicate,
    /// Enqueue with added latency.
    Delay(Duration),
    /// Peer is in the partition set: drop without consuming RNG.
    Partitioned,
}

/// One link's deterministic decision stream.
struct LinkChaos {
    rng: SmallRng,
}

impl LinkChaos {
    fn new(seed: u64, me: NodeId, peer: NodeId) -> LinkChaos {
        // Mix the endpoints into the seed (splitmix-style odd constants)
        // so every link draws from its own stream: faults on one link
        // never shift another link's pattern.
        let mixed = seed
            ^ (me.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (peer.index() as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        LinkChaos { rng: SmallRng::seed_from_u64(mixed) }
    }

    fn next(&mut self, cfg: &ChaosConfig) -> Fault {
        // Exactly one draw per frame keeps the stream a pure function of
        // the frame index, whatever mix of rates is configured.
        let roll = self.rng.gen_range(0..1000u32);
        if roll < cfg.drop_permille {
            Fault::Drop
        } else if roll < cfg.drop_permille + cfg.dup_permille {
            Fault::Duplicate
        } else if roll < cfg.drop_permille + cfg.dup_permille + cfg.delay_permille {
            Fault::Delay(cfg.delay)
        } else {
            Fault::Deliver
        }
    }
}

/// The mesh's installed chaos rules plus per-link RNG streams.
///
/// Owned by the [`Mesh`](crate::tcp::Mesh) and consulted on the daemon
/// thread only (the mesh's enqueue side is single-threaded), so no
/// locking is needed and the decision order is the enqueue order.
pub struct Chaos {
    cfg: ChaosConfig,
    links: HashMap<NodeId, LinkChaos>,
    me: NodeId,
}

impl Chaos {
    /// Install rules for frames sent by `me`.
    pub fn new(me: NodeId, cfg: ChaosConfig) -> Chaos {
        Chaos { cfg, links: HashMap::new(), me }
    }

    /// The installed rules.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Decide the fate of the next frame to `peer`.
    pub fn decide(&mut self, peer: NodeId) -> Fault {
        if self.cfg.partition.contains(&peer) {
            return Fault::Partitioned;
        }
        let me = self.me;
        let seed = self.cfg.seed;
        let link = self
            .links
            .entry(peer)
            .or_insert_with(|| LinkChaos::new(seed, me, peer));
        link.next(&self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn cfg(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_permille: 100,
            dup_permille: 50,
            delay_permille: 30,
            delay: Duration::from_millis(2),
            partition: Vec::new(),
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_fault_stream() {
        let mut a = Chaos::new(node(0), cfg(42));
        let mut b = Chaos::new(node(0), cfg(42));
        let fa: Vec<Fault> = (0..1000).map(|_| a.decide(node(1))).collect();
        let fb: Vec<Fault> = (0..1000).map(|_| b.decide(node(1))).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn different_links_are_decorrelated_but_individually_stable() {
        let mut a = Chaos::new(node(0), cfg(42));
        let to1: Vec<Fault> = (0..1000).map(|_| a.decide(node(1))).collect();
        let to2: Vec<Fault> = (0..1000).map(|_| a.decide(node(2))).collect();
        assert_ne!(to1, to2);
        // Interleaving traffic to another link must not shift link 1's
        // stream: it is a function of (seed, link, frame index) only.
        let mut b = Chaos::new(node(0), cfg(42));
        let interleaved: Vec<Fault> = (0..1000)
            .map(|_| {
                let f = b.decide(node(1));
                let _ = b.decide(node(2));
                f
            })
            .collect();
        assert_eq!(to1, interleaved);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut c = Chaos::new(node(0), cfg(7));
        let n = 20_000;
        let mut drops = 0;
        let mut dups = 0;
        let mut delays = 0;
        for _ in 0..n {
            match c.decide(node(1)) {
                Fault::Drop => drops += 1,
                Fault::Duplicate => dups += 1,
                Fault::Delay(_) => delays += 1,
                _ => {}
            }
        }
        // 10% / 5% / 3% nominal; allow generous slack.
        assert!((drops as f64 / n as f64 - 0.10).abs() < 0.02, "drops {drops}");
        assert!((dups as f64 / n as f64 - 0.05).abs() < 0.02, "dups {dups}");
        assert!((delays as f64 / n as f64 - 0.03).abs() < 0.02, "delays {delays}");
    }

    #[test]
    fn zero_rates_always_deliver_and_partition_always_drops() {
        let mut c = Chaos::new(
            node(0),
            ChaosConfig { seed: 1, partition: vec![node(9)], ..ChaosConfig::default() },
        );
        for _ in 0..100 {
            assert_eq!(c.decide(node(1)), Fault::Deliver);
            assert_eq!(c.decide(node(9)), Fault::Partitioned);
        }
        assert!(!ChaosConfig::default().is_active());
        assert!(cfg(0).is_active());
    }
}
