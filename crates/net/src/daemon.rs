//! The Sorrento node daemon: one process per namespace server or
//! storage provider.
//!
//! The daemon is a thin poll loop around the same state machines the
//! simulator drives: fire due timers, feed inbound frames to
//! `handle_message`, flush the context's outbox through the TCP mesh.
//! Two things the simulator does not have:
//!
//! * **Stats interception** — `Msg::StatsQuery` is answered by the loop
//!   itself with the node's metrics registry as JSON; the state
//!   machines never see it (and the simulator never sends it), so
//!   runtime introspection cannot perturb protocol behavior.
//! * **Segment persistence** — a provider periodically diffs its
//!   in-memory store against what it last persisted and writes changed
//!   segments as replica images into a `sorrento-kvdb` file-backed
//!   database; at boot they are reinstalled before the machine starts,
//!   so a restarted provider rejoins with its data intact.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sorrento::namespace::NamespaceServer;
use sorrento::provider::StorageProvider;
use sorrento::proto::Msg;
use sorrento::types::{SegId, Version};
use sorrento::Transport;
use sorrento_kvdb::{Db, DbConfig, FileBackend};
use sorrento_sim::NodeId;

use crate::chaos::ChaosConfig;
use crate::config::{DaemonConfig, Role};
use crate::frame;
use crate::runtime::{Out, RealCtx};
use crate::tcp::{Mesh, MeshConfig};

/// How long the loop blocks waiting for one inbound message.
const POLL: Duration = Duration::from_millis(5);
/// How often a provider persists dirty segments.
const PERSIST_EVERY: Duration = Duration::from_millis(200);

/// The role-selected state machine.
enum Machine {
    Ns(Box<NamespaceServer>),
    Prov(Box<StorageProvider>),
}

impl Machine {
    fn handle_start(&mut self, ctx: &mut RealCtx) {
        match self {
            Machine::Ns(m) => m.handle_start(ctx),
            Machine::Prov(m) => m.handle_start(ctx),
        }
    }

    fn handle_message(&mut self, from: NodeId, msg: Msg, ctx: &mut RealCtx) {
        match self {
            Machine::Ns(m) => m.handle_message(from, msg, ctx),
            Machine::Prov(m) => m.handle_message(from, msg, ctx),
        }
    }
}

/// A handle to an in-process daemon (integration tests, embedding).
pub struct DaemonHandle {
    /// The daemon's node id.
    pub node: NodeId,
    /// The address it actually listens on.
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    abrupt: Arc<AtomicBool>,
    join: Option<JoinHandle<io::Result<()>>>,
}

impl DaemonHandle {
    /// Request shutdown and wait for the loop to exit cleanly
    /// (final segment persistence included).
    pub fn stop(mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.join.take() {
            Some(j) => j.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }

    /// Kill the daemon as a crash stand-in: the loop exits without the
    /// final persistence sweep or checkpoint, so on-disk state is
    /// whatever the last periodic sweep captured — exactly what a
    /// `SIGKILL`'d process would leave behind. Recovery drills restart
    /// a killed provider on the same `data_dir` and assert the cluster
    /// converges.
    pub fn kill(mut self) -> io::Result<()> {
        self.abrupt.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        match self.join.take() {
            Some(j) => j.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Start a daemon on a background thread, binding its configured
/// listen address.
pub fn spawn(cfg: DaemonConfig) -> io::Result<DaemonHandle> {
    let listener = TcpListener::bind(&cfg.listen)?;
    spawn_with_listener(cfg, listener)
}

/// Start a daemon on an already-bound listener (lets a test bind port 0
/// everywhere first and hand out real addresses in peer lists).
pub fn spawn_with_listener(cfg: DaemonConfig, listener: TcpListener) -> io::Result<DaemonHandle> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let abrupt = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let abrupt_flag = Arc::clone(&abrupt);
    let node = cfg.node_id;
    let join = std::thread::Builder::new()
        .name(format!("sorrento-node-{}", node.index()))
        .spawn(move || run_loop(cfg, listener, flag, abrupt_flag))?;
    Ok(DaemonHandle { node, addr, shutdown, abrupt, join: Some(join) })
}

/// Run a daemon on the calling thread until `shutdown` is set.
pub fn run(cfg: DaemonConfig, shutdown: Arc<AtomicBool>) -> io::Result<()> {
    let listener = TcpListener::bind(&cfg.listen)?;
    run_loop(cfg, listener, shutdown, Arc::new(AtomicBool::new(false)))
}

fn resolve(addr: &str) -> Option<SocketAddr> {
    addr.to_socket_addrs().ok()?.next()
}

fn run_loop(
    cfg: DaemonConfig,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    abrupt: Arc<AtomicBool>,
) -> io::Result<()> {
    let me = cfg.node_id;
    let mut machines: HashMap<NodeId, u32> =
        cfg.peers.iter().map(|p| (p.id, p.machine)).collect();
    machines.insert(me, cfg.machine);
    let mut ctx = RealCtx::new(me, cfg.seed, cfg.capacity, machines);

    let seed_peers: HashMap<NodeId, SocketAddr> = cfg
        .peers
        .iter()
        .filter_map(|p| Some((p.id, resolve(&p.addr)?)))
        .collect();
    let mut mesh = Mesh::start(me, listener, seed_peers, MeshConfig::default())?;
    if cfg.chaos.is_active() {
        mesh.set_chaos(Some(cfg.chaos.clone()));
    }

    let mut machine = match cfg.role {
        Role::Namespace => Machine::Ns(Box::new(NamespaceServer::new(cfg.costs))),
        Role::Provider => {
            Machine::Prov(Box::new(StorageProvider::new(cfg.costs, 2).with_rack(cfg.rack)))
        }
    };

    // Segment persistence (providers with a data dir only).
    let mut db: Option<Db<FileBackend>> = match (&cfg.role, &cfg.data_dir) {
        (Role::Provider, Some(dir)) => Some(Db::open(
            FileBackend::open(dir.clone())?,
            DbConfig::default(),
        )?),
        _ => None,
    };
    let mut persisted: HashMap<SegId, Version> = HashMap::new();
    if let (Some(db), Machine::Prov(prov)) = (&db, &mut machine) {
        let now = ctx.now();
        for (_, value) in db.scan_prefix(b"seg/") {
            if let Ok(image) = frame::decode_image_bytes(value) {
                let (seg, version) = (image.seg, image.version);
                if prov.store.install_replica(image, now).is_ok() {
                    persisted.insert(seg, version);
                }
            }
        }
    }

    machine.handle_start(&mut ctx);
    flush(&mut ctx, &mut mesh, &mut machine);

    let mut last_persist = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        for msg in ctx.due_timers() {
            machine.handle_message(me, msg, &mut ctx);
        }
        flush(&mut ctx, &mut mesh, &mut machine);

        if let Some((from, msg)) = mesh.recv_timeout(POLL) {
            match msg {
                Msg::StatsQuery { req } => {
                    mesh.export_metrics(ctx.metrics());
                    let json = ctx.metrics_ref().to_json().encode();
                    mesh.send(from, &Msg::StatsR { req, json });
                }
                // Like StatsQuery, chaos control is answered by the loop
                // itself: fault injection lives in the mesh, and the
                // state machines never see (or depend on) it.
                Msg::ChaosCtl {
                    req,
                    seed,
                    drop_permille,
                    dup_permille,
                    delay_permille,
                    delay_us,
                    partition,
                } => {
                    mesh.set_chaos(Some(ChaosConfig {
                        seed,
                        drop_permille,
                        dup_permille,
                        delay_permille,
                        delay: Duration::from_micros(delay_us),
                        partition,
                    }));
                    mesh.send(from, &Msg::ChaosCtlR { req });
                }
                msg => machine.handle_message(from, msg, &mut ctx),
            }
            flush(&mut ctx, &mut mesh, &mut machine);
        }

        if db.is_some() && last_persist.elapsed() >= PERSIST_EVERY {
            last_persist = Instant::now();
            if let (Some(db), Machine::Prov(prov)) = (&mut db, &machine) {
                persist_dirty(db, prov, &mut persisted)?;
            }
        }
    }

    // An abrupt (crash-drill) exit skips the final sweep and checkpoint:
    // on-disk state stays at whatever the last periodic sweep captured.
    if !abrupt.load(Ordering::SeqCst) {
        if let (Some(db), Machine::Prov(prov)) = (&mut db, &machine) {
            persist_dirty(db, prov, &mut persisted)?;
            db.checkpoint()?;
        }
    }
    mesh.shutdown();
    Ok(())
}

/// Deliver everything the machine queued: loopback messages re-enter
/// the machine (which may queue more), remote ones go out the mesh.
fn flush(ctx: &mut RealCtx, mesh: &mut Mesh, machine: &mut Machine) {
    let me = ctx.id();
    loop {
        let outs = ctx.drain_outbox();
        if outs.is_empty() {
            return;
        }
        for out in outs {
            match out {
                Out::Unicast(dst, msg) if dst == me => machine.handle_message(me, msg, ctx),
                Out::Unicast(dst, msg) => mesh.send(dst, &msg),
                Out::Multicast(msg) => mesh.multicast(&msg),
            }
        }
    }
}

fn key_of(seg: SegId) -> Vec<u8> {
    format!("seg/{:032x}", seg.0).into_bytes()
}

/// Write every segment whose latest version moved since the last sweep,
/// and drop keys for segments the store no longer holds.
fn persist_dirty(
    db: &mut Db<FileBackend>,
    prov: &StorageProvider,
    persisted: &mut HashMap<SegId, Version>,
) -> io::Result<()> {
    let current: HashMap<SegId, Version> = prov.store.list_segments().into_iter().collect();
    for (&seg, &version) in &current {
        if persisted.get(&seg) == Some(&version) {
            continue;
        }
        if let Ok(image) = prov.store.export(seg, Some(version)) {
            db.put(key_of(seg), frame::encode_image_bytes(&image))?;
            persisted.insert(seg, version);
        }
    }
    let gone: Vec<SegId> = persisted
        .keys()
        .copied()
        .filter(|s| !current.contains_key(s))
        .collect();
    for seg in gone {
        db.delete(key_of(seg))?;
        persisted.remove(&seg);
    }
    Ok(())
}
