//! The Sorrento node daemon: one process per namespace server or
//! storage provider.
//!
//! The daemon is a thin poll loop around the same state machines the
//! simulator drives: fire due timers, feed inbound frames to
//! `handle_message`, flush the context's outbox through the TCP mesh.
//! Two things the simulator does not have:
//!
//! * **Stats interception** — `Msg::StatsQuery` is answered by the loop
//!   itself with the node's metrics registry as JSON; the state
//!   machines never see it (and the simulator never sends it), so
//!   runtime introspection cannot perturb protocol behavior.
//! * **Segment persistence** — a provider periodically diffs its
//!   in-memory store against what it last persisted and writes changed
//!   segments as replica images into a `sorrento-kvdb` file-backed
//!   database; at boot they are reinstalled before the machine starts,
//!   so a restarted provider rejoins with its data intact.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sorrento::namespace::NamespaceServer;
use sorrento::nsmap::NsShardMap;
use sorrento::provider::StorageProvider;
use sorrento::proto::{self, Msg, Tick};
use sorrento::types::{SegId, Version};
use sorrento::Transport;
use sorrento_json::Json;
use sorrento_kvdb::{Db, DbConfig, FileBackend};
use sorrento_sim::{NodeId, SpanId, TelemetryEvent};

use crate::chaos::ChaosConfig;
use crate::config::{DaemonConfig, Role};
use crate::flight;
use crate::frame;
use crate::runtime::{Out, RealCtx};
use crate::tcp::{Mesh, MeshConfig};

/// How long the loop blocks waiting for one inbound message.
const POLL: Duration = Duration::from_millis(5);
/// How often a provider persists dirty segments.
const PERSIST_EVERY: Duration = Duration::from_millis(200);

/// Version of the `Msg::StatsR` snapshot payload (`"v"` key).
/// `sorrentoctl` refuses to interpret snapshots with a different
/// version.
pub const STATS_SCHEMA_V: u64 = 1;

/// Slowest message handlings retained for the stats snapshot.
const SLOW_OPS_KEPT: usize = 8;

/// The role-selected state machine.
enum Machine {
    Ns(Box<NamespaceServer>),
    Prov(Box<StorageProvider>),
}

impl Machine {
    fn handle_start(&mut self, ctx: &mut RealCtx) {
        match self {
            Machine::Ns(m) => m.handle_start(ctx),
            Machine::Prov(m) => m.handle_start(ctx),
        }
    }

    fn handle_message(&mut self, from: NodeId, msg: Msg, ctx: &mut RealCtx) {
        match self {
            Machine::Ns(m) => m.handle_message(from, msg, ctx),
            Machine::Prov(m) => m.handle_message(from, msg, ctx),
        }
    }
}

/// One retained slow-op entry: how long this node spent handling one
/// span-carrying message (server-side work, not end-to-end latency).
#[derive(Clone, Copy)]
struct SlowOp {
    dur_ns: u64,
    span: SpanId,
    kind: &'static str,
    at_ns: u64,
}

/// Bounded worst-N table of message-handling durations, keyed to spans
/// so `sorrentoctl top` readers can jump straight to `trace <span>`.
struct SlowOps {
    worst: Vec<SlowOp>,
}

impl SlowOps {
    fn new() -> SlowOps {
        SlowOps { worst: Vec::with_capacity(SLOW_OPS_KEPT + 1) }
    }

    fn observe(&mut self, dur_ns: u64, span: SpanId, kind: &'static str, at_ns: u64) {
        if span == 0 {
            return;
        }
        self.worst.push(SlowOp { dur_ns, span, kind, at_ns });
        self.worst.sort_by_key(|o| std::cmp::Reverse(o.dur_ns));
        self.worst.truncate(SLOW_OPS_KEPT);
    }

    fn to_json(&self) -> Json {
        let mut arr = Json::arr();
        for op in &self.worst {
            arr.push(
                Json::obj()
                    .with("dur_us", op.dur_ns / 1_000)
                    .with("span", op.span)
                    .with("kind", op.kind)
                    .with("at_ns", op.at_ns),
            );
        }
        arr
    }
}

/// The versioned stats snapshot: the metrics registry's export extended
/// in place (existing consumers keep reading `counters`/`gauges` at the
/// top level) with identity, uptime, flight-ring usage and the slow-op
/// table.
fn build_snapshot(
    ctx: &mut RealCtx,
    mesh: &Mesh,
    role: &'static str,
    shard: Option<u32>,
    slow: &SlowOps,
) -> Json {
    mesh.export_metrics(ctx.metrics());
    let uptime_ms = ctx.now().nanos() / 1_000_000;
    let (flight_len, flight_dropped) = ctx.flight().usage();
    let snap = ctx
        .metrics_ref()
        .to_json()
        .with("v", STATS_SCHEMA_V)
        .with("node", ctx.id().index() as u64)
        .with("role", role)
        .with("uptime_ms", uptime_ms)
        .with(
            "flight",
            Json::obj().with("len", flight_len as u64).with("dropped", flight_dropped),
        )
        .with("slow_ops", slow.to_json());
    match shard {
        Some(k) => snap.with("shard", u64::from(k)),
        None => snap,
    }
}

/// A handle to an in-process daemon (integration tests, embedding).
pub struct DaemonHandle {
    /// The daemon's node id.
    pub node: NodeId,
    /// The address it actually listens on.
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    abrupt: Arc<AtomicBool>,
    join: Option<JoinHandle<io::Result<()>>>,
}

impl DaemonHandle {
    /// Request shutdown and wait for the loop to exit cleanly
    /// (final segment persistence included).
    pub fn stop(mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.join.take() {
            Some(j) => j.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }

    /// Kill the daemon as a crash stand-in: the loop exits without the
    /// final persistence sweep or checkpoint, so on-disk state is
    /// whatever the last periodic sweep captured — exactly what a
    /// `SIGKILL`'d process would leave behind. Recovery drills restart
    /// a killed provider on the same `data_dir` and assert the cluster
    /// converges.
    pub fn kill(mut self) -> io::Result<()> {
        self.abrupt.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        match self.join.take() {
            Some(j) => j.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Start a daemon on a background thread, binding its configured
/// listen address.
pub fn spawn(cfg: DaemonConfig) -> io::Result<DaemonHandle> {
    let listener = TcpListener::bind(&cfg.listen)?;
    spawn_with_listener(cfg, listener)
}

/// Start a daemon on an already-bound listener (lets a test bind port 0
/// everywhere first and hand out real addresses in peer lists).
pub fn spawn_with_listener(cfg: DaemonConfig, listener: TcpListener) -> io::Result<DaemonHandle> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let abrupt = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let abrupt_flag = Arc::clone(&abrupt);
    let node = cfg.node_id;
    let join = std::thread::Builder::new()
        .name(format!("sorrento-node-{}", node.index()))
        .spawn(move || run_loop(cfg, listener, flag, abrupt_flag))?;
    Ok(DaemonHandle { node, addr, shutdown, abrupt, join: Some(join) })
}

/// Run a daemon on the calling thread until `shutdown` is set.
pub fn run(cfg: DaemonConfig, shutdown: Arc<AtomicBool>) -> io::Result<()> {
    let listener = TcpListener::bind(&cfg.listen)?;
    run_loop(cfg, listener, shutdown, Arc::new(AtomicBool::new(false)))
}

fn resolve(addr: &str) -> Option<SocketAddr> {
    addr.to_socket_addrs().ok()?.next()
}

fn run_loop(
    cfg: DaemonConfig,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    abrupt: Arc<AtomicBool>,
) -> io::Result<()> {
    let me = cfg.node_id;
    let mut machines: HashMap<NodeId, u32> =
        cfg.peers.iter().map(|p| (p.id, p.machine)).collect();
    machines.insert(me, cfg.machine);
    let mut ctx = RealCtx::new(me, cfg.seed, cfg.capacity, machines);

    let role_str = match cfg.role {
        Role::Namespace => "namespace",
        Role::Standby => "standby",
        Role::Provider => "provider",
    };
    let shard = match cfg.role {
        Role::Namespace | Role::Standby => Some(cfg.shard),
        Role::Provider => None,
    };
    let flight = ctx.flight();
    flight.set_role(role_str);
    if let Some(dir) = &cfg.data_dir {
        // Crash paths (panic hook, `--crash-after` abort) flush every
        // registered black box; see `flight::dump_all`.
        flight::register(&flight, dir);
    }

    let seed_peers: HashMap<NodeId, SocketAddr> = cfg
        .peers
        .iter()
        .filter_map(|p| Some((p.id, resolve(&p.addr)?)))
        .collect();
    let mut mesh = Mesh::start(me, listener, seed_peers, MeshConfig::default())?;
    mesh.set_flight(flight.clone());
    if cfg.chaos.is_active() {
        mesh.set_chaos(Some(cfg.chaos.clone()));
    }

    let mut machine = match cfg.role {
        Role::Namespace if cfg.ns_shards > 1 || !cfg.ns_map.is_empty() => {
            let mut ns = NamespaceServer::new_sharded(cfg.costs, cfg.shard, cfg.ns_shards);
            install_ns_plane(&mut ns, &cfg);
            Machine::Ns(Box::new(ns))
        }
        Role::Namespace => {
            let mut ns = NamespaceServer::new(cfg.costs);
            ns.set_checkpoint_every_batches(cfg.ns_checkpoint_batches);
            Machine::Ns(Box::new(ns))
        }
        Role::Standby => {
            let mut ns = NamespaceServer::new_standby(cfg.costs, cfg.shard, cfg.ns_shards);
            install_ns_plane(&mut ns, &cfg);
            Machine::Ns(Box::new(ns))
        }
        Role::Provider => {
            // In swim mode the seed list is every configured peer; the
            // detector probes them all, and non-providers (namespace,
            // standby) passively ack pings without ever gossiping a
            // heartbeat payload, so they never enter the membership view.
            let seeds: Vec<NodeId> = cfg.peers.iter().map(|p| p.id).collect();
            Machine::Prov(Box::new(
                StorageProvider::new(cfg.costs, 2)
                    .with_rack(cfg.rack)
                    .with_location(cfg.location)
                    .with_membership(cfg.membership, seeds),
            ))
        }
    };

    // Segment persistence (providers with a data dir only).
    let mut db: Option<Db<FileBackend>> = match (&cfg.role, &cfg.data_dir) {
        (Role::Provider, Some(dir)) => Some(Db::open(
            FileBackend::open(dir.clone())?,
            DbConfig::default(),
        )?),
        _ => None,
    };
    let mut persisted: HashMap<SegId, Version> = HashMap::new();
    if let (Some(db), Machine::Prov(prov)) = (&db, &mut machine) {
        let now = ctx.now();
        for (_, value) in db.scan_prefix(b"seg/") {
            if let Ok(image) = frame::decode_image_bytes(value) {
                let (seg, version) = (image.seg, image.version);
                if prov.store.install_replica(image, now).is_ok() {
                    persisted.insert(seg, version);
                }
            }
        }
    }

    machine.handle_start(&mut ctx);
    flush(&mut ctx, &mut mesh, &mut machine);

    // Opt-in periodic snapshot writer: one compact JSON line per
    // interval, appended so a restart keeps extending the series.
    let metrics_every = cfg.metrics_interval_ms.map(Duration::from_millis);
    let mut metrics_file = match (&metrics_every, &cfg.data_dir) {
        (Some(_), Some(dir)) => {
            std::fs::create_dir_all(dir)?;
            Some(OpenOptions::new().create(true).append(true).open(dir.join("metrics.jsonl"))?)
        }
        _ => None,
    };
    let mut last_metrics = Instant::now();
    let mut slow = SlowOps::new();

    let mut last_persist = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        for msg in ctx.due_timers() {
            // Satellite of the observability plane: refresh the mesh
            // gauges on every heartbeat tick — or, under swim
            // membership, on the gauge-export tick that replaces it —
            // so a stats snapshot is never staler than one period.
            if matches!(msg, Msg::Tick(Tick::Heartbeat | Tick::GaugeExport)) {
                mesh.export_metrics(ctx.metrics());
            }
            machine.handle_message(me, msg, &mut ctx);
        }
        flush(&mut ctx, &mut mesh, &mut machine);

        if let Some((from, msg)) = mesh.recv_timeout(POLL) {
            match msg {
                Msg::StatsQuery { req } => {
                    let json = build_snapshot(&mut ctx, &mesh, role_str, shard, &slow).encode();
                    mesh.send(from, &Msg::StatsR { req, json });
                }
                // Span tracing: serve the local flight ring (filtered to
                // one span, or whole-ring for span 0) straight from the
                // loop; like StatsQuery, the state machines never see it.
                Msg::TraceQuery { req, span } => {
                    let json = flight.to_json(span).encode();
                    mesh.send(from, &Msg::TraceR { req, json });
                }
                // Like StatsQuery, chaos control is answered by the loop
                // itself: fault injection lives in the mesh, and the
                // state machines never see (or depend on) it.
                Msg::ChaosCtl {
                    req,
                    seed,
                    drop_permille,
                    dup_permille,
                    delay_permille,
                    delay_us,
                    partition,
                } => {
                    mesh.set_chaos(Some(ChaosConfig {
                        seed,
                        drop_permille,
                        dup_permille,
                        delay_permille,
                        delay: Duration::from_micros(delay_us),
                        partition,
                    }));
                    mesh.send(from, &Msg::ChaosCtlR { req });
                }
                msg => {
                    let (span, kind) = (proto::span_of(&msg), proto::dbg_kind(&msg));
                    ctx.record(TelemetryEvent::MsgRecv { span, kind, from });
                    let t0 = Instant::now();
                    machine.handle_message(from, msg, &mut ctx);
                    slow.observe(t0.elapsed().as_nanos() as u64, span, kind, ctx.now().nanos());
                }
            }
            flush(&mut ctx, &mut mesh, &mut machine);
        }

        if db.is_some() && last_persist.elapsed() >= PERSIST_EVERY {
            last_persist = Instant::now();
            if let (Some(db), Machine::Prov(prov)) = (&mut db, &machine) {
                persist_dirty(db, prov, &mut persisted)?;
            }
        }

        if let (Some(every), Some(file)) = (metrics_every, metrics_file.as_mut()) {
            if last_metrics.elapsed() >= every {
                last_metrics = Instant::now();
                let snap = build_snapshot(&mut ctx, &mesh, role_str, shard, &slow);
                let _ = writeln!(file, "{}", snap.encode());
            }
        }
    }

    // An abrupt (crash-drill) exit skips the final sweep and checkpoint:
    // on-disk state stays at whatever the last periodic sweep captured.
    if !abrupt.load(Ordering::SeqCst) {
        if let (Some(db), Machine::Prov(prov)) = (&mut db, &machine) {
            persist_dirty(db, prov, &mut persisted)?;
            db.checkpoint()?;
        }
    }
    // The flight recorder is the black box: it dumps on both clean and
    // abrupt exits (out-of-process crashes dump via the panic/abort
    // hooks instead — see `sorrento-node`).
    if let Some(dir) = &cfg.data_dir {
        let _ = flight.dump_to(dir);
    }
    mesh.shutdown();
    Ok(())
}

/// Deliver everything the machine queued: loopback messages re-enter
/// the machine (which may queue more), remote ones go out the mesh
/// (each recorded as a `msg.send` flight event — multicasts once per
/// peer, matching what actually hits the wire).
fn flush(ctx: &mut RealCtx, mesh: &mut Mesh, machine: &mut Machine) {
    let me = ctx.id();
    loop {
        let outs = ctx.drain_outbox();
        if outs.is_empty() {
            return;
        }
        for out in outs {
            match out {
                Out::Unicast(dst, msg) if dst == me => machine.handle_message(me, msg, ctx),
                Out::Unicast(dst, msg) => {
                    ctx.record(TelemetryEvent::MsgSend {
                        span: proto::span_of(&msg),
                        kind: proto::dbg_kind(&msg),
                        to: dst,
                    });
                    mesh.send(dst, &msg);
                }
                Out::Multicast(msg) => {
                    let (span, kind) = (proto::span_of(&msg), proto::dbg_kind(&msg));
                    for peer in mesh.known_peers() {
                        ctx.record(TelemetryEvent::MsgSend { span, kind, to: peer });
                    }
                    mesh.multicast(&msg);
                }
            }
        }
    }
}

/// Install the shard map, standby link and checkpoint knob a sharded
/// (or standby) namespace machine needs before `handle_start` runs.
fn install_ns_plane(ns: &mut NamespaceServer, cfg: &DaemonConfig) {
    if !cfg.ns_map.is_empty() {
        ns.set_shard_map(NsShardMap::from_rows(cfg.ns_map.clone()));
        if cfg.role == Role::Namespace {
            if let Some(standby) = cfg.ns_map.get(cfg.shard as usize).and_then(|r| r.standby) {
                ns.set_standby(standby);
            }
        }
    }
    ns.set_checkpoint_every_batches(cfg.ns_checkpoint_batches);
}

fn key_of(seg: SegId) -> Vec<u8> {
    format!("seg/{:032x}", seg.0).into_bytes()
}

/// Write every segment whose latest version moved since the last sweep,
/// and drop keys for segments the store no longer holds.
fn persist_dirty(
    db: &mut Db<FileBackend>,
    prov: &StorageProvider,
    persisted: &mut HashMap<SegId, Version>,
) -> io::Result<()> {
    let current: HashMap<SegId, Version> = prov.store.list_segments().into_iter().collect();
    for (&seg, &version) in &current {
        if persisted.get(&seg) == Some(&version) {
            continue;
        }
        if let Ok(image) = prov.store.export(seg, Some(version)) {
            db.put(key_of(seg), frame::encode_image_bytes(&image))?;
            persisted.insert(seg, version);
        }
    }
    let gone: Vec<SegId> = persisted
        .keys()
        .copied()
        .filter(|s| !current.contains_key(s))
        .collect();
    for seg in gone {
        db.delete(key_of(seg))?;
        persisted.remove(&seg);
    }
    Ok(())
}
