//! A check-out/check-in pool of encode buffers.
//!
//! Frame encoding is the one hot-path allocation the wire format would
//! otherwise force: every `send` needs a contiguous `[header][payload]`
//! buffer. [`BufPool`] amortizes that to zero steady-state allocations —
//! a buffer checked out, filled by [`crate::frame::encode_msg_into`],
//! shipped, and dropped returns to the pool with its capacity intact,
//! so the next frame of similar size reuses the same backing memory.
//!
//! [`PooledBuf`] is the RAII handle: checked back in on drop, from
//! whatever thread drops it (per-peer sender threads in
//! [`crate::tcp`]). Wrapping one in an `Arc` lets a multicast share a
//! single encoded frame across every peer queue; the buffer re-enters
//! the pool when the last queue finishes with it.

use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// Most buffers retained by a pool; beyond this, returned buffers are
/// simply freed.
const MAX_POOLED: usize = 64;
/// Largest capacity worth keeping. A segment-sized frame returning from
/// a bulk write is retained; a pathological one-off giant is freed so
/// one huge message cannot pin memory forever.
const MAX_RETAINED_CAPACITY: usize = 8 << 20;

/// Shared pool of reusable byte buffers. Cloning shares the pool.
#[derive(Clone, Default)]
pub struct BufPool {
    bufs: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> BufPool {
        BufPool::default()
    }

    /// Check out a buffer (cleared, capacity from its previous life) or
    /// allocate a fresh one if the pool is empty.
    pub fn check_out(&self) -> PooledBuf {
        let buf = self.bufs.lock().unwrap().pop().unwrap_or_default();
        PooledBuf { buf, pool: Arc::downgrade(&self.bufs) }
    }

    /// Number of buffers currently resting in the pool.
    pub fn idle(&self) -> usize {
        self.bufs.lock().unwrap().len()
    }
}

/// A buffer on loan from a [`BufPool`]; returns to the pool on drop.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: std::sync::Weak<Mutex<Vec<Vec<u8>>>>,
}

impl PooledBuf {
    /// A pool-less buffer (drops normally); handy in tests and for
    /// one-off frames.
    pub fn detached(buf: Vec<u8>) -> PooledBuf {
        PooledBuf { buf, pool: std::sync::Weak::new() }
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let Some(pool) = self.pool.upgrade() else { return };
        if self.buf.capacity() == 0 || self.buf.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let mut bufs = pool.lock().unwrap();
        if bufs.len() < MAX_POOLED {
            bufs.push(buf);
        }
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_cycle_through_the_pool() {
        let pool = BufPool::new();
        assert_eq!(pool.idle(), 0);
        let mut a = pool.check_out();
        a.extend_from_slice(&[1, 2, 3]);
        let ptr = a.as_ptr();
        let cap = a.capacity();
        drop(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.check_out();
        assert!(b.is_empty(), "checked-out buffer must come back cleared");
        assert_eq!(b.as_ptr(), ptr, "capacity must be reused, not reallocated");
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn concurrent_checkouts_never_alias() {
        let pool = BufPool::new();
        let a = pool.check_out();
        let b = pool.check_out();
        // Two live loans are distinct allocations (the empty-capacity
        // case has no allocation to alias; force one).
        let mut a = a;
        let mut b = b;
        a.push(1);
        b.push(2);
        assert_ne!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = BufPool::new();
        let mut a = pool.check_out();
        a.reserve(MAX_RETAINED_CAPACITY + 1);
        drop(a);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_capacity_is_bounded() {
        let pool = BufPool::new();
        let loans: Vec<_> = (0..MAX_POOLED + 8)
            .map(|_| {
                let mut b = pool.check_out();
                b.push(0);
                b
            })
            .collect();
        drop(loans);
        assert_eq!(pool.idle(), MAX_POOLED);
    }

    #[test]
    fn detached_buffers_skip_the_pool() {
        let b = PooledBuf::detached(vec![1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        drop(b);
    }
}
