//! The real-process runtime for Sorrento.
//!
//! The simulator (`sorrento-sim`) and this crate share the same state
//! machines from `sorrento` — providers, the namespace server, and the
//! client are written against [`sorrento::Transport`], so the protocol
//! code that the deterministic simulation validates is byte-for-byte
//! the code a live cluster runs. This crate supplies the real-world
//! half:
//!
//! * [`frame`] — the length-prefixed, checksummed binary wire format
//!   for every [`sorrento::proto::Msg`].
//! * [`pool`] — check-out/check-in encode-buffer pool backing the
//!   zero-allocation frame path.
//! * [`tcp`] — a std-only TCP mesh: one listener, thread-per-connection
//!   readers feeding a bounded inbox, and a per-peer sender thread with
//!   a bounded outbound queue and vectored coalesced writes.
//! * [`chaos`] — deterministic fault injection at the mesh's enqueue
//!   boundary: seeded per-link drop/duplicate/delay/partition streams,
//!   installed at boot or flipped at runtime via `Msg::ChaosCtl`.
//! * [`runtime`] — [`runtime::RealCtx`], the wall-clock
//!   [`sorrento::Transport`] implementation (monotonic-nanosecond
//!   clock, timer heap, real metrics registry).
//! * [`config`] — the small JSON config file a node boots from.
//! * [`daemon`] — the node daemon: role selection, the poll loop, and
//!   segment persistence through `sorrento-kvdb`'s file backend.
//! * [`ctl`] — the `sorrentoctl` client library: run filesystem ops
//!   against a live cluster, fetch daemon stats.

pub mod chaos;
pub mod config;
pub mod ctl;
pub mod daemon;
pub mod flight;
pub mod frame;
pub mod pool;
pub mod runtime;
pub mod tcp;
