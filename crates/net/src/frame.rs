//! The binary wire format: length-prefixed, checksummed frames carrying
//! either a [`Msg`] or a `Hello` control frame.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! ┌────────┬─────────┬──────┬────────────┬─────────────┬──────────┬─────────┐
//! │ magic  │ version │ kind │ sender u32 │ payload len │ crc32    │ payload │
//! │ "SRTO" │ 1 byte  │ 1 B  │ (NodeId)   │ u32         │ u32      │ ...     │
//! └────────┴─────────┴──────┴────────────┴─────────────┴──────────┴─────────┘
//! ```
//!
//! The 18-byte header is fixed-size so a stream reader can read it
//! exactly, validate it, then read `payload len` more bytes. The crc32
//! covers the payload only. `kind` distinguishes `Hello` control frames
//! (a joining node announcing its id and listen address, replacing the
//! simulator's Ethernet multicast with peer-list registration) from
//! protocol messages.
//!
//! The payload encoding is a tag byte per enum variant followed by the
//! fields in declaration order. Strings and byte blobs are u32
//! length-prefixed; `f64` travels as its IEEE-754 bit pattern;
//! `Option`/`Result` spend one tag byte. The encoder matches every
//! [`Msg`] variant exhaustively — adding a variant without extending the
//! codec is a compile error, not a silent wire gap.
//!
//! Copy discipline: encoding is single-pass — the header is reserved
//! up front, the payload is appended once while a streaming [`Crc32`]
//! folds in each byte, and the length/checksum are patched into the
//! reserved header afterwards. [`encode_msg_into`] reuses a caller
//! buffer (see [`crate::pool::BufPool`]) so the steady-state bulk path
//! allocates nothing per frame. Decoding hands blob fields out as
//! [`Bytes`] sub-views of the received payload instead of copying.

use bytes::Bytes;
use sorrento::membership::Heartbeat;
use sorrento::proto::{FileEntry, Msg, ReadReply, Tick};
use sorrento::swim::{SwimState, SwimUpdate};
use sorrento::store::{ReplicaImage, SegMeta, ShadowId, WritePayload};
use sorrento::types::{
    EcParams, Error, FileId, FileOptions, Organization, PlacementPolicy, SegId, Version,
};
use sorrento_kvdb::{crc32, Crc32};
use sorrento_sim::NodeId;

/// Frame magic: "SRTO".
pub const MAGIC: [u8; 4] = *b"SRTO";
/// Current wire-format version. v2 added the erasure-coding fields
/// (`FileOptions::ec`, `SegMeta::ec`) and the `EcInstall`/`EcInstallR`
/// shard-repair messages; v3 added the SWIM gossip messages
/// (`SwimPing`/`SwimAck`/`SwimPingReq`) and the membership pull/query
/// family (`MembersPull`/`MembersDigest`/`MembersQuery`/`MembersR`).
/// Older peers are refused at the header.
pub const VERSION: u8 = 3;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 18;
/// Largest accepted payload (a full segment plus slack); guards the
/// receive-side allocation against corrupt or hostile length fields.
pub const MAX_PAYLOAD: u32 = (1 << 30) - 1;

const KIND_HELLO: u8 = 0;
const KIND_MSG: u8 = 1;

/// A decoded frame.
#[derive(Debug)]
pub enum Frame {
    /// Peer announcement: the sender (header id) listens at this
    /// address. Sent once per outbound connection so the receiver can
    /// route replies and multicasts back.
    Hello {
        /// The sender's `host:port` listen address.
        listen_addr: String,
    },
    /// A protocol message.
    Msg(Msg),
}

/// Why a frame failed to decode. Every malformed input maps to one of
/// these — the decoder never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the encoding claims.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// A frame from a newer (or corrupt) protocol revision.
    UnsupportedVersion(u8),
    /// Payload length field exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload does not match the header checksum.
    ChecksumMismatch,
    /// An enum tag byte with no assigned meaning; `what` names the enum.
    UnknownTag {
        /// Which enum the tag belongs to.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length-prefixed string is not UTF-8.
    InvalidUtf8,
    /// Well-formed value followed by leftover bytes.
    TrailingBytes,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("frame truncated"),
            FrameError::BadMagic => f.write_str("bad frame magic"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Oversized(n) => write!(f, "payload length {n} exceeds limit"),
            FrameError::ChecksumMismatch => f.write_str("payload checksum mismatch"),
            FrameError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            FrameError::InvalidUtf8 => f.write_str("string is not UTF-8"),
            FrameError::TrailingBytes => f.write_str("trailing bytes after frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A validated frame header.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// Sending node.
    pub sender: NodeId,
    /// Frame kind byte ([`Frame::Hello`] or [`Frame::Msg`]).
    pub kind: u8,
    /// Payload byte count that follows the header.
    pub payload_len: u32,
    /// crc32 of the payload.
    pub crc: u32,
}

/// Parse and validate a fixed-size header.
pub fn decode_header(buf: &[u8; HEADER_LEN]) -> Result<Header, FrameError> {
    if buf[0..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if buf[4] != VERSION {
        return Err(FrameError::UnsupportedVersion(buf[4]));
    }
    let kind = buf[5];
    if kind != KIND_HELLO && kind != KIND_MSG {
        return Err(FrameError::UnknownTag { what: "frame kind", tag: kind });
    }
    let sender = u32::from_le_bytes(buf[6..10].try_into().unwrap());
    let payload_len = u32::from_le_bytes(buf[10..14].try_into().unwrap());
    if payload_len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(payload_len));
    }
    let crc = u32::from_le_bytes(buf[14..18].try_into().unwrap());
    Ok(Header { sender: NodeId::from_index(sender as usize), kind, payload_len, crc })
}

/// Decode a payload against its validated header (checksum included).
///
/// Blob fields in the returned [`Frame`] are zero-copy sub-views of
/// `payload` — the buffer read off the socket is the same allocation
/// the store eventually lands.
pub fn decode_payload(h: &Header, payload: &Bytes) -> Result<Frame, FrameError> {
    if payload.len() != h.payload_len as usize {
        return Err(FrameError::Truncated);
    }
    if crc32(payload) != h.crc {
        return Err(FrameError::ChecksumMismatch);
    }
    let mut r = Reader { buf: payload, pos: 0 };
    let frame = match h.kind {
        KIND_HELLO => Frame::Hello { listen_addr: r.string()? },
        KIND_MSG => Frame::Msg(read_msg(&mut r)?),
        tag => return Err(FrameError::UnknownTag { what: "frame kind", tag }),
    };
    if r.pos != r.buf.len() {
        return Err(FrameError::TrailingBytes);
    }
    Ok(frame)
}

/// Decode one complete frame from a contiguous buffer. Copies the
/// payload region into a fresh shared allocation first; the streaming
/// receive path ([`crate::tcp`]) avoids that copy by reading straight
/// into a [`Bytes`] and calling [`decode_payload`].
pub fn decode_frame(buf: &[u8]) -> Result<(NodeId, Frame), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().unwrap();
    let h = decode_header(header)?;
    let frame = decode_payload(&h, &Bytes::copy_from_slice(&buf[HEADER_LEN..]))?;
    Ok((h.sender, frame))
}

/// Incremental frame decoder for a byte stream delivered in arbitrary
/// chunks (the readiness-driven mesh reads whatever the socket has).
///
/// One instance per connection. Bytes accumulate across calls until a
/// complete CRC-checked frame is available; malformed input surfaces as
/// the same typed [`FrameError`]s the one-shot decoder returns, never a
/// panic. After an error the decoder is poisoned — a byte stream has no
/// resync point, so the connection must be dropped.
///
/// Two feeding styles:
///
/// * **Zero-copy socket path**: read straight into [`StreamDecoder::spare`]
///   and commit with [`StreamDecoder::advance`]. Payload bytes land in
///   the allocation that becomes the frame's shared [`Bytes`] — no copy
///   between the socket and the store, same as the one-shot path.
/// * **Slice path**: [`StreamDecoder::feed`] an arbitrary chunk (tests,
///   replay); internally it copies into the same state machine.
pub struct StreamDecoder {
    state: DecodeState,
}

enum DecodeState {
    /// Accumulating the fixed-size header.
    Header { buf: [u8; HEADER_LEN], filled: usize },
    /// Header parsed; accumulating `payload_len` payload bytes.
    Payload { header: Header, buf: Vec<u8>, filled: usize },
    /// A decode error was returned; the stream is unusable.
    Poisoned,
}

impl StreamDecoder {
    /// A decoder at a frame boundary.
    pub fn new() -> StreamDecoder {
        StreamDecoder { state: DecodeState::Header { buf: [0; HEADER_LEN], filled: 0 } }
    }

    /// The buffer the next socket read should land in: the unfilled
    /// remainder of the current header or payload. Never empty (a
    /// zero-length payload completes inside [`StreamDecoder::advance`],
    /// so the payload state always needs at least one byte). Empty only
    /// after an error was returned.
    pub fn spare(&mut self) -> &mut [u8] {
        match &mut self.state {
            DecodeState::Header { buf, filled } => &mut buf[*filled..],
            DecodeState::Payload { buf, filled, .. } => &mut buf[*filled..],
            DecodeState::Poisoned => &mut [],
        }
    }

    /// Commit `n` bytes just read into [`StreamDecoder::spare`]. Returns
    /// a complete frame when one closes, `None` when more bytes are
    /// needed. `n` must not exceed `spare().len()`.
    pub fn advance(&mut self, n: usize) -> Result<Option<(NodeId, Frame)>, FrameError> {
        match &mut self.state {
            DecodeState::Header { buf, filled } => {
                *filled += n;
                debug_assert!(*filled <= HEADER_LEN);
                if *filled < HEADER_LEN {
                    return Ok(None);
                }
                let header = match decode_header(buf) {
                    Ok(h) => h,
                    Err(e) => {
                        self.state = DecodeState::Poisoned;
                        return Err(e);
                    }
                };
                if header.payload_len == 0 {
                    self.state = DecodeState::Header { buf: [0; HEADER_LEN], filled: 0 };
                    return finish(&mut self.state, &header, Bytes::new());
                }
                self.state = DecodeState::Payload {
                    header,
                    buf: vec![0; header.payload_len as usize],
                    filled: 0,
                };
                Ok(None)
            }
            DecodeState::Payload { header, buf, filled } => {
                *filled += n;
                debug_assert!(*filled <= buf.len());
                if *filled < buf.len() {
                    return Ok(None);
                }
                let header = *header;
                // Moving the Vec into a shared Bytes is an allocation
                // transfer, not a copy: blob fields decoded out of it
                // are sub-views, so the bytes read off the socket are
                // the ones the store lands.
                let payload = Bytes::from(std::mem::take(buf));
                self.state = DecodeState::Header { buf: [0; HEADER_LEN], filled: 0 };
                finish(&mut self.state, &header, payload)
            }
            DecodeState::Poisoned => Err(FrameError::Truncated),
        }
    }

    /// Feed a chunk cut at an arbitrary byte boundary, appending every
    /// frame it completes to `out`. On a malformed stream the frames
    /// decoded before the error are kept in `out` and the typed error is
    /// returned; further feeding keeps failing.
    pub fn feed(
        &mut self,
        mut chunk: &[u8],
        out: &mut Vec<(NodeId, Frame)>,
    ) -> Result<(), FrameError> {
        while !chunk.is_empty() {
            let spare = self.spare();
            if spare.is_empty() {
                return Err(FrameError::Truncated); // poisoned
            }
            let n = spare.len().min(chunk.len());
            spare[..n].copy_from_slice(&chunk[..n]);
            chunk = &chunk[n..];
            if let Some(frame) = self.advance(n)? {
                out.push(frame);
            }
        }
        Ok(())
    }

    /// True when no partial frame is buffered (a clean stream end).
    pub fn is_at_boundary(&self) -> bool {
        matches!(self.state, DecodeState::Header { filled: 0, .. })
    }
}

impl Default for StreamDecoder {
    fn default() -> StreamDecoder {
        StreamDecoder::new()
    }
}

fn finish(
    state: &mut DecodeState,
    header: &Header,
    payload: Bytes,
) -> Result<Option<(NodeId, Frame)>, FrameError> {
    match decode_payload(header, &payload) {
        Ok(frame) => Ok(Some((header.sender, frame))),
        Err(e) => {
            *state = DecodeState::Poisoned;
            Err(e)
        }
    }
}

/// Encode a [`Msg`] frame into a fresh buffer.
pub fn encode_msg(sender: NodeId, msg: &Msg) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 64);
    encode_msg_into(&mut out, sender, msg);
    out
}

/// Encode a `Hello` control frame into a fresh buffer.
pub fn encode_hello(sender: NodeId, listen_addr: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 32);
    encode_hello_into(&mut out, sender, listen_addr);
    out
}

/// Single-pass encode of a [`Msg`] frame into a reusable buffer.
///
/// Clears `out`, reserves the fixed header, appends the payload while a
/// streaming CRC folds in each byte, then patches length and checksum
/// into the header — no second scan over the payload and no copy into a
/// final buffer. With a pooled `out` (see [`crate::pool::BufPool`]) the
/// steady-state cost is zero allocations per frame.
pub fn encode_msg_into(out: &mut Vec<u8>, sender: NodeId, msg: &Msg) {
    encode_into(out, sender, KIND_MSG, |w| write_msg(w, msg));
}

/// Single-pass encode of a `Hello` frame into a reusable buffer.
pub fn encode_hello_into(out: &mut Vec<u8>, sender: NodeId, listen_addr: &str) {
    encode_into(out, sender, KIND_HELLO, |w| w.string(listen_addr));
}

fn encode_into(out: &mut Vec<u8>, sender: NodeId, kind: u8, f: impl FnOnce(&mut Writer<'_>)) {
    out.clear();
    out.resize(HEADER_LEN, 0);
    let mut w = Writer { out: &mut *out, crc: Crc32::new() };
    f(&mut w);
    let crc = w.crc.finalize();
    let payload_len = (out.len() - HEADER_LEN) as u32;
    debug_assert!(payload_len <= MAX_PAYLOAD);
    out[0..4].copy_from_slice(&MAGIC);
    out[4] = VERSION;
    out[5] = kind;
    out[6..10].copy_from_slice(&(sender.index() as u32).to_le_bytes());
    out[10..14].copy_from_slice(&payload_len.to_le_bytes());
    out[14..18].copy_from_slice(&crc.to_le_bytes());
}

/// The pre-single-pass encoder: build the payload in its own buffer,
/// re-scan it for the checksum, then copy header + payload into the
/// final frame. Kept as the test oracle the single-pass encoder must
/// match byte for byte.
#[doc(hidden)]
pub fn reference_encode_msg(sender: NodeId, msg: &Msg) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    {
        let mut w = Writer { out: &mut payload, crc: Crc32::new() };
        write_msg(&mut w, msg);
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(KIND_MSG);
    out.extend_from_slice(&(sender.index() as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------- writer

/// Append-only payload writer: every byte appended also advances the
/// streaming checksum, so by the time the payload is written the CRC is
/// already known.
struct Writer<'a> {
    out: &'a mut Vec<u8>,
    crc: Crc32,
}

impl Writer<'_> {
    fn put(&mut self, b: &[u8]) {
        self.crc.update(b);
        self.out.extend_from_slice(b);
    }
    fn u8(&mut self, x: u8) {
        self.put(&[x]);
    }
    fn u32(&mut self, x: u32) {
        self.put(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.put(&x.to_le_bytes());
    }
    fn u128(&mut self, x: u128) {
        self.put(&x.to_le_bytes());
    }
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    fn boolean(&mut self, x: bool) {
        self.u8(x as u8);
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.put(b);
    }
    fn string(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
    fn node(&mut self, n: NodeId) {
        self.u32(n.index() as u32);
    }
}

// ---------------------------------------------------------------- reader

/// Payload reader over a shared buffer: fixed-width fields are parsed
/// in place, blob fields come out as O(1) [`Bytes`] sub-views.
struct Reader<'a> {
    buf: &'a Bytes,
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let out = &self.buf.as_ref()[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, FrameError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn boolean(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(FrameError::UnknownTag { what: "bool", tag }),
        }
    }
    fn bytes(&mut self) -> Result<Bytes, FrameError> {
        let n = self.u32()? as usize;
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let out = self.buf.slice(self.pos..end);
        self.pos = end;
        Ok(out)
    }
    fn string(&mut self) -> Result<String, FrameError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        std::str::from_utf8(b).map(str::to_owned).map_err(|_| FrameError::InvalidUtf8)
    }
    fn node(&mut self) -> Result<NodeId, FrameError> {
        Ok(NodeId::from_index(self.u32()? as usize))
    }
}

// ------------------------------------------------- composite field codecs

fn write_opt<T>(w: &mut Writer, x: &Option<T>, f: impl FnOnce(&mut Writer, &T)) {
    match x {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            f(w, v);
        }
    }
}

fn read_opt<T>(
    r: &mut Reader<'_>,
    f: impl FnOnce(&mut Reader<'_>) -> Result<T, FrameError>,
) -> Result<Option<T>, FrameError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(f(r)?)),
        tag => Err(FrameError::UnknownTag { what: "option", tag }),
    }
}

fn write_result<T>(w: &mut Writer, x: &Result<T, Error>, f: impl FnOnce(&mut Writer, &T)) {
    match x {
        Ok(v) => {
            w.u8(0);
            f(w, v);
        }
        Err(e) => {
            w.u8(1);
            write_error(w, e);
        }
    }
}

fn read_result<T>(
    r: &mut Reader<'_>,
    f: impl FnOnce(&mut Reader<'_>) -> Result<T, FrameError>,
) -> Result<Result<T, Error>, FrameError> {
    match r.u8()? {
        0 => Ok(Ok(f(r)?)),
        1 => Ok(Err(read_error(r)?)),
        tag => Err(FrameError::UnknownTag { what: "result", tag }),
    }
}

fn write_error(w: &mut Writer, e: &Error) {
    w.u8(match e {
        Error::NotFound => 0,
        Error::AlreadyExists => 1,
        Error::VersionConflict => 2,
        Error::NoSuchSegment => 3,
        Error::Timeout => 4,
        Error::OutOfSpace => 5,
        Error::LeaseHeld => 6,
        Error::InvalidMode => 7,
        Error::NotADirectory => 8,
        Error::NotEmpty => 9,
        Error::ShadowExpired => 10,
        Error::Unavailable => 11,
        Error::DeadlineExceeded => 12,
    });
}

fn read_error(r: &mut Reader<'_>) -> Result<Error, FrameError> {
    Ok(match r.u8()? {
        0 => Error::NotFound,
        1 => Error::AlreadyExists,
        2 => Error::VersionConflict,
        3 => Error::NoSuchSegment,
        4 => Error::Timeout,
        5 => Error::OutOfSpace,
        6 => Error::LeaseHeld,
        7 => Error::InvalidMode,
        8 => Error::NotADirectory,
        9 => Error::NotEmpty,
        10 => Error::ShadowExpired,
        11 => Error::Unavailable,
        12 => Error::DeadlineExceeded,
        tag => return Err(FrameError::UnknownTag { what: "error", tag }),
    })
}

fn write_organization(w: &mut Writer, o: &Organization) {
    match o {
        Organization::Linear => w.u8(0),
        Organization::Striped { stripes, max_size } => {
            w.u8(1);
            w.u32(*stripes);
            w.u64(*max_size);
        }
        Organization::Hybrid { group_stripes } => {
            w.u8(2);
            w.u32(*group_stripes);
        }
    }
}

fn read_organization(r: &mut Reader<'_>) -> Result<Organization, FrameError> {
    Ok(match r.u8()? {
        0 => Organization::Linear,
        1 => Organization::Striped { stripes: r.u32()?, max_size: r.u64()? },
        2 => Organization::Hybrid { group_stripes: r.u32()? },
        tag => return Err(FrameError::UnknownTag { what: "organization", tag }),
    })
}

fn write_placement(w: &mut Writer, p: &PlacementPolicy) {
    match p {
        PlacementPolicy::Random => w.u8(0),
        PlacementPolicy::LoadAware => w.u8(1),
        PlacementPolicy::LocalityDriven { threshold } => {
            w.u8(2);
            w.f64(*threshold);
        }
    }
}

fn read_placement(r: &mut Reader<'_>) -> Result<PlacementPolicy, FrameError> {
    Ok(match r.u8()? {
        0 => PlacementPolicy::Random,
        1 => PlacementPolicy::LoadAware,
        2 => PlacementPolicy::LocalityDriven { threshold: r.f64()? },
        tag => return Err(FrameError::UnknownTag { what: "placement", tag }),
    })
}

fn write_ec(w: &mut Writer, ec: &Option<EcParams>) {
    write_opt(w, ec, |w, p| {
        w.u8(p.k);
        w.u8(p.m);
    });
}

fn read_ec(r: &mut Reader<'_>) -> Result<Option<EcParams>, FrameError> {
    read_opt(r, |r| Ok(EcParams { k: r.u8()?, m: r.u8()? }))
}

fn write_options(w: &mut Writer, o: &FileOptions) {
    w.u32(o.replication);
    w.f64(o.alpha);
    write_organization(w, &o.organization);
    write_placement(w, &o.placement);
    w.boolean(o.versioning_off);
    w.boolean(o.eager_commit);
    write_ec(w, &o.ec);
}

fn read_options(r: &mut Reader<'_>) -> Result<FileOptions, FrameError> {
    Ok(FileOptions {
        replication: r.u32()?,
        alpha: r.f64()?,
        organization: read_organization(r)?,
        placement: read_placement(r)?,
        versioning_off: r.boolean()?,
        eager_commit: r.boolean()?,
        ec: read_ec(r)?,
    })
}

fn write_entry(w: &mut Writer, e: &FileEntry) {
    w.u128(e.file.0);
    w.u64(e.version.0);
    w.u64(e.size);
    w.boolean(e.is_dir);
    w.u64(e.created_ns);
    w.u64(e.modified_ns);
    write_options(w, &e.options);
}

fn read_entry(r: &mut Reader<'_>) -> Result<FileEntry, FrameError> {
    Ok(FileEntry {
        file: FileId(r.u128()?),
        version: Version(r.u64()?),
        size: r.u64()?,
        is_dir: r.boolean()?,
        created_ns: r.u64()?,
        modified_ns: r.u64()?,
        options: read_options(r)?,
    })
}

fn write_owners(w: &mut Writer, owners: &[(NodeId, Version)]) {
    w.u32(owners.len() as u32);
    for (n, v) in owners {
        w.node(*n);
        w.u64(v.0);
    }
}

fn read_owners(r: &mut Reader<'_>) -> Result<Vec<(NodeId, Version)>, FrameError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push((r.node()?, Version(r.u64()?)));
    }
    Ok(out)
}

fn write_reply(w: &mut Writer, reply: &ReadReply) {
    match reply {
        ReadReply::Data { len, data, version } => {
            w.u8(0);
            w.u64(*len);
            write_opt(w, data, |w, d| w.bytes(d));
            w.u64(version.0);
        }
        ReadReply::Redirect(owners) => {
            w.u8(1);
            write_owners(w, owners);
        }
        ReadReply::Err(e) => {
            w.u8(2);
            write_error(w, e);
        }
    }
}

fn read_reply(r: &mut Reader<'_>) -> Result<ReadReply, FrameError> {
    Ok(match r.u8()? {
        0 => ReadReply::Data {
            len: r.u64()?,
            data: read_opt(r, |r| r.bytes())?,
            version: Version(r.u64()?),
        },
        1 => ReadReply::Redirect(read_owners(r)?),
        2 => ReadReply::Err(read_error(r)?),
        tag => return Err(FrameError::UnknownTag { what: "read_reply", tag }),
    })
}

fn write_payload(w: &mut Writer, p: &WritePayload) {
    match p {
        WritePayload::Real(bytes) => {
            w.u8(0);
            w.bytes(bytes);
        }
        WritePayload::Synthetic { len } => {
            w.u8(1);
            w.u64(*len);
        }
    }
}

fn read_payload(r: &mut Reader<'_>) -> Result<WritePayload, FrameError> {
    Ok(match r.u8()? {
        0 => WritePayload::Real(r.bytes()?),
        1 => WritePayload::Synthetic { len: r.u64()? },
        tag => return Err(FrameError::UnknownTag { what: "write_payload", tag }),
    })
}

fn write_meta(w: &mut Writer, m: &SegMeta) {
    w.u32(m.replication);
    w.f64(m.alpha);
    write_placement(w, &m.policy);
    w.boolean(m.synthetic);
    write_opt(w, &m.ec, |w, (k, m)| {
        w.u8(*k);
        w.u8(*m);
    });
}

fn read_meta(r: &mut Reader<'_>) -> Result<SegMeta, FrameError> {
    Ok(SegMeta {
        replication: r.u32()?,
        alpha: r.f64()?,
        policy: read_placement(r)?,
        synthetic: r.boolean()?,
        ec: read_opt(r, |r| Ok((r.u8()?, r.u8()?)))?,
    })
}

fn write_image(w: &mut Writer, img: &ReplicaImage) {
    w.u128(img.seg.0);
    w.u64(img.version.0);
    w.u64(img.len);
    write_opt(w, &img.data, |w, d| w.bytes(d));
    write_meta(w, &img.meta);
}

fn read_image(r: &mut Reader<'_>) -> Result<ReplicaImage, FrameError> {
    Ok(ReplicaImage {
        seg: SegId(r.u128()?),
        version: Version(r.u64()?),
        len: r.u64()?,
        data: read_opt(r, |r| r.bytes())?,
        meta: read_meta(r)?,
    })
}

fn write_heartbeat(w: &mut Writer, hb: &Heartbeat) {
    w.f64(hb.load);
    w.u64(hb.available);
    w.u64(hb.capacity);
    w.u32(hb.machine);
    w.u32(hb.rack);
}

fn read_heartbeat(r: &mut Reader<'_>) -> Result<Heartbeat, FrameError> {
    Ok(Heartbeat {
        load: r.f64()?,
        available: r.u64()?,
        capacity: r.u64()?,
        machine: r.u32()?,
        rack: r.u32()?,
    })
}

fn write_swim_updates(w: &mut Writer, updates: &[SwimUpdate]) {
    w.u32(updates.len() as u32);
    for u in updates {
        w.node(u.node);
        w.u8(match u.state {
            SwimState::Alive => 0,
            SwimState::Suspect => 1,
            SwimState::Dead => 2,
        });
        w.u64(u.incarnation);
        w.u64(u.beat);
        write_opt(w, &u.payload, write_heartbeat);
    }
}

fn read_swim_updates(r: &mut Reader<'_>) -> Result<Vec<SwimUpdate>, FrameError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(SwimUpdate {
            node: r.node()?,
            state: match r.u8()? {
                0 => SwimState::Alive,
                1 => SwimState::Suspect,
                2 => SwimState::Dead,
                tag => return Err(FrameError::UnknownTag { what: "swim state", tag }),
            },
            incarnation: r.u64()?,
            beat: r.u64()?,
            payload: read_opt(r, read_heartbeat)?,
        });
    }
    Ok(out)
}

fn write_tick(w: &mut Writer, t: &Tick) {
    match t {
        Tick::Heartbeat => w.u8(0),
        Tick::LocationRefresh => w.u8(1),
        Tick::JoinRefresh(n) => {
            w.u8(2);
            w.node(*n);
        }
        Tick::Gc => w.u8(3),
        Tick::RepairScan => w.u8(4),
        Tick::Migration => w.u8(5),
        Tick::MigrationContinue => w.u8(6),
        Tick::RpcTimeout(req) => {
            w.u8(7);
            w.u64(*req);
        }
        Tick::BackupDeadline(req) => {
            w.u8(8);
            w.u64(*req);
        }
        Tick::Membership => w.u8(9),
        Tick::NextOp => w.u8(10),
        Tick::AppendRetry => w.u8(11),
        Tick::CommitBeginRetry => w.u8(12),
        Tick::LeaseSweep => w.u8(13),
        Tick::OpDeadline(generation) => {
            w.u8(14);
            w.u64(*generation);
        }
        Tick::RpcResend(req) => {
            w.u8(15);
            w.u64(*req);
        }
        Tick::NsShip => w.u8(16),
        Tick::StandbyCheck => w.u8(17),
        Tick::ShardMapRefresh => w.u8(18),
        Tick::XShardTimeout(req) => {
            w.u8(19);
            w.u64(*req);
        }
        Tick::SwimProbe => w.u8(20),
        Tick::SwimAckTimeout(seq) => {
            w.u8(21);
            w.u64(*seq);
        }
        Tick::SwimProbeTimeout(seq) => {
            w.u8(22);
            w.u64(*seq);
        }
        Tick::SwimSuspectTimeout(node, incarnation) => {
            w.u8(23);
            w.node(*node);
            w.u64(*incarnation);
        }
        Tick::SwimSync => w.u8(24),
        Tick::GaugeExport => w.u8(25),
        Tick::MembersRefresh => w.u8(26),
    }
}

fn read_tick(r: &mut Reader<'_>) -> Result<Tick, FrameError> {
    Ok(match r.u8()? {
        0 => Tick::Heartbeat,
        1 => Tick::LocationRefresh,
        2 => Tick::JoinRefresh(r.node()?),
        3 => Tick::Gc,
        4 => Tick::RepairScan,
        5 => Tick::Migration,
        6 => Tick::MigrationContinue,
        7 => Tick::RpcTimeout(r.u64()?),
        8 => Tick::BackupDeadline(r.u64()?),
        9 => Tick::Membership,
        10 => Tick::NextOp,
        11 => Tick::AppendRetry,
        12 => Tick::CommitBeginRetry,
        13 => Tick::LeaseSweep,
        14 => Tick::OpDeadline(r.u64()?),
        15 => Tick::RpcResend(r.u64()?),
        16 => Tick::NsShip,
        17 => Tick::StandbyCheck,
        18 => Tick::ShardMapRefresh,
        19 => Tick::XShardTimeout(r.u64()?),
        20 => Tick::SwimProbe,
        21 => Tick::SwimAckTimeout(r.u64()?),
        22 => Tick::SwimProbeTimeout(r.u64()?),
        23 => Tick::SwimSuspectTimeout(r.node()?, r.u64()?),
        24 => Tick::SwimSync,
        25 => Tick::GaugeExport,
        26 => Tick::MembersRefresh,
        tag => return Err(FrameError::UnknownTag { what: "tick", tag }),
    })
}

fn write_shadow_items(w: &mut Writer, items: &[(ShadowId, Version)]) {
    w.u32(items.len() as u32);
    for (s, v) in items {
        w.u64(*s);
        w.u64(v.0);
    }
}

fn read_shadow_items(r: &mut Reader<'_>) -> Result<Vec<(ShadowId, Version)>, FrameError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push((r.u64()?, Version(r.u64()?)));
    }
    Ok(out)
}

/// Encode a standalone [`ReplicaImage`] (daemon segment persistence:
/// the value format under `seg/` keys in the node's kvdb).
pub fn encode_image_bytes(img: &ReplicaImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + img.data.as_ref().map_or(0, |d| d.len()));
    let mut w = Writer { out: &mut out, crc: Crc32::new() };
    write_image(&mut w, img);
    out
}

/// Decode a standalone [`ReplicaImage`]. Copies the input into a shared
/// allocation once (this runs only on daemon recovery, not the data
/// path) so the image's blob can be a [`Bytes`] view.
pub fn decode_image_bytes(bytes: &[u8]) -> Result<ReplicaImage, FrameError> {
    let buf = Bytes::copy_from_slice(bytes);
    let mut r = Reader { buf: &buf, pos: 0 };
    let img = read_image(&mut r)?;
    if r.pos != r.buf.len() {
        return Err(FrameError::TrailingBytes);
    }
    Ok(img)
}

// --------------------------------------------------------- the Msg codec

fn write_msg(w: &mut Writer, msg: &Msg) {
    match msg {
        Msg::Tick(t) => {
            w.u8(0);
            write_tick(w, t);
        }
        Msg::Heartbeat(hb) => {
            w.u8(1);
            write_heartbeat(w, hb);
        }
        Msg::NsLookup { req, path } => {
            w.u8(2);
            w.u64(*req);
            w.string(path);
        }
        Msg::NsLookupR { req, result } => {
            w.u8(3);
            w.u64(*req);
            write_result(w, result, write_entry);
        }
        Msg::NsCreate { req, path, file, options } => {
            w.u8(4);
            w.u64(*req);
            w.string(path);
            w.u128(file.0);
            write_options(w, options);
        }
        Msg::NsCreateR { req, result } => {
            w.u8(5);
            w.u64(*req);
            write_result(w, result, write_entry);
        }
        Msg::NsMkdir { req, path } => {
            w.u8(6);
            w.u64(*req);
            w.string(path);
        }
        Msg::NsMkdirR { req, result } => {
            w.u8(7);
            w.u64(*req);
            write_result(w, result, |_, ()| {});
        }
        Msg::NsRemove { req, path } => {
            w.u8(8);
            w.u64(*req);
            w.string(path);
        }
        Msg::NsRemoveR { req, result } => {
            w.u8(9);
            w.u64(*req);
            write_result(w, result, write_entry);
        }
        Msg::NsList { req, path } => {
            w.u8(10);
            w.u64(*req);
            w.string(path);
        }
        Msg::NsListR { req, result } => {
            w.u8(11);
            w.u64(*req);
            write_result(w, result, |w, names| {
                w.u32(names.len() as u32);
                for n in names {
                    w.string(n);
                }
            });
        }
        Msg::NsCommitBegin { req, span, path, base } => {
            w.u8(12);
            w.u64(*req);
            w.u64(*span);
            w.string(path);
            w.u64(base.0);
        }
        Msg::NsCommitBeginR { req, result } => {
            w.u8(13);
            w.u64(*req);
            write_result(w, result, |_, ()| {});
        }
        Msg::NsCommitEnd { req, span, path, commit, new_version, new_size } => {
            w.u8(14);
            w.u64(*req);
            w.u64(*span);
            w.string(path);
            w.boolean(*commit);
            w.u64(new_version.0);
            w.u64(*new_size);
        }
        Msg::NsCommitEndR { req, result } => {
            w.u8(15);
            w.u64(*req);
            write_result(w, result, |_, ()| {});
        }
        Msg::LocQuery { req, seg } => {
            w.u8(16);
            w.u64(*req);
            w.u128(seg.0);
        }
        Msg::LocQueryR { req, seg, owners } => {
            w.u8(17);
            w.u64(*req);
            w.u128(seg.0);
            write_owners(w, owners);
        }
        Msg::LocUpsert { seg, owner, version, replication, bytes, deleted } => {
            w.u8(18);
            w.u128(seg.0);
            w.node(*owner);
            w.u64(version.0);
            w.u32(*replication);
            w.u64(*bytes);
            w.boolean(*deleted);
        }
        Msg::LocRefresh { owner, entries } => {
            w.u8(19);
            w.node(*owner);
            w.u32(entries.len() as u32);
            for (seg, v, repl, bytes) in entries {
                w.u128(seg.0);
                w.u64(v.0);
                w.u32(*repl);
                w.u64(*bytes);
            }
        }
        Msg::BackupQuery { req, seg } => {
            w.u8(20);
            w.u64(*req);
            w.u128(seg.0);
        }
        Msg::BackupQueryR { req, seg, version } => {
            w.u8(21);
            w.u64(*req);
            w.u128(seg.0);
            w.u64(version.0);
        }
        Msg::ReadSeg { req, seg, offset, len, min_version, allow_redirect } => {
            w.u8(22);
            w.u64(*req);
            w.u128(seg.0);
            w.u64(*offset);
            w.u64(*len);
            write_opt(w, min_version, |w, v| w.u64(v.0));
            w.boolean(*allow_redirect);
        }
        Msg::ReadSegR { req, reply } => {
            w.u8(23);
            w.u64(*req);
            write_reply(w, reply);
        }
        Msg::CreateShadow { req, span, seg, base, meta } => {
            w.u8(24);
            w.u64(*req);
            w.u64(*span);
            w.u128(seg.0);
            write_opt(w, base, |w, v| w.u64(v.0));
            write_meta(w, meta);
        }
        Msg::CreateShadowR { req, result } => {
            w.u8(25);
            w.u64(*req);
            write_result(w, result, |w, s| w.u64(*s));
        }
        Msg::WriteShadow { req, shadow, offset, payload, truncate } => {
            w.u8(26);
            w.u64(*req);
            w.u64(*shadow);
            w.u64(*offset);
            write_payload(w, payload);
            w.boolean(*truncate);
        }
        Msg::WriteShadowR { req, result } => {
            w.u8(27);
            w.u64(*req);
            write_result(w, result, |_, ()| {});
        }
        Msg::ReadShadow { req, shadow, offset, len } => {
            w.u8(28);
            w.u64(*req);
            w.u64(*shadow);
            w.u64(*offset);
            w.u64(*len);
        }
        Msg::ReadShadowR { req, reply } => {
            w.u8(29);
            w.u64(*req);
            write_reply(w, reply);
        }
        Msg::RenewShadow { shadow } => {
            w.u8(30);
            w.u64(*shadow);
        }
        Msg::Prepare { req, span, items } => {
            w.u8(31);
            w.u64(*req);
            w.u64(*span);
            write_shadow_items(w, items);
        }
        Msg::PrepareR { req, result } => {
            w.u8(32);
            w.u64(*req);
            write_result(w, result, |_, ()| {});
        }
        Msg::Commit { req, span, items } => {
            w.u8(33);
            w.u64(*req);
            w.u64(*span);
            write_shadow_items(w, items);
        }
        Msg::CommitR { req, result } => {
            w.u8(34);
            w.u64(*req);
            write_result(w, result, |_, ()| {});
        }
        Msg::Abort { span, items } => {
            w.u8(35);
            w.u64(*span);
            w.u32(items.len() as u32);
            for s in items {
                w.u64(*s);
            }
        }
        Msg::DirectWrite { req, seg, offset, payload, meta } => {
            w.u8(36);
            w.u64(*req);
            w.u128(seg.0);
            w.u64(*offset);
            write_payload(w, payload);
            write_meta(w, meta);
        }
        Msg::DirectWriteR { req, result } => {
            w.u8(37);
            w.u64(*req);
            write_result(w, result, |_, ()| {});
        }
        Msg::DeleteSeg { req, seg } => {
            w.u8(38);
            w.u64(*req);
            w.u128(seg.0);
        }
        Msg::DeleteSegR { req, existed } => {
            w.u8(39);
            w.u64(*req);
            w.boolean(*existed);
        }
        Msg::FetchSeg { req, seg } => {
            w.u8(40);
            w.u64(*req);
            w.u128(seg.0);
        }
        Msg::FetchSegR { req, result } => {
            w.u8(41);
            w.u64(*req);
            write_result(w, result, |w, img| write_image(w, img));
        }
        Msg::SyncRequest { req, seg, source, bytes_hint } => {
            w.u8(42);
            w.u64(*req);
            w.u128(seg.0);
            w.node(*source);
            w.u64(*bytes_hint);
        }
        Msg::SyncDone { req, seg, version, result } => {
            w.u8(43);
            w.u64(*req);
            w.u128(seg.0);
            w.u64(version.0);
            write_result(w, result, |_, ()| {});
        }
        Msg::MigrateTo { seg, source, bytes_hint } => {
            w.u8(44);
            w.u128(seg.0);
            w.node(*source);
            w.u64(*bytes_hint);
        }
        Msg::MigrateDone { seg, ok } => {
            w.u8(45);
            w.u128(seg.0);
            w.boolean(*ok);
        }
        Msg::EcInstall { req, image } => {
            w.u8(52);
            w.u64(*req);
            write_image(w, image);
        }
        Msg::EcInstallR { req, seg, result } => {
            w.u8(53);
            w.u64(*req);
            w.u128(seg.0);
            write_result(w, result, |_, ()| {});
        }
        Msg::StatsQuery { req } => {
            w.u8(46);
            w.u64(*req);
        }
        Msg::StatsR { req, json } => {
            w.u8(47);
            w.u64(*req);
            w.string(json);
        }
        Msg::ChaosCtl {
            req,
            seed,
            drop_permille,
            dup_permille,
            delay_permille,
            delay_us,
            partition,
        } => {
            w.u8(48);
            w.u64(*req);
            w.u64(*seed);
            w.u32(*drop_permille);
            w.u32(*dup_permille);
            w.u32(*delay_permille);
            w.u64(*delay_us);
            w.u32(partition.len() as u32);
            for n in partition {
                w.node(*n);
            }
        }
        Msg::ChaosCtlR { req } => {
            w.u8(49);
            w.u64(*req);
        }
        Msg::TraceQuery { req, span } => {
            w.u8(50);
            w.u64(*req);
            w.u64(*span);
        }
        Msg::TraceR { req, json } => {
            w.u8(51);
            w.u64(*req);
            w.string(json);
        }
        Msg::NsRename { req, src, dst } => {
            w.u8(54);
            w.u64(*req);
            w.string(src);
            w.string(dst);
        }
        Msg::NsRenameR { req, result } => {
            w.u8(55);
            w.u64(*req);
            write_result(w, result, |_, ()| {});
        }
        Msg::NsShardInstall { req, path, entry, xfer } => {
            w.u8(56);
            w.u64(*req);
            w.string(path);
            write_entry(w, entry);
            w.boolean(*xfer);
        }
        Msg::NsShardInstallR { req, result } => {
            w.u8(57);
            w.u64(*req);
            write_result(w, result, |_, ()| {});
        }
        Msg::NsShardDrop { req, path, check_empty } => {
            w.u8(58);
            w.u64(*req);
            w.string(path);
            w.boolean(*check_empty);
        }
        Msg::NsShardDropR { req, result } => {
            w.u8(59);
            w.u64(*req);
            write_result(w, result, |_, ()| {});
        }
        Msg::ShardMapQuery { req } => {
            w.u8(60);
            w.u64(*req);
        }
        Msg::ShardMapR { req, rows } => {
            w.u8(61);
            w.u64(*req);
            w.u32(rows.len() as u32);
            for (shard, primary, standby) in rows {
                w.u32(*shard);
                w.node(*primary);
                write_opt(w, standby, |w, n| w.node(*n));
            }
        }
        Msg::NsWalShip { shard, seq, ckpt, recs } => {
            w.u8(62);
            w.u32(*shard);
            w.u64(*seq);
            write_opt(w, ckpt, |w, c| w.bytes(c));
            w.u32(recs.len() as u32);
            for rec in recs {
                w.bytes(rec);
            }
        }
        Msg::NsCatchup { shard, have_seq } => {
            w.u8(63);
            w.u32(*shard);
            w.u64(*have_seq);
        }
        Msg::SwimPing { seq, origin, updates } => {
            w.u8(64);
            w.u64(*seq);
            w.node(*origin);
            write_swim_updates(w, updates);
        }
        Msg::SwimAck { seq, origin, updates } => {
            w.u8(65);
            w.u64(*seq);
            w.node(*origin);
            write_swim_updates(w, updates);
        }
        Msg::SwimPingReq { seq, target, origin, updates } => {
            w.u8(66);
            w.u64(*seq);
            w.node(*target);
            w.node(*origin);
            write_swim_updates(w, updates);
        }
        Msg::MembersPull { req } => {
            w.u8(67);
            w.u64(*req);
        }
        Msg::MembersDigest { req, updates } => {
            w.u8(68);
            w.u64(*req);
            write_swim_updates(w, updates);
        }
        Msg::MembersQuery { req } => {
            w.u8(69);
            w.u64(*req);
        }
        Msg::MembersR { req, json } => {
            w.u8(70);
            w.u64(*req);
            w.string(json);
        }
    }
}

fn read_msg(r: &mut Reader<'_>) -> Result<Msg, FrameError> {
    Ok(match r.u8()? {
        0 => Msg::Tick(read_tick(r)?),
        1 => Msg::Heartbeat(read_heartbeat(r)?),
        2 => Msg::NsLookup { req: r.u64()?, path: r.string()? },
        3 => Msg::NsLookupR { req: r.u64()?, result: read_result(r, read_entry)? },
        4 => Msg::NsCreate {
            req: r.u64()?,
            path: r.string()?,
            file: FileId(r.u128()?),
            options: read_options(r)?,
        },
        5 => Msg::NsCreateR { req: r.u64()?, result: read_result(r, read_entry)? },
        6 => Msg::NsMkdir { req: r.u64()?, path: r.string()? },
        7 => Msg::NsMkdirR { req: r.u64()?, result: read_result(r, |_| Ok(()))? },
        8 => Msg::NsRemove { req: r.u64()?, path: r.string()? },
        9 => Msg::NsRemoveR { req: r.u64()?, result: read_result(r, read_entry)? },
        10 => Msg::NsList { req: r.u64()?, path: r.string()? },
        11 => Msg::NsListR {
            req: r.u64()?,
            result: read_result(r, |r| {
                let n = r.u32()? as usize;
                let mut names = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    names.push(r.string()?);
                }
                Ok(names)
            })?,
        },
        12 => Msg::NsCommitBegin {
            req: r.u64()?,
            span: r.u64()?,
            path: r.string()?,
            base: Version(r.u64()?),
        },
        13 => Msg::NsCommitBeginR { req: r.u64()?, result: read_result(r, |_| Ok(()))? },
        14 => Msg::NsCommitEnd {
            req: r.u64()?,
            span: r.u64()?,
            path: r.string()?,
            commit: r.boolean()?,
            new_version: Version(r.u64()?),
            new_size: r.u64()?,
        },
        15 => Msg::NsCommitEndR { req: r.u64()?, result: read_result(r, |_| Ok(()))? },
        16 => Msg::LocQuery { req: r.u64()?, seg: SegId(r.u128()?) },
        17 => Msg::LocQueryR {
            req: r.u64()?,
            seg: SegId(r.u128()?),
            owners: read_owners(r)?,
        },
        18 => Msg::LocUpsert {
            seg: SegId(r.u128()?),
            owner: r.node()?,
            version: Version(r.u64()?),
            replication: r.u32()?,
            bytes: r.u64()?,
            deleted: r.boolean()?,
        },
        19 => Msg::LocRefresh {
            owner: r.node()?,
            entries: {
                let n = r.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    entries.push((SegId(r.u128()?), Version(r.u64()?), r.u32()?, r.u64()?));
                }
                entries
            },
        },
        20 => Msg::BackupQuery { req: r.u64()?, seg: SegId(r.u128()?) },
        21 => Msg::BackupQueryR {
            req: r.u64()?,
            seg: SegId(r.u128()?),
            version: Version(r.u64()?),
        },
        22 => Msg::ReadSeg {
            req: r.u64()?,
            seg: SegId(r.u128()?),
            offset: r.u64()?,
            len: r.u64()?,
            min_version: read_opt(r, |r| Ok(Version(r.u64()?)))?,
            allow_redirect: r.boolean()?,
        },
        23 => Msg::ReadSegR { req: r.u64()?, reply: read_reply(r)? },
        24 => Msg::CreateShadow {
            req: r.u64()?,
            span: r.u64()?,
            seg: SegId(r.u128()?),
            base: read_opt(r, |r| Ok(Version(r.u64()?)))?,
            meta: read_meta(r)?,
        },
        25 => Msg::CreateShadowR { req: r.u64()?, result: read_result(r, |r| r.u64())? },
        26 => Msg::WriteShadow {
            req: r.u64()?,
            shadow: r.u64()?,
            offset: r.u64()?,
            payload: read_payload(r)?,
            truncate: r.boolean()?,
        },
        27 => Msg::WriteShadowR { req: r.u64()?, result: read_result(r, |_| Ok(()))? },
        28 => Msg::ReadShadow {
            req: r.u64()?,
            shadow: r.u64()?,
            offset: r.u64()?,
            len: r.u64()?,
        },
        29 => Msg::ReadShadowR { req: r.u64()?, reply: read_reply(r)? },
        30 => Msg::RenewShadow { shadow: r.u64()? },
        31 => Msg::Prepare { req: r.u64()?, span: r.u64()?, items: read_shadow_items(r)? },
        32 => Msg::PrepareR { req: r.u64()?, result: read_result(r, |_| Ok(()))? },
        33 => Msg::Commit { req: r.u64()?, span: r.u64()?, items: read_shadow_items(r)? },
        34 => Msg::CommitR { req: r.u64()?, result: read_result(r, |_| Ok(()))? },
        35 => Msg::Abort {
            span: r.u64()?,
            items: {
                let n = r.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(r.u64()?);
                }
                items
            },
        },
        36 => Msg::DirectWrite {
            req: r.u64()?,
            seg: SegId(r.u128()?),
            offset: r.u64()?,
            payload: read_payload(r)?,
            meta: read_meta(r)?,
        },
        37 => Msg::DirectWriteR { req: r.u64()?, result: read_result(r, |_| Ok(()))? },
        38 => Msg::DeleteSeg { req: r.u64()?, seg: SegId(r.u128()?) },
        39 => Msg::DeleteSegR { req: r.u64()?, existed: r.boolean()? },
        40 => Msg::FetchSeg { req: r.u64()?, seg: SegId(r.u128()?) },
        41 => Msg::FetchSegR {
            req: r.u64()?,
            result: read_result(r, |r| Ok(Box::new(read_image(r)?)))?,
        },
        42 => Msg::SyncRequest {
            req: r.u64()?,
            seg: SegId(r.u128()?),
            source: r.node()?,
            bytes_hint: r.u64()?,
        },
        43 => Msg::SyncDone {
            req: r.u64()?,
            seg: SegId(r.u128()?),
            version: Version(r.u64()?),
            result: read_result(r, |_| Ok(()))?,
        },
        44 => Msg::MigrateTo {
            seg: SegId(r.u128()?),
            source: r.node()?,
            bytes_hint: r.u64()?,
        },
        45 => Msg::MigrateDone { seg: SegId(r.u128()?), ok: r.boolean()? },
        46 => Msg::StatsQuery { req: r.u64()? },
        47 => Msg::StatsR { req: r.u64()?, json: r.string()? },
        48 => Msg::ChaosCtl {
            req: r.u64()?,
            seed: r.u64()?,
            drop_permille: r.u32()?,
            dup_permille: r.u32()?,
            delay_permille: r.u32()?,
            delay_us: r.u64()?,
            partition: {
                let n = r.u32()? as usize;
                let mut peers = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    peers.push(r.node()?);
                }
                peers
            },
        },
        49 => Msg::ChaosCtlR { req: r.u64()? },
        50 => Msg::TraceQuery { req: r.u64()?, span: r.u64()? },
        51 => Msg::TraceR { req: r.u64()?, json: r.string()? },
        52 => Msg::EcInstall {
            req: r.u64()?,
            image: Box::new(read_image(r)?),
        },
        53 => Msg::EcInstallR {
            req: r.u64()?,
            seg: SegId(r.u128()?),
            result: read_result(r, |_| Ok(()))?,
        },
        54 => Msg::NsRename { req: r.u64()?, src: r.string()?, dst: r.string()? },
        55 => Msg::NsRenameR { req: r.u64()?, result: read_result(r, |_| Ok(()))? },
        56 => Msg::NsShardInstall {
            req: r.u64()?,
            path: r.string()?,
            entry: read_entry(r)?,
            xfer: r.boolean()?,
        },
        57 => Msg::NsShardInstallR { req: r.u64()?, result: read_result(r, |_| Ok(()))? },
        58 => Msg::NsShardDrop { req: r.u64()?, path: r.string()?, check_empty: r.boolean()? },
        59 => Msg::NsShardDropR { req: r.u64()?, result: read_result(r, |_| Ok(()))? },
        60 => Msg::ShardMapQuery { req: r.u64()? },
        61 => Msg::ShardMapR {
            req: r.u64()?,
            rows: {
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rows.push((r.u32()?, r.node()?, read_opt(r, |r| r.node())?));
                }
                rows
            },
        },
        62 => Msg::NsWalShip {
            shard: r.u32()?,
            seq: r.u64()?,
            ckpt: read_opt(r, |r| r.bytes())?,
            recs: {
                let n = r.u32()? as usize;
                let mut recs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    recs.push(r.bytes()?);
                }
                recs
            },
        },
        63 => Msg::NsCatchup { shard: r.u32()?, have_seq: r.u64()? },
        64 => Msg::SwimPing {
            seq: r.u64()?,
            origin: r.node()?,
            updates: read_swim_updates(r)?,
        },
        65 => Msg::SwimAck {
            seq: r.u64()?,
            origin: r.node()?,
            updates: read_swim_updates(r)?,
        },
        66 => Msg::SwimPingReq {
            seq: r.u64()?,
            target: r.node()?,
            origin: r.node()?,
            updates: read_swim_updates(r)?,
        },
        67 => Msg::MembersPull { req: r.u64()? },
        68 => Msg::MembersDigest { req: r.u64()?, updates: read_swim_updates(r)? },
        69 => Msg::MembersQuery { req: r.u64()? },
        70 => Msg::MembersR { req: r.u64()?, json: r.string()? },
        tag => return Err(FrameError::UnknownTag { what: "msg", tag }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Msg) {
        let me = NodeId::from_index(7);
        let bytes = encode_msg(me, &msg);
        // The retired two-pass encoder is the oracle the single-pass
        // pooled encoder must match byte for byte.
        assert_eq!(bytes, reference_encode_msg(me, &msg));
        let (sender, frame) = decode_frame(&bytes).expect("decode");
        assert_eq!(sender, me);
        let Frame::Msg(back) = frame else { panic!("not a msg frame") };
        // Msg has no PartialEq: byte-exact re-encode is the equality proof.
        assert_eq!(encode_msg(me, &back), bytes);
    }

    #[test]
    fn representative_messages_round_trip() {
        roundtrip(Msg::NsLookup { req: 1, path: "/a/b".into() });
        roundtrip(Msg::Heartbeat(Heartbeat {
            load: 0.25,
            available: 10,
            capacity: 20,
            machine: 1,
            rack: 2,
        }));
        roundtrip(Msg::ReadSegR {
            req: 9,
            reply: ReadReply::Data {
                len: 3,
                data: Some(vec![1, 2, 3].into()),
                version: Version(5),
            },
        });
        roundtrip(Msg::FetchSegR {
            req: 4,
            result: Ok(Box::new(ReplicaImage {
                seg: SegId(42),
                version: Version(3),
                len: 2,
                data: Some(vec![7, 8].into()),
                meta: SegMeta {
                    replication: 2,
                    alpha: 1.0,
                    policy: PlacementPolicy::LoadAware,
                    synthetic: false,
                    ec: None,
                },
            })),
        });
    }

    #[test]
    fn ec_messages_round_trip() {
        roundtrip(Msg::EcInstall {
            req: 21,
            image: Box::new(ReplicaImage {
                seg: SegId(77),
                version: Version(4),
                len: 5,
                data: Some(vec![1, 2, 3, 4, 5].into()),
                meta: SegMeta {
                    replication: 1,
                    alpha: 0.5,
                    policy: PlacementPolicy::LoadAware,
                    synthetic: false,
                    ec: Some((4, 2)),
                },
            }),
        });
        roundtrip(Msg::EcInstallR { req: 21, seg: SegId(77), result: Ok(()) });
        roundtrip(Msg::EcInstallR { req: 22, seg: SegId(78), result: Err(Error::OutOfSpace) });
        // EC-bearing options travel inside create/lookup messages.
        roundtrip(Msg::NsCreate {
            req: 5,
            path: "/ec".into(),
            file: FileId(9),
            options: FileOptions::erasure_coded(4, 2, 1 << 20),
        });
    }

    #[test]
    fn resilience_messages_round_trip() {
        roundtrip(Msg::ChaosCtl {
            req: 11,
            seed: 0xC0FFEE,
            drop_permille: 100,
            dup_permille: 20,
            delay_permille: 50,
            delay_us: 1500,
            partition: vec![NodeId::from_index(2), NodeId::from_index(5)],
        });
        roundtrip(Msg::ChaosCtl {
            req: 12,
            seed: 0,
            drop_permille: 0,
            dup_permille: 0,
            delay_permille: 0,
            delay_us: 0,
            partition: Vec::new(),
        });
        roundtrip(Msg::ChaosCtlR { req: 11 });
        // New tick variants (never on the wire in practice, but the codec
        // must stay total over Msg).
        roundtrip(Msg::Tick(Tick::OpDeadline(7)));
        roundtrip(Msg::Tick(Tick::RpcResend(99)));
        // New error variants travel inside any Result-bearing reply.
        roundtrip(Msg::WriteShadowR { req: 1, result: Err(Error::Unavailable) });
        roundtrip(Msg::CommitR { req: 2, result: Err(Error::DeadlineExceeded) });
    }

    #[test]
    fn sharding_and_standby_messages_round_trip() {
        let entry = FileEntry {
            file: FileId(11),
            version: Version(2),
            size: 0,
            is_dir: true,
            created_ns: 5,
            modified_ns: 6,
            options: FileOptions::default(),
        };
        roundtrip(Msg::NsRename { req: 1, src: "/a/x".into(), dst: "/b/y".into() });
        roundtrip(Msg::NsRenameR { req: 1, result: Ok(()) });
        roundtrip(Msg::NsRenameR { req: 2, result: Err(Error::NotFound) });
        roundtrip(Msg::NsShardInstall { req: 3, path: "/a".into(), entry, xfer: false });
        roundtrip(Msg::NsShardInstallR { req: 3, result: Err(Error::AlreadyExists) });
        roundtrip(Msg::NsShardDrop { req: 4, path: "/a".into(), check_empty: true });
        roundtrip(Msg::NsShardDropR { req: 4, result: Err(Error::NotEmpty) });
        roundtrip(Msg::ShardMapQuery { req: 5 });
        roundtrip(Msg::ShardMapR {
            req: 5,
            rows: vec![
                (0, NodeId::from_index(0), Some(NodeId::from_index(9))),
                (1, NodeId::from_index(1), None),
            ],
        });
        roundtrip(Msg::NsWalShip {
            shard: 1,
            seq: 7,
            ckpt: Some(vec![1, 2, 3].into()),
            recs: vec![vec![4, 5].into(), Vec::new().into()],
        });
        roundtrip(Msg::NsWalShip { shard: 0, seq: 8, ckpt: None, recs: Vec::new() });
        roundtrip(Msg::NsCatchup { shard: 1, have_seq: 6 });
        roundtrip(Msg::Tick(Tick::NsShip));
        roundtrip(Msg::Tick(Tick::StandbyCheck));
        roundtrip(Msg::Tick(Tick::ShardMapRefresh));
        roundtrip(Msg::Tick(Tick::XShardTimeout(12)));
    }

    #[test]
    fn membership_messages_round_trip() {
        let hb = Heartbeat { load: 0.5, available: 100, capacity: 200, machine: 3, rack: 1 };
        let updates = vec![
            SwimUpdate {
                node: NodeId::from_index(1),
                state: SwimState::Alive,
                incarnation: 2,
                beat: 17,
                payload: Some(hb),
            },
            SwimUpdate {
                node: NodeId::from_index(4),
                state: SwimState::Suspect,
                incarnation: 0,
                beat: 0,
                payload: None,
            },
            SwimUpdate {
                node: NodeId::from_index(9),
                state: SwimState::Dead,
                incarnation: 7,
                beat: 3,
                payload: None,
            },
        ];
        roundtrip(Msg::SwimPing {
            seq: 1,
            origin: NodeId::from_index(2),
            updates: updates.clone(),
        });
        roundtrip(Msg::SwimPing { seq: 2, origin: NodeId::from_index(2), updates: Vec::new() });
        roundtrip(Msg::SwimAck {
            seq: 1,
            origin: NodeId::from_index(2),
            updates: updates.clone(),
        });
        roundtrip(Msg::SwimPingReq {
            seq: 3,
            target: NodeId::from_index(5),
            origin: NodeId::from_index(2),
            updates: updates.clone(),
        });
        roundtrip(Msg::MembersPull { req: 8 });
        roundtrip(Msg::MembersDigest { req: 8, updates });
        roundtrip(Msg::MembersQuery { req: 9 });
        roundtrip(Msg::MembersR { req: 9, json: "{\"mode\":\"swim\"}".into() });
        roundtrip(Msg::Tick(Tick::SwimProbe));
        roundtrip(Msg::Tick(Tick::SwimAckTimeout(4)));
        roundtrip(Msg::Tick(Tick::SwimProbeTimeout(5)));
        roundtrip(Msg::Tick(Tick::SwimSuspectTimeout(NodeId::from_index(6), 2)));
        roundtrip(Msg::Tick(Tick::SwimSync));
        roundtrip(Msg::Tick(Tick::GaugeExport));
        roundtrip(Msg::Tick(Tick::MembersRefresh));
    }

    #[test]
    fn decoded_blobs_alias_the_received_payload() {
        // A data-bearing reply decoded via decode_payload must hand the
        // blob out as a sub-view of the wire buffer, not a copy.
        let msg = Msg::ReadSegR {
            req: 1,
            reply: ReadReply::Data {
                len: 4,
                data: Some(vec![9, 9, 9, 9].into()),
                version: Version(1),
            },
        };
        let wire = encode_msg(NodeId::from_index(1), &msg);
        let header: &[u8; HEADER_LEN] = wire[..HEADER_LEN].try_into().unwrap();
        let h = decode_header(header).unwrap();
        let payload = Bytes::copy_from_slice(&wire[HEADER_LEN..]);
        let payload_ptr_range =
            payload.as_ptr() as usize..payload.as_ptr() as usize + payload.len();
        let Frame::Msg(Msg::ReadSegR {
            reply: ReadReply::Data { data: Some(blob), .. },
            ..
        }) = decode_payload(&h, &payload).unwrap()
        else {
            panic!("wrong frame shape");
        };
        assert_eq!(&blob[..], &[9, 9, 9, 9]);
        assert!(payload_ptr_range.contains(&(blob.as_ptr() as usize)));
    }

    #[test]
    fn encode_into_reuses_the_buffer() {
        let me = NodeId::from_index(2);
        let big = Msg::StatsR { req: 1, json: "x".repeat(512) };
        let mut buf = Vec::new();
        encode_msg_into(&mut buf, me, &big);
        assert_eq!(buf, encode_msg(me, &big));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        // A smaller message re-encoded into the same buffer must not
        // reallocate.
        encode_msg_into(&mut buf, me, &Msg::StatsQuery { req: 2 });
        assert_eq!(buf, encode_msg(me, &Msg::StatsQuery { req: 2 }));
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
    }

    #[test]
    fn hello_round_trips() {
        let bytes = encode_hello(NodeId::from_index(3), "127.0.0.1:9000");
        let (sender, frame) = decode_frame(&bytes).unwrap();
        assert_eq!(sender, NodeId::from_index(3));
        match frame {
            Frame::Hello { listen_addr } => assert_eq!(listen_addr, "127.0.0.1:9000"),
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let bytes = encode_msg(NodeId::from_index(0), &Msg::StatsQuery { req: 1 });
        assert!(matches!(decode_frame(&bytes[..4]), Err(FrameError::Truncated)));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame(&bad), Err(FrameError::BadMagic)));
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(decode_frame(&bad), Err(FrameError::UnsupportedVersion(99))));
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 0xff;
        assert!(matches!(decode_frame(&bad), Err(FrameError::ChecksumMismatch)));
    }

    #[test]
    fn stream_decoder_reassembles_split_frames() {
        let a = encode_msg(NodeId::from_index(1), &Msg::StatsQuery { req: 7 });
        let b = encode_hello(NodeId::from_index(2), "127.0.0.1:9000");
        let mut wire = a.clone();
        wire.extend_from_slice(&b);
        // Byte-at-a-time is the worst possible fragmentation.
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        for byte in &wire {
            dec.feed(std::slice::from_ref(byte), &mut out).unwrap();
        }
        assert!(dec.is_at_boundary());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, NodeId::from_index(1));
        assert!(matches!(out[0].1, Frame::Msg(Msg::StatsQuery { req: 7 })));
        assert_eq!(out[1].0, NodeId::from_index(2));
        match &out[1].1 {
            Frame::Hello { listen_addr } => assert_eq!(listen_addr, "127.0.0.1:9000"),
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn stream_decoder_poisons_on_corruption() {
        let mut wire = encode_msg(NodeId::from_index(0), &Msg::StatsQuery { req: 1 });
        *wire.last_mut().unwrap() ^= 0xff;
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        assert_eq!(dec.feed(&wire, &mut out), Err(FrameError::ChecksumMismatch));
        assert!(out.is_empty());
        // Once poisoned, it stays poisoned (connection must be dropped).
        assert!(dec.feed(&[0u8; 4], &mut out).is_err());
    }

    #[test]
    fn stream_decoder_spare_advance_matches_feed() {
        let wire = encode_msg(NodeId::from_index(5), &Msg::StatsR { req: 2, json: "x".repeat(300) });
        let mut dec = StreamDecoder::new();
        let mut fed = 0usize;
        let mut got = None;
        while fed < wire.len() {
            let spare = dec.spare();
            assert!(!spare.is_empty());
            let n = spare.len().min(wire.len() - fed).min(7); // ragged reads
            spare[..n].copy_from_slice(&wire[fed..fed + n]);
            fed += n;
            if let Some(frame) = dec.advance(n).unwrap() {
                got = Some(frame);
            }
        }
        let (sender, frame) = got.expect("frame completed");
        assert_eq!(sender, NodeId::from_index(5));
        assert!(matches!(frame, Frame::Msg(Msg::StatsR { req: 2, .. })));
    }
}
