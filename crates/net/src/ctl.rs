//! The `sorrentoctl` client library.
//!
//! [`run_script`] joins the mesh as a short-lived client node, runs a
//! [`ClientOp`] program through the *same* `SorrentoClient` state
//! machine the simulator validates, and returns its [`ClientStats`].
//! [`fetch_stats`] asks a live daemon for its metrics registry as JSON
//! (answered by the daemon loop itself, not the state machine).

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::rc::Rc;
use std::time::{Duration, Instant};

use sorrento::client::{ClientOp, ClientStats, OpResult, SorrentoClient, Workload};
use sorrento::cluster::ScriptedWorkload;
use sorrento::proto::{self, Msg};
use sorrento::swim::MembershipMode;
use sorrento::types::Error;
use sorrento::Transport;
use sorrento_sim::{EventRecord, NodeId, SimTime, SpanId, TelemetryEvent};

use crate::config::CtlConfig;
use crate::runtime::{Out, RealCtx};
use crate::tcp::{Mesh, MeshConfig};

const POLL: Duration = Duration::from_millis(5);

/// Why a control operation failed.
#[derive(Debug)]
pub enum CtlError {
    /// Socket-level failure (bind, resolve).
    Io(std::io::Error),
    /// Not enough providers announced themselves before the deadline.
    Discovery {
        /// How many we saw.
        seen: usize,
        /// How many we needed.
        needed: usize,
    },
    /// The op program did not finish before the deadline; partial
    /// statistics inside.
    Deadline(Box<ClientStats>),
    /// No stats reply arrived in time.
    StatsTimeout,
}

impl std::fmt::Display for CtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtlError::Io(e) => write!(f, "i/o error: {e}"),
            CtlError::Discovery { seen, needed } => {
                write!(f, "discovered only {seen} of {needed} providers before the deadline")
            }
            CtlError::Deadline(stats) => write!(
                f,
                "workload incomplete at deadline ({} done, {} failed)",
                stats.completed_ops, stats.failed_ops
            ),
            CtlError::StatsTimeout => f.write_str("no stats reply before the timeout"),
        }
    }
}

impl std::error::Error for CtlError {}

impl From<std::io::Error> for CtlError {
    fn from(e: std::io::Error) -> CtlError {
        CtlError::Io(e)
    }
}

/// One completed operation, with the payload the state machine would
/// otherwise keep to itself (`ls` listings, `stat` sizes, read bytes).
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Operation kind (`"read"`, `"list"`, ...).
    pub kind: &'static str,
    /// `None` on success.
    pub error: Option<Error>,
    /// Bytes moved, or entry size for `stat`, or name count for `list`.
    pub bytes: u64,
    /// Returned data (`read` bytes, `list` newline-joined names); a
    /// shared view of the client's buffer, not a copy.
    pub data: Option<bytes::Bytes>,
    /// The op's trace span (0 = none); feed it to `sorrentoctl trace`
    /// to pull the causal chain out of the daemons' flight recorders.
    pub span: SpanId,
}

/// What a finished script run produced.
#[derive(Debug, Clone)]
pub struct ScriptOutcome {
    /// The client machine's aggregate statistics.
    pub stats: ClientStats,
    /// Per-op results in execution order.
    pub records: Vec<OpRecord>,
    /// The ctl session's own flight-recorder events (client-side sends,
    /// retries, op lifecycle) so callers can merge them with the
    /// daemons' rings into one causal chain.
    pub events: Vec<EventRecord>,
    /// Wall-clock nanoseconds when the session's clock started; add to
    /// each event's `at` to place it on the cluster-wide timeline.
    pub epoch_unix_ns: u64,
}

/// Scripted workload that also records every op's result, so the CLI
/// can print what `stat`/`ls`/`read` actually returned.
struct RecordingWorkload {
    inner: ScriptedWorkload,
    records: Rc<RefCell<Vec<OpRecord>>>,
}

impl Workload for RecordingWorkload {
    fn next_op(&mut self, now: SimTime, rng: &mut rand::rngs::SmallRng) -> Option<ClientOp> {
        self.inner.next_op(now, rng)
    }

    fn on_result(&mut self, op: &ClientOp, result: &OpResult, now: SimTime) {
        self.records.borrow_mut().push(OpRecord {
            kind: op.kind(),
            error: result.error.clone(),
            bytes: result.bytes,
            data: result.data.clone(),
            span: result.span,
        });
        self.inner.on_result(op, result, now);
    }
}

fn join_mesh(cfg: &CtlConfig) -> Result<(RealCtx, Mesh), CtlError> {
    let me = cfg.ctl_id;
    let mut machines: HashMap<NodeId, u32> =
        cfg.peers.iter().map(|p| (p.id, p.machine)).collect();
    machines.insert(me, u32::MAX); // the ctl node is on no provider machine
    // Every session gets its own RNG stream for the same reason it gets
    // its own request-id range (below): segment ids carry an RNG salt,
    // and two sessions replaying the same seed from the same ctl node id
    // mint *colliding* segment ids — a later session's create would then
    // fail 2PC with a spurious VersionConflict against the earlier
    // session's committed index segment.
    let session_salt = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1);
    let ctx = RealCtx::new(me, cfg.seed ^ session_salt, 1 << 30, machines);
    ctx.flight().set_role("ctl");
    let seed_peers: HashMap<NodeId, SocketAddr> = cfg
        .peers
        .iter()
        .filter_map(|p| Some((p.id, p.addr.to_socket_addrs().ok()?.next()?)))
        .collect();
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let mut mesh = Mesh::start(me, listener, seed_peers, MeshConfig::default())?;
    // Daemons learn our ephemeral listen address from these Hellos and
    // start including us in their heartbeat fan-out.
    mesh.hello_all();
    Ok((ctx, mesh))
}

/// Deliver queued sends: loopback messages re-enter the client state
/// machine, everything else goes out over TCP.
fn flush(ctx: &mut RealCtx, mesh: &mut Mesh, client: &mut SorrentoClient) {
    let me = ctx.id();
    loop {
        let outs = ctx.drain_outbox();
        if outs.is_empty() {
            return;
        }
        for out in outs {
            match out {
                Out::Unicast(dst, msg) if dst == me => client.handle_message(me, msg, ctx),
                Out::Unicast(dst, msg) => {
                    ctx.record(TelemetryEvent::MsgSend {
                        span: proto::span_of(&msg),
                        kind: proto::dbg_kind(&msg),
                        to: dst,
                    });
                    mesh.send(dst, &msg);
                }
                Out::Multicast(msg) => mesh.multicast(&msg),
            }
        }
    }
}

/// Run an op program against a live cluster.
///
/// Waits until at least `min_providers` storage providers have been
/// discovered via heartbeats (so placement has somewhere to put
/// replicas), then drives the client machine until the workload
/// finishes or `deadline` passes.
pub fn run_script(
    cfg: &CtlConfig,
    ops: Vec<ClientOp>,
    min_providers: usize,
    deadline: Duration,
) -> Result<ScriptOutcome, CtlError> {
    let (mut ctx, mut mesh) = join_mesh(cfg)?;
    let me = ctx.id();
    let records = Rc::new(RefCell::new(Vec::new()));
    let workload = RecordingWorkload {
        inner: ScriptedWorkload::new(ops),
        records: Rc::clone(&records),
    };
    let mut client = SorrentoClient::new(cfg.namespace, cfg.costs, Box::new(workload));
    client.default_options.replication = cfg.replication;
    if !cfg.ns_map.is_empty() {
        // Sharded metadata plane: route each path to its shard's
        // primary (failing over to the standby on timeouts).
        client.set_ns_shards(sorrento::nsmap::NsShardMap::from_rows(cfg.ns_map.clone()));
    }
    client.set_location(cfg.location);
    if cfg.membership == MembershipMode::Swim {
        // Gossip clusters have no multicast heartbeats; the client keeps
        // its provider view fresh by pulling membership digests instead.
        client.set_membership(MembershipMode::Swim, cfg.peers.iter().map(|p| p.id).collect());
    }
    client.write_chunk = cfg.write_chunk;
    client.write_window = cfg.write_window;
    client.rpc_resends = cfg.rpc_resends;
    client.op_deadline =
        cfg.op_deadline_ms.map(|ms| sorrento_sim::Dur::nanos(ms.saturating_mul(1_000_000)));
    // Every control session joins as the same ctl node id, and the
    // servers' reply caches key on (node, request id) — so each session
    // takes a disjoint request-id range to never alias an earlier one.
    let session_base = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1);
    client.req_base(session_base);
    // Spans need the same session-uniqueness as request ids, or `trace`
    // merges ops from different sessions into one chain. >>16 gives
    // ~65 µs granularity: the 32-bit sequence space wraps every ~78
    // hours instead of every 4 seconds.
    client.span_base(session_base >> 16);

    // Discovery warmup: absorb heartbeats before starting the workload.
    // A daemon that is still binding its listener refuses the first
    // Hello, and the lossy transport drops it after one redial — so
    // instead of a fixed post-spawn sleep, re-introduce ourselves with
    // bounded exponential backoff until enough providers appear
    // (`hello_all` is idempotent: already-connected peers are skipped).
    const HELLO_RETRY_MIN: Duration = Duration::from_millis(100);
    const HELLO_RETRY_MAX: Duration = Duration::from_millis(800);
    let deadline_at = Instant::now() + deadline;
    let mut hello_backoff = HELLO_RETRY_MIN;
    let mut next_hello = Instant::now() + hello_backoff;
    let mut warm_req = 0u64;
    while client.known_providers() < min_providers {
        if let Some((from, msg)) = mesh.recv_timeout(POLL) {
            client.handle_message(from, msg, &mut ctx);
            flush(&mut ctx, &mut mesh, &mut client);
        }
        let now = Instant::now();
        if now >= next_hello {
            mesh.hello_all();
            if cfg.membership == MembershipMode::Swim {
                // No heartbeats to absorb under gossip: pull membership
                // digests from every peer instead. Providers answer with
                // their view (payloads included); non-providers ignore
                // the pull, so the replies that land are authoritative.
                warm_req += 1;
                for p in &cfg.peers {
                    mesh.send(p.id, &Msg::MembersPull { req: warm_req });
                }
            }
            hello_backoff = (hello_backoff * 2).min(HELLO_RETRY_MAX);
            next_hello = now + hello_backoff;
        }
        if now > deadline_at {
            return Err(CtlError::Discovery {
                seen: client.known_providers(),
                needed: min_providers,
            });
        }
    }

    client.handle_start(&mut ctx);
    flush(&mut ctx, &mut mesh, &mut client);
    loop {
        for msg in ctx.due_timers() {
            client.handle_message(me, msg, &mut ctx);
        }
        flush(&mut ctx, &mut mesh, &mut client);
        if let Some((from, msg)) = mesh.recv_timeout(POLL) {
            client.handle_message(from, msg, &mut ctx);
            flush(&mut ctx, &mut mesh, &mut client);
        }
        if client.stats.finished_at.is_some() {
            let flight = ctx.flight();
            return Ok(ScriptOutcome {
                stats: client.stats.clone(),
                records: records.take(),
                events: flight.snapshot(),
                epoch_unix_ns: flight.epoch_unix_ns(),
            });
        }
        if Instant::now() > deadline_at {
            return Err(CtlError::Deadline(Box::new(client.stats.clone())));
        }
    }
}

/// Fetch a daemon's metrics registry as a JSON string.
///
/// The query is re-sent periodically until the reply arrives: the
/// transport is deliberately lossy (a daemon's first reply can die on a
/// connection cached from an earlier control session), so a one-shot
/// request would hang on nothing more than a stale socket.
pub fn fetch_stats(cfg: &CtlConfig, target: NodeId, timeout: Duration) -> Result<String, CtlError> {
    const RESEND_EVERY: Duration = Duration::from_millis(300);
    let (mut ctx, mut mesh) = join_mesh(cfg)?;
    let _ = &mut ctx; // the stats path needs no client machine
    let deadline_at = Instant::now() + timeout;
    let mut req = 0u64;
    let mut next_send = Instant::now();
    while Instant::now() <= deadline_at {
        if Instant::now() >= next_send {
            req += 1;
            mesh.hello_all(); // no-op when connected; redials a daemon that refused at boot
            mesh.send(target, &Msg::StatsQuery { req });
            next_send = Instant::now() + RESEND_EVERY;
        }
        if let Some((from, Msg::StatsR { json, .. })) = mesh.recv_timeout(POLL) {
            if from == target {
                return Ok(json);
            }
        }
    }
    Err(CtlError::StatsTimeout)
}

/// Fetch a daemon's flight-recorder events for one span (0 = the whole
/// ring) as a JSON string.
///
/// Same resend discipline as [`fetch_stats`]: the query is repeated
/// until the reply lands, because the transport is lossy by design.
pub fn fetch_trace(
    cfg: &CtlConfig,
    target: NodeId,
    span: SpanId,
    timeout: Duration,
) -> Result<String, CtlError> {
    const RESEND_EVERY: Duration = Duration::from_millis(300);
    let (_ctx, mut mesh) = join_mesh(cfg)?;
    let deadline_at = Instant::now() + timeout;
    let mut req = 0u64;
    let mut next_send = Instant::now();
    while Instant::now() <= deadline_at {
        if Instant::now() >= next_send {
            req += 1;
            mesh.hello_all(); // no-op when connected; redials a daemon that refused at boot
            mesh.send(target, &Msg::TraceQuery { req, span });
            next_send = Instant::now() + RESEND_EVERY;
        }
        if let Some((from, Msg::TraceR { json, .. })) = mesh.recv_timeout(POLL) {
            if from == target {
                return Ok(json);
            }
        }
    }
    Err(CtlError::StatsTimeout)
}

/// Fetch a provider's membership view as a JSON string — under gossip
/// the SWIM table (state, incarnation, last payload per member), under
/// heartbeats the classic liveness view.
///
/// Same resend discipline as [`fetch_stats`]: the query is repeated
/// until the reply lands, because the transport is lossy by design.
/// Only providers answer; pointing this at a namespace node times out.
pub fn fetch_members(
    cfg: &CtlConfig,
    target: NodeId,
    timeout: Duration,
) -> Result<String, CtlError> {
    const RESEND_EVERY: Duration = Duration::from_millis(300);
    let (_ctx, mut mesh) = join_mesh(cfg)?;
    let deadline_at = Instant::now() + timeout;
    let mut req = 0u64;
    let mut next_send = Instant::now();
    while Instant::now() <= deadline_at {
        if Instant::now() >= next_send {
            req += 1;
            mesh.hello_all(); // no-op when connected; redials a daemon that refused at boot
            mesh.send(target, &Msg::MembersQuery { req });
            next_send = Instant::now() + RESEND_EVERY;
        }
        if let Some((from, Msg::MembersR { json, .. })) = mesh.recv_timeout(POLL) {
            if from == target {
                return Ok(json);
            }
        }
    }
    Err(CtlError::StatsTimeout)
}

/// Install (or, with an all-zero config, clear) fault-injection rules on
/// a live daemon's mesh.
///
/// Like [`fetch_stats`], the request is answered by the daemon loop —
/// never the state machine — and is re-sent until acknowledged, since
/// the transport is lossy. Note the asymmetry: rules installed on
/// `target` shape the frames *it sends*, not the frames it receives.
pub fn set_chaos(
    cfg: &CtlConfig,
    target: NodeId,
    chaos: &crate::chaos::ChaosConfig,
    timeout: Duration,
) -> Result<(), CtlError> {
    const RESEND_EVERY: Duration = Duration::from_millis(300);
    let (_ctx, mut mesh) = join_mesh(cfg)?;
    let deadline_at = Instant::now() + timeout;
    let mut req = 0u64;
    let mut next_send = Instant::now();
    while Instant::now() <= deadline_at {
        if Instant::now() >= next_send {
            req += 1;
            mesh.hello_all(); // no-op when connected; redials a daemon that refused at boot
            mesh.send(
                target,
                &Msg::ChaosCtl {
                    req,
                    seed: chaos.seed,
                    drop_permille: chaos.drop_permille,
                    dup_permille: chaos.dup_permille,
                    delay_permille: chaos.delay_permille,
                    delay_us: chaos.delay.as_micros() as u64,
                    partition: chaos.partition.clone(),
                },
            );
            next_send = Instant::now() + RESEND_EVERY;
        }
        if let Some((from, Msg::ChaosCtlR { .. })) = mesh.recv_timeout(POLL) {
            if from == target {
                return Ok(());
            }
        }
    }
    Err(CtlError::StatsTimeout)
}
