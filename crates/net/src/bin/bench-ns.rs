//! **bench-ns** — the metadata plane under pressure: namespace-sharding
//! scaling ablation plus the hot-standby failover drill.
//!
//! Two experiments, one results file:
//!
//! * **Scaling** (deterministic simulator): a tree of a couple million
//!   preseeded entries is served by 1/2/4/8 namespace shards; a pool of
//!   closed-loop clients hammers it with a stat-heavy metadata mix
//!   (1-in-8 ops is a `mkdir`, so the WAL and the occasional two-shard
//!   handshake stay in the picture). Reported: metadata ops/s per shard
//!   count, and the 4-shard speedup over the single-server baseline —
//!   the number the ISSUE acceptance gate reads (must be ≥ 2.5×).
//! * **Failover** (real TCP loopback daemons): a 2-shard plane with hot
//!   standbys, swept over checkpoint intervals. Seed a known WAL tail,
//!   SIGKILL shard 0's primary, and measure wall-clock time until a
//!   client's ops succeed again plus the standby's replayed-batch count
//!   — recovery cost as a function of
//!   [`sorrento_kvdb::DbConfig::checkpoint_every_batches`].
//!
//! Usage: `bench-ns [--smoke] [--out PATH] [--validate PATH]`
//!
//! `--smoke` shrinks both experiments to CI size (and skips the
//! full-run speedup gate). `--validate` parses an existing results file
//! and re-checks its schema and bounds without running anything — the
//! `make ns-smoke` guard for the committed `results/BENCH_ns.json`.

use std::net::TcpListener;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use sorrento::api::FsScript;
use sorrento::client::ClientOp;
use sorrento::cluster::{Cluster, ClusterBuilder, FnWorkload};
use sorrento::costs::CostModel;
use sorrento::locator::LocationScheme;
use sorrento::swim::MembershipMode;
use sorrento::namespace::NamespaceServer;
use sorrento::nsmap::{shard_of_dir, ShardInfo};
use sorrento::types::FileId;
use rand::Rng;
use sorrento_json::Json;
use sorrento_net::config::{CtlConfig, DaemonConfig, PeerSpec, Role};
use sorrento_net::daemon::{self, DaemonHandle};
use sorrento_net::ctl;
use sorrento_sim::{Dur, NodeId};

const DEADLINE: Duration = Duration::from_secs(120);

// ---------------------------------------------------------------------
// Part 1: scaling ablation (simulator)
// ---------------------------------------------------------------------

struct ScalingKnobs {
    shard_counts: &'static [u32],
    dirs: usize,
    files_per_dir: usize,
    clients: usize,
    ramp: Dur,
    window: Dur,
}

fn full_scaling() -> ScalingKnobs {
    ScalingKnobs {
        shard_counts: &[1, 2, 4, 8],
        dirs: 2048,
        files_per_dir: 1024, // 2048 × 1024 ≈ 2.1M files
        clients: 48,
        ramp: Dur::secs(2),
        window: Dur::secs(10),
    }
}

fn smoke_scaling() -> ScalingKnobs {
    ScalingKnobs {
        shard_counts: &[1, 2],
        dirs: 64,
        files_per_dir: 16,
        clients: 8,
        ramp: Dur::millis(500),
        window: Dur::secs(2),
    }
}

/// Bulk-load the benchmark tree straight into the shard backends:
/// `/dir{i}/f{j}`, each entry on the shard that owns it (directories get
/// their stub copy on the children's shard, mirroring what a real
/// `mkdir` would have installed).
fn preseed_tree(c: &mut Cluster, shards: u32, dirs: usize, files_per_dir: usize) {
    let ns_nodes: Vec<NodeId> = c.ns_shard_nodes().to_vec();
    let mut next_file: u128 = 1 << 64; // far above any runtime-allocated id
    for i in 0..dirs {
        let dir = format!("/dir{i}");
        let owner = shard_of_dir("/", shards) as usize;
        let children = shard_of_dir(&dir, shards) as usize;
        let id = FileId(next_file);
        next_file += 1;
        c.sim
            .node_mut::<NamespaceServer>(ns_nodes[owner])
            .expect("shard primary")
            .preseed(&dir, id, true);
        if children != owner {
            c.sim
                .node_mut::<NamespaceServer>(ns_nodes[children])
                .expect("shard primary")
                .preseed(&dir, id, true); // the dir-stub copy
        }
        let srv = c
            .sim
            .node_mut::<NamespaceServer>(ns_nodes[children])
            .expect("shard primary");
        for j in 0..files_per_dir {
            srv.preseed(&format!("{dir}/f{j}"), FileId(next_file), false);
            next_file += 1;
        }
    }
}

/// One scaling run: preseed, ramp, measure a fixed virtual-time window.
fn run_scaling(shards: u32, k: &ScalingKnobs) -> Json {
    let mut c: Cluster = ClusterBuilder::new()
        .providers(8)
        .seed(9100 + u64::from(shards))
        .costs(CostModel::fast_test())
        .warmup(Dur::secs(1))
        .ns_shards(shards)
        .build();

    let t0 = Instant::now();
    preseed_tree(&mut c, shards, k.dirs, k.files_per_dir);
    let preseed_s = t0.elapsed().as_secs_f64();
    let entries: u64 = (0..shards as usize)
        .map(|s| c.namespace_ref_of(s).expect("shard ref").entry_count() as u64)
        .sum();

    // Closed-loop clients, spread over provider machines so no single
    // NIC serializes the whole offered load. Mix: 7-in-8 stat of a
    // preseeded file, 1-in-8 mkdir of a fresh unique directory (a
    // mutation that hits the WAL and, cross-shard, the handshake path).
    let nprov = c.providers().len();
    let mut ids = Vec::with_capacity(k.clients);
    for ci in 0..k.clients {
        let (dirs, fpd) = (k.dirs, k.files_per_dir);
        let mut n = 0u64;
        let w = FnWorkload(move |_now, rng: &mut rand::rngs::SmallRng| {
            let i = rng.gen_range(0..dirs);
            if rng.gen_range(0..8) == 0 {
                n += 1;
                Some(ClientOp::Mkdir { path: format!("/dir{i}/c{ci}n{n}") })
            } else {
                let j = rng.gen_range(0..fpd);
                Some(ClientOp::Stat { path: format!("/dir{i}/f{j}") })
            }
        });
        ids.push(c.add_client_on_provider(w, ci % nprov));
    }

    c.run_for(k.ramp);
    let done = |c: &Cluster| -> (u64, u64) {
        ids.iter().fold((0, 0), |(ok, bad), &id| {
            let s = c.client_stats(id).expect("client stats");
            (ok + s.completed_ops, bad + s.failed_ops)
        })
    };
    let (before, _) = done(&c);
    c.run_for(k.window);
    let (after, failed) = done(&c);
    assert_eq!(failed, 0, "{shards}-shard run had failed metadata ops");

    let window_s = k.window.as_nanos() as f64 / 1e9;
    let ops = after - before;
    let served: Vec<u64> = (0..shards as usize)
        .map(|s| c.namespace_ref_of(s).expect("shard ref").ops_served)
        .collect();
    let (lo, hi) = (
        served.iter().copied().min().unwrap_or(0),
        served.iter().copied().max().unwrap_or(0),
    );
    println!(
        "  {shards} shard(s): {entries} entries, {ops} ops in {window_s:.0}s virtual \
         -> {:.0} ops/s (preseed {preseed_s:.1}s, shard balance {lo}..{hi})",
        ops as f64 / window_s
    );
    Json::obj()
        .with("shards", shards)
        .with("entries", entries)
        .with("clients", k.clients as u64)
        .with("window_s", window_s)
        .with("ops", ops)
        .with("ops_per_sec", ops as f64 / window_s)
        .with("shard_ops_min", lo)
        .with("shard_ops_max", hi)
        .with("preseed_s", preseed_s)
}

// ---------------------------------------------------------------------
// Part 2: failover drill (real TCP loopback)
// ---------------------------------------------------------------------

const NSHARDS: u32 = 2;

/// Node layout: 0..NSHARDS shard primaries, NSHARDS..2*NSHARDS their
/// standbys, then providers — the same wiring as the `ns_failover`
/// integration test and the RUNBOOK game-day drill.
fn spawn_sharded_cluster(
    providers: usize,
    checkpoint_every: u64,
) -> (Vec<DaemonHandle>, CtlConfig) {
    let ns = NSHARDS as usize;
    let n = 2 * ns + providers;
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let all_peers: Vec<PeerSpec> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| PeerSpec {
            id: NodeId::from_index(i),
            addr: l.local_addr().unwrap().to_string(),
            machine: i as u32,
        })
        .collect();
    let ns_map: Vec<ShardInfo> = (0..ns)
        .map(|k| ShardInfo {
            primary: NodeId::from_index(k),
            standby: Some(NodeId::from_index(ns + k)),
        })
        .collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let (role, shard) = if i < ns {
                (Role::Namespace, i as u32)
            } else if i < 2 * ns {
                (Role::Standby, (i - ns) as u32)
            } else {
                (Role::Provider, 0)
            };
            let cfg = DaemonConfig {
                node_id: NodeId::from_index(i),
                role,
                listen: all_peers[i].addr.clone(),
                data_dir: None,
                seed: 900 + i as u64,
                capacity: 1 << 30,
                machine: i as u32,
                rack: i as u32,
                costs: CostModel::fast_test(),
                chaos: Default::default(),
                metrics_interval_ms: None,
                shard,
                ns_shards: NSHARDS,
                ns_map: ns_map.clone(),
                ns_checkpoint_batches: Some(checkpoint_every),
                membership: MembershipMode::Heartbeat,
                location: LocationScheme::Ring,
                peers: all_peers
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, p)| p.clone())
                    .collect(),
            };
            daemon::spawn_with_listener(cfg, listener).expect("spawn daemon")
        })
        .collect();
    let ctl_cfg = CtlConfig {
        ctl_id: NodeId::from_index(1000),
        namespace: NodeId::from_index(0),
        seed: 7,
        replication: 1,
        costs: CostModel::fast_test(),
        write_chunk: None,
        write_window: 4,
        rpc_resends: 0,
        op_deadline_ms: None,
        ns_map,
        membership: MembershipMode::Heartbeat,
        location: LocationScheme::Ring,
        peers: all_peers,
    };
    (handles, ctl_cfg)
}

/// A root-level directory whose children live on shard `k`.
fn dir_on_shard(k: u32) -> String {
    (0..)
        .map(|i| format!("/d{i}"))
        .find(|d| shard_of_dir(d, NSHARDS) == k)
        .unwrap()
}

/// One drill: seed `mutations` metadata batches past the last
/// checkpoint, kill shard 0's primary, measure wall-clock time until a
/// client's ops succeed again and how many WAL batches the promoted
/// standby had to replay.
fn run_failover(checkpoint_every: u64, mutations: usize) -> Json {
    let (mut handles, cfg) = spawn_sharded_cluster(2, checkpoint_every);
    let d0 = dir_on_shard(0);

    let mut fs = FsScript::new();
    fs.mkdir(&d0).unwrap();
    for m in 0..mutations {
        let h = fs.create(format!("{d0}/m{m}")).unwrap();
        fs.close(h).unwrap();
    }
    let out = ctl::run_script(&cfg, fs.into_ops(), 1, DEADLINE).expect("seed script");
    assert_eq!(out.stats.failed_ops, 0, "seed failed: {:?}", out.stats.last_error);

    // Let the WAL shipper drain (fast_test ships every 50ms), then kill
    // the primary the way a crash would.
    std::thread::sleep(Duration::from_millis(300));
    handles.remove(0).kill().expect("kill primary");

    // Recovery clock: from the kill until a stat + create against the
    // lost shard succeed again (client times out at the dead primary,
    // flips to the standby, which promotes after its grace period).
    let t0 = Instant::now();
    let mut fs = FsScript::new();
    fs.stat(format!("{d0}/m0")).unwrap();
    let h = fs.create(format!("{d0}/post-failover")).unwrap();
    fs.close(h).unwrap();
    let out = ctl::run_script(&cfg, fs.into_ops(), 1, DEADLINE).expect("failover script");
    assert_eq!(
        out.stats.failed_ops, 0,
        "post-failover ops failed: {:?}",
        out.stats.last_error
    );
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Gauges ride the server's periodic export tick; poll briefly until
    // the promoted standby has published its replayed-tail gauge.
    let sb = NodeId::from_index(NSHARDS as usize);
    let mut replayed = None;
    let mut failovers = 0;
    for _ in 0..40 {
        let json = ctl::fetch_stats(&cfg, sb, DEADLINE).expect("standby stats");
        let snap = Json::parse(&json).expect("snapshot parses");
        replayed = snap
            .get("gauges")
            .and_then(|g| g.get("ns0.failover_replayed"))
            .and_then(Json::as_f64)
            .map(|x| x as u64);
        failovers = snap
            .get("counters")
            .and_then(|c| c.get("ns.failovers"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if replayed.is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    let replayed = replayed.expect("failover_replayed gauge never exported");
    assert_eq!(failovers, 1, "standby promoted {failovers} times");

    for h in handles {
        h.stop().expect("clean shutdown");
    }
    println!(
        "  checkpoint every {checkpoint_every}: {mutations} mutations, \
         recovered in {recovery_ms:.0} ms, replayed {replayed} WAL batches"
    );
    Json::obj()
        .with("checkpoint_every", checkpoint_every)
        .with("mutations", mutations as u64)
        .with("recovery_ms", recovery_ms)
        .with("replayed_batches", replayed)
}

// ---------------------------------------------------------------------
// Validation (shared by the generating run and `--validate`)
// ---------------------------------------------------------------------

fn validate(doc: &Json) -> Result<(), String> {
    let scaling = doc
        .get("scaling")
        .and_then(Json::as_arr)
        .ok_or("missing `scaling` array")?;
    if scaling.len() < 2 {
        return Err("`scaling` needs at least 2 shard counts".into());
    }
    let ops_at = |want: u64| -> Option<f64> {
        scaling
            .iter()
            .find(|r| r.get("shards").and_then(Json::as_u64) == Some(want))
            .and_then(|r| r.get("ops_per_sec"))
            .and_then(Json::as_f64)
    };
    for row in scaling {
        match row.get("ops_per_sec").and_then(Json::as_f64) {
            Some(x) if x.is_finite() && x > 0.0 => {}
            _ => return Err("`scaling[].ops_per_sec` is not a positive number".into()),
        }
    }
    let base = ops_at(1).ok_or("`scaling` has no 1-shard baseline row")?;
    let full = doc.get("mode").and_then(|m| m.as_str()) == Some("full");
    if full {
        let four = ops_at(4).ok_or("full results need a 4-shard row")?;
        let speedup = four / base;
        let claimed = doc
            .get("summary")
            .and_then(|s| s.get("speedup_4_shards"))
            .and_then(Json::as_f64)
            .ok_or("missing `summary.speedup_4_shards`")?;
        if (claimed - speedup).abs() > 0.05 {
            return Err(format!(
                "summary.speedup_4_shards {claimed:.2} disagrees with rows ({speedup:.2})"
            ));
        }
        if speedup < 2.5 {
            return Err(format!("4-shard speedup {speedup:.2} < 2.5x acceptance bound"));
        }
    }

    let failover = doc
        .get("failover")
        .and_then(Json::as_arr)
        .ok_or("missing `failover` array")?;
    if failover.len() < 3 {
        return Err("`failover` needs at least 3 checkpoint intervals".into());
    }
    let mut intervals = Vec::new();
    for row in failover {
        let every = row
            .get("checkpoint_every")
            .and_then(Json::as_u64)
            .ok_or("`failover[].checkpoint_every` missing")?;
        intervals.push(every);
        match row.get("recovery_ms").and_then(Json::as_f64) {
            Some(x) if x > 0.0 && x < 120_000.0 => {}
            _ => return Err("`failover[].recovery_ms` out of range".into()),
        }
        if row.get("replayed_batches").and_then(Json::as_u64).is_none() {
            return Err("`failover[].replayed_batches` missing".into());
        }
    }
    let mut sorted = intervals.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != intervals.len() {
        return Err("`failover` intervals are not distinct".into());
    }
    // The whole point of the knob: a coarser checkpoint interval leaves
    // a longer tail for the standby to replay.
    let replayed = |i: usize| {
        failover[i].get("replayed_batches").and_then(Json::as_u64).unwrap_or(0)
    };
    if failover.len() >= 2 && replayed(failover.len() - 1) < replayed(0) {
        return Err("replayed tail shrank as the checkpoint interval grew".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "results/BENCH_ns.json".into());

    if let Some(path) = flag_value("--validate") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-ns: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("bench-ns: {path}: parse error: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        return match validate(&doc) {
            Ok(()) => {
                println!("bench-ns: {path} validates");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench-ns: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let knobs = if smoke { smoke_scaling() } else { full_scaling() };
    // Each seeded file costs two WAL batches (create + commit), so the
    // mutation counts are chosen to leave an uncheckpointed tail of
    // roughly half an interval at kill time — the replayed-batch column
    // then visibly grows with the checkpoint interval.
    let drills: &[(u64, usize)] =
        if smoke { &[(2, 5), (4, 11), (8, 22)] } else { &[(4, 11), (32, 85), (256, 700)] };

    println!("== scaling ablation ({} files) ==", knobs.dirs * knobs.files_per_dir);
    let mut scaling = Json::arr();
    let mut by_shards = Vec::new();
    for &s in knobs.shard_counts {
        let row = run_scaling(s, &knobs);
        let ops = row.get("ops_per_sec").and_then(Json::as_f64).unwrap();
        by_shards.push((s, ops));
        scaling.push(row);
    }
    let base = by_shards.iter().find(|&&(s, _)| s == 1).map(|&(_, o)| o).unwrap();
    let speedup_4 = by_shards.iter().find(|&&(s, _)| s == 4).map(|&(_, o)| o / base);

    println!("== failover drill (2 shards + standbys over loopback TCP) ==");
    let mut failover = Json::arr();
    for &(every, muts) in drills {
        failover.push(run_failover(every, muts));
    }

    let mut summary = Json::obj()
        .with("ops_per_sec_1_shard", base)
        .with("wal_ship_interval_ms", 50u64)
        .with("standby_grace_ms", 400u64);
    if let Some(s) = speedup_4 {
        println!("4-shard speedup over single server: {s:.2}x");
        summary = summary.with("speedup_4_shards", s);
        if !smoke {
            assert!(s >= 2.5, "4-shard speedup {s:.2} below the 2.5x acceptance bound");
        }
    }
    let doc = Json::obj()
        .with("bench", "namespace sharding + hot standby")
        .with("mode", if smoke { "smoke" } else { "full" })
        .with(
            "setup",
            Json::obj()
                .with("dirs", knobs.dirs as u64)
                .with("files_per_dir", knobs.files_per_dir as u64)
                .with("clients", knobs.clients as u64)
                .with("costs", "fast_test")
                .with("failover_shards", u64::from(NSHARDS)),
        )
        .with("summary", summary)
        .with("scaling", scaling)
        .with("failover", failover);

    if !smoke {
        if let Err(e) = validate(&doc) {
            eprintln!("bench-ns: generated results fail validation: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let body = doc.encode();
    std::fs::write(&out_path, &body).expect("write results json");
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
