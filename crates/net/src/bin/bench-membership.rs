//! **bench-membership** — the gossip failure detector and the location
//! ablation, one results file.
//!
//! Two experiments:
//!
//! * **Detection** (deterministic simulator): a SWIM-gossip cluster of
//!   providers under seeded 10% wire loss; one provider is crashed and
//!   every survivor's virtual time to the `member.leave` verdict is
//!   measured, swept over the indirect-probe fan-out `k`. Also counted:
//!   suspicions raised against *live* nodes (loss-induced) and the
//!   refutations that cancelled them — a run is only acceptance-clean
//!   when no live node is ever evicted (`false_leaves == 0`).
//! * **Location ablation** (pure computation): the three
//!   [`LocationScheme`]s — consistent-hash ring, rendezvous (HRW) and
//!   ASURA-style random-walk — compared at 100/500/1000 providers on
//!   placement uniformity (stddev/mean and max/mean of per-node key
//!   counts), lookup cost (scheme-abstract draws and wall-clock ns),
//!   and data movement when one provider leaves or joins (fraction of
//!   keys whose home changes vs the 1/n optimum).
//!
//! Usage: `bench-membership [--smoke] [--out PATH] [--validate PATH]`
//!
//! `--smoke` shrinks both experiments to CI size. `--validate` parses
//! an existing results file and re-checks its schema and bounds without
//! running anything — the `make membership-smoke` guard for the
//! committed `results/BENCH_membership.json`.

use std::process::ExitCode;
use std::time::Instant;

use sorrento::cluster::{Cluster, ClusterBuilder};
use sorrento::costs::CostModel;
use sorrento::locator::{LocationScheme, Locator};
use sorrento::swim::MembershipMode;
use sorrento::types::SegId;
use sorrento_json::Json;
use sorrento_sim::{Dur, NodeId, TelemetryEvent};

// ---------------------------------------------------------------------
// Part 1: detection latency (simulator)
// ---------------------------------------------------------------------

struct DetectKnobs {
    providers: usize,
    fanouts: &'static [usize],
    loss_permille: u32,
    /// Virtual time to keep running after the crash; every survivor
    /// must reach its verdict within this window.
    window: Dur,
}

fn full_detect() -> DetectKnobs {
    DetectKnobs {
        providers: 32,
        fanouts: &[1, 2, 4],
        loss_permille: 100,
        window: Dur::secs(30),
    }
}

fn smoke_detect() -> DetectKnobs {
    DetectKnobs { providers: 12, fanouts: &[2], loss_permille: 100, window: Dur::secs(30) }
}

/// One detection run: crash one provider, measure each survivor's
/// virtual time to `member.leave`, and audit the suspicion traffic.
fn run_detect(fanout: usize, k: &DetectKnobs) -> Json {
    let mut costs = CostModel::fast_test();
    costs.swim_indirect_k = fanout;
    let mut c: Cluster = ClusterBuilder::new()
        .providers(k.providers)
        .seed(7200 + fanout as u64)
        .costs(costs)
        .membership(MembershipMode::Swim)
        .loss(k.loss_permille, 0xDEC0DE + fanout as u64)
        .warmup(Dur::secs(5))
        .build();

    let victim = c.providers()[k.providers / 2];
    let t_kill = c.now();
    c.crash_provider_at(t_kill, victim);
    c.run_for(k.window);

    let survivors: Vec<NodeId> =
        c.providers().iter().copied().filter(|&p| p != victim).collect();
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut suspects = 0u64;
    let mut refutes = 0u64;
    let mut false_leaves = 0u64;
    for &p in &survivors {
        let mut detected = None;
        for rec in c.sim.events(p).iter() {
            if rec.at < t_kill {
                continue;
            }
            match rec.ev {
                TelemetryEvent::MemberLeave { of } if of == victim => {
                    detected.get_or_insert(rec.at);
                }
                TelemetryEvent::MemberLeave { of } if of != victim => false_leaves += 1,
                TelemetryEvent::SwimSuspect { of, .. } if of != victim => suspects += 1,
                TelemetryEvent::SwimRefute { .. } => refutes += 1,
                _ => {}
            }
        }
        let at = detected.unwrap_or_else(|| {
            panic!("survivor {p} never declared the victim dead (fanout {fanout})")
        });
        latencies_ms.push((at.nanos() - t_kill.nanos()) as f64 / 1e6);
    }
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let p50 = latencies_ms[latencies_ms.len() / 2];
    let max = *latencies_ms.last().unwrap();
    println!(
        "  k={fanout}: {} survivors, detect p50 {p50:.0} ms, max {max:.0} ms, \
         {suspects} live-node suspicions / {refutes} refutations, {false_leaves} false evictions",
        survivors.len()
    );
    Json::obj()
        .with("fanout_k", fanout as u64)
        .with("providers", k.providers as u64)
        .with("loss_permille", u64::from(k.loss_permille))
        .with("detect_p50_ms", p50)
        .with("detect_max_ms", max)
        .with("live_suspects", suspects)
        .with("refutes", refutes)
        .with("false_leaves", false_leaves)
}

// ---------------------------------------------------------------------
// Part 2: location-scheme ablation (pure computation)
// ---------------------------------------------------------------------

const SCHEMES: &[LocationScheme] =
    &[LocationScheme::Ring, LocationScheme::Rendezvous, LocationScheme::Asura];

/// Deterministic key stream: a splitmix-style counter walk gives every
/// scheme the same well-spread SegIds without pulling in an RNG.
fn key(i: u64) -> SegId {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x243F_6A88_85A3_08D3);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    SegId(u128::from(x) << 64 | u128::from(x.wrapping_mul(0x94D0_49BB_1331_11EB)))
}

/// One ablation cell: uniformity, lookup cost and leave/join movement
/// for `scheme` over `n` synthetic providers.
fn run_ablation(scheme: LocationScheme, n: usize, keys: u64) -> Json {
    // Provider ids start at 1: node 0 is conventionally the namespace.
    let providers: Vec<NodeId> = (1..=n).map(NodeId::from_index).collect();
    let loc = Locator::build(scheme, providers.iter().copied());
    assert_eq!(loc.provider_count(), n);

    let mut counts: Vec<u64> = vec![0; n + 2];
    let mut draws = 0u64;
    let t0 = Instant::now();
    for i in 0..keys {
        let (home, cost) = loc.home_cost(key(i));
        counts[home.expect("non-empty locator").index()] += 1;
        draws += u64::from(cost);
    }
    let lookup_ns = t0.elapsed().as_nanos() as f64 / keys as f64;
    let mean = keys as f64 / n as f64;
    let occupied: Vec<u64> =
        providers.iter().map(|p| counts[p.index()]).collect();
    let var = occupied
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    let stddev_over_mean = var.sqrt() / mean;
    let max_over_mean = *occupied.iter().max().unwrap() as f64 / mean;

    // Leave: rebuild over n-1 (what a provider does on member.leave)
    // and count remapped keys. The optimum is exactly the keys that
    // lived on the departed node — everything else moving is overhead.
    let gone = providers[n / 2];
    let after_leave =
        Locator::build(scheme, providers.iter().copied().filter(|&p| p != gone));
    let mut moved_leave = 0u64;
    for i in 0..keys {
        if loc.home(key(i)) != after_leave.home(key(i)) {
            moved_leave += 1;
        }
    }
    let optimal_leave = counts[gone.index()];

    // Join: rebuild over n+1. The optimum is ~keys/(n+1).
    let joiner = NodeId::from_index(n + 1);
    let after_join = Locator::build(
        scheme,
        providers.iter().copied().chain(std::iter::once(joiner)),
    );
    let mut moved_join = 0u64;
    for i in 0..keys {
        if loc.home(key(i)) != after_join.home(key(i)) {
            moved_join += 1;
        }
    }

    println!(
        "  {:<10} n={n:<5} stddev/mean {stddev_over_mean:.3}, max/mean {max_over_mean:.2}, \
         {:.1} draws / {lookup_ns:.0} ns per lookup, leave moved {:.3}% (optimal {:.3}%), \
         join moved {:.3}%",
        scheme.name(),
        draws as f64 / keys as f64,
        100.0 * moved_leave as f64 / keys as f64,
        100.0 * optimal_leave as f64 / keys as f64,
        100.0 * moved_join as f64 / keys as f64,
    );
    Json::obj()
        .with("scheme", scheme.name())
        .with("providers", n as u64)
        .with("keys", keys)
        .with("stddev_over_mean", stddev_over_mean)
        .with("max_over_mean", max_over_mean)
        .with("lookup_draws_mean", draws as f64 / keys as f64)
        .with("lookup_ns_mean", lookup_ns)
        .with("leave_moved_fraction", moved_leave as f64 / keys as f64)
        .with("leave_optimal_fraction", optimal_leave as f64 / keys as f64)
        .with("join_moved_fraction", moved_join as f64 / keys as f64)
}

// ---------------------------------------------------------------------
// Validation (shared by the generating run and `--validate`)
// ---------------------------------------------------------------------

fn validate(doc: &Json) -> Result<(), String> {
    let detection = doc
        .get("detection")
        .and_then(Json::as_arr)
        .ok_or("missing `detection` array")?;
    if detection.is_empty() {
        return Err("`detection` is empty".into());
    }
    for row in detection {
        let k = row
            .get("fanout_k")
            .and_then(Json::as_u64)
            .ok_or("`detection[].fanout_k` missing")?;
        match row.get("detect_max_ms").and_then(Json::as_f64) {
            // fast_test probes every 200 ms with an 800 ms suspect
            // timeout; cluster-wide convergence must land well inside
            // the bench's 30 s post-crash window.
            Some(x) if x > 0.0 && x < 30_000.0 => {}
            _ => return Err(format!("`detect_max_ms` out of range for k={k}")),
        }
        match row.get("detect_p50_ms").and_then(Json::as_f64) {
            Some(x) if x > 0.0 && x < 30_000.0 => {}
            _ => return Err(format!("`detect_p50_ms` out of range for k={k}")),
        }
        if row.get("false_leaves").and_then(Json::as_u64) != Some(0) {
            return Err(format!("k={k}: a live node was evicted (false_leaves != 0)"));
        }
    }

    let ablation = doc
        .get("ablation")
        .and_then(Json::as_arr)
        .ok_or("missing `ablation` array")?;
    for scheme in ["ring", "rendezvous", "asura"] {
        let rows: Vec<&Json> = ablation
            .iter()
            .filter(|r| r.get("scheme").and_then(Json::as_str) == Some(scheme))
            .collect();
        if rows.len() < 2 {
            return Err(format!("`ablation` needs >= 2 provider counts for {scheme}"));
        }
        for row in rows {
            let n = row.get("providers").and_then(Json::as_u64).unwrap_or(0);
            let f = |k: &str| -> Result<f64, String> {
                row.get(k)
                    .and_then(Json::as_f64)
                    .filter(|x| x.is_finite() && *x >= 0.0)
                    .ok_or(format!("`ablation[].{k}` missing for {scheme}/n={n}"))
            };
            if f("stddev_over_mean")? > 1.0 {
                return Err(format!("{scheme}/n={n}: placement badly skewed"));
            }
            if f("max_over_mean")? > 5.0 {
                return Err(format!("{scheme}/n={n}: hottest node > 5x the mean"));
            }
            let moved = f("leave_moved_fraction")?;
            let optimal = f("leave_optimal_fraction")?;
            // A scheme earns its keep by moving close to the optimum on
            // a leave — a mod-N style remap would move ~(n-1)/n of all
            // keys and fail this bound at every n >= 100.
            if moved > 5.0 * optimal + 0.02 {
                return Err(format!(
                    "{scheme}/n={n}: leave moved {moved:.3}, optimum {optimal:.3}"
                ));
            }
            f("join_moved_fraction")?;
            f("lookup_draws_mean")?;
        }
    }
    if doc.get("mode").and_then(|m| m.as_str()) == Some("full") {
        let has_n = |n: u64| {
            ablation
                .iter()
                .any(|r| r.get("providers").and_then(Json::as_u64) == Some(n))
        };
        for n in [100, 500, 1000] {
            if !has_n(n) {
                return Err(format!("full results need an n={n} ablation row"));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let out_path =
        flag_value("--out").unwrap_or_else(|| "results/BENCH_membership.json".into());

    if let Some(path) = flag_value("--validate") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-membership: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("bench-membership: {path}: parse error: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        return match validate(&doc) {
            Ok(()) => {
                println!("bench-membership: {path} validates");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench-membership: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let knobs = if smoke { smoke_detect() } else { full_detect() };
    let (sizes, keys): (&[usize], u64) =
        if smoke { (&[100, 500], 20_000) } else { (&[100, 500, 1000], 200_000) };

    println!(
        "== detection latency ({} providers, {}% loss) ==",
        knobs.providers,
        knobs.loss_permille / 10
    );
    let mut detection = Json::arr();
    for &fanout in knobs.fanouts {
        detection.push(run_detect(fanout, &knobs));
    }

    println!("== location ablation ({keys} keys) ==");
    let mut ablation = Json::arr();
    for &n in sizes {
        for &scheme in SCHEMES {
            ablation.push(run_ablation(scheme, n, keys));
        }
    }

    let doc = Json::obj()
        .with("bench", "swim membership + location ablation")
        .with("mode", if smoke { "smoke" } else { "full" })
        .with(
            "setup",
            Json::obj()
                .with("costs", "fast_test")
                .with("detect_providers", knobs.providers as u64)
                .with("loss_permille", u64::from(knobs.loss_permille))
                .with("ablation_keys", keys),
        )
        .with("detection", detection)
        .with("ablation", ablation);

    if let Err(e) = validate(&doc) {
        eprintln!("bench-membership: generated results fail validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, doc.encode()).expect("write results json");
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
